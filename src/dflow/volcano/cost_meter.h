#ifndef DFLOW_VOLCANO_COST_METER_H_
#define DFLOW_VOLCANO_COST_METER_H_

#include <cstdint>

#include "dflow/sim/device.h"
#include "dflow/sim/fabric.h"

namespace dflow::volcano {

/// Sequential cost accounting for the CPU-centric baseline. The legacy
/// engine runs as a single pull loop, so its virtual time is a simple
/// accumulator: page fetches traverse the whole conventional data path
/// (disk -> memory -> caches -> registers, Figure 1) and every operator
/// executes on the CPU at the same rates the fabric charges a CPU device.
///
/// `prefetch_factor` credits the baseline with sequential read-ahead: the
/// request latency of a miss is amortized over that many pages (being
/// generous to the baseline keeps the comparison honest).
class CostMeter {
 public:
  explicit CostMeter(const sim::FabricConfig& config,
                     double prefetch_factor = 4.0);

  /// A buffer-pool miss moving `bytes` from disaggregated storage all the
  /// way into the compute node's memory.
  void ChargePageFetch(uint64_t bytes);

  /// CPU work of the given class over `bytes`.
  void ChargeCpu(uint64_t bytes, sim::CostClass cost_class);

  /// Per-tuple interpretation overhead of the iterator model (`Next()`
  /// virtual call, value boxing): the classic Volcano tax.
  void ChargeRows(uint64_t rows);

  sim::SimTime total_ns() const { return total_ns_; }
  uint64_t bytes_fetched() const { return bytes_fetched_; }
  uint64_t page_fetches() const { return page_fetches_; }
  uint64_t cpu_busy_ns() const { return cpu_busy_ns_; }

  /// Interpretation overhead per tuple per operator, ns.
  static constexpr double kPerRowOverheadNs = 15.0;

 private:
  sim::Device cpu_model_;  // rate table only; never runs events
  sim::SimTime fetch_latency_ns_;
  double fetch_gbps_;
  sim::SimTime total_ns_ = 0;
  uint64_t bytes_fetched_ = 0;
  uint64_t page_fetches_ = 0;
  uint64_t cpu_busy_ns_ = 0;
};

}  // namespace dflow::volcano

#endif  // DFLOW_VOLCANO_COST_METER_H_
