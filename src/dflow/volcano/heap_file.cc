#include "dflow/volcano/heap_file.h"

namespace dflow::volcano {

bool HeapPage::TryAppend(const Schema& schema, const Row& row) {
  const uint64_t row_bytes = SerializedRowBytes(schema, row);
  if (num_rows_ > 0 && bytes_.size() + row_bytes > kPageBytes) {
    return false;
  }
  ByteWriter w(&bytes_);
  SerializeRow(schema, row, &w);
  ++num_rows_;
  return true;
}

Status HeapPage::ReadRows(const Schema& schema, std::vector<Row>* rows) const {
  rows->clear();
  rows->reserve(num_rows_);
  ByteReader r(bytes_);
  for (size_t i = 0; i < num_rows_; ++i) {
    Row row;
    DFLOW_RETURN_NOT_OK(DeserializeRow(schema, &r, &row));
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

Result<HeapFile> HeapFile::FromTable(const Table& table) {
  HeapFile file;
  file.name_ = table.name();
  file.schema_ = table.schema();
  DFLOW_ASSIGN_OR_RETURN(std::vector<DataChunk> chunks, table.ToChunks());
  HeapPage current;
  for (const DataChunk& chunk : chunks) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      Row row;
      row.reserve(chunk.num_columns());
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        row.push_back(chunk.GetValue(r, c));
      }
      if (!current.TryAppend(file.schema_, row)) {
        file.pages_.push_back(std::move(current));
        current = HeapPage();
        current.TryAppend(file.schema_, row);
      }
      ++file.num_rows_;
    }
  }
  if (current.num_rows() > 0) {
    file.pages_.push_back(std::move(current));
  }
  return file;
}

uint64_t HeapFile::total_bytes() const {
  uint64_t bytes = 0;
  for (const HeapPage& p : pages_) {
    bytes += p.byte_size();
  }
  return bytes;
}

}  // namespace dflow::volcano
