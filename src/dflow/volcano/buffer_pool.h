#ifndef DFLOW_VOLCANO_BUFFER_POOL_H_
#define DFLOW_VOLCANO_BUFFER_POOL_H_

#include <list>
#include <map>
#include <memory>
#include <vector>

#include "dflow/volcano/cost_meter.h"
#include "dflow/volcano/heap_file.h"

namespace dflow::volcano {

/// The main-memory page cache of the conventional engine — the component
/// §7.4 argues a data-flow engine no longer needs. LRU replacement;
/// capacity in pages; every miss is charged to the CostMeter as a full
/// storage-to-CPU fetch.
///
/// Pages are cached in decoded form (rows), but accounting uses on-page
/// bytes, matching how real pools size frames.
class BufferPool {
 public:
  BufferPool(size_t capacity_pages, CostMeter* meter);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the decoded rows of (file, page). The pointer stays valid
  /// until the page is evicted — callers consume it before the next Get.
  Result<const std::vector<Row>*> GetPage(const HeapFile* file,
                                          size_t page_index);

  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const { return frames_.size(); }
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t peak_resident_bytes() const { return peak_resident_bytes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  void Clear();

 private:
  using PageKey = std::pair<const HeapFile*, size_t>;
  struct Frame {
    std::vector<Row> rows;
    uint64_t page_bytes = 0;
    std::list<PageKey>::iterator lru_pos;
  };

  void EvictIfNeeded();

  size_t capacity_;
  CostMeter* meter_;
  std::map<PageKey, Frame> frames_;
  std::list<PageKey> lru_;  // front = most recent
  uint64_t resident_bytes_ = 0;
  uint64_t peak_resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace dflow::volcano

#endif  // DFLOW_VOLCANO_BUFFER_POOL_H_
