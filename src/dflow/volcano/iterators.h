#ifndef DFLOW_VOLCANO_ITERATORS_H_
#define DFLOW_VOLCANO_ITERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dflow/exec/aggregate.h"
#include "dflow/plan/expr.h"
#include "dflow/volcano/buffer_pool.h"

namespace dflow::volcano {

/// Shared execution state of one baseline query.
struct VolcanoContext {
  BufferPool* pool = nullptr;
  CostMeter* meter = nullptr;
  /// Peak bytes of operator state (join/agg/sort tables) — together with
  /// the pool this is the engine's resident footprint.
  uint64_t peak_operator_state_bytes = 0;

  void NoteOperatorState(uint64_t bytes) {
    peak_operator_state_bytes = std::max(peak_operator_state_bytes, bytes);
  }
};

/// Evaluates a resolved expression against one row (the tuple-at-a-time
/// interpreter). Semantics match the vectorized kernels: comparisons with
/// NULL are false, arithmetic with NULL is NULL.
Result<Value> EvalOnRow(const Expr& expr, const Row& row);

/// The classic pull interface ("the pull-based Volcano model", §1).
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  virtual Status Open() = 0;
  /// Fills `row` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  virtual const Schema& schema() const = 0;
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

/// Full scan through the buffer pool.
class SeqScanIterator : public RowIterator {
 public:
  SeqScanIterator(const HeapFile* file, VolcanoContext* ctx);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return file_->schema(); }

 private:
  const HeapFile* file_;
  VolcanoContext* ctx_;
  size_t page_ = 0;
  std::vector<Row> current_rows_;
  size_t row_in_page_ = 0;
};

class FilterIterator : public RowIterator {
 public:
  /// `predicate` must be resolved against the child schema.
  FilterIterator(RowIteratorPtr child, ExprPtr predicate, VolcanoContext* ctx);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  RowIteratorPtr child_;
  ExprPtr predicate_;
  VolcanoContext* ctx_;
};

class ProjectIterator : public RowIterator {
 public:
  static Result<RowIteratorPtr> Make(RowIteratorPtr child,
                                     std::vector<ExprPtr> exprs,
                                     std::vector<std::string> names,
                                     VolcanoContext* ctx);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }

 private:
  ProjectIterator(RowIteratorPtr child, std::vector<ExprPtr> exprs,
                  Schema schema, VolcanoContext* ctx)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(schema)),
        ctx_(ctx) {}

  RowIteratorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  VolcanoContext* ctx_;
};

/// Hash equi-join: consumes the build child entirely at Open (charged as
/// CPU join-build work and operator state), then streams the probe child.
class HashJoinIterator : public RowIterator {
 public:
  HashJoinIterator(RowIteratorPtr build, RowIteratorPtr probe,
                   size_t build_key, size_t probe_key, VolcanoContext* ctx);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return schema_; }

 private:
  RowIteratorPtr build_;
  RowIteratorPtr probe_;
  size_t build_key_;
  size_t probe_key_;
  VolcanoContext* ctx_;
  Schema schema_;
  std::unordered_map<uint64_t, std::vector<size_t>> table_;
  std::vector<Row> build_rows_;
  Row current_probe_;
  std::vector<size_t> current_matches_;
  size_t match_pos_ = 0;
};

/// Group-by: consumes everything at Open (delegating the actual
/// aggregation to the vectorized operator so semantics are identical to
/// the data-flow engine), then emits result rows.
class HashAggIterator : public RowIterator {
 public:
  static Result<RowIteratorPtr> Make(RowIteratorPtr child,
                                     const std::vector<std::string>& group_by,
                                     const std::vector<AggSpec>& specs,
                                     VolcanoContext* ctx);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override;

 private:
  HashAggIterator(RowIteratorPtr child, OperatorPtr agg, VolcanoContext* ctx)
      : child_(std::move(child)), agg_(std::move(agg)), ctx_(ctx) {}

  RowIteratorPtr child_;
  OperatorPtr agg_;
  VolcanoContext* ctx_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

class SortIterator : public RowIterator {
 public:
  static Result<RowIteratorPtr> Make(RowIteratorPtr child,
                                     const std::string& sort_col,
                                     bool descending, uint64_t limit,
                                     VolcanoContext* ctx);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  SortIterator(RowIteratorPtr child, size_t sort_col, bool descending,
               uint64_t limit, VolcanoContext* ctx)
      : child_(std::move(child)),
        sort_col_(sort_col),
        descending_(descending),
        limit_(limit),
        ctx_(ctx) {}

  RowIteratorPtr child_;
  size_t sort_col_;
  bool descending_;
  uint64_t limit_;
  VolcanoContext* ctx_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitIterator : public RowIterator {
 public:
  LimitIterator(RowIteratorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  RowIteratorPtr child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// Drains an iterator tree into rows (Open + Next loop).
Result<std::vector<Row>> DrainIterator(RowIterator* it);

}  // namespace dflow::volcano

#endif  // DFLOW_VOLCANO_ITERATORS_H_
