#include "dflow/volcano/cost_meter.h"

#include <algorithm>

namespace dflow::volcano {

CostMeter::CostMeter(const sim::FabricConfig& config, double prefetch_factor)
    : cpu_model_("volcano_cpu", config.cpu_overhead_ns) {
  sim::ConfigureCpuDevice(&cpu_model_, config);
  const sim::SimTime full_latency =
      config.store_request_latency_ns + config.storage_uplink_latency_ns +
      config.network_latency_ns +
      (config.use_cxl ? config.cxl_latency_ns
                      : config.interconnect_latency_ns) +
      config.memory_bus_latency_ns;
  fetch_latency_ns_ = static_cast<sim::SimTime>(
      static_cast<double>(full_latency) / std::max(1.0, prefetch_factor));
  fetch_gbps_ = std::min({config.store_media_gbps, config.storage_uplink_gbps,
                          config.network_gbps,
                          config.use_cxl ? config.cxl_gbps
                                         : config.interconnect_gbps,
                          config.memory_bus_gbps});
}

void CostMeter::ChargePageFetch(uint64_t bytes) {
  const sim::SimTime transfer =
      static_cast<sim::SimTime>(static_cast<double>(bytes) / fetch_gbps_);
  total_ns_ += fetch_latency_ns_ + transfer;
  bytes_fetched_ += bytes;
  page_fetches_ += 1;
}

void CostMeter::ChargeCpu(uint64_t bytes, sim::CostClass cost_class) {
  const sim::SimTime cost = cpu_model_.CostNs(bytes, cost_class);
  total_ns_ += cost;
  cpu_busy_ns_ += cost;
}

void CostMeter::ChargeRows(uint64_t rows) {
  const sim::SimTime cost =
      static_cast<sim::SimTime>(static_cast<double>(rows) * kPerRowOverheadNs);
  total_ns_ += cost;
  cpu_busy_ns_ += cost;
}

}  // namespace dflow::volcano
