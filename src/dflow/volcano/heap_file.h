#ifndef DFLOW_VOLCANO_HEAP_FILE_H_
#define DFLOW_VOLCANO_HEAP_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/storage/table.h"
#include "dflow/volcano/row.h"

namespace dflow::volcano {

/// Target page size of the baseline engine.
inline constexpr size_t kPageBytes = 8192;

/// A slotted heap page: serialized rows plus a row count. Immutable once
/// built (the baseline serves analytics, like the data-flow engine).
class HeapPage {
 public:
  HeapPage() = default;

  size_t num_rows() const { return num_rows_; }
  uint64_t byte_size() const { return bytes_.size(); }

  /// Appends a row if it fits in the page budget (always accepts the first
  /// row so oversized rows still land somewhere). Returns false when full.
  bool TryAppend(const Schema& schema, const Row& row);

  /// Decodes all rows on the page.
  Status ReadRows(const Schema& schema, std::vector<Row>* rows) const;

 private:
  size_t num_rows_ = 0;
  std::vector<uint8_t> bytes_;
};

/// A paged row-major file materialized from a columnar Table: the storage
/// format of the conventional engine ("these databases still run as if
/// they accessed local storage", §2.1).
class HeapFile {
 public:
  /// Converts a table into pages.
  static Result<HeapFile> FromTable(const Table& table);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_pages() const { return pages_.size(); }
  uint64_t num_rows() const { return num_rows_; }
  const HeapPage& page(size_t i) const { return pages_[i]; }
  uint64_t total_bytes() const;

 private:
  HeapFile() = default;

  std::string name_;
  Schema schema_;
  std::vector<HeapPage> pages_;
  uint64_t num_rows_ = 0;
};

}  // namespace dflow::volcano

#endif  // DFLOW_VOLCANO_HEAP_FILE_H_
