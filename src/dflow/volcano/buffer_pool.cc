#include "dflow/volcano/buffer_pool.h"

#include "dflow/common/logging.h"

namespace dflow::volcano {

BufferPool::BufferPool(size_t capacity_pages, CostMeter* meter)
    : capacity_(capacity_pages), meter_(meter) {
  DFLOW_CHECK_GT(capacity_pages, 0u);
  DFLOW_CHECK(meter != nullptr);
}

Result<const std::vector<Row>*> BufferPool::GetPage(const HeapFile* file,
                                                    size_t page_index) {
  if (file == nullptr || page_index >= file->num_pages()) {
    return Status::OutOfRange("page index out of range");
  }
  const PageKey key{file, page_index};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return &it->second.rows;
  }
  ++misses_;
  const HeapPage& page = file->page(page_index);
  meter_->ChargePageFetch(page.byte_size());
  Frame frame;
  DFLOW_RETURN_NOT_OK(page.ReadRows(file->schema(), &frame.rows));
  frame.page_bytes = page.byte_size();
  EvictIfNeeded();
  lru_.push_front(key);
  frame.lru_pos = lru_.begin();
  resident_bytes_ += frame.page_bytes;
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  auto [inserted, ok] = frames_.emplace(key, std::move(frame));
  (void)ok;
  return &inserted->second.rows;
}

void BufferPool::EvictIfNeeded() {
  while (frames_.size() >= capacity_) {
    DFLOW_CHECK(!lru_.empty());
    const PageKey victim = lru_.back();
    lru_.pop_back();
    auto it = frames_.find(victim);
    DFLOW_CHECK(it != frames_.end());
    resident_bytes_ -= it->second.page_bytes;
    frames_.erase(it);
    ++evictions_;
  }
}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace dflow::volcano
