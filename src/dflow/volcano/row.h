#ifndef DFLOW_VOLCANO_ROW_H_
#define DFLOW_VOLCANO_ROW_H_

#include <vector>

#include "dflow/common/result.h"
#include "dflow/encode/byte_io.h"
#include "dflow/types/schema.h"
#include "dflow/types/value.h"

namespace dflow::volcano {

/// The tuple-at-a-time unit of the baseline engine. Deliberately the
/// classic representation — a materialized value array per row — because
/// the baseline exists to embody the architecture the paper argues against.
using Row = std::vector<Value>;

/// Serializes a row against a schema: per column a null byte, then the
/// fixed-width value or a length-prefixed string.
void SerializeRow(const Schema& schema, const Row& row, ByteWriter* w);

/// Reads one row back.
Status DeserializeRow(const Schema& schema, ByteReader* r, Row* row);

/// On-page size of a row (what SerializeRow would write).
uint64_t SerializedRowBytes(const Schema& schema, const Row& row);

}  // namespace dflow::volcano

#endif  // DFLOW_VOLCANO_ROW_H_
