#include "dflow/volcano/iterators.h"

#include <algorithm>

#include "dflow/common/hash.h"
#include "dflow/common/logging.h"
#include "dflow/common/string_util.h"

namespace dflow::volcano {

namespace {

// Approximate in-memory size of a row for state accounting.
uint64_t RowBytes(const Row& row) {
  uint64_t bytes = 0;
  for (const Value& v : row) {
    bytes += 16;
    if (!v.is_null() && v.type() == DataType::kString) {
      bytes += v.string_value().size();
    }
  }
  return bytes;
}

uint64_t HashValue(const Value& v) {
  if (v.is_null()) return 0x7;
  switch (v.type()) {
    case DataType::kBool:
      return HashInt64(v.bool_value() ? 1 : 0);
    case DataType::kInt32:
      return HashInt64(static_cast<uint64_t>(
          static_cast<int64_t>(v.int32_value())));
    case DataType::kDate32:
      return HashInt64(static_cast<uint64_t>(
          static_cast<int64_t>(v.date32_value())));
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(v.int64_value()));
    case DataType::kDouble:
      return HashDouble(v.double_value());
    case DataType::kString:
      return HashString(v.string_value());
  }
  return 0;
}

}  // namespace

Result<Value> EvalOnRow(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case Expr::Kind::kColumnRef:
      if (!expr.is_resolved()) {
        return Status::InvalidArgument("unresolved column in row evaluation");
      }
      if (expr.column_index() >= row.size()) {
        return Status::OutOfRange("column index beyond row arity");
      }
      return row[expr.column_index()];
    case Expr::Kind::kLiteral:
      return expr.value();
    case Expr::Kind::kCompare: {
      DFLOW_ASSIGN_OR_RETURN(Value l, EvalOnRow(*expr.children()[0], row));
      DFLOW_ASSIGN_OR_RETURN(Value r, EvalOnRow(*expr.children()[1], row));
      if (l.is_null() || r.is_null()) return Value::Bool(false);
      const int cmp = l.Compare(r);
      switch (expr.compare_op()) {
        case CompareOp::kEq:
          return Value::Bool(cmp == 0);
        case CompareOp::kNe:
          return Value::Bool(cmp != 0);
        case CompareOp::kLt:
          return Value::Bool(cmp < 0);
        case CompareOp::kLe:
          return Value::Bool(cmp <= 0);
        case CompareOp::kGt:
          return Value::Bool(cmp > 0);
        case CompareOp::kGe:
          return Value::Bool(cmp >= 0);
      }
      return Status::Internal("unreachable");
    }
    case Expr::Kind::kArith: {
      DFLOW_ASSIGN_OR_RETURN(Value l, EvalOnRow(*expr.children()[0], row));
      DFLOW_ASSIGN_OR_RETURN(Value r, EvalOnRow(*expr.children()[1], row));
      if (l.is_null() || r.is_null()) return Value::Null(DataType::kDouble);
      if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      const bool as_double =
          l.type() == DataType::kDouble || r.type() == DataType::kDouble;
      if (as_double) {
        const double a = l.AsDouble();
        const double b = r.AsDouble();
        switch (expr.arith_op()) {
          case ArithOp::kAdd:
            return Value::Double(a + b);
          case ArithOp::kSub:
            return Value::Double(a - b);
          case ArithOp::kMul:
            return Value::Double(a * b);
          case ArithOp::kDiv:
            return Value::Double(a / b);
        }
      }
      const int64_t a = l.AsInt64();
      const int64_t b = r.AsInt64();
      switch (expr.arith_op()) {
        case ArithOp::kAdd:
          return Value::Int64(a + b);
        case ArithOp::kSub:
          return Value::Int64(a - b);
        case ArithOp::kMul:
          return Value::Int64(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Value::Null(DataType::kInt64);
          return Value::Int64(a / b);
      }
      return Status::Internal("unreachable");
    }
    case Expr::Kind::kLike: {
      DFLOW_ASSIGN_OR_RETURN(Value input, EvalOnRow(*expr.children()[0], row));
      if (input.is_null()) return Value::Bool(false);
      if (input.type() != DataType::kString) {
        return Status::InvalidArgument("LIKE requires a string");
      }
      return Value::Bool(LikeMatch(input.string_value(), expr.pattern()));
    }
    case Expr::Kind::kAnd: {
      for (const ExprPtr& c : expr.children()) {
        DFLOW_ASSIGN_OR_RETURN(Value v, EvalOnRow(*c, row));
        if (v.is_null() || !v.bool_value()) return Value::Bool(false);
      }
      return Value::Bool(true);
    }
    case Expr::Kind::kOr: {
      for (const ExprPtr& c : expr.children()) {
        DFLOW_ASSIGN_OR_RETURN(Value v, EvalOnRow(*c, row));
        if (!v.is_null() && v.bool_value()) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case Expr::Kind::kNot: {
      DFLOW_ASSIGN_OR_RETURN(Value v, EvalOnRow(*expr.children()[0], row));
      if (v.is_null()) return Value::Bool(true);  // mask semantics: !0
      return Value::Bool(!v.bool_value());
    }
  }
  return Status::Internal("unreachable");
}

// ------------------------------------------------------------- seq scan ----

SeqScanIterator::SeqScanIterator(const HeapFile* file, VolcanoContext* ctx)
    : file_(file), ctx_(ctx) {
  DFLOW_CHECK(file != nullptr);
  DFLOW_CHECK(ctx != nullptr);
}

Status SeqScanIterator::Open() {
  page_ = 0;
  row_in_page_ = 0;
  current_rows_.clear();
  return Status::OK();
}

Result<bool> SeqScanIterator::Next(Row* row) {
  while (row_in_page_ >= current_rows_.size()) {
    if (page_ >= file_->num_pages()) return false;
    DFLOW_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                           ctx_->pool->GetPage(file_, page_));
    current_rows_ = *rows;  // copy out: the frame may be evicted
    ctx_->meter->ChargeCpu(file_->page(page_).byte_size(),
                           sim::CostClass::kScan);
    ++page_;
    row_in_page_ = 0;
  }
  *row = current_rows_[row_in_page_++];
  ctx_->meter->ChargeRows(1);
  return true;
}

// --------------------------------------------------------------- filter ----

FilterIterator::FilterIterator(RowIteratorPtr child, ExprPtr predicate,
                               VolcanoContext* ctx)
    : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {}

Status FilterIterator::Open() { return child_->Open(); }

Result<bool> FilterIterator::Next(Row* row) {
  while (true) {
    DFLOW_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ctx_->meter->ChargeRows(1);
    DFLOW_ASSIGN_OR_RETURN(Value pass, EvalOnRow(*predicate_, *row));
    if (!pass.is_null() && pass.bool_value()) return true;
  }
}

// -------------------------------------------------------------- project ----

Result<RowIteratorPtr> ProjectIterator::Make(RowIteratorPtr child,
                                             std::vector<ExprPtr> exprs,
                                             std::vector<std::string> names,
                                             VolcanoContext* ctx) {
  if (exprs.size() != names.size() || exprs.empty()) {
    return Status::InvalidArgument("project arity mismatch");
  }
  std::vector<Field> fields;
  for (size_t i = 0; i < exprs.size(); ++i) {
    DFLOW_ASSIGN_OR_RETURN(DataType type,
                           exprs[i]->OutputType(child->schema()));
    fields.push_back(Field{names[i], type});
  }
  return RowIteratorPtr(new ProjectIterator(
      std::move(child), std::move(exprs), Schema(std::move(fields)), ctx));
}

Status ProjectIterator::Open() { return child_->Open(); }

Result<bool> ProjectIterator::Next(Row* row) {
  Row input;
  DFLOW_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
  if (!has) return false;
  ctx_->meter->ChargeRows(1);
  row->clear();
  row->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    DFLOW_ASSIGN_OR_RETURN(Value v, EvalOnRow(*e, input));
    row->push_back(std::move(v));
  }
  return true;
}

// ------------------------------------------------------------ hash join ----

HashJoinIterator::HashJoinIterator(RowIteratorPtr build, RowIteratorPtr probe,
                                   size_t build_key, size_t probe_key,
                                   VolcanoContext* ctx)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(build_key),
      probe_key_(probe_key),
      ctx_(ctx) {
  std::vector<Field> fields = probe_->schema().fields();
  for (const Field& f : build_->schema().fields()) {
    Field out = f;
    if (probe_->schema().HasField(out.name)) out.name = "b_" + out.name;
    fields.push_back(std::move(out));
  }
  schema_ = Schema(std::move(fields));
}

Status HashJoinIterator::Open() {
  DFLOW_RETURN_NOT_OK(build_->Open());
  uint64_t state_bytes = 0;
  Row row;
  while (true) {
    DFLOW_ASSIGN_OR_RETURN(bool has, build_->Next(&row));
    if (!has) break;
    const Value& key = row[build_key_];
    const uint64_t bytes = RowBytes(row);
    state_bytes += bytes + 32;
    ctx_->meter->ChargeCpu(bytes, sim::CostClass::kJoinBuild);
    ctx_->meter->ChargeRows(1);
    if (!key.is_null()) {
      table_[HashValue(key)].push_back(build_rows_.size());
    }
    build_rows_.push_back(std::move(row));
  }
  ctx_->NoteOperatorState(state_bytes);
  match_pos_ = 0;
  current_matches_.clear();
  return probe_->Open();
}

Result<bool> HashJoinIterator::Next(Row* row) {
  while (true) {
    if (match_pos_ < current_matches_.size()) {
      const Row& build_row = build_rows_[current_matches_[match_pos_++]];
      *row = current_probe_;
      row->insert(row->end(), build_row.begin(), build_row.end());
      return true;
    }
    DFLOW_ASSIGN_OR_RETURN(bool has, probe_->Next(&current_probe_));
    if (!has) return false;
    ctx_->meter->ChargeCpu(RowBytes(current_probe_),
                           sim::CostClass::kJoinProbe);
    ctx_->meter->ChargeRows(1);
    current_matches_.clear();
    match_pos_ = 0;
    const Value& key = current_probe_[probe_key_];
    if (key.is_null()) continue;
    auto it = table_.find(HashValue(key));
    if (it == table_.end()) continue;
    for (size_t idx : it->second) {
      if (build_rows_[idx][build_key_].Compare(key) == 0) {
        current_matches_.push_back(idx);
      }
    }
  }
}

// ------------------------------------------------------------- hash agg ----

Result<RowIteratorPtr> HashAggIterator::Make(
    RowIteratorPtr child, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& specs, VolcanoContext* ctx) {
  DFLOW_ASSIGN_OR_RETURN(
      OperatorPtr agg,
      HashAggregateOperator::Make(child->schema(), group_by, specs,
                                  AggMode::kComplete));
  return RowIteratorPtr(
      new HashAggIterator(std::move(child), std::move(agg), ctx));
}

const Schema& HashAggIterator::schema() const {
  return agg_->output_schema();
}

Status HashAggIterator::Open() {
  DFLOW_RETURN_NOT_OK(child_->Open());
  // Batch input rows into chunks so the aggregation logic is shared with
  // the vectorized engine; the CPU is still charged tuple-at-a-time.
  DataChunk batch = DataChunk::EmptyFromSchema(child_->schema());
  std::vector<DataChunk> sink;
  Row row;
  uint64_t state_rows = 0;
  auto flush = [&]() -> Status {
    if (batch.num_rows() == 0) return Status::OK();
    ctx_->meter->ChargeCpu(batch.ByteSize(), sim::CostClass::kAggregate);
    DFLOW_RETURN_NOT_OK(agg_->Push(batch, &sink));
    batch = DataChunk::EmptyFromSchema(child_->schema());
    return Status::OK();
  };
  while (true) {
    DFLOW_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    ctx_->meter->ChargeRows(1);
    DataChunk one;
    ++state_rows;
    for (size_t c = 0; c < row.size(); ++c) {
      batch.column(c).AppendValue(row[c]);
    }
    if (batch.num_rows() >= kVectorSize) {
      DFLOW_RETURN_NOT_OK(flush());
    }
  }
  DFLOW_RETURN_NOT_OK(flush());
  DFLOW_RETURN_NOT_OK(agg_->Finish(&sink));
  for (const DataChunk& chunk : sink) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      Row out;
      out.reserve(chunk.num_columns());
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        out.push_back(chunk.GetValue(r, c));
      }
      results_.push_back(std::move(out));
    }
  }
  uint64_t state_bytes = 0;
  for (const Row& r : results_) state_bytes += RowBytes(r) + 32;
  ctx_->NoteOperatorState(state_bytes);
  pos_ = 0;
  return Status::OK();
}

Result<bool> HashAggIterator::Next(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = results_[pos_++];
  return true;
}

// ----------------------------------------------------------------- sort ----

Result<RowIteratorPtr> SortIterator::Make(RowIteratorPtr child,
                                          const std::string& sort_col,
                                          bool descending, uint64_t limit,
                                          VolcanoContext* ctx) {
  DFLOW_ASSIGN_OR_RETURN(size_t idx, child->schema().FieldIndex(sort_col));
  return RowIteratorPtr(
      new SortIterator(std::move(child), idx, descending, limit, ctx));
}

Status SortIterator::Open() {
  DFLOW_RETURN_NOT_OK(child_->Open());
  Row row;
  uint64_t state_bytes = 0;
  while (true) {
    DFLOW_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    state_bytes += RowBytes(row);
    ctx_->meter->ChargeCpu(RowBytes(row), sim::CostClass::kSort);
    ctx_->meter->ChargeRows(1);
    rows_.push_back(std::move(row));
  }
  ctx_->NoteOperatorState(state_bytes);
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     const int cmp = a[sort_col_].Compare(b[sort_col_]);
                     return descending_ ? cmp > 0 : cmp < 0;
                   });
  if (limit_ > 0 && rows_.size() > limit_) rows_.resize(limit_);
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortIterator::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

// ---------------------------------------------------------------- limit ----

Result<bool> LimitIterator::Next(Row* row) {
  if (emitted_ >= limit_) return false;
  DFLOW_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ++emitted_;
  return true;
}

Result<std::vector<Row>> DrainIterator(RowIterator* it) {
  DFLOW_RETURN_NOT_OK(it->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    DFLOW_ASSIGN_OR_RETURN(bool has, it->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace dflow::volcano
