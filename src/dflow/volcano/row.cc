#include "dflow/volcano/row.h"

#include "dflow/common/logging.h"

namespace dflow::volcano {

void SerializeRow(const Schema& schema, const Row& row, ByteWriter* w) {
  DFLOW_CHECK_EQ(schema.num_fields(), row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    const Value& v = row[c];
    w->PutU8(v.is_null() ? 1 : 0);
    if (v.is_null()) continue;
    switch (schema.field(c).type) {
      case DataType::kBool:
        w->PutU8(v.bool_value() ? 1 : 0);
        break;
      case DataType::kInt32:
        w->PutI32(v.int32_value());
        break;
      case DataType::kDate32:
        w->PutI32(v.date32_value());
        break;
      case DataType::kInt64:
        w->PutI64(v.int64_value());
        break;
      case DataType::kDouble:
        w->PutDouble(v.double_value());
        break;
      case DataType::kString:
        w->PutString(v.string_value());
        break;
    }
  }
}

Status DeserializeRow(const Schema& schema, ByteReader* r, Row* row) {
  row->clear();
  row->reserve(schema.num_fields());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    uint8_t null_byte = 0;
    DFLOW_RETURN_NOT_OK(r->GetU8(&null_byte));
    const DataType type = schema.field(c).type;
    if (null_byte) {
      row->push_back(Value::Null(type));
      continue;
    }
    switch (type) {
      case DataType::kBool: {
        uint8_t v = 0;
        DFLOW_RETURN_NOT_OK(r->GetU8(&v));
        row->push_back(Value::Bool(v != 0));
        break;
      }
      case DataType::kInt32: {
        int32_t v = 0;
        DFLOW_RETURN_NOT_OK(r->GetI32(&v));
        row->push_back(Value::Int32(v));
        break;
      }
      case DataType::kDate32: {
        int32_t v = 0;
        DFLOW_RETURN_NOT_OK(r->GetI32(&v));
        row->push_back(Value::Date32(v));
        break;
      }
      case DataType::kInt64: {
        int64_t v = 0;
        DFLOW_RETURN_NOT_OK(r->GetI64(&v));
        row->push_back(Value::Int64(v));
        break;
      }
      case DataType::kDouble: {
        double v = 0;
        DFLOW_RETURN_NOT_OK(r->GetDouble(&v));
        row->push_back(Value::Double(v));
        break;
      }
      case DataType::kString: {
        std::string s;
        DFLOW_RETURN_NOT_OK(r->GetString(&s));
        row->push_back(Value::String(std::move(s)));
        break;
      }
    }
  }
  return Status::OK();
}

uint64_t SerializedRowBytes(const Schema& schema, const Row& row) {
  uint64_t bytes = 0;
  for (size_t c = 0; c < row.size(); ++c) {
    bytes += 1;  // null byte
    if (row[c].is_null()) continue;
    const DataType type = schema.field(c).type;
    if (type == DataType::kString) {
      bytes += 4 + row[c].string_value().size();
    } else {
      bytes += FixedWidthBytes(type);
    }
  }
  return bytes;
}

}  // namespace dflow::volcano
