#ifndef DFLOW_TESTING_DIFF_RUNNER_H_
#define DFLOW_TESTING_DIFF_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/testing/canonical.h"
#include "dflow/testing/plan_gen.h"

namespace dflow::testing {

/// Deliberate, flag-guarded operator bugs the oracle must catch (shrinker
/// demo; see exec/test_hooks.h). kNone in every production configuration.
enum class BugKind { kNone, kFilterDropFirstRow };

std::string_view BugKindToString(BugKind k);
Result<BugKind> BugKindFromString(const std::string& text);

struct DiffOptions {
  /// Dataflow placement variants sampled beyond the CPU-only lane.
  size_t placement_samples = 2;
  /// Adds a lane that re-runs the plan under a seed-derived fault schedule
  /// (drops/corruption/stalls/storage errors) with recovery armed, and —
  /// for a seed-derived quarter of cases — a lane with a mid-query
  /// accelerator crash (degradation to CPU must still be exact).
  bool sample_faults = true;
  /// Injects the given operator bug into every dataflow lane (never the
  /// Volcano reference), so divergence is guaranteed detectable.
  BugKind inject_bug = BugKind::kNone;
  /// Buffer pool pages for the Volcano baseline.
  size_t pool_pages = 256;
  /// Adds the "real-parallel" lanes: the case re-runs on the morsel-driven
  /// work-stealing executor (ExecMode::kParallel) at each worker count in
  /// `parallel_worker_counts`, and every lane's canonical fingerprint must
  /// be byte-identical to the Volcano reference. Real threads, real
  /// interleavings — the lane that proves output never depends on
  /// scheduling. (fuzz_plans --parallel, default on)
  bool real_parallel = true;
  std::vector<uint32_t> parallel_worker_counts = {1, 2, 8};
  /// Adds the "compiled" lanes: the case is lowered to a DflowProgram
  /// (Engine::Compile, strict verification at compile time) and executed
  /// via Engine::ExecuteProgram — auto placement, CPU-only, a fusion-off
  /// cross-check, and (with sample_faults) a fault-schedule run. Every
  /// lane's fingerprint must match the Volcano reference, proving the
  /// compiled admission path is result-identical to interpretation.
  /// (fuzz_plans --compiled, default on)
  bool compiled = true;
  /// Adds the "chaos-serve" lane: the query is served repeatedly through a
  /// ServiceLoop on a faulty fabric with a flapping (crash + restore)
  /// accelerator, deadlines, a scheduled cancellation, circuit breakers,
  /// and retries enabled. Every query that completes — including ones that
  /// were retried onto a fallback placement — must fingerprint identically
  /// to the fault-free Volcano reference; misses/cancels are legal
  /// outcomes, silent wrong answers are not. (fuzz_plans --deadlines)
  bool chaos_serve = false;
  /// Adds the "cluster:nN" lanes: the case's tables are hash-sharded
  /// across an N-node cluster and the query runs distributed through
  /// QueryRouter (local fragments, exchange shuffle/broadcast/gather,
  /// merge-at-coordinator), once per entry in `cluster_node_counts`, plus
  /// a "cluster:faults" lane on the largest count with lossy inter-node
  /// links (checksummed retransmission must still be exact). Every DONE
  /// distributed run must fingerprint identically to the single-node
  /// Volcano reference. (fuzz_plans --cluster, default on)
  bool cluster = true;
  std::vector<int> cluster_node_counts = {1, 2, 4};
};

/// One engine/placement/fault execution of the case.
struct LaneResult {
  std::string lane;  // "volcano", "cpu_only", "variant:<name>", "faults", ...
  std::string fingerprint;
  uint64_t rows = 0;
  uint64_t sim_ns = 0;
  bool failed = false;  // the lane errored instead of producing a result
  std::string error;
};

struct DiffResult {
  bool diverged = false;
  /// Human-readable summary of the first divergence ("" when none).
  std::string divergence;
  /// The Volcano reference fingerprint all other lanes are held to.
  std::string reference_fingerprint;
  std::vector<LaneResult> lanes;
};

/// The differential oracle: executes a generated case on the Volcano
/// engine, the dataflow engine CPU-only, and K sampled placement variants —
/// plus optional fault-schedule lanes — under the strict static verifier,
/// and asserts canonicalized result equality and ExecutionReport sanity.
/// Deterministic: the same case yields byte-identical DiffResults.
class DiffRunner {
 public:
  explicit DiffRunner(DiffOptions options = DiffOptions());

  const DiffOptions& options() const { return options_; }

  /// Runs every lane. A Status error means the harness itself failed (e.g.
  /// table registration); lane-level execution errors are reported as
  /// divergences, not statuses.
  Result<DiffResult> Run(const GeneratedCase& c) const;

 private:
  DiffOptions options_;
};

}  // namespace dflow::testing

#endif  // DFLOW_TESTING_DIFF_RUNNER_H_
