#ifndef DFLOW_TESTING_PLAN_GEN_H_
#define DFLOW_TESTING_PLAN_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dflow/common/random.h"
#include "dflow/plan/query_spec.h"
#include "dflow/storage/table.h"
#include "dflow/types/data_type.h"
#include "dflow/vector/column_vector.h"
#include "dflow/verify/graph_spec.h"

namespace dflow::testing {

/// Knobs for the random plan generator. Everything is seed-derived: the same
/// (options, case_seed) pair regenerates byte-identical tables and plans,
/// which is what makes repro JSON replayable.
struct PlanGenOptions {
  /// Mixed into every case seed (lets CI shift the whole corpus).
  uint64_t base_seed = 0;
  /// Table cardinality range (inclusive).
  size_t min_rows = 40;
  size_t max_rows = 1200;
  /// Random columns beyond the mandatory unique "id" column (at least 1).
  size_t max_extra_columns = 4;
  /// Fraction of cases that are distributed partitioned joins.
  double join_probability = 0.15;
  /// Fraction of non-join cases that are COUNT(*) pipelines.
  double count_only_probability = 0.1;
};

/// One generated differential-test case: synthetic tables plus the logical
/// plan to run over them. Copyable by value so the shrinker can mutate
/// candidates freely; tables are shared immutable snapshots.
struct GeneratedCase {
  uint64_t seed = 0;
  std::string name;  // "case_<seed>"

  std::vector<std::shared_ptr<Table>> tables;

  bool is_join = false;
  QuerySpec query;  // valid when !is_join
  JoinSpec join;    // valid when is_join

  /// The filter as its conjunct list (query.filter == And of these); kept
  /// separately so the shrinker can delete conjuncts one at a time.
  std::vector<ExprPtr> filter_conjuncts;
  std::vector<ExprPtr> probe_filter_conjuncts;  // join probe-side filter
};

/// Rebuilds query.filter / join.probe_filter from the conjunct lists (after
/// the shrinker edits them). Empty list => no filter.
void RebuildFilters(GeneratedCase* c);

/// Logical stage count of the pipeline the case describes (scan/filter/
/// project/aggregate/sort/sink); the shrinker's minimality metric.
size_t CountStages(const GeneratedCase& c);

/// Deterministic, seed-derived random plan generator. Emits valid logical
/// plans — every generated plan passes the static verifier in strict mode
/// and computes identical results on the Volcano and dataflow engines —
/// plus matching synthetic column data:
///   - every table has a unique int64 "id" column (gives ORDER BY a total
///     order, so LIMIT results are engine-independent),
///   - doubles are dyadic rationals (multiples of 0.25, bounded magnitude),
///     so SUMs are exact and order-independent,
///   - strings come from a small pool (selective predicates, dictionary-
///     friendly encodings).
class PlanGen {
 public:
  explicit PlanGen(PlanGenOptions options = PlanGenOptions());

  const PlanGenOptions& options() const { return options_; }

  /// Generates the case for `case_seed`. Pure function of (options, seed).
  GeneratedCase Generate(uint64_t case_seed) const;

  /// A random column for property tests (encode round-trips): `null_prob`
  /// adds a validity mask. Deterministic in `rng`'s state.
  static ColumnVector RandomColumn(Random* rng, DataType type, size_t rows,
                                   double null_prob = 0.0);

  /// A hand-built verify::GraphSpec with a declared feedback edge (loop
  /// primed through a broadcast node, one unbounded-credit hop so the
  /// credit-deadlock check passes). Feedback graphs are verify-only — the
  /// executor rejects them — so this exercises the GraphSpec lane of the
  /// fuzzer: Engine::VerifyGraphSpec must find no errors.
  static verify::GraphSpec FeedbackSpec();

 private:
  PlanGenOptions options_;
};

}  // namespace dflow::testing

#endif  // DFLOW_TESTING_PLAN_GEN_H_
