#ifndef DFLOW_TESTING_SHRINK_H_
#define DFLOW_TESTING_SHRINK_H_

#include <functional>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/testing/plan_gen.h"

namespace dflow::testing {

/// Returns true when the candidate case still exhibits the divergence being
/// minimized (typically: DiffRunner reports diverged).
using ShrinkOracle = std::function<bool(const GeneratedCase&)>;

/// Applies one named reduction to a case. Steps are plain strings so a repro
/// JSON can record and replay the exact reduction sequence:
///   drop_order_by | drop_order_limit | drop_count_only | drop_aggregates |
///   drop_aggregate:<i> | drop_group_by | drop_group_by:<i> |
///   drop_projections | drop_projection:<i> | drop_filter_conjunct:<i> |
///   drop_probe_filter | drop_probe_filter_conjunct:<i> |
///   drop_column:<table>:<column> | halve_rows:<table>
/// Returns InvalidArgument for steps that do not apply to (or would
/// invalidate) the case; the shrinker just skips those.
Result<GeneratedCase> ApplyShrinkStep(const GeneratedCase& c,
                                      const std::string& step);

/// Every step that could apply to `c` right now, coarsest first (whole
/// clauses before single conjuncts before data reductions) so the greedy
/// loop takes the biggest valid bites early.
std::vector<std::string> EnumerateShrinkSteps(const GeneratedCase& c);

struct ShrinkResult {
  GeneratedCase minimized;
  /// The accepted reductions, in order — recorded in repro JSON and
  /// replayed verbatim by ReplayRepro.
  std::vector<std::string> applied_steps;
  /// Oracle invocations spent (accepted + rejected candidates).
  size_t oracle_runs = 0;
};

/// Greedy delta-debugging: repeatedly tries EnumerateShrinkSteps in order,
/// keeps any reduction the oracle still flags, and restarts from the top on
/// every acceptance; stops when no step survives or `max_oracle_runs` is
/// reached. Deterministic given a deterministic oracle.
ShrinkResult Shrink(const GeneratedCase& c, const ShrinkOracle& oracle,
                    size_t max_oracle_runs = 200);

}  // namespace dflow::testing

#endif  // DFLOW_TESTING_SHRINK_H_
