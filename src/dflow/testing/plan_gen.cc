#include "dflow/testing/plan_gen.h"

#include <algorithm>
#include <utility>

#include "dflow/common/logging.h"
#include "dflow/types/value.h"
#include "dflow/vector/data_chunk.h"

namespace dflow::testing {

namespace {

/// splitmix64: decorrelates consecutive case seeds before they feed the
/// xorshift generator (adjacent raw seeds produce correlated streams).
uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// String pool: low-cardinality, dictionary-friendly, LIKE-able.
const char* const kStringPool[] = {"alpha", "beta",  "gamma", "delta",
                                   "epsilon", "zeta", "eta",   "theta"};
constexpr size_t kStringPoolSize = sizeof(kStringPool) / sizeof(kStringPool[0]);

const char* const kLikePatterns[] = {"%a%", "%et%", "%ta", "d%", "%e%a%"};
constexpr size_t kLikePatternCount =
    sizeof(kLikePatterns) / sizeof(kLikePatterns[0]);

/// Domains per generated type; literals for predicates are drawn from the
/// same ranges so filters hit interesting selectivities.
int32_t RandomInt32(Random* rng) {
  return static_cast<int32_t>(rng->NextInt64(-100, 100));
}
int64_t RandomInt64(Random* rng) { return rng->NextInt64(-1000, 1000); }
double RandomDyadicDouble(Random* rng) {
  // Multiples of 0.25 with bounded magnitude: sums are exact in a double
  // regardless of accumulation order, so aggregates cannot diverge between
  // engines for floating-point reasons.
  return 0.25 * static_cast<double>(rng->NextInt64(-400, 400));
}
std::string RandomPoolString(Random* rng) {
  return kStringPool[rng->NextUint64(kStringPoolSize)];
}
int32_t RandomDate32(Random* rng) {
  return static_cast<int32_t>(rng->NextInt64(8000, 8100));
}

Value RandomLiteralFor(Random* rng, DataType type) {
  switch (type) {
    case DataType::kBool:
      return Value::Bool(rng->NextBool());
    case DataType::kInt32:
      return Value::Int32(RandomInt32(rng));
    case DataType::kInt64:
      return Value::Int64(RandomInt64(rng));
    case DataType::kDouble:
      return Value::Double(RandomDyadicDouble(rng));
    case DataType::kString:
      return Value::String(RandomPoolString(rng));
    case DataType::kDate32:
      return Value::Date32(RandomDate32(rng));
  }
  return Value::Int64(0);
}

CompareOp RandomCompareOp(Random* rng) {
  static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                       CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe};
  return kOps[rng->NextUint64(6)];
}

bool IsNumericType(DataType t) {
  return t == DataType::kInt32 || t == DataType::kInt64 ||
         t == DataType::kDouble;
}

/// The non-id column types PlanGen draws from.
const DataType kExtraTypes[] = {DataType::kInt32, DataType::kInt64,
                                DataType::kDouble, DataType::kString,
                                DataType::kDate32};
constexpr size_t kExtraTypeCount = sizeof(kExtraTypes) / sizeof(kExtraTypes[0]);

/// Builds a table: unique int64 "id" (shuffled 0..rows-1) plus random extra
/// columns. Chunked at kVectorSize; row-group size varied by the seed so
/// scan batching shapes differ across cases.
std::shared_ptr<Table> MakeRandomTable(Random* rng, const std::string& name,
                                       size_t rows, size_t extra_columns,
                                       Schema* out_schema) {
  std::vector<Field> fields;
  fields.push_back({"id", DataType::kInt64});
  std::vector<DataType> extra_types;
  for (size_t i = 0; i < extra_columns; ++i) {
    const DataType t = kExtraTypes[rng->NextUint64(kExtraTypeCount)];
    extra_types.push_back(t);
    fields.push_back({"c" + std::to_string(i), t});
  }
  Schema schema(fields);

  // Unique ids in shuffled order (Fisher-Yates with the case RNG).
  std::vector<int64_t> ids(rows);
  for (size_t i = 0; i < rows; ++i) ids[i] = static_cast<int64_t>(i);
  for (size_t i = rows; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng->NextUint64(i)]);
  }

  const size_t group_sizes[] = {256, 512, 2048, kDefaultRowGroupSize};
  TableBuilder builder(name, schema, group_sizes[rng->NextUint64(4)]);
  size_t at = 0;
  while (at < rows) {
    const size_t n = std::min<size_t>(kVectorSize, rows - at);
    DataChunk chunk;
    std::vector<int64_t> id_vals(ids.begin() + at, ids.begin() + at + n);
    chunk.AddColumn(ColumnVector::FromInt64(std::move(id_vals)));
    for (DataType t : extra_types) {
      chunk.AddColumn(PlanGen::RandomColumn(rng, t, n));
    }
    DFLOW_CHECK(builder.Append(chunk).ok());
    at += n;
  }
  Result<Table> table = builder.Finish();
  DFLOW_CHECK(table.ok());
  if (out_schema != nullptr) *out_schema = schema;
  return std::make_shared<Table>(std::move(table).ValueOrDie());
}

/// One random `column <op> literal` (or LIKE) conjunct over `schema`.
ExprPtr RandomConjunct(Random* rng, const Schema& schema, size_t rows) {
  const Field& f = schema.field(rng->NextUint64(schema.num_fields()));
  if (f.type == DataType::kString && rng->NextBool(0.25)) {
    return Expr::Like(Expr::Col(f.name),
                      kLikePatterns[rng->NextUint64(kLikePatternCount)]);
  }
  Value lit = f.name == "id"
                  ? Value::Int64(rng->NextInt64(
                        0, static_cast<int64_t>(rows > 0 ? rows - 1 : 0)))
                  : RandomLiteralFor(rng, f.type);
  return Expr::Cmp(RandomCompareOp(rng), Expr::Col(f.name), Expr::Lit(std::move(lit)));
}

}  // namespace

void RebuildFilters(GeneratedCase* c) {
  auto combine = [](const std::vector<ExprPtr>& conjuncts) -> ExprPtr {
    if (conjuncts.empty()) return nullptr;
    if (conjuncts.size() == 1) return conjuncts[0];
    return Expr::And(conjuncts);
  };
  c->query.filter = combine(c->filter_conjuncts);
  c->join.probe_filter = combine(c->probe_filter_conjuncts);
}

size_t CountStages(const GeneratedCase& c) {
  if (c.is_join) {
    // build scan + probe scan + exchange + join + count sink.
    return 4 + (c.join.probe_filter != nullptr ? 1 : 0);
  }
  size_t stages = 2;  // scan + sink
  if (c.query.filter != nullptr) stages += 1;
  if (!c.query.projections.empty()) stages += 1;
  if (c.query.count_only || !c.query.aggregates.empty()) stages += 1;
  if (c.query.order_by.has_value()) stages += 1;
  return stages;
}

PlanGen::PlanGen(PlanGenOptions options) : options_(options) {}

ColumnVector PlanGen::RandomColumn(Random* rng, DataType type, size_t rows,
                                   double null_prob) {
  ColumnVector col(type);
  for (size_t i = 0; i < rows; ++i) {
    if (null_prob > 0.0 && rng->NextBool(null_prob)) {
      col.AppendNull();
      continue;
    }
    col.AppendValue(RandomLiteralFor(rng, type));
  }
  return col;
}

GeneratedCase PlanGen::Generate(uint64_t case_seed) const {
  Random rng(MixSeed(options_.base_seed, case_seed));
  GeneratedCase c;
  c.seed = case_seed;
  c.name = "case_" + std::to_string(case_seed);

  c.is_join = rng.NextBool(options_.join_probability);
  if (c.is_join) {
    const size_t build_rows = 30 + rng.NextUint64(370);
    const size_t probe_rows =
        options_.min_rows +
        rng.NextUint64(options_.max_rows - options_.min_rows + 1);
    Schema build_schema;
    Schema probe_schema;
    c.tables.push_back(MakeRandomTable(&rng, "build_" + c.name, build_rows,
                                       1 + rng.NextUint64(2), &build_schema));
    c.tables.push_back(MakeRandomTable(&rng, "probe_" + c.name, probe_rows,
                                       1 + rng.NextUint64(2), &probe_schema));
    c.join.build_table = c.tables[0]->name();
    c.join.probe_table = c.tables[1]->name();
    // "id" is unique on the build side (each probe row matches at most one
    // build row), and probe ids overlap the build key range only partially —
    // a mix of hits and misses without duplicate-explosion.
    c.join.build_key = "id";
    c.join.probe_key = "id";
    c.join.num_nodes = 2;
    c.join.exchange = rng.NextBool() ? JoinSpec::Exchange::kNicScatter
                                     : JoinSpec::Exchange::kCpuExchange;
    if (rng.NextBool(0.5)) {
      c.probe_filter_conjuncts.push_back(
          RandomConjunct(&rng, probe_schema, probe_rows));
    }
    RebuildFilters(&c);
    return c;
  }

  const size_t rows =
      options_.min_rows +
      rng.NextUint64(options_.max_rows - options_.min_rows + 1);
  const size_t extra =
      1 + rng.NextUint64(std::max<size_t>(options_.max_extra_columns, 1));
  Schema schema;
  c.tables.push_back(MakeRandomTable(&rng, "t_" + c.name, rows, extra,
                                     &schema));
  c.query.table = c.tables[0]->name();
  c.query.compress_uplink = rng.NextBool(0.5);

  // Filter: 0-2 conjuncts over any column.
  const size_t conjuncts = rng.NextUint64(3);
  for (size_t i = 0; i < conjuncts; ++i) {
    c.filter_conjuncts.push_back(RandomConjunct(&rng, schema, rows));
  }

  if (rng.NextBool(options_.count_only_probability)) {
    c.query.count_only = true;
    RebuildFilters(&c);
    return c;
  }

  const bool want_sort = rng.NextBool(0.4);
  const bool want_agg = !want_sort && rng.NextBool(0.45);

  // Projections: a distinct column subset, optionally plus one computed
  // numeric expression. When a sort follows, "id" is force-included so the
  // sort key survives projection.
  if (rng.NextBool(want_sort ? 0.5 : 0.4)) {
    std::vector<size_t> indices(schema.num_fields());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (size_t i = indices.size(); i > 1; --i) {
      std::swap(indices[i - 1], indices[rng.NextUint64(i)]);
    }
    const size_t keep = 1 + rng.NextUint64(indices.size());
    indices.resize(keep);
    if (want_sort &&
        std::find(indices.begin(), indices.end(), 0u) == indices.end()) {
      indices.push_back(0);  // field 0 is "id"
    }
    for (size_t idx : indices) {
      c.query.projections.push_back(Expr::Col(schema.field(idx).name));
      c.query.projection_names.push_back(schema.field(idx).name);
    }
    if (rng.NextBool(0.3)) {
      // One computed column over a numeric input (add/sub only: dyadic
      // doubles stay exact).
      std::vector<size_t> numeric;
      for (size_t i = 0; i < schema.num_fields(); ++i) {
        if (IsNumericType(schema.field(i).type)) numeric.push_back(i);
      }
      if (!numeric.empty()) {
        const Field& f = schema.field(numeric[rng.NextUint64(numeric.size())]);
        const ArithOp op = rng.NextBool() ? ArithOp::kAdd : ArithOp::kSub;
        c.query.projections.push_back(Expr::Arith(
            op, Expr::Col(f.name), Expr::Lit(RandomLiteralFor(&rng, f.type))));
        c.query.projection_names.push_back("e0");
      }
    }
  }

  // The schema aggregate inputs resolve against: projection outputs when
  // projections exist, scanned columns otherwise.
  std::vector<Field> agg_input_fields;
  if (c.query.projections.empty()) {
    agg_input_fields = schema.fields();
  } else {
    for (size_t i = 0; i < c.query.projections.size(); ++i) {
      const ExprPtr& e = c.query.projections[i];
      DataType t = DataType::kInt64;
      if (e->kind() == Expr::Kind::kColumnRef) {
        for (const Field& f : schema.fields()) {
          if (f.name == e->column_name()) t = f.type;
        }
      } else {
        Result<DataType> rt = e->OutputType(schema);
        if (rt.ok()) t = rt.ValueOrDie();
      }
      agg_input_fields.push_back({c.query.projection_names[i], t});
    }
  }

  if (want_agg) {
    // Group by 0-2 low-cardinality columns (never the unique "id": a
    // group-per-row aggregate is a degenerate shape).
    std::vector<Field> groupable;
    for (const Field& f : agg_input_fields) {
      if (f.name != "id" && f.name != "e0" &&
          (f.type == DataType::kString || f.type == DataType::kInt32 ||
           f.type == DataType::kDate32)) {
        groupable.push_back(f);
      }
    }
    size_t groups = rng.NextUint64(3);
    groups = std::min(groups, groupable.size());
    for (size_t i = groupable.size(); i > 1; --i) {
      std::swap(groupable[i - 1], groupable[rng.NextUint64(i)]);
    }
    for (size_t i = 0; i < groups; ++i) {
      c.query.group_by.push_back(groupable[i].name);
    }
    const size_t num_aggs = 1 + rng.NextUint64(3);
    for (size_t i = 0; i < num_aggs; ++i) {
      AggSpec spec;
      spec.output_name = "a" + std::to_string(i);
      const uint64_t pick = rng.NextUint64(4);
      if (pick == 0) {
        spec.func = AggFunc::kCount;
        spec.input = "";
      } else {
        // SUM needs a numeric input; MIN/MAX take anything comparable.
        std::vector<const Field*> candidates;
        for (const Field& f : agg_input_fields) {
          if (pick == 1 ? IsNumericType(f.type) : true) {
            candidates.push_back(&f);
          }
        }
        if (candidates.empty()) {
          spec.func = AggFunc::kCount;
          spec.input = "";
        } else {
          spec.func = pick == 1   ? AggFunc::kSum
                      : pick == 2 ? AggFunc::kMin
                                  : AggFunc::kMax;
          spec.input = candidates[rng.NextUint64(candidates.size())]->name;
        }
      }
      c.query.aggregates.push_back(std::move(spec));
    }
  }

  if (want_sort) {
    // Only the unique "id" column: a total order, so ORDER BY ... LIMIT
    // selects the same rows on every engine.
    SortSpec sort;
    sort.column = "id";
    sort.descending = rng.NextBool();
    if (rng.NextBool(0.5)) {
      sort.limit = 1 + rng.NextUint64(rows);
    }
    c.query.order_by = sort;
  }

  RebuildFilters(&c);
  return c;
}

verify::GraphSpec PlanGen::FeedbackSpec() {
  // source -> accum(stage) -> spread(broadcast) -> {sink, accum}: the
  // broadcast closes the loop back to the stage. The feedback hop has an
  // unbounded credit window, so the credit-deadlock analysis accepts it.
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  verify::GraphSpec spec;

  verify::NodeSpec source;
  source.id = 0;
  source.kind = verify::NodeKind::kSource;
  source.name = "scan";
  source.device = "cpu0";
  source.has_cost_class = true;
  source.cost_class = sim::CostClass::kScan;
  source.has_output_schema = true;
  source.output_schema = schema;
  spec.nodes.push_back(source);

  verify::NodeSpec accum;
  accum.id = 1;
  accum.kind = verify::NodeKind::kStage;
  accum.name = "accum";
  accum.device = "cpu0";
  accum.has_cost_class = true;
  accum.cost_class = sim::CostClass::kFilter;
  accum.has_input_schema = true;
  accum.input_schema = schema;
  accum.has_output_schema = true;
  accum.output_schema = schema;
  spec.nodes.push_back(accum);

  verify::NodeSpec spread;
  spread.id = 2;
  spread.kind = verify::NodeKind::kBroadcast;
  spread.name = "spread";
  spread.device = "cpu0";
  spread.has_cost_class = true;
  spread.cost_class = sim::CostClass::kMemcpy;
  spec.nodes.push_back(spread);

  verify::NodeSpec sink;
  sink.id = 3;
  sink.kind = verify::NodeKind::kSink;
  sink.name = "sink";
  spec.nodes.push_back(sink);

  auto edge = [](size_t from, size_t to, const std::string& label,
                 uint32_t credits, bool feedback) {
    verify::EdgeSpec e;
    e.from = from;
    e.to = to;
    e.label = label;
    e.credits = credits;
    e.feedback = feedback;
    e.hops = 0;
    return e;
  };
  spec.edges.push_back(edge(0, 1, "scan->accum", 8, false));
  spec.edges.push_back(edge(1, 2, "accum->spread", 8, false));
  spec.edges.push_back(edge(2, 3, "spread->sink", 8, false));
  spec.edges.push_back(
      edge(2, 1, "spread->accum", verify::kUnboundedCredits, true));
  return spec;
}

}  // namespace dflow::testing
