#ifndef DFLOW_TESTING_REPRO_H_
#define DFLOW_TESTING_REPRO_H_

#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/testing/diff_runner.h"
#include "dflow/testing/plan_gen.h"

namespace dflow::testing {

/// A self-contained, replayable record of one divergence ("dflow.repro.v1"):
/// everything is derived from seeds, so the JSON carries no table data —
/// just the generator/diff configuration, the shrink steps that minimized
/// the case, and the fingerprints the replay must reproduce.
struct Repro {
  std::string schema = "dflow.repro.v1";

  PlanGenOptions gen;
  uint64_t case_seed = 0;
  DiffOptions diff;

  /// Accepted shrink steps, applied in order after regeneration.
  std::vector<std::string> steps;

  /// The divergence message DiffRunner reported for the minimized case.
  std::string divergence;
  /// The Volcano reference fingerprint of the minimized case.
  std::string expected_fingerprint;
  /// CountStages() of the minimized case (shrink quality, human-facing).
  uint64_t num_stages = 0;
};

/// Deterministic writer: the same Repro always serializes byte-identically.
std::string ReproToJson(const Repro& repro);

Result<Repro> ReproFromJson(const std::string& json);

struct ReplayOutcome {
  GeneratedCase minimized;
  DiffResult diff;
  /// True when the replay diverged again AND the reference fingerprint
  /// matches the recorded one (byte-identical regeneration).
  bool reproduced = false;
};

/// Regenerates the case from its seed, re-applies the recorded shrink
/// steps, and re-runs the differential oracle.
Result<ReplayOutcome> ReplayRepro(const Repro& repro);

}  // namespace dflow::testing

#endif  // DFLOW_TESTING_REPRO_H_
