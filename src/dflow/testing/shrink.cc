#include "dflow/testing/shrink.h"

#include <algorithm>
#include <set>
#include <utility>

#include "dflow/storage/table.h"
#include "dflow/vector/data_chunk.h"

namespace dflow::testing {

namespace {

void CollectColumnNames(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kColumnRef) out->insert(e->column_name());
  for (const ExprPtr& child : e->children()) CollectColumnNames(child, out);
}

/// Table-schema column names the (single-table) plan resolves against. With
/// projections present, aggregates/group-by/order-by reference projection
/// *outputs*, so only the projection expressions touch table columns.
std::set<std::string> ReferencedTableColumns(const GeneratedCase& c) {
  std::set<std::string> refs;
  for (const ExprPtr& e : c.filter_conjuncts) CollectColumnNames(e, &refs);
  if (!c.query.projections.empty()) {
    for (const ExprPtr& e : c.query.projections) CollectColumnNames(e, &refs);
    return refs;
  }
  for (const AggSpec& agg : c.query.aggregates) {
    if (!agg.input.empty()) refs.insert(agg.input);
  }
  for (const std::string& g : c.query.group_by) refs.insert(g);
  if (c.query.order_by.has_value()) refs.insert(c.query.order_by->column);
  return refs;
}

/// Projection-output names consumed downstream (aggregates, group-by, sort).
std::set<std::string> ReferencedProjectionOutputs(const GeneratedCase& c) {
  std::set<std::string> refs;
  for (const AggSpec& agg : c.query.aggregates) {
    if (!agg.input.empty()) refs.insert(agg.input);
  }
  for (const std::string& g : c.query.group_by) refs.insert(g);
  if (c.query.order_by.has_value()) refs.insert(c.query.order_by->column);
  return refs;
}

bool IsSelectAll(const QuerySpec& q) {
  return q.projections.empty() && q.aggregates.empty() && q.group_by.empty() &&
         !q.count_only;
}

Result<std::shared_ptr<Table>> RebuildDropColumn(const Table& table,
                                                 const std::string& column) {
  std::vector<size_t> keep;
  std::vector<Field> fields;
  for (size_t i = 0; i < table.schema().num_fields(); ++i) {
    const Field& f = table.schema().field(i);
    if (f.name == column) continue;
    keep.push_back(i);
    fields.push_back(f);
  }
  if (keep.size() == table.schema().num_fields()) {
    return Status::InvalidArgument("no column named " + column);
  }
  if (fields.empty()) {
    return Status::InvalidArgument("cannot drop the last column");
  }
  DFLOW_ASSIGN_OR_RETURN(std::vector<DataChunk> chunks, table.ToChunks());
  TableBuilder builder(table.name(), Schema(fields));
  for (const DataChunk& chunk : chunks) {
    DFLOW_RETURN_NOT_OK(builder.Append(chunk.SelectColumns(keep)));
  }
  DFLOW_ASSIGN_OR_RETURN(Table rebuilt, builder.Finish());
  return std::make_shared<Table>(std::move(rebuilt));
}

Result<std::shared_ptr<Table>> RebuildHalveRows(const Table& table) {
  if (table.num_rows() <= 1) {
    return Status::InvalidArgument("table already minimal");
  }
  const uint64_t target = table.num_rows() / 2;
  DFLOW_ASSIGN_OR_RETURN(std::vector<DataChunk> chunks, table.ToChunks());
  TableBuilder builder(table.name(), table.schema());
  uint64_t taken = 0;
  for (const DataChunk& chunk : chunks) {
    if (taken >= target) break;
    const size_t want =
        std::min<uint64_t>(chunk.num_rows(), target - taken);
    if (want == chunk.num_rows()) {
      DFLOW_RETURN_NOT_OK(builder.Append(chunk));
    } else {
      SelectionVector sel;
      for (size_t r = 0; r < want; ++r) {
        sel.Append(static_cast<uint32_t>(r));
      }
      DFLOW_RETURN_NOT_OK(builder.Append(chunk.Gather(sel)));
    }
    taken += want;
  }
  DFLOW_ASSIGN_OR_RETURN(Table rebuilt, builder.Finish());
  return std::make_shared<Table>(std::move(rebuilt));
}

Result<size_t> FindTable(const GeneratedCase& c, const std::string& name) {
  for (size_t i = 0; i < c.tables.size(); ++i) {
    if (c.tables[i]->name() == name) return i;
  }
  return Status::InvalidArgument("no table named " + name);
}

/// Parses "prefix:<index>"; returns false when `step` has another shape.
bool ParseIndexed(const std::string& step, const std::string& prefix,
                  size_t* index) {
  if (step.rfind(prefix + ":", 0) != 0) return false;
  const std::string tail = step.substr(prefix.size() + 1);
  if (tail.empty() ||
      tail.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *index = static_cast<size_t>(std::stoull(tail));
  return true;
}

}  // namespace

Result<GeneratedCase> ApplyShrinkStep(const GeneratedCase& c,
                                      const std::string& step) {
  GeneratedCase out = c;
  size_t index = 0;

  if (step == "drop_order_by") {
    if (!out.query.order_by.has_value()) {
      return Status::InvalidArgument("no order_by");
    }
    out.query.order_by.reset();
    return out;
  }
  if (step == "drop_order_limit") {
    if (!out.query.order_by.has_value() || out.query.order_by->limit == 0) {
      return Status::InvalidArgument("no order limit");
    }
    out.query.order_by->limit = 0;
    return out;
  }
  if (step == "drop_count_only") {
    if (!out.query.count_only) return Status::InvalidArgument("not count_only");
    out.query.count_only = false;
    return out;
  }
  if (step == "drop_aggregates") {
    if (out.query.aggregates.empty()) {
      return Status::InvalidArgument("no aggregates");
    }
    out.query.aggregates.clear();
    out.query.group_by.clear();
    return out;
  }
  if (ParseIndexed(step, "drop_aggregate", &index)) {
    // Keep at least one aggregate; drop_aggregates removes the whole clause.
    if (out.query.aggregates.size() < 2 ||
        index >= out.query.aggregates.size()) {
      return Status::InvalidArgument("aggregate index out of range");
    }
    out.query.aggregates.erase(out.query.aggregates.begin() + index);
    return out;
  }
  if (step == "drop_group_by") {
    if (out.query.group_by.empty()) return Status::InvalidArgument("no groups");
    out.query.group_by.clear();
    return out;
  }
  if (ParseIndexed(step, "drop_group_by", &index)) {
    if (index >= out.query.group_by.size()) {
      return Status::InvalidArgument("group index out of range");
    }
    out.query.group_by.erase(out.query.group_by.begin() + index);
    return out;
  }
  if (step == "drop_projections") {
    if (out.query.projections.empty()) {
      return Status::InvalidArgument("no projections");
    }
    // Aggregates/group-by resolve against projection outputs; sorting is
    // fine without the projection because "id" is a scanned column too.
    if (!out.query.aggregates.empty() || !out.query.group_by.empty()) {
      return Status::InvalidArgument("projections feed the aggregation");
    }
    out.query.projections.clear();
    out.query.projection_names.clear();
    return out;
  }
  if (ParseIndexed(step, "drop_projection", &index)) {
    if (out.query.projections.size() < 2 ||
        index >= out.query.projections.size()) {
      return Status::InvalidArgument("projection index out of range");
    }
    const std::set<std::string> used = ReferencedProjectionOutputs(c);
    if (used.count(out.query.projection_names[index]) > 0) {
      return Status::InvalidArgument("projection output is referenced");
    }
    out.query.projections.erase(out.query.projections.begin() + index);
    out.query.projection_names.erase(out.query.projection_names.begin() +
                                     index);
    return out;
  }
  if (ParseIndexed(step, "drop_filter_conjunct", &index)) {
    if (index >= out.filter_conjuncts.size()) {
      return Status::InvalidArgument("conjunct index out of range");
    }
    out.filter_conjuncts.erase(out.filter_conjuncts.begin() + index);
    RebuildFilters(&out);
    return out;
  }
  if (step == "drop_probe_filter") {
    if (out.probe_filter_conjuncts.empty()) {
      return Status::InvalidArgument("no probe filter");
    }
    out.probe_filter_conjuncts.clear();
    RebuildFilters(&out);
    return out;
  }
  if (ParseIndexed(step, "drop_probe_filter_conjunct", &index)) {
    if (index >= out.probe_filter_conjuncts.size()) {
      return Status::InvalidArgument("probe conjunct index out of range");
    }
    out.probe_filter_conjuncts.erase(out.probe_filter_conjuncts.begin() +
                                     index);
    RebuildFilters(&out);
    return out;
  }
  if (step.rfind("drop_column:", 0) == 0) {
    const std::string rest = step.substr(std::string("drop_column:").size());
    const size_t sep = rest.find(':');
    if (sep == std::string::npos) {
      return Status::InvalidArgument("malformed drop_column step");
    }
    const std::string table_name = rest.substr(0, sep);
    const std::string column = rest.substr(sep + 1);
    if (column == "id") {
      return Status::InvalidArgument("the id column is load-bearing");
    }
    if (c.is_join) {
      return Status::InvalidArgument("join scans prune columns themselves");
    }
    if (ReferencedTableColumns(c).count(column) > 0) {
      return Status::InvalidArgument("column is referenced by the plan");
    }
    DFLOW_ASSIGN_OR_RETURN(size_t t, FindTable(c, table_name));
    DFLOW_ASSIGN_OR_RETURN(out.tables[t],
                           RebuildDropColumn(*c.tables[t], column));
    return out;
  }
  if (step.rfind("halve_rows:", 0) == 0) {
    const std::string table_name =
        step.substr(std::string("halve_rows:").size());
    DFLOW_ASSIGN_OR_RETURN(size_t t, FindTable(c, table_name));
    DFLOW_ASSIGN_OR_RETURN(out.tables[t], RebuildHalveRows(*c.tables[t]));
    return out;
  }
  return Status::InvalidArgument("unknown shrink step: " + step);
}

std::vector<std::string> EnumerateShrinkSteps(const GeneratedCase& c) {
  std::vector<std::string> steps;
  if (c.is_join) {
    if (!c.probe_filter_conjuncts.empty()) {
      steps.push_back("drop_probe_filter");
      for (size_t i = 0; i < c.probe_filter_conjuncts.size(); ++i) {
        steps.push_back("drop_probe_filter_conjunct:" + std::to_string(i));
      }
    }
    for (const auto& table : c.tables) {
      if (table->num_rows() > 1) {
        steps.push_back("halve_rows:" + table->name());
      }
    }
    return steps;
  }

  if (c.query.order_by.has_value()) {
    steps.push_back("drop_order_by");
    if (c.query.order_by->limit > 0) steps.push_back("drop_order_limit");
  }
  if (c.query.count_only) steps.push_back("drop_count_only");
  if (!c.query.aggregates.empty()) {
    steps.push_back("drop_aggregates");
    if (c.query.aggregates.size() > 1) {
      for (size_t i = 0; i < c.query.aggregates.size(); ++i) {
        steps.push_back("drop_aggregate:" + std::to_string(i));
      }
    }
  }
  if (!c.query.group_by.empty()) {
    steps.push_back("drop_group_by");
    for (size_t i = 0; i < c.query.group_by.size(); ++i) {
      steps.push_back("drop_group_by:" + std::to_string(i));
    }
  }
  if (!c.query.projections.empty()) {
    steps.push_back("drop_projections");
    if (c.query.projections.size() > 1) {
      const std::set<std::string> used = ReferencedProjectionOutputs(c);
      for (size_t i = 0; i < c.query.projections.size(); ++i) {
        if (used.count(c.query.projection_names[i]) == 0) {
          steps.push_back("drop_projection:" + std::to_string(i));
        }
      }
    }
  }
  for (size_t i = 0; i < c.filter_conjuncts.size(); ++i) {
    steps.push_back("drop_filter_conjunct:" + std::to_string(i));
  }
  if (IsSelectAll(c.query) && !c.tables.empty()) {
    const std::set<std::string> refs = ReferencedTableColumns(c);
    const Table& table = *c.tables[0];
    if (table.schema().num_fields() > 1) {
      for (const Field& f : table.schema().fields()) {
        if (f.name != "id" && refs.count(f.name) == 0) {
          steps.push_back("drop_column:" + table.name() + ":" + f.name);
        }
      }
    }
  }
  for (const auto& table : c.tables) {
    if (table->num_rows() > 1) {
      steps.push_back("halve_rows:" + table->name());
    }
  }
  return steps;
}

ShrinkResult Shrink(const GeneratedCase& c, const ShrinkOracle& oracle,
                    size_t max_oracle_runs) {
  ShrinkResult result;
  result.minimized = c;
  bool progress = true;
  while (progress && result.oracle_runs < max_oracle_runs) {
    progress = false;
    for (const std::string& step : EnumerateShrinkSteps(result.minimized)) {
      Result<GeneratedCase> candidate =
          ApplyShrinkStep(result.minimized, step);
      if (!candidate.ok()) continue;
      if (result.oracle_runs >= max_oracle_runs) break;
      ++result.oracle_runs;
      if (oracle(candidate.ValueOrDie())) {
        result.minimized = std::move(candidate).ValueOrDie();
        result.applied_steps.push_back(step);
        progress = true;
        break;  // restart from the coarsest step on the smaller case
      }
    }
  }
  return result;
}

}  // namespace dflow::testing
