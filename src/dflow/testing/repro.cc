#include "dflow/testing/repro.h"

#include <cstdio>

#include "dflow/testing/shrink.h"
#include "dflow/trace/json.h"

namespace dflow::testing {

namespace {

std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

Status MissingField(const std::string& name) {
  return Status::InvalidArgument("repro JSON missing field: " + name);
}

}  // namespace

std::string ReproToJson(const Repro& repro) {
  std::string out = "{\n";
  out += "  \"schema\": " + trace::JsonQuote(repro.schema) + ",\n";
  out += "  \"gen\": {\n";
  out += "    \"base_seed\": " + std::to_string(repro.gen.base_seed) + ",\n";
  out += "    \"min_rows\": " + std::to_string(repro.gen.min_rows) + ",\n";
  out += "    \"max_rows\": " + std::to_string(repro.gen.max_rows) + ",\n";
  out += "    \"max_extra_columns\": " +
         std::to_string(repro.gen.max_extra_columns) + ",\n";
  out += "    \"join_probability\": " +
         FormatDouble(repro.gen.join_probability) + ",\n";
  out += "    \"count_only_probability\": " +
         FormatDouble(repro.gen.count_only_probability) + "\n";
  out += "  },\n";
  out += "  \"case_seed\": " + std::to_string(repro.case_seed) + ",\n";
  out += "  \"diff\": {\n";
  out += "    \"placement_samples\": " +
         std::to_string(repro.diff.placement_samples) + ",\n";
  out += std::string("    \"sample_faults\": ") +
         (repro.diff.sample_faults ? "true" : "false") + ",\n";
  out += "    \"inject_bug\": " +
         trace::JsonQuote(std::string(BugKindToString(repro.diff.inject_bug))) +
         ",\n";
  out += "    \"pool_pages\": " + std::to_string(repro.diff.pool_pages) + ",\n";
  out += std::string("    \"chaos_serve\": ") +
         (repro.diff.chaos_serve ? "true" : "false") + ",\n";
  out += std::string("    \"real_parallel\": ") +
         (repro.diff.real_parallel ? "true" : "false") + ",\n";
  out += std::string("    \"compiled\": ") +
         (repro.diff.compiled ? "true" : "false") + ",\n";
  out += std::string("    \"cluster\": ") +
         (repro.diff.cluster ? "true" : "false") + ",\n";
  out += "    \"cluster_node_counts\": [";
  for (size_t i = 0; i < repro.diff.cluster_node_counts.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(repro.diff.cluster_node_counts[i]);
  }
  out += "]\n";
  out += "  },\n";
  out += "  \"steps\": [";
  for (size_t i = 0; i < repro.steps.size(); ++i) {
    if (i > 0) out += ", ";
    out += trace::JsonQuote(repro.steps[i]);
  }
  out += "],\n";
  out += "  \"divergence\": " + trace::JsonQuote(repro.divergence) + ",\n";
  out += "  \"expected_fingerprint\": " +
         trace::JsonQuote(repro.expected_fingerprint) + ",\n";
  out += "  \"num_stages\": " + std::to_string(repro.num_stages) + "\n";
  out += "}\n";
  return out;
}

Result<Repro> ReproFromJson(const std::string& json) {
  DFLOW_ASSIGN_OR_RETURN(trace::JsonValue root, trace::ParseJson(json));
  Repro repro;

  const trace::JsonValue* schema = root.Find("schema");
  if (schema == nullptr) return MissingField("schema");
  repro.schema = schema->AsString();
  if (repro.schema != "dflow.repro.v1") {
    return Status::InvalidArgument("unsupported repro schema: " + repro.schema);
  }

  const trace::JsonValue* gen = root.Find("gen");
  if (gen == nullptr) return MissingField("gen");
  auto read_u64 = [](const trace::JsonValue& obj, const std::string& key,
                     uint64_t* out) -> Status {
    const trace::JsonValue* v = obj.Find(key);
    if (v == nullptr) return MissingField(key);
    *out = v->AsUInt64();
    return Status::OK();
  };
  uint64_t u = 0;
  DFLOW_RETURN_NOT_OK(read_u64(*gen, "base_seed", &repro.gen.base_seed));
  DFLOW_RETURN_NOT_OK(read_u64(*gen, "min_rows", &u));
  repro.gen.min_rows = u;
  DFLOW_RETURN_NOT_OK(read_u64(*gen, "max_rows", &u));
  repro.gen.max_rows = u;
  DFLOW_RETURN_NOT_OK(read_u64(*gen, "max_extra_columns", &u));
  repro.gen.max_extra_columns = u;
  const trace::JsonValue* jp = gen->Find("join_probability");
  if (jp == nullptr) return MissingField("join_probability");
  repro.gen.join_probability = jp->AsDouble();
  const trace::JsonValue* cp = gen->Find("count_only_probability");
  if (cp == nullptr) return MissingField("count_only_probability");
  repro.gen.count_only_probability = cp->AsDouble();

  DFLOW_RETURN_NOT_OK(read_u64(root, "case_seed", &repro.case_seed));

  const trace::JsonValue* diff = root.Find("diff");
  if (diff == nullptr) return MissingField("diff");
  DFLOW_RETURN_NOT_OK(read_u64(*diff, "placement_samples", &u));
  repro.diff.placement_samples = u;
  const trace::JsonValue* sf = diff->Find("sample_faults");
  if (sf == nullptr) return MissingField("sample_faults");
  repro.diff.sample_faults = sf->AsBool();
  const trace::JsonValue* bug = diff->Find("inject_bug");
  if (bug == nullptr) return MissingField("inject_bug");
  DFLOW_ASSIGN_OR_RETURN(repro.diff.inject_bug,
                         BugKindFromString(bug->AsString()));
  DFLOW_RETURN_NOT_OK(read_u64(*diff, "pool_pages", &u));
  repro.diff.pool_pages = u;
  // Optional (added with the chaos-serve lane): absent in older repro
  // files, which must stay replayable.
  const trace::JsonValue* chaos = diff->Find("chaos_serve");
  if (chaos != nullptr) repro.diff.chaos_serve = chaos->AsBool();
  // Optional (added with the real-parallel lanes): same compatibility rule.
  const trace::JsonValue* par = diff->Find("real_parallel");
  if (par != nullptr) repro.diff.real_parallel = par->AsBool();
  // Optional (added with the compiled-program lanes): same rule again.
  const trace::JsonValue* compiled = diff->Find("compiled");
  if (compiled != nullptr) repro.diff.compiled = compiled->AsBool();
  // Optional (added with the cluster lanes): same rule; the node-count
  // list round-trips so a distributed divergence replays at the exact
  // cluster shape that caught it.
  const trace::JsonValue* cl = diff->Find("cluster");
  if (cl != nullptr) repro.diff.cluster = cl->AsBool();
  const trace::JsonValue* cnc = diff->Find("cluster_node_counts");
  if (cnc != nullptr) {
    repro.diff.cluster_node_counts.clear();
    for (const trace::JsonValue& v : cnc->AsArray()) {
      repro.diff.cluster_node_counts.push_back(
          static_cast<int>(v.AsUInt64()));
    }
  }

  const trace::JsonValue* steps = root.Find("steps");
  if (steps == nullptr) return MissingField("steps");
  for (const trace::JsonValue& s : steps->AsArray()) {
    repro.steps.push_back(s.AsString());
  }

  const trace::JsonValue* divergence = root.Find("divergence");
  if (divergence != nullptr) repro.divergence = divergence->AsString();
  const trace::JsonValue* fp = root.Find("expected_fingerprint");
  if (fp != nullptr) repro.expected_fingerprint = fp->AsString();
  const trace::JsonValue* ns = root.Find("num_stages");
  if (ns != nullptr) repro.num_stages = ns->AsUInt64();

  return repro;
}

Result<ReplayOutcome> ReplayRepro(const Repro& repro) {
  ReplayOutcome outcome;
  PlanGen gen(repro.gen);
  outcome.minimized = gen.Generate(repro.case_seed);
  for (const std::string& step : repro.steps) {
    DFLOW_ASSIGN_OR_RETURN(outcome.minimized,
                           ApplyShrinkStep(outcome.minimized, step));
  }
  DiffRunner runner(repro.diff);
  DFLOW_ASSIGN_OR_RETURN(outcome.diff, runner.Run(outcome.minimized));
  outcome.reproduced =
      outcome.diff.diverged &&
      (repro.expected_fingerprint.empty() ||
       outcome.diff.reference_fingerprint == repro.expected_fingerprint);
  return outcome;
}

}  // namespace dflow::testing
