#include "dflow/testing/canonical.h"

#include <algorithm>
#include <cstdio>

namespace dflow::testing {

namespace {

const char* TypeTag(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "b";
    case DataType::kInt32:
      return "i32";
    case DataType::kInt64:
      return "i64";
    case DataType::kDouble:
      return "f64";
    case DataType::kString:
      return "str";
    case DataType::kDate32:
      return "d32";
  }
  return "?";
}

CanonicalResult Finish(size_t num_columns, std::vector<std::string> rows) {
  std::sort(rows.begin(), rows.end());
  CanonicalResult result;
  result.num_columns = num_columns;
  result.rows = std::move(rows);

  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a/64
  auto mix = [&h](const char* data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 0x100000001b3ULL;
    }
  };
  const std::string header = "cols=" + std::to_string(num_columns) + "\n";
  mix(header.data(), header.size());
  for (const std::string& r : result.rows) {
    mix(r.data(), r.size());
    mix("\n", 1);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  result.fingerprint = buf;
  return result;
}

}  // namespace

std::string FormatValueTagged(const Value& v) {
  std::string out = TypeTag(v.type());
  out += ":";
  if (v.is_null()) {
    out += "null";
    return out;
  }
  if (v.type() == DataType::kDouble) {
    double d = v.double_value();
    if (d == 0.0) d = 0.0;  // normalize -0.0
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
    return out;
  }
  out += v.ToString();
  return out;
}

CanonicalResult CanonicalizeChunks(const std::vector<DataChunk>& chunks) {
  size_t num_columns = 0;
  std::vector<std::string> rows;
  for (const DataChunk& chunk : chunks) {
    num_columns = std::max(num_columns, chunk.num_columns());
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        if (c > 0) row += "|";
        row += FormatValueTagged(chunk.column(c).GetValue(r));
      }
      rows.push_back(std::move(row));
    }
  }
  return Finish(num_columns, std::move(rows));
}

CanonicalResult CanonicalizeVolcanoRows(const std::vector<volcano::Row>& rows) {
  size_t num_columns = 0;
  std::vector<std::string> out;
  for (const volcano::Row& r : rows) {
    num_columns = std::max(num_columns, r.size());
    std::string row;
    for (size_t c = 0; c < r.size(); ++c) {
      if (c > 0) row += "|";
      row += FormatValueTagged(r[c]);
    }
    out.push_back(std::move(row));
  }
  return Finish(num_columns, std::move(out));
}

CanonicalResult CanonicalizeCount(int64_t count) {
  return Finish(1, {FormatValueTagged(Value::Int64(count))});
}

}  // namespace dflow::testing
