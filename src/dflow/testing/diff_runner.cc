#include "dflow/testing/diff_runner.h"

#include <algorithm>
#include <utility>

#include "dflow/cluster/cluster.h"
#include "dflow/cluster/router.h"
#include "dflow/engine/engine.h"
#include "dflow/exec/test_hooks.h"
#include "dflow/serve/service_loop.h"
#include "dflow/sim/fault.h"

namespace dflow::testing {

namespace {

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL + b;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Arms the flag-guarded operator bug for the lifetime of one dataflow
/// lane. The Volcano reference always runs clean.
class BugGuard {
 public:
  explicit BugGuard(BugKind kind) {
    if (kind == BugKind::kFilterDropFirstRow) {
      test_hooks::g_filter_drop_first_row = true;
    }
  }
  ~BugGuard() { test_hooks::g_filter_drop_first_row = false; }
  BugGuard(const BugGuard&) = delete;
  BugGuard& operator=(const BugGuard&) = delete;
};

sim::FabricConfig MakeConfig() {
  sim::FabricConfig config;
  // Partitioned joins need a second compute node; harmless otherwise.
  config.num_compute_nodes = 2;
  return config;
}

sim::FaultConfig MakeFaultConfig(uint64_t case_seed) {
  sim::FaultConfig fc;
  fc.seed = MixSeed(case_seed, 0xfa17ULL);
  fc.drop_prob = 0.02;
  fc.corrupt_prob = 0.02;
  fc.stall_prob = 0.05;
  fc.storage_error_prob = 0.01;
  return fc;
}

Status RegisterTables(Engine* engine, const GeneratedCase& c) {
  for (const auto& table : c.tables) {
    DFLOW_RETURN_NOT_OK(engine->catalog().Register(table));
  }
  return Status::OK();
}

}  // namespace

std::string_view BugKindToString(BugKind k) {
  switch (k) {
    case BugKind::kNone:
      return "none";
    case BugKind::kFilterDropFirstRow:
      return "filter_drop_first_row";
  }
  return "none";
}

Result<BugKind> BugKindFromString(const std::string& text) {
  if (text.empty() || text == "none") return BugKind::kNone;
  if (text == "filter_drop_first_row") return BugKind::kFilterDropFirstRow;
  return Status::InvalidArgument("unknown bug kind: " + text);
}

DiffRunner::DiffRunner(DiffOptions options) : options_(options) {}

Result<DiffResult> DiffRunner::Run(const GeneratedCase& c) const {
  DiffResult out;

  auto add_lane = [&out](std::string lane, const CanonicalResult& canon,
                         uint64_t sim_ns) -> LaneResult& {
    LaneResult lr;
    lr.lane = std::move(lane);
    lr.fingerprint = canon.fingerprint;
    lr.rows = canon.rows.size();
    lr.sim_ns = sim_ns;
    out.lanes.push_back(std::move(lr));
    return out.lanes.back();
  };
  auto add_failure = [&out](std::string lane, const Status& status) {
    LaneResult lr;
    lr.lane = std::move(lane);
    lr.failed = true;
    lr.error = status.message();
    out.lanes.push_back(std::move(lr));
  };
  auto note_divergence = [&out](const std::string& what) {
    if (!out.diverged) {
      out.diverged = true;
      out.divergence = what;
    }
  };
  auto check_lane = [&](const LaneResult& lane, bool fault_free,
                        const ExecutionReport& report) {
    if (!out.reference_fingerprint.empty() &&
        lane.fingerprint != out.reference_fingerprint) {
      note_divergence("lane '" + lane.lane + "' fingerprint " +
                      lane.fingerprint + " != volcano reference " +
                      out.reference_fingerprint);
    }
    if (report.sim_ns == 0) {
      note_divergence("lane '" + lane.lane + "' reported sim_ns == 0");
    }
    if (report.verify.num_errors() > 0) {
      note_divergence("lane '" + lane.lane + "' had verifier errors");
    }
    if (fault_free && report.fault.Any()) {
      note_divergence("lane '" + lane.lane +
                      "' saw fault activity on a fault-free fabric");
    }
  };

  // --- Cluster lanes: the distributed plan vs. the single-node truth. ----
  // Tables are hash-sharded over N independent fabrics and the query runs
  // through the router's exchange lowering (local fragments, shuffle /
  // broadcast / gather, merge-at-coordinator). The coordinator's result
  // must fingerprint identically to the Volcano reference at every node
  // count — and under lossy inter-node links, where checksummed
  // retransmission has to reconstruct the exact same frames.
  auto run_cluster_lane = [&](int n, bool lossy) {
    const std::string lane_name =
        lossy ? "cluster:faults" : "cluster:n" + std::to_string(n);
    cluster::ClusterConfig cc;
    cc.num_nodes = n;
    cc.seed = MixSeed(c.seed, 0xc105ULL + static_cast<uint64_t>(n));
    if (lossy) {
      cc.fault.xlink_drop_probability = 0.05;
      cc.fault.xlink_corrupt_probability = 0.05;
    }
    cluster::Cluster cl(cc);
    for (const auto& table : c.tables) {
      Status st = cl.RegisterSharded(table);
      if (!st.ok()) {
        add_failure(lane_name, st);
        note_divergence("lane '" + lane_name + "' failed: " + st.message());
        return;
      }
    }
    if (lossy) cl.ArmLinkFaults();
    cluster::RouterOptions ro;
    ro.verify = verify::VerifyMode::kStrict;
    // A seed-derived half of join cases take the broadcast-build path.
    if (c.is_join && MixSeed(c.seed, 0xb40adULL) % 2 == 0) {
      ro.broadcast_build_max_rows = ~0ULL;
    }
    cluster::QueryRouter router(&cl, ro);
    auto r =
        c.is_join ? router.ExecuteJoin(c.join) : router.ExecuteQuery(c.query);
    if (!r.ok()) {
      add_failure(lane_name, r.status());
      note_divergence("lane '" + lane_name +
                      "' failed: " + r.status().message());
      return;
    }
    const cluster::DistributedResult& dr = r.ValueOrDie();
    if (dr.outcome != "DONE") {
      // Lossy links may legitimately exhaust a frame's retry budget; any
      // other non-DONE outcome is a divergence (nothing was scheduled to
      // fail).
      if (!(lossy && dr.outcome == "RETRY_EXHAUSTED")) {
        note_divergence("lane '" + lane_name + "' outcome " + dr.outcome);
      }
      return;
    }
    CanonicalResult canon = c.is_join ? CanonicalizeCount(dr.total_rows)
                                      : CanonicalizeChunks(dr.chunks);
    LaneResult& lane = add_lane(lane_name, canon,
                                static_cast<uint64_t>(dr.makespan_ns));
    if (lane.fingerprint != out.reference_fingerprint) {
      note_divergence("lane '" + lane_name + "' fingerprint " +
                      lane.fingerprint + " != volcano reference " +
                      out.reference_fingerprint);
    }
    if (dr.verify.num_errors() > 0) {
      note_divergence("lane '" + lane_name + "' had exchange-verifier errors");
    }
  };
  auto run_cluster_lanes = [&] {
    if (!options_.cluster || options_.cluster_node_counts.empty()) return;
    for (int n : options_.cluster_node_counts) {
      run_cluster_lane(n, /*lossy=*/false);
    }
    if (options_.sample_faults) {
      run_cluster_lane(*std::max_element(options_.cluster_node_counts.begin(),
                                         options_.cluster_node_counts.end()),
                       /*lossy=*/true);
    }
  };

  const sim::FabricConfig config = MakeConfig();

  // --- Lane 0: the Volcano reference (never sees the injected bug). ------
  Engine engine(config);
  DFLOW_RETURN_NOT_OK(RegisterTables(&engine, c));

  if (c.is_join) {
    VolcanoRunner volcano(config);
    auto ref = volcano.RunJoinCount(engine.catalog(), c.join,
                                    options_.pool_pages);
    if (!ref.ok()) {
      add_failure("volcano", ref.status());
      note_divergence("volcano reference failed: " + ref.status().message());
      return out;
    }
    CanonicalResult canon = CanonicalizeVolcanoRows(ref.ValueOrDie().rows);
    out.reference_fingerprint = canon.fingerprint;
    add_lane("volcano", canon, static_cast<uint64_t>(ref.ValueOrDie().sim_ns));
  } else {
    auto ref = engine.ExecuteOnVolcano(c.query, options_.pool_pages);
    if (!ref.ok()) {
      add_failure("volcano", ref.status());
      note_divergence("volcano reference failed: " + ref.status().message());
      return out;
    }
    CanonicalResult canon = CanonicalizeVolcanoRows(ref.ValueOrDie().rows);
    out.reference_fingerprint = canon.fingerprint;
    add_lane("volcano", canon, static_cast<uint64_t>(ref.ValueOrDie().sim_ns));
  }

  // --- Dataflow lanes (bug-injected when requested). ---------------------
  BugGuard guard(options_.inject_bug);
  ExecOptions strict;
  strict.verify = verify::VerifyMode::kStrict;

  if (c.is_join) {
    auto run_join = [&](const std::string& lane_name, Engine* eng,
                        bool fault_free) {
      auto r = eng->ExecutePartitionedJoin(c.join, strict);
      if (!r.ok()) {
        add_failure(lane_name, r.status());
        note_divergence("lane '" + lane_name +
                        "' failed: " + r.status().message());
        return;
      }
      CanonicalResult canon = CanonicalizeCount(r.ValueOrDie().total_rows);
      LaneResult& lane =
          add_lane(lane_name, canon, static_cast<uint64_t>(r.ValueOrDie().report.sim_ns));
      check_lane(lane, fault_free, r.ValueOrDie().report);
    };

    run_join("dataflow", &engine, /*fault_free=*/true);

    // Real-thread lanes: the same join on the morsel-driven executor.
    // Wall-clock execution has no simulated time and no fabric, so only
    // result equality is checked.
    if (options_.real_parallel) {
      for (uint32_t workers : options_.parallel_worker_counts) {
        ExecOptions par = strict;
        par.mode = ExecMode::kParallel;
        par.parallel_workers = workers;
        par.verify = verify::VerifyMode::kOff;  // no graph to verify
        const std::string lane_name =
            "real-parallel:w" + std::to_string(workers);
        auto r = engine.ExecutePartitionedJoin(c.join, par);
        if (!r.ok()) {
          add_failure(lane_name, r.status());
          note_divergence("lane '" + lane_name +
                          "' failed: " + r.status().message());
          continue;
        }
        CanonicalResult canon = CanonicalizeCount(r.ValueOrDie().total_rows);
        LaneResult& lane = add_lane(lane_name, canon, /*sim_ns=*/0);
        if (lane.fingerprint != out.reference_fingerprint) {
          note_divergence("lane '" + lane_name + "' fingerprint " +
                          lane.fingerprint + " != volcano reference " +
                          out.reference_fingerprint);
        }
      }
    }

    if (options_.sample_faults) {
      Engine faulty(config);
      DFLOW_RETURN_NOT_OK(RegisterTables(&faulty, c));
      faulty.EnableFaultInjection(MakeFaultConfig(c.seed));
      run_join("faults", &faulty, /*fault_free=*/false);
    }
    run_cluster_lanes();
    return out;
  }

  auto run_query = [&](const std::string& lane_name, Engine* eng,
                       const ExecOptions& options, bool fault_free) {
    auto r = eng->Execute(c.query, options);
    if (!r.ok()) {
      add_failure(lane_name, r.status());
      note_divergence("lane '" + lane_name +
                      "' failed: " + r.status().message());
      return;
    }
    CanonicalResult canon = CanonicalizeChunks(r.ValueOrDie().chunks);
    LaneResult& lane =
        add_lane(lane_name, canon, static_cast<uint64_t>(r.ValueOrDie().report.sim_ns));
    if (r.ValueOrDie().report.result_rows != canon.rows.size()) {
      note_divergence("lane '" + lane_name + "' report.result_rows " +
                      std::to_string(r.ValueOrDie().report.result_rows) +
                      " != materialized rows " +
                      std::to_string(canon.rows.size()));
    }
    check_lane(lane, fault_free, r.ValueOrDie().report);
  };

  ExecOptions cpu_only = strict;
  cpu_only.placement = PlacementChoice::kCpuOnly;
  run_query("cpu_only", &engine, cpu_only, /*fault_free=*/true);

  // --- K placement variants, stride-sampled across the ranked list. ------
  if (options_.placement_samples > 0) {
    auto variants = engine.PlanVariants(c.query);
    if (!variants.ok()) {
      add_failure("variants", variants.status());
      note_divergence("PlanVariants failed: " + variants.status().message());
    } else if (!variants.ValueOrDie().empty()) {
      const size_t total = variants.ValueOrDie().size();
      const size_t take = std::min(options_.placement_samples, total);
      for (size_t i = 0; i < take; ++i) {
        const size_t pick = i * total / take;
        const Placement& placement = variants.ValueOrDie()[pick].placement;
        auto r = engine.ExecuteWithPlacement(c.query, placement, strict);
        const std::string lane_name = "variant:" + placement.name;
        if (!r.ok()) {
          add_failure(lane_name, r.status());
          note_divergence("lane '" + lane_name +
                          "' failed: " + r.status().message());
          continue;
        }
        CanonicalResult canon = CanonicalizeChunks(r.ValueOrDie().chunks);
        LaneResult& lane = add_lane(
            lane_name, canon,
            static_cast<uint64_t>(r.ValueOrDie().report.sim_ns));
        check_lane(lane, /*fault_free=*/true, r.ValueOrDie().report);
      }
    }
  }

  // --- Compiled-program lanes: compile once, execute the program. --------
  // The plan is lowered to an immutable DflowProgram (verified at compile
  // time under strict mode) and run through Engine::ExecuteProgram — the
  // admission path repeat queries take in the serving loop. Fused and
  // unfused compilations of the same plan must both match the Volcano
  // reference, which is the fused-vs-unfused equivalence check.
  if (options_.compiled) {
    auto run_compiled = [&](const std::string& lane_name, Engine* eng,
                            PlacementChoice choice, compile::FuseMode fuse,
                            bool fault_free) {
      auto prog = eng->Compile(c.query, choice, verify::VerifyMode::kStrict,
                               fuse);
      if (!prog.ok()) {
        add_failure(lane_name, prog.status());
        note_divergence("lane '" + lane_name +
                        "' failed to compile: " + prog.status().message());
        return;
      }
      auto r = eng->ExecuteProgram(*prog.ValueOrDie(), strict);
      if (!r.ok()) {
        add_failure(lane_name, r.status());
        note_divergence("lane '" + lane_name +
                        "' failed: " + r.status().message());
        return;
      }
      CanonicalResult canon = CanonicalizeChunks(r.ValueOrDie().chunks);
      LaneResult& lane = add_lane(
          lane_name, canon,
          static_cast<uint64_t>(r.ValueOrDie().report.sim_ns));
      if (r.ValueOrDie().report.result_rows != canon.rows.size()) {
        note_divergence("lane '" + lane_name + "' report.result_rows " +
                        std::to_string(r.ValueOrDie().report.result_rows) +
                        " != materialized rows " +
                        std::to_string(canon.rows.size()));
      }
      check_lane(lane, fault_free, r.ValueOrDie().report);
    };

    run_compiled("compiled:auto", &engine, PlacementChoice::kAuto,
                 compile::FuseMode::kOn, /*fault_free=*/true);
    run_compiled("compiled:cpu_only", &engine, PlacementChoice::kCpuOnly,
                 compile::FuseMode::kOn, /*fault_free=*/true);
    run_compiled("compiled:unfused", &engine, PlacementChoice::kAuto,
                 compile::FuseMode::kOff, /*fault_free=*/true);
    if (options_.sample_faults) {
      Engine cfaulty(config);
      DFLOW_RETURN_NOT_OK(RegisterTables(&cfaulty, c));
      cfaulty.EnableFaultInjection(MakeFaultConfig(MixSeed(c.seed, 0xcf17ULL)));
      run_compiled("compiled:faults", &cfaulty, PlacementChoice::kAuto,
                   compile::FuseMode::kOn, /*fault_free=*/false);
    }
  }

  // --- Real-parallel lanes: the morsel-driven work-stealing executor. ---
  // Run at several worker counts so single-worker (serial shape), the
  // minimal-contention case, and an oversubscribed pool all fingerprint
  // identically to the Volcano reference. No sim_ns / fault checks: this
  // mode runs on the host, not the modeled fabric.
  if (options_.real_parallel) {
    for (uint32_t workers : options_.parallel_worker_counts) {
      ExecOptions par = strict;
      par.mode = ExecMode::kParallel;
      par.parallel_workers = workers;
      par.verify = verify::VerifyMode::kOff;  // no graph to verify
      const std::string lane_name =
          "real-parallel:w" + std::to_string(workers);
      auto r = engine.Execute(c.query, par);
      if (!r.ok()) {
        add_failure(lane_name, r.status());
        note_divergence("lane '" + lane_name +
                        "' failed: " + r.status().message());
        continue;
      }
      CanonicalResult canon = CanonicalizeChunks(r.ValueOrDie().chunks);
      LaneResult& lane = add_lane(lane_name, canon, /*sim_ns=*/0);
      if (lane.fingerprint != out.reference_fingerprint) {
        note_divergence("lane '" + lane_name + "' fingerprint " +
                        lane.fingerprint + " != volcano reference " +
                        out.reference_fingerprint);
      }
      if (r.ValueOrDie().report.result_rows != canon.rows.size()) {
        note_divergence("lane '" + lane_name + "' report.result_rows " +
                        std::to_string(r.ValueOrDie().report.result_rows) +
                        " != materialized rows " +
                        std::to_string(canon.rows.size()));
      }
    }
  }

  // --- Fault-schedule lanes: recovery must reproduce the exact result. ---
  if (options_.sample_faults) {
    Engine faulty(config);
    DFLOW_RETURN_NOT_OK(RegisterTables(&faulty, c));
    faulty.EnableFaultInjection(MakeFaultConfig(c.seed));
    run_query("faults", &faulty, strict, /*fault_free=*/false);

    // A quarter of cases also lose an accelerator mid-query; degradation
    // to the CPU-only plan must still be exact.
    if (MixSeed(c.seed, 0xc8a54ULL) % 4 == 0) {
      Engine crashed(config);
      DFLOW_RETURN_NOT_OK(RegisterTables(&crashed, c));
      sim::FaultConfig quiet;
      quiet.seed = MixSeed(c.seed, 0xc8a55ULL);
      crashed.EnableFaultInjection(quiet);
      crashed.fault_injector()->CrashDeviceAt("storage_proc", 300'000);
      run_query("crash", &crashed, strict, /*fault_free=*/false);
    }
  }

  run_cluster_lanes();

  // --- Chaos-serve lane: the full lifecycle under fire. ------------------
  // The same query is served repeatedly through the service loop while a
  // flapping accelerator, random link faults, deadlines, an explicit
  // cancellation, breakers, and retries are all active. Completed queries
  // (retried or not) are held to the fault-free Volcano reference; other
  // terminal outcomes are legal, but every completion must be exact.
  if (options_.chaos_serve) {
    Engine chaotic(config);
    DFLOW_RETURN_NOT_OK(RegisterTables(&chaotic, c));
    sim::FaultConfig fc;
    fc.seed = MixSeed(c.seed, 0xc4a05ULL);
    fc.drop_prob = 0.01;
    fc.corrupt_prob = 0.01;
    fc.stall_prob = 0.02;
    chaotic.EnableFaultInjection(fc);
    chaotic.fault_injector()->CrashDeviceAt("storage_proc", 2'000'000);
    chaotic.fault_injector()->RestoreDeviceAt("storage_proc", 12'000'000);

    serve::TenantConfig tenant;
    tenant.name = "chaos";
    tenant.queue_capacity = 8;
    tenant.slot_ns = 1'500'000;
    tenant.arrival_probability = 0.6;
    tenant.deadline_ns = 25'000'000;
    tenant.templates = {{c.query, "case", 1}};

    serve::ServiceConfig sc;
    sc.seed = MixSeed(c.seed, 0x5e7eULL);
    sc.horizon_ns = 30'000'000;
    sc.placement = PlacementChoice::kAuto;
    sc.admission.global_max_in_flight = 2;
    sc.admission.global_queue_capacity = 8;
    sc.collect_results = true;
    sc.lifecycle.quarantine_on_crash = false;
    sc.lifecycle.breaker.enabled = true;
    sc.lifecycle.breaker.failure_threshold = 1;
    sc.lifecycle.breaker.cooldown_ns = 4'000'000;
    sc.lifecycle.retry.max_attempts = 2;
    sc.lifecycle.retry.retry_delivery_exhausted = true;
    sc.lifecycle.retry.backoff_base_ns = 250'000;
    sc.lifecycle.retry.jitter_seed = sc.seed;
    sc.lifecycle.retry.fallback_chain = {PlacementChoice::kCpuOnly,
                                         PlacementChoice::kCpuOnly};
    sc.cancel_schedule.push_back(serve::CancelRequest{8'000'000, 2});

    serve::ServiceLoop loop(&chaotic, {tenant}, sc);
    auto served = loop.Run();
    if (!served.ok()) {
      add_failure("chaos-serve", served.status());
      note_divergence("lane 'chaos-serve' failed: " +
                      served.status().message());
      return out;
    }
    const serve::ServiceResult& sr = served.ValueOrDie();
    uint64_t completions = 0;
    uint64_t retried_completions = 0;
    for (const serve::ServiceResult::QueryOutcome& q : sr.outcomes) {
      if (q.outcome != lifecycle::OutcomeCode::kDone) continue;
      ++completions;
      if (q.attempts > 1) ++retried_completions;
      CanonicalResult canon = CanonicalizeChunks(q.chunks);
      if (canon.fingerprint != out.reference_fingerprint) {
        note_divergence("lane 'chaos-serve' query " +
                        std::to_string(q.query_id) + " (attempts " +
                        std::to_string(q.attempts) + ") fingerprint " +
                        canon.fingerprint + " != volcano reference " +
                        out.reference_fingerprint);
      }
    }
    LaneResult lane;
    lane.lane = "chaos-serve";
    lane.fingerprint = out.reference_fingerprint;
    lane.rows = completions;
    lane.sim_ns = sr.service.makespan_ns;
    if (completions == 0 && sr.service.admitted_total > 0) {
      note_divergence("lane 'chaos-serve' admitted " +
                      std::to_string(sr.service.admitted_total) +
                      " queries but completed none");
    }
    (void)retried_completions;  // retried-exactness is the per-query check
    out.lanes.push_back(std::move(lane));
  }

  return out;
}

}  // namespace dflow::testing
