#ifndef DFLOW_TESTING_CANONICAL_H_
#define DFLOW_TESTING_CANONICAL_H_

#include <string>
#include <vector>

#include "dflow/types/value.h"
#include "dflow/vector/data_chunk.h"
#include "dflow/volcano/row.h"

namespace dflow::testing {

/// A result set reduced to an engine-independent form: each row rendered as
/// a schema-tagged string ("i64:42|str:alpha|f64:3.25"), rows sorted
/// lexicographically. Two executions computed the same answer iff their
/// canonical forms (and so their fingerprints) are equal — regardless of
/// chunk boundaries, row order, or which engine produced them.
struct CanonicalResult {
  size_t num_columns = 0;
  std::vector<std::string> rows;
  /// FNV-1a/64 over column count and sorted rows, hex-encoded. Stable
  /// across processes and platforms; recorded in repro JSON.
  std::string fingerprint;
};

/// One value as "<type-tag>:<repr>". Doubles print with %.17g after
/// normalizing -0.0 (round-trip exact); NULLs print as "<tag>:null".
std::string FormatValueTagged(const Value& v);

CanonicalResult CanonicalizeChunks(const std::vector<DataChunk>& chunks);
CanonicalResult CanonicalizeVolcanoRows(const std::vector<volcano::Row>& rows);

/// Canonical form of a bare row count (partitioned-join lanes compare a
/// single COUNT, not a row set).
CanonicalResult CanonicalizeCount(int64_t count);

}  // namespace dflow::testing

#endif  // DFLOW_TESTING_CANONICAL_H_
