#include "dflow/sim/dma.h"

#include <algorithm>

#include "dflow/common/logging.h"
#include "dflow/trace/tracer.h"

namespace dflow::sim {

DmaEngine::DmaEngine(std::string name, Link* link)
    : name_(std::move(name)), link_(link) {
  DFLOW_CHECK(link != nullptr);
}

void DmaEngine::SetRateLimitGbps(double gbps) {
  DFLOW_CHECK_GE(gbps, 0.0);
  rate_limit_gbps_ = gbps;
}

Link::Transfer DmaEngine::Transfer(SimTime ready, uint64_t bytes) {
  // The engine injects at its own (possibly limited) rate; the message then
  // takes the link, serializing with other flows.
  SimTime inject_ready = std::max(ready, next_free_);
  if (rate_limit_gbps_ > 0.0 &&
      rate_limit_gbps_ < link_->bandwidth_gbps()) {
    const SimTime pace =
        static_cast<SimTime>(static_cast<double>(bytes) / rate_limit_gbps_);
    next_free_ = inject_ready + pace;
  } else {
    next_free_ = inject_ready + link_->WireTimeNs(bytes);
  }
  bytes_transferred_ += bytes;
  DFLOW_TRACE(tracer_, Span("dma", name_, "inject", inject_ready, next_free_,
                            /*value=*/bytes));
  return link_->Reserve(inject_ready, bytes);
}

void DmaEngine::ResetStats() {
  next_free_ = 0;
  bytes_transferred_ = 0;
}

}  // namespace dflow::sim
