#include "dflow/sim/inter_node_link.h"

#include <algorithm>
#include <cmath>

#include "dflow/common/hash.h"
#include "dflow/trace/tracer.h"

namespace dflow::sim {
namespace {

/// Retransmission backoff base: one extra round trip per failed attempt,
/// doubling and capped — the same shape as the PR 1 edge-recovery policy,
/// re-used across node boundaries.
constexpr uint32_t kBackoffCapShift = 4;  // at most 16x the base backoff

}  // namespace

InterNodeLink::InterNodeLink(std::string name, double bandwidth_gbps,
                             SimTime latency_ns, uint32_t credits)
    : name_(std::move(name)),
      bandwidth_gbps_(bandwidth_gbps),
      latency_ns_(latency_ns),
      credits_(credits == 0 ? 1 : credits) {}

SimTime InterNodeLink::WireTimeNs(uint64_t bytes) const {
  if (bandwidth_gbps_ <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 8.0 / bandwidth_gbps_;
  return static_cast<SimTime>(std::llround(std::ceil(ns)));
}

InterNodeLink::Fate InterNodeLink::DecideFate(uint64_t frame_seq,
                                              uint32_t attempt) const {
  if (!faults_armed_) return Fate::kDelivered;
  uint64_t h = HashCombine(HashInt64(fault_seed_),
                           HashString(name_));
  h = HashCombine(h, frame_seq);
  h = HashCombine(h, attempt);
  // 53-bit mantissa-exact uniform in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1p-53;
  if (u < drop_probability_) return Fate::kDropped;
  if (u < drop_probability_ + corrupt_probability_) return Fate::kCorrupted;
  return Fate::kDelivered;
}

InterNodeLink::FrameResult InterNodeLink::Send(SimTime ready, uint64_t bytes,
                                               uint64_t checksum) {
  // Credit acquisition: with the window full, the sender stalls until the
  // oldest in-flight frame's ack returns the credit.
  SimTime start = ready;
  if (window_.size() >= credits_) {
    const SimTime ack = window_.front();
    window_.pop_front();
    credits_released_++;
    if (ack > start) {
      credit_stall_ns_ += static_cast<uint64_t>(ack - start);
      start = ack;
    }
  }
  credits_acquired_++;

  const uint64_t seq = frame_seq_++;
  const SimTime wire = WireTimeNs(bytes);
  FrameResult result;
  SimTime attempt_ready = start;
  uint32_t attempt = 0;
  while (true) {
    attempt++;
    const SimTime depart = std::max(attempt_ready, next_free_) + wire;
    const SimTime arrive = depart + latency_ns_;
    next_free_ = depart;
    bytes_transferred_ += bytes;
    busy_ns_ += static_cast<uint64_t>(wire);
    const Fate fate = DecideFate(seq, attempt);
    if (tracer_ != nullptr) {
      tracer_->Span("xchg", name_, attempt == 1 ? "frame" : "frame.retx",
                    depart - wire, arrive, bytes);
    }
    if (fate == Fate::kDelivered) {
      result.depart = depart;
      result.arrive = arrive;
      result.attempts = attempt;
      result.delivered = true;
      break;
    }
    retransmits_++;
    if (tracer_ != nullptr) {
      tracer_->Instant("xchg", name_,
                       fate == Fate::kDropped ? "frame.drop" : "frame.corrupt",
                       arrive, seq);
    }
    if (attempt >= max_attempts_) {
      result.depart = depart;
      result.arrive = arrive;
      result.attempts = attempt;
      result.delivered = false;
      frames_lost_++;
      break;
    }
    // A dropped frame is noticed at the ack timeout (one round trip past
    // delivery); a corrupted one is NACKed on arrival (checksum mismatch at
    // the receiver). Either way the retry backs off, doubling per attempt.
    const SimTime notice =
        fate == Fate::kDropped ? arrive + 2 * latency_ns_ : arrive + latency_ns_;
    const uint32_t shift = std::min(attempt - 1, kBackoffCapShift);
    attempt_ready = notice + (latency_ns_ << shift);
  }

  frames_++;
  checksum_accum_ = HashCombine(checksum_accum_, checksum);
  // The delivery ack returns this frame's credit one latency after arrival.
  window_.push_back(result.arrive + latency_ns_);
  return result;
}

void InterNodeLink::ArmFaults(double drop_probability,
                              double corrupt_probability, uint64_t seed,
                              uint32_t max_attempts) {
  faults_armed_ = true;
  drop_probability_ = drop_probability;
  corrupt_probability_ = corrupt_probability;
  fault_seed_ = seed;
  max_attempts_ = max_attempts == 0 ? 1 : max_attempts;
}

void InterNodeLink::DisarmFaults() { faults_armed_ = false; }

void InterNodeLink::CancelWindow() {
  credits_released_ += window_.size();
  window_.clear();
}

void InterNodeLink::ResetStats() {
  next_free_ = 0;
  window_.clear();
  frame_seq_ = 0;
  bytes_transferred_ = 0;
  frames_ = 0;
  retransmits_ = 0;
  frames_lost_ = 0;
  busy_ns_ = 0;
  credit_stall_ns_ = 0;
  credits_acquired_ = 0;
  credits_released_ = 0;
  checksum_accum_ = 0;
}

}  // namespace dflow::sim
