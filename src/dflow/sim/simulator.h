#ifndef DFLOW_SIM_SIMULATOR_H_
#define DFLOW_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dflow::sim {

/// Virtual time in nanoseconds.
using SimTime = uint64_t;

/// Deterministic discrete-event simulator. Events at equal timestamps run in
/// schedule order (stable), so simulations are exactly reproducible run to
/// run — a property the tests rely on.
///
/// This is the substrate on which the whole "pipeline of processing elements
/// along the data path" (§7) executes: every chunk hop, DMA transfer, credit
/// return, and device completion is an event here.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now.
  void Schedule(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute virtual time (must be >= now).
  void ScheduleAt(SimTime time, std::function<void()> fn);

  /// Runs events until the queue drains. Returns the final virtual time.
  SimTime Run();

  /// Runs until the queue drains or `max_events` have executed (runaway
  /// guard for tests). Returns true if the queue drained.
  bool RunWithLimit(uint64_t max_events);

  uint64_t events_processed() const { return events_processed_; }

  /// Resets virtual time and drops pending events. Metrics owned by links
  /// and devices are unaffected.
  void Reset();

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_SIMULATOR_H_
