#ifndef DFLOW_SIM_FAULT_H_
#define DFLOW_SIM_FAULT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dflow/common/random.h"
#include "dflow/sim/simulator.h"

namespace dflow::sim {

/// What happened to one message on a faulty link.
enum class TransferOutcome : uint8_t {
  kDelivered = 0,
  kDropped,    // never arrives; the sender's delivery timeout must recover
  kCorrupted,  // arrives, but checksum verification at the receiver fails
};

/// Knobs of the unreliable-fabric mode. All probabilities are per decision
/// point (per link message, per device work item, per storage request) and
/// are drawn from one seeded PRNG, so a given (config, workload) pair
/// produces exactly the same fault schedule on every run.
struct FaultConfig {
  uint64_t seed = 1;

  /// Probability a link message is silently dropped.
  double drop_prob = 0.0;
  /// Probability a link message arrives bit-flipped (caught by checksum).
  double corrupt_prob = 0.0;

  /// Probability a device work item hits a transient stall, and how long
  /// the stall lasts (virtual time).
  double stall_prob = 0.0;
  SimTime stall_ns = 100'000;

  /// Probability a storage read request fails with kIOError.
  double storage_error_prob = 0.0;
};

/// Deterministic, seed-driven fault source for the simulated fabric.
///
/// The data-flow architecture spreads a query over many processing
/// elements — which multiplies the points of failure. This injector is the
/// adversary: it decides, reproducibly, which link messages are lost or
/// corrupted, which device work items stall, which storage requests error
/// out, and when a processing element dies for good. Because every decision
/// is drawn from one seeded PRNG inside the deterministic event loop, the
/// whole fault schedule — and therefore the recovered execution — is
/// byte-for-byte reproducible (see `TraceString()`).
///
/// Wiring: `Link::SetFaultInjector` stamps outcomes onto transfers,
/// `Device::SetFaultInjector` injects stalls into `Process`, `ObjectStore`
/// turns `NextStorageRequestFails` into kIOError responses, and
/// `DataflowGraph::SetFaultInjector` arms the recovery layer (timeouts,
/// retransmission, checksum verification, storage retry, crash detection).
/// When links have an injector attached, any DataflowGraph running over
/// them must be armed too, or dropped chunks are lost with no retry —
/// `Engine::EnableFaultInjection` does both sides consistently.
class FaultInjector {
 public:
  /// `sim` (optional) timestamps the fault trace with virtual time.
  explicit FaultInjector(FaultConfig config, const Simulator* sim = nullptr);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultConfig& config() const { return config_; }

  // ------------------------------------------------------------ link hook
  /// Classifies the next message on `link_name`. One PRNG draw per call.
  TransferOutcome ClassifyTransfer(const std::string& link_name);

  // ---------------------------------------------------------- device hook
  /// Extra stall (ns) injected before the next work item on `device_name`
  /// starts; 0 for no fault. One PRNG draw per call.
  SimTime StallNs(const std::string& device_name);

  // --------------------------------------------------------- storage hook
  /// Whether the next storage read request against `target` fails with
  /// kIOError. Counts the request; honours both the probabilistic
  /// `storage_error_prob` and requests scheduled via FailStorageRequest.
  bool NextStorageRequestFails(const std::string& target);

  /// Schedules the `nth` storage request (0-based, counted across all
  /// targets) to fail deterministically, independent of probabilities.
  void FailStorageRequest(uint64_t nth);

  // ------------------------------------------------------ scheduled crash
  /// Kills `device_name` at virtual time `when`. Without a matching
  /// RestoreDeviceAt the crash is permanent (crashes do not heal).
  void CrashDeviceAt(const std::string& device_name, SimTime when);

  /// Revives `device_name` at virtual time `when` (> its crash time),
  /// turning the crash into a transient outage window [crash, restore).
  /// Such "flapping" devices are what circuit breakers exist for: health
  /// quarantine would write the device off forever, a breaker probes it
  /// after cool-down and readmits it once the window has passed.
  void RestoreDeviceAt(const std::string& device_name, SimTime when);

  /// True while inside a crash window. Records the first observation of
  /// each window in the trace.
  bool IsCrashed(const std::string& device_name);

  // ------------------------------------------------------------ reporting
  struct Counters {
    uint64_t transfers_seen = 0;
    uint64_t drops = 0;
    uint64_t corruptions = 0;
    uint64_t stall_decisions = 0;
    uint64_t stalls = 0;
    SimTime stall_ns_total = 0;
    uint64_t storage_requests_seen = 0;
    uint64_t storage_errors = 0;
    uint64_t crashes_observed = 0;
  };
  const Counters& counters() const { return counters_; }

  /// One injected fault (decisions that resulted in no fault are not
  /// recorded; counters cover those).
  struct Event {
    SimTime time;
    std::string kind;    // "drop" | "corrupt" | "stall" | "io_error" | "crash"
    std::string target;  // link / device / storage target name
  };
  const std::vector<Event>& trace() const { return trace_; }

  /// The full fault schedule as one line per event — byte-identical across
  /// runs with the same seed and workload (the determinism contract tests
  /// assert on this string).
  std::string TraceString() const;

 private:
  SimTime Now() const { return sim_ != nullptr ? sim_->now() : 0; }
  void Record(const std::string& kind, const std::string& target);

  FaultConfig config_;
  const Simulator* sim_;
  Random rng_;
  std::map<std::string, SimTime> crash_at_;
  std::map<std::string, SimTime> restore_at_;
  std::set<std::string> crash_seen_;
  std::set<uint64_t> scheduled_storage_failures_;
  Counters counters_;
  std::vector<Event> trace_;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_FAULT_H_
