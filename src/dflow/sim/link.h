#ifndef DFLOW_SIM_LINK_H_
#define DFLOW_SIM_LINK_H_

#include <cstdint>
#include <string>

#include "dflow/sim/simulator.h"

namespace dflow::trace {
class Tracer;
}

namespace dflow::sim {

class FaultInjector;
enum class TransferOutcome : uint8_t;

/// A shared transfer medium between two points of the fabric: network hop,
/// PCIe/CXL interconnect, or memory bus. Transfers serialize (one at a
/// time), which is how link contention between concurrent queries emerges in
/// the interference experiments (§7.3).
///
/// A message of B bytes that becomes ready at time t occupies the link for
/// B / bandwidth ns starting no earlier than t, then arrives after the
/// propagation latency.
class Link {
 public:
  Link(std::string name, double bandwidth_gbps, SimTime latency_ns);

  struct Transfer {
    SimTime depart;  // when the last byte leaves the sender
    SimTime arrive;  // when the last byte reaches the receiver
    /// What the fault injector decided for this message (kDelivered when no
    /// injector is attached). A dropped message still occupies the wire —
    /// the bytes were transmitted, they just never reach the receiver.
    TransferOutcome outcome = static_cast<TransferOutcome>(0);
  };

  const std::string& name() const { return name_; }
  double bandwidth_gbps() const { return bandwidth_gbps_; }
  SimTime latency_ns() const { return latency_ns_; }

  /// Time on the wire for `bytes` (no queueing, no latency).
  SimTime WireTimeNs(uint64_t bytes) const;

  /// Reserves the link for a message ready at `ready`. Serializes after
  /// prior reservations and updates byte/busy counters.
  Transfer Reserve(SimTime ready, uint64_t bytes);

  SimTime next_free() const { return next_free_; }
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t busy_ns() const { return busy_ns_; }
  uint64_t num_messages() const { return num_messages_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t messages_corrupted() const { return messages_corrupted_; }

  /// Attaches a fault injector; every subsequent Reserve consults it for the
  /// message's outcome. nullptr detaches (perfect link again).
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

  /// Attaches an event tracer; every Reserve emits a wire-occupancy span on
  /// this link's timeline track (drops/corruptions an instant event).
  /// nullptr detaches. Tracing never changes timing.
  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Clears byte/busy/message counters but keeps timing state (next_free),
  /// so chained runs on a warm fabric report only their own traffic.
  void ResetMetrics();

  /// Full reset: metrics and timing state (fresh simulation).
  void ResetStats();

 private:
  std::string name_;
  double bandwidth_gbps_;
  SimTime latency_ns_;
  FaultInjector* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  SimTime next_free_ = 0;
  uint64_t bytes_transferred_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t num_messages_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_corrupted_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_LINK_H_
