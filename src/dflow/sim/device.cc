#include "dflow/sim/device.h"

#include <algorithm>

#include "dflow/common/logging.h"
#include "dflow/sim/fault.h"
#include "dflow/trace/tracer.h"

namespace dflow::sim {

std::string_view CostClassToString(CostClass c) {
  switch (c) {
    case CostClass::kScan:
      return "scan";
    case CostClass::kFilter:
      return "filter";
    case CostClass::kProject:
      return "project";
    case CostClass::kHash:
      return "hash";
    case CostClass::kPartition:
      return "partition";
    case CostClass::kAggregate:
      return "aggregate";
    case CostClass::kJoinBuild:
      return "join_build";
    case CostClass::kJoinProbe:
      return "join_probe";
    case CostClass::kSort:
      return "sort";
    case CostClass::kDecode:
      return "decode";
    case CostClass::kEncode:
      return "encode";
    case CostClass::kTranspose:
      return "transpose";
    case CostClass::kPointerChase:
      return "pointer_chase";
    case CostClass::kMemcpy:
      return "memcpy";
    case CostClass::kCount:
      return "count";
  }
  return "?";
}

Device::Device(std::string name, SimTime per_item_overhead_ns)
    : name_(std::move(name)), per_item_overhead_ns_(per_item_overhead_ns) {}

void Device::SetRate(CostClass c, double gbps) {
  DFLOW_CHECK_GE(gbps, 0.0);
  rates_gbps_[static_cast<int>(c)] = gbps;
}

void Device::SetAllRates(double gbps) {
  for (double& r : rates_gbps_) r = gbps;
}

double Device::RateGbps(CostClass c) const {
  return rates_gbps_[static_cast<int>(c)];
}

double Device::RateBytesPerNs(CostClass c) const {
  // 1 GB/s == 1e9 bytes / 1e9 ns == 1 byte/ns.
  return rates_gbps_[static_cast<int>(c)];
}

SimTime Device::CostNs(uint64_t bytes, CostClass c, double factor) const {
  const double rate = RateBytesPerNs(c) * factor;
  DFLOW_CHECK_GT(rate, 0.0) << "device " << name_ << " does not support "
                            << CostClassToString(c);
  const double ns = static_cast<double>(bytes) / rate;
  return per_item_overhead_ns_ + static_cast<SimTime>(ns);
}

Device::Work Device::Process(SimTime ready, uint64_t bytes, CostClass c,
                             double factor) {
  SimTime stall = 0;
  if (fault_ != nullptr) {
    stall = fault_->StallNs(name_);
    if (stall > 0) {
      stalls_ += 1;
      stall_ns_ += stall;
    }
  }
  const SimTime cost = CostNs(bytes, c, factor);
  const SimTime start = std::max(ready, next_free_) + stall;
  const SimTime end = start + cost;
  next_free_ = end;
  busy_ns_ += cost;
  bytes_processed_ += bytes;
  items_processed_ += 1;
  if (stall > 0) {
    DFLOW_TRACE(tracer_, Instant("fault", name_, "stall", start - stall,
                                 /*value=*/stall));
  }
  DFLOW_TRACE(tracer_, Span("device", name_,
                            std::string(CostClassToString(c)), start, end,
                            /*value=*/bytes));
  return Work{start, end};
}

void Device::ResetMetrics() {
  busy_ns_ = 0;
  bytes_processed_ = 0;
  items_processed_ = 0;
  stalls_ = 0;
  stall_ns_ = 0;
}

void Device::ResetStats() {
  ResetMetrics();
  next_free_ = 0;
}

}  // namespace dflow::sim
