#ifndef DFLOW_SIM_COST_CLASS_H_
#define DFLOW_SIM_COST_CLASS_H_

#include <string_view>

namespace dflow::sim {

/// Kind of work a processing element is asked to do on a batch of bytes.
/// Each device publishes a throughput (GB/s) per cost class; placement uses
/// the matrix to cost plan variants, and the paper's central observation —
/// "many operators are faster on streaming accelerators than on the CPU"
/// (§7.5) — is encoded as accelerators having higher rates for the streaming
/// classes and *no* rate (unsupported) for the stateful ones.
enum class CostClass {
  kScan = 0,      // reading/decoding pages from media
  kFilter,        // predicate evaluation + selection
  kProject,       // column dropping / expression evaluation
  kHash,          // hashing rows
  kPartition,     // splitting a stream by hash
  kAggregate,     // hash-table group-by update
  kJoinBuild,     // building a join hash table
  kJoinProbe,     // probing a join hash table
  kSort,          // sorting / top-n
  kDecode,        // decompression
  kEncode,        // compression
  kTranspose,     // row<->column layout conversion
  kPointerChase,  // dependent (latency-bound) traversal
  kMemcpy,        // plain data movement within a device
  kCount,         // counting / trivial reduction
};

inline constexpr int kNumCostClasses = 15;

std::string_view CostClassToString(CostClass c);

}  // namespace dflow::sim

#endif  // DFLOW_SIM_COST_CLASS_H_
