#ifndef DFLOW_SIM_DMA_H_
#define DFLOW_SIM_DMA_H_

#include <cstdint>
#include <string>

#include "dflow/sim/link.h"

namespace dflow::trace {
class Tracer;
}

namespace dflow::sim {

/// A DMA engine pushing one flow's data over a (possibly shared) link.
///
/// The paper's execution model (§7.1) moves data between pipeline stages via
/// DMA engines rather than CPU pulls, and its scheduler (§7.3) controls
/// resource consumption by *rate limiting* those engines. A DmaEngine
/// serializes its own flow at min(link bandwidth, rate limit) and then
/// contends with other flows for the underlying link.
class DmaEngine {
 public:
  DmaEngine(std::string name, Link* link);

  const std::string& name() const { return name_; }
  Link* link() const { return link_; }

  /// Caps this flow's injection bandwidth. 0 = unlimited (link speed).
  /// The scheduler may adjust this at any time; it applies to subsequent
  /// transfers.
  void SetRateLimitGbps(double gbps);
  double rate_limit_gbps() const { return rate_limit_gbps_; }

  /// Transfers `bytes` ready at `ready`; returns when the last byte arrives
  /// at the receiver.
  Link::Transfer Transfer(SimTime ready, uint64_t bytes);

  uint64_t bytes_transferred() const { return bytes_transferred_; }

  /// Attaches an event tracer; every Transfer emits an injection-pacing
  /// span on this engine's timeline track. nullptr detaches.
  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  void ResetStats();

 private:
  std::string name_;
  Link* link_;
  trace::Tracer* tracer_ = nullptr;
  double rate_limit_gbps_ = 0.0;  // 0 = unlimited
  SimTime next_free_ = 0;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_DMA_H_
