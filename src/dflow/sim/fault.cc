#include "dflow/sim/fault.h"

#include <sstream>

#include "dflow/common/logging.h"

namespace dflow::sim {

FaultInjector::FaultInjector(FaultConfig config, const Simulator* sim)
    : config_(config), sim_(sim), rng_(config.seed) {
  DFLOW_CHECK_GE(config.drop_prob, 0.0);
  DFLOW_CHECK_GE(config.corrupt_prob, 0.0);
  DFLOW_CHECK_LE(config.drop_prob + config.corrupt_prob, 1.0);
  DFLOW_CHECK_GE(config.stall_prob, 0.0);
  DFLOW_CHECK_LE(config.stall_prob, 1.0);
  DFLOW_CHECK_GE(config.storage_error_prob, 0.0);
  DFLOW_CHECK_LE(config.storage_error_prob, 1.0);
}

void FaultInjector::Record(const std::string& kind, const std::string& target) {
  trace_.push_back(Event{Now(), kind, target});
}

TransferOutcome FaultInjector::ClassifyTransfer(const std::string& link_name) {
  counters_.transfers_seen++;
  // One draw per message, partitioned into [0, drop) -> drop,
  // [drop, drop + corrupt) -> corrupt, rest -> deliver. A fixed draw count
  // per decision point keeps the schedule stable under config tweaks.
  const double u = rng_.NextDouble();
  if (u < config_.drop_prob) {
    counters_.drops++;
    Record("drop", link_name);
    return TransferOutcome::kDropped;
  }
  if (u < config_.drop_prob + config_.corrupt_prob) {
    counters_.corruptions++;
    Record("corrupt", link_name);
    return TransferOutcome::kCorrupted;
  }
  return TransferOutcome::kDelivered;
}

SimTime FaultInjector::StallNs(const std::string& device_name) {
  counters_.stall_decisions++;
  if (config_.stall_prob <= 0.0) return 0;
  if (rng_.NextDouble() >= config_.stall_prob) return 0;
  counters_.stalls++;
  counters_.stall_ns_total += config_.stall_ns;
  Record("stall", device_name);
  return config_.stall_ns;
}

bool FaultInjector::NextStorageRequestFails(const std::string& target) {
  const uint64_t n = counters_.storage_requests_seen++;
  bool fail = scheduled_storage_failures_.erase(n) > 0;
  if (config_.storage_error_prob > 0.0 &&
      rng_.NextDouble() < config_.storage_error_prob) {
    fail = true;
  }
  if (fail) {
    counters_.storage_errors++;
    Record("io_error", target);
  }
  return fail;
}

void FaultInjector::FailStorageRequest(uint64_t nth) {
  scheduled_storage_failures_.insert(nth);
}

void FaultInjector::CrashDeviceAt(const std::string& device_name,
                                  SimTime when) {
  crash_at_[device_name] = when;
}

void FaultInjector::RestoreDeviceAt(const std::string& device_name,
                                    SimTime when) {
  auto it = crash_at_.find(device_name);
  DFLOW_CHECK(it != crash_at_.end());
  DFLOW_CHECK_GT(when, it->second);
  restore_at_[device_name] = when;
}

bool FaultInjector::IsCrashed(const std::string& device_name) {
  auto it = crash_at_.find(device_name);
  if (it == crash_at_.end() || Now() < it->second) return false;
  auto restore = restore_at_.find(device_name);
  if (restore != restore_at_.end() && Now() >= restore->second) {
    // The outage window has passed; allow a later CrashDeviceAt to open a
    // fresh window (and to be recorded as a fresh observation).
    crash_at_.erase(it);
    restore_at_.erase(restore);
    crash_seen_.erase(device_name);
    return false;
  }
  if (crash_seen_.insert(device_name).second) {
    counters_.crashes_observed++;
    Record("crash", device_name);
  }
  return true;
}

std::string FaultInjector::TraceString() const {
  std::ostringstream os;
  for (const Event& e : trace_) {
    os << e.time << " " << e.kind << " " << e.target << "\n";
  }
  return os.str();
}

}  // namespace dflow::sim
