#include "dflow/sim/fabric.h"

#include <sstream>

#include "dflow/common/string_util.h"

namespace dflow::sim {

void ConfigureCpuDevice(Device* dev, const FabricConfig& config) {
  const double s = config.cpu_scale;
  dev->SetRate(CostClass::kScan, 10.0 * s);
  dev->SetRate(CostClass::kFilter, 8.0 * s);
  dev->SetRate(CostClass::kProject, 12.0 * s);
  dev->SetRate(CostClass::kHash, 4.0 * s);
  dev->SetRate(CostClass::kPartition, 5.0 * s);
  dev->SetRate(CostClass::kAggregate, 3.0 * s);
  dev->SetRate(CostClass::kJoinBuild, 2.0 * s);
  dev->SetRate(CostClass::kJoinProbe, 3.0 * s);
  dev->SetRate(CostClass::kSort, 1.5 * s);
  dev->SetRate(CostClass::kDecode, 6.0 * s);
  dev->SetRate(CostClass::kEncode, 4.0 * s);
  dev->SetRate(CostClass::kTranspose, 4.0 * s);
  dev->SetRate(CostClass::kPointerChase, 0.5 * s);
  dev->SetRate(CostClass::kMemcpy, 20.0 * s);
  dev->SetRate(CostClass::kCount, 20.0 * s);
}

void ConfigureStorageProcDevice(Device* dev, const FabricConfig& config) {
  // A streaming processor colocated with the media: excellent at stateless
  // scans/filters/projections (line rate), decent at hashing and bounded
  // partial aggregation, incapable of stateful blocking operators. (§3.3)
  const double r = config.storage_proc_gbps;
  dev->SetRate(CostClass::kScan, r);
  dev->SetRate(CostClass::kFilter, r);
  dev->SetRate(CostClass::kProject, r);
  dev->SetRate(CostClass::kDecode, r);
  dev->SetRate(CostClass::kEncode, r / 2.0);
  dev->SetRate(CostClass::kHash, r * 0.75);
  dev->SetRate(CostClass::kPartition, r * 0.75);
  dev->SetRate(CostClass::kAggregate, r / 2.0);  // bounded partial agg only
  dev->SetRate(CostClass::kCount, r);
  dev->SetRate(CostClass::kMemcpy, r);
  // Unsupported: join build/probe, sort, transpose, pointer chase.
}

void ConfigureNicDevice(Device* dev, const FabricConfig& config) {
  // Bump-on-the-wire processor (§4.3): hashing/partitioning/counting at line
  // rate and above, bounded partial aggregation, no blocking state.
  const double r = config.nic_proc_gbps;
  dev->SetRate(CostClass::kFilter, r * 0.8);
  dev->SetRate(CostClass::kProject, r * 0.8);
  dev->SetRate(CostClass::kHash, r);
  dev->SetRate(CostClass::kPartition, r);
  dev->SetRate(CostClass::kAggregate, r * 0.4);  // bounded partial agg only
  dev->SetRate(CostClass::kCount, r);
  dev->SetRate(CostClass::kDecode, r * 0.5);
  dev->SetRate(CostClass::kEncode, r * 0.5);
  dev->SetRate(CostClass::kMemcpy, r);
  // Unsupported: scan, join build/probe, sort, transpose, pointer chase.
}

void ConfigureNearMemDevice(Device* dev, const FabricConfig& config) {
  // Near-memory accelerator (§5): privileged memory bandwidth for filtering,
  // decompress-on-demand, transposition, pointer chasing and list upkeep.
  const double r = config.near_mem_gbps;
  dev->SetRate(CostClass::kFilter, r);
  dev->SetRate(CostClass::kProject, r);
  dev->SetRate(CostClass::kDecode, r);
  dev->SetRate(CostClass::kEncode, r / 2.0);
  dev->SetRate(CostClass::kTranspose, r / 2.0);
  dev->SetRate(CostClass::kPointerChase, r / 4.0);
  dev->SetRate(CostClass::kHash, r * 0.4);
  dev->SetRate(CostClass::kAggregate, r * 0.15);  // bounded partial agg only
  dev->SetRate(CostClass::kCount, r);
  dev->SetRate(CostClass::kMemcpy, r);
  dev->SetRate(CostClass::kPartition, r * 0.4);
  // Unsupported: scan, join build/probe, sort.
}

void ConfigureStoreMediaDevice(Device* dev, const FabricConfig& config) {
  dev->SetRate(CostClass::kScan, config.store_media_gbps);
  dev->SetRate(CostClass::kMemcpy, config.store_media_gbps);
}

Fabric::Fabric(FabricConfig config) : config_(config) {
  store_media_ = std::make_unique<Device>("store_media",
                                          config.store_request_latency_ns);
  ConfigureStoreMediaDevice(store_media_.get(), config);
  storage_proc_ =
      std::make_unique<Device>("storage_proc", config.accel_overhead_ns);
  ConfigureStorageProcDevice(storage_proc_.get(), config);
  storage_nic_ =
      std::make_unique<Device>("storage_nic", config.accel_overhead_ns);
  ConfigureNicDevice(storage_nic_.get(), config);
  storage_uplink_ = std::make_unique<Link>(
      "storage_uplink", config.storage_uplink_gbps,
      config.storage_uplink_latency_ns);

  const double ic_gbps =
      config.use_cxl ? config.cxl_gbps : config.interconnect_gbps;
  const SimTime ic_latency =
      config.use_cxl ? config.cxl_latency_ns : config.interconnect_latency_ns;

  nodes_.resize(config.num_compute_nodes);
  for (int i = 0; i < config.num_compute_nodes; ++i) {
    const std::string suffix = std::to_string(i);
    ComputeNode& n = nodes_[i];
    n.nic = std::make_unique<Device>("cnic" + suffix, config.accel_overhead_ns);
    ConfigureNicDevice(n.nic.get(), config);
    n.near_mem =
        std::make_unique<Device>("nma" + suffix, config.accel_overhead_ns);
    ConfigureNearMemDevice(n.near_mem.get(), config);
    n.cpu = std::make_unique<Device>("cpu" + suffix, config.cpu_overhead_ns);
    ConfigureCpuDevice(n.cpu.get(), config);
    n.net_rx = std::make_unique<Link>("net_rx" + suffix, config.network_gbps,
                                      config.network_latency_ns);
    n.net_tx = std::make_unique<Link>("net_tx" + suffix, config.network_gbps,
                                      config.network_latency_ns);
    n.interconnect =
        std::make_unique<Link>("ic" + suffix, ic_gbps, ic_latency);
    n.memory_bus = std::make_unique<Link>("membus" + suffix,
                                          config.memory_bus_gbps,
                                          config.memory_bus_latency_ns);
  }
}

void Fabric::Reset() {
  sim_.Reset();
  for (Device* d : AllDevices()) d->ResetStats();
  for (Link* l : AllLinks()) l->ResetStats();
}

void Fabric::ResetMetrics() {
  for (Device* d : AllDevices()) d->ResetMetrics();
  for (Link* l : AllLinks()) l->ResetMetrics();
}

void Fabric::AttachTracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  for (Device* d : AllDevices()) d->SetTracer(tracer);
  for (Link* l : AllLinks()) l->SetTracer(tracer);
}

std::vector<Link*> Fabric::AllLinks() {
  std::vector<Link*> links = {storage_uplink_.get()};
  for (ComputeNode& n : nodes_) {
    links.push_back(n.net_rx.get());
    links.push_back(n.net_tx.get());
    links.push_back(n.interconnect.get());
    links.push_back(n.memory_bus.get());
  }
  return links;
}

std::vector<Device*> Fabric::AllDevices() {
  std::vector<Device*> devices = {store_media_.get(), storage_proc_.get(),
                                  storage_nic_.get()};
  for (ComputeNode& n : nodes_) {
    devices.push_back(n.nic.get());
    devices.push_back(n.near_mem.get());
    devices.push_back(n.cpu.get());
  }
  return devices;
}

std::string Fabric::ReportString() {
  std::ostringstream os;
  os << "fabric @ " << FormatNanos(sim_.now()) << "\n";
  os << "  links:\n";
  for (Link* l : AllLinks()) {
    if (l->num_messages() == 0) continue;
    os << "    " << l->name() << ": " << FormatBytes(l->bytes_transferred())
       << " in " << l->num_messages() << " msgs, busy "
       << FormatNanos(l->busy_ns()) << "\n";
  }
  os << "  devices:\n";
  for (Device* d : AllDevices()) {
    if (d->items_processed() == 0) continue;
    os << "    " << d->name() << ": " << FormatBytes(d->bytes_processed())
       << " in " << d->items_processed() << " items, busy "
       << FormatNanos(d->busy_ns()) << "\n";
  }
  return os.str();
}

}  // namespace dflow::sim
