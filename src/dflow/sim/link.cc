#include "dflow/sim/link.h"

#include <algorithm>

#include "dflow/common/logging.h"
#include "dflow/sim/fault.h"
#include "dflow/trace/tracer.h"

namespace dflow::sim {

Link::Link(std::string name, double bandwidth_gbps, SimTime latency_ns)
    : name_(std::move(name)),
      bandwidth_gbps_(bandwidth_gbps),
      latency_ns_(latency_ns) {
  DFLOW_CHECK_GT(bandwidth_gbps_, 0.0);
}

SimTime Link::WireTimeNs(uint64_t bytes) const {
  // 1 GB/s == 1 byte/ns.
  return static_cast<SimTime>(static_cast<double>(bytes) / bandwidth_gbps_);
}

Link::Transfer Link::Reserve(SimTime ready, uint64_t bytes) {
  const SimTime wire = WireTimeNs(bytes);
  const SimTime start = std::max(ready, next_free_);
  const SimTime depart = start + wire;
  next_free_ = depart;
  bytes_transferred_ += bytes;
  busy_ns_ += wire;
  num_messages_ += 1;
  Transfer t{depart, depart + latency_ns_, TransferOutcome::kDelivered};
  if (fault_ != nullptr) {
    t.outcome = fault_->ClassifyTransfer(name_);
    if (t.outcome == TransferOutcome::kDropped) messages_dropped_ += 1;
    if (t.outcome == TransferOutcome::kCorrupted) messages_corrupted_ += 1;
  }
  DFLOW_TRACE(tracer_, Span("link", name_, "xfer", start, depart,
                            /*value=*/bytes));
  if (t.outcome == TransferOutcome::kDropped) {
    DFLOW_TRACE(tracer_, Instant("fault", name_, "drop", depart,
                                 /*value=*/bytes));
  } else if (t.outcome == TransferOutcome::kCorrupted) {
    DFLOW_TRACE(tracer_, Instant("fault", name_, "corrupt", depart,
                                 /*value=*/bytes));
  }
  return t;
}

void Link::ResetMetrics() {
  bytes_transferred_ = 0;
  busy_ns_ = 0;
  num_messages_ = 0;
  messages_dropped_ = 0;
  messages_corrupted_ = 0;
}

void Link::ResetStats() {
  ResetMetrics();
  next_free_ = 0;
}

}  // namespace dflow::sim
