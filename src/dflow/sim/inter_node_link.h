#ifndef DFLOW_SIM_INTER_NODE_LINK_H_
#define DFLOW_SIM_INTER_NODE_LINK_H_

#include <cstdint>
#include <deque>
#include <string>

#include "dflow/sim/simulator.h"

namespace dflow::trace {
class Tracer;
}

namespace dflow::sim {

/// A directed inter-node transfer medium: the cluster-level analogue of
/// sim::Link. Where an intra-fabric Link only serializes transfers, an
/// InterNodeLink additionally carries the cluster's reliability contract:
///
///  - a credit window (`credits` unacked frames in flight; a sender whose
///    window is full stalls until the oldest ack returns, and the stall is
///    accounted in credit_stall_ns — the cross-node twin of the intra-node
///    credit-based flow control),
///  - checksummed frames with ack/timeout retransmission (capped
///    exponential backoff, mirroring the PR 1 edge-recovery policy), and
///  - a seeded per-frame drop/corrupt process so fault runs are
///    byte-identical per seed.
///
/// Each node pair gets its own directed link (full mesh), so per-link
/// byte/stall counters localize exchange hotspots. The link keeps no
/// pointer to any per-node Simulator: cluster execution is phase-structured
/// (local fragments run on their own fabrics, then exchanges are laid out
/// on cluster virtual time), so Reserve-style time algebra is all that is
/// needed — and it keeps the model deterministic by construction.
class InterNodeLink {
 public:
  InterNodeLink(std::string name, double bandwidth_gbps, SimTime latency_ns,
                uint32_t credits);

  /// Outcome of one frame send, after any retransmissions.
  struct FrameResult {
    SimTime depart = 0;   // when the final attempt's last byte left
    SimTime arrive = 0;   // when the final attempt reached the receiver
    uint32_t attempts = 1;
    bool delivered = true;  // false => attempts exhausted (frame lost)
  };

  const std::string& name() const { return name_; }
  double bandwidth_gbps() const { return bandwidth_gbps_; }
  SimTime latency_ns() const { return latency_ns_; }
  uint32_t credits() const { return credits_; }

  /// Time on the wire for `bytes` (no queueing, no latency).
  SimTime WireTimeNs(uint64_t bytes) const;

  /// Sends one checksummed frame that becomes ready at `ready`: acquires a
  /// credit (stalling while the window is full), serializes on the wire
  /// after earlier frames, and retransmits with capped backoff when the
  /// seeded fault process drops or corrupts an attempt. The checksum is
  /// folded into checksum_accum() so two runs that moved different bytes
  /// can never report byte-identical exchanges.
  FrameResult Send(SimTime ready, uint64_t bytes, uint64_t checksum);

  /// Arms the seeded frame-fault process. Each attempt's fate is a pure
  /// function of (seed, frame sequence, attempt): same seed, same schedule.
  void ArmFaults(double drop_probability, double corrupt_probability,
                 uint64_t seed, uint32_t max_attempts);
  void DisarmFaults();

  /// Returns every in-flight credit (the cancel path). After this the
  /// window is empty and credits_released() == credits_acquired().
  void CancelWindow();

  /// Frames currently holding a credit.
  size_t credits_in_flight() const { return window_.size(); }
  uint64_t credits_acquired() const { return credits_acquired_; }
  uint64_t credits_released() const { return credits_released_; }

  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t frames() const { return frames_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t frames_lost() const { return frames_lost_; }
  uint64_t busy_ns() const { return busy_ns_; }
  uint64_t credit_stall_ns() const { return credit_stall_ns_; }
  uint64_t checksum_accum() const { return checksum_accum_; }

  /// Emits one wire-occupancy span per attempt on the "xchg" category
  /// (track = link name); retransmissions also emit an instant event.
  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Clears counters and timing state (fresh cluster run).
  void ResetStats();

 private:
  /// Attempt fate, decided by the seeded process.
  enum class Fate { kDelivered, kDropped, kCorrupted };
  Fate DecideFate(uint64_t frame_seq, uint32_t attempt) const;

  std::string name_;
  double bandwidth_gbps_;
  SimTime latency_ns_;
  uint32_t credits_;
  trace::Tracer* tracer_ = nullptr;

  bool faults_armed_ = false;
  double drop_probability_ = 0.0;
  double corrupt_probability_ = 0.0;
  uint64_t fault_seed_ = 0;
  uint32_t max_attempts_ = 6;

  SimTime next_free_ = 0;
  std::deque<SimTime> window_;  // ack-return times of in-flight frames
  uint64_t frame_seq_ = 0;

  uint64_t bytes_transferred_ = 0;
  uint64_t frames_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t frames_lost_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t credit_stall_ns_ = 0;
  uint64_t credits_acquired_ = 0;
  uint64_t credits_released_ = 0;
  uint64_t checksum_accum_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_INTER_NODE_LINK_H_
