#ifndef DFLOW_SIM_FABRIC_H_
#define DFLOW_SIM_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/sim/device.h"
#include "dflow/sim/link.h"
#include "dflow/sim/simulator.h"

namespace dflow::sim {

/// Parameters of the simulated hardware landscape (§2). Defaults model a
/// plausible 2024 deployment: 100 Gbps network, PCIe5-class interconnect,
/// optional CXL, NVMe-array storage behind an object-store interface, and
/// accelerator streaming rates taken from the ballpark of published devices
/// (storage cells, BlueField-class NICs, M7 DAX-class near-memory units).
/// Absolute values are not the point — the *ratios* (accelerators stream
/// faster than a CPU core; links are slower than accelerators; the CPU is
/// the narrowest streaming element) are what produce the paper's shapes.
struct FabricConfig {
  int num_compute_nodes = 1;

  // Storage node.
  double store_media_gbps = 8.0;          // NVMe array aggregate read rate
  SimTime store_request_latency_ns = 500'000;  // object-store request latency
  double storage_proc_gbps = 16.0;        // smart storage processor streaming
  double nic_proc_gbps = 25.0;            // NIC processor streaming (both sides)

  // Links.
  double storage_uplink_gbps = 12.5;      // storage node -> switch (100 Gbps)
  SimTime storage_uplink_latency_ns = 2'000;
  double network_gbps = 12.5;             // switch -> compute node (100 Gbps)
  SimTime network_latency_ns = 5'000;
  double interconnect_gbps = 32.0;        // NIC -> memory (PCIe5 x8/direction)
  SimTime interconnect_latency_ns = 600;
  bool use_cxl = false;                   // replace PCIe with CXL parameters
  double cxl_gbps = 64.0;
  SimTime cxl_latency_ns = 300;
  double memory_bus_gbps = 40.0;          // memory -> CPU caches
  SimTime memory_bus_latency_ns = 100;

  // Near-memory accelerator streaming rate (privileged memory bandwidth).
  double near_mem_gbps = 80.0;

  // CPU throughput multiplier (1.0 = one effective core).
  double cpu_scale = 1.0;

  // Per-chunk fixed overheads.
  SimTime cpu_overhead_ns = 200;
  SimTime accel_overhead_ns = 50;

  // Default credit capacity (chunks) per pipeline edge.
  uint32_t credit_capacity = 8;
};

/// Builds the per-cost-class rate tables for each device kind. Exposed so
/// tests and the optimizer's cost model use exactly the rates the simulator
/// charges.
void ConfigureCpuDevice(Device* dev, const FabricConfig& config);
void ConfigureStorageProcDevice(Device* dev, const FabricConfig& config);
void ConfigureNicDevice(Device* dev, const FabricConfig& config);
void ConfigureNearMemDevice(Device* dev, const FabricConfig& config);
void ConfigureStoreMediaDevice(Device* dev, const FabricConfig& config);

/// The instantiated topology of Figure 6:
///
///   [store media]--[storage proc]--[storage NIC] --uplink--> [switch]
///      --net[i]--> [compute NIC i] --interconnect--> [memory i]
///      --(near-mem accelerator i)--memory bus--> [CPU i]
///
/// plus per-node transmit links back to the switch for shuffles. All links
/// and devices are owned by the Fabric; pipeline executors borrow them.
class Fabric {
 public:
  struct ComputeNode {
    std::unique_ptr<Device> nic;
    std::unique_ptr<Device> near_mem;
    std::unique_ptr<Device> cpu;
    std::unique_ptr<Link> net_rx;   // switch -> this node
    std::unique_ptr<Link> net_tx;   // this node -> switch
    std::unique_ptr<Link> interconnect;  // NIC -> memory (PCIe or CXL)
    std::unique_ptr<Link> memory_bus;    // memory -> CPU caches
  };

  explicit Fabric(FabricConfig config = FabricConfig());
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const { return config_; }
  Simulator& simulator() { return sim_; }

  Device* store_media() { return store_media_.get(); }
  Device* storage_proc() { return storage_proc_.get(); }
  Device* storage_nic() { return storage_nic_.get(); }
  Link* storage_uplink() { return storage_uplink_.get(); }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  ComputeNode& node(int i) { return nodes_[i]; }

  /// Clears simulator state and all link/device statistics (fresh run on the
  /// same topology).
  void Reset();

  /// Clears link/device byte and busy counters only; the virtual clock and
  /// per-element timing state survive. Used when chaining runs
  /// (ExecOptions::reset_fabric = false) so each run's report counts only
  /// its own traffic instead of double-counting earlier phases.
  void ResetMetrics();

  /// All links / all devices, for reporting.
  std::vector<Link*> AllLinks();
  std::vector<Device*> AllDevices();

  /// Attaches `tracer` to every device and link on the fabric (nullptr
  /// detaches). The fabric does not own the tracer; the caller keeps it
  /// alive while attached.
  void AttachTracer(trace::Tracer* tracer);
  trace::Tracer* tracer() { return tracer_; }

  /// Human-readable utilization report at the current sim time.
  std::string ReportString();

 private:
  FabricConfig config_;
  Simulator sim_;
  trace::Tracer* tracer_ = nullptr;
  std::unique_ptr<Device> store_media_;
  std::unique_ptr<Device> storage_proc_;
  std::unique_ptr<Device> storage_nic_;
  std::unique_ptr<Link> storage_uplink_;
  std::vector<ComputeNode> nodes_;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_FABRIC_H_
