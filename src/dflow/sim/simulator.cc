#include "dflow/sim/simulator.h"

#include "dflow/common/logging.h"

namespace dflow::sim {

void Simulator::ScheduleAt(SimTime time, std::function<void()> fn) {
  DFLOW_CHECK_GE(time, now_);
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

SimTime Simulator::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
  return now_;
}

bool Simulator::RunWithLimit(uint64_t max_events) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    if (executed >= max_events) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ++executed;
    ev.fn();
  }
  return true;
}

void Simulator::Reset() {
  now_ = 0;
  next_seq_ = 0;
  events_processed_ = 0;
  while (!queue_.empty()) queue_.pop();
}

}  // namespace dflow::sim
