#ifndef DFLOW_SIM_DEVICE_H_
#define DFLOW_SIM_DEVICE_H_

#include <array>
#include <cstdint>
#include <string>

#include "dflow/sim/cost_class.h"
#include "dflow/sim/simulator.h"

namespace dflow::trace {
class Tracer;
}

namespace dflow::sim {

class FaultInjector;

/// A processing element on the fabric: CPU core set, smart storage
/// processor, NIC processor, near-memory accelerator, or the storage media
/// controller itself.
///
/// The timing model is a serial server: work items execute back to back in
/// arrival order. Processing a batch of B bytes of cost class c takes
///   per_item_overhead_ns + B / rate(c)
/// and an unsupported cost class (rate 0) is a placement error the caller
/// must avoid (checked via Supports()).
class Device {
 public:
  struct Work {
    SimTime start;
    SimTime end;
  };

  Device(std::string name, SimTime per_item_overhead_ns = 0);

  const std::string& name() const { return name_; }

  /// Sets the throughput for one cost class, in gigabytes per second.
  /// A rate of 0 marks the class unsupported on this device.
  void SetRate(CostClass c, double gbps);

  /// Sets the same rate for all cost classes (convenience for CPU-like
  /// general-purpose devices; override specific classes afterwards).
  void SetAllRates(double gbps);

  double RateGbps(CostClass c) const;
  bool Supports(CostClass c) const { return RateBytesPerNs(c) > 0; }

  /// Nanoseconds this device needs for `bytes` of class `c` work, including
  /// per-item overhead. `factor` scales throughput (>1 = faster), letting
  /// operators express per-instance cost tweaks.
  SimTime CostNs(uint64_t bytes, CostClass c, double factor = 1.0) const;

  /// Reserves the device for a work item that becomes ready at `ready`.
  /// Serializes after any previously reserved work. Updates busy/byte
  /// counters.
  Work Process(SimTime ready, uint64_t bytes, CostClass c,
               double factor = 1.0);

  /// Earliest time a new work item could start.
  SimTime next_free() const { return next_free_; }

  uint64_t busy_ns() const { return busy_ns_; }
  uint64_t bytes_processed() const { return bytes_processed_; }
  uint64_t items_processed() const { return items_processed_; }
  uint64_t stalls() const { return stalls_; }
  SimTime stall_ns() const { return stall_ns_; }

  /// Attaches a fault injector; subsequent Process calls may be delayed by
  /// injected transient stalls. nullptr detaches.
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

  /// Attaches an event tracer; every Process emits a busy-interval span on
  /// this device's timeline track (and injected stalls an instant event).
  /// nullptr detaches. Tracing never changes timing.
  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Clears busy/byte/item/stall counters but keeps timing state
  /// (next_free), so chained runs report only their own work.
  void ResetMetrics();

  /// Full reset: metrics and timing state (fresh simulation).
  void ResetStats();

 private:
  double RateBytesPerNs(CostClass c) const;

  std::string name_;
  SimTime per_item_overhead_ns_;
  std::array<double, kNumCostClasses> rates_gbps_{};
  FaultInjector* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  SimTime next_free_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t bytes_processed_ = 0;
  uint64_t items_processed_ = 0;
  uint64_t stalls_ = 0;
  SimTime stall_ns_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_DEVICE_H_
