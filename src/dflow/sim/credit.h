#ifndef DFLOW_SIM_CREDIT_H_
#define DFLOW_SIM_CREDIT_H_

#include <algorithm>
#include <cstdint>

#include "dflow/common/logging.h"

namespace dflow::sim {

/// Sender-side credit counter implementing credit-based flow control (§7.1).
///
/// Each edge between pipeline stages has a bounded downstream queue. The
/// sender holds `capacity` credits; sending a chunk consumes one, and the
/// receiver returns it (over the reverse path, with latency) once the chunk
/// is dequeued for processing. A sender without credits must buffer locally
/// and stop pulling from its own upstream — backpressure propagates without
/// any global coordination, exactly as in the PCIe flow-control scheme the
/// paper cites.
class CreditGate {
 public:
  explicit CreditGate(uint32_t capacity)
      : capacity_(capacity), available_(capacity) {
    DFLOW_CHECK_GT(capacity, 0u);
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t available() const { return available_; }
  bool HasCredit() const { return available_ > 0; }

  /// Consumes a credit (sender is about to put a chunk in flight).
  void Acquire() {
    DFLOW_CHECK_GT(available_, 0u);
    --available_;
    in_flight_peak_ = std::max(in_flight_peak_, capacity_ - available_);
  }

  /// Returns a credit (receiver dequeued a chunk).
  void Release() {
    DFLOW_CHECK_LT(available_, capacity_);
    ++available_;
  }

  /// Highest number of chunks simultaneously in flight / queued downstream.
  /// Bounded by capacity — the memory guarantee credit flow control buys.
  uint32_t in_flight_peak() const { return in_flight_peak_; }

 private:
  uint32_t capacity_;
  uint32_t available_;
  uint32_t in_flight_peak_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_CREDIT_H_
