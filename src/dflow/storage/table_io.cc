#include "dflow/storage/table_io.h"

#include "dflow/encode/byte_io.h"

namespace dflow {

namespace {

constexpr uint32_t kTableMetaMagic = 0xDF70AB1EU;

std::string MetaKey(const std::string& name) { return "tables/" + name + "/meta"; }

std::string RowGroupKey(const std::string& name, size_t i) {
  return "tables/" + name + "/rg" + std::to_string(i);
}

void WriteValue(const Value& v, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  w->PutU8(v.is_null() ? 1 : 0);
  if (v.is_null()) return;
  switch (v.type()) {
    case DataType::kBool:
      w->PutU8(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt32:
      w->PutI32(v.int32_value());
      break;
    case DataType::kDate32:
      w->PutI32(v.date32_value());
      break;
    case DataType::kInt64:
      w->PutI64(v.int64_value());
      break;
    case DataType::kDouble:
      w->PutDouble(v.double_value());
      break;
    case DataType::kString:
      w->PutString(v.string_value());
      break;
  }
}

Status ReadValue(ByteReader* r, Value* out) {
  uint8_t type_byte = 0, null_byte = 0;
  DFLOW_RETURN_NOT_OK(r->GetU8(&type_byte));
  DFLOW_RETURN_NOT_OK(r->GetU8(&null_byte));
  const DataType type = static_cast<DataType>(type_byte);
  if (null_byte) {
    *out = Value::Null(type);
    return Status::OK();
  }
  switch (type) {
    case DataType::kBool: {
      uint8_t v = 0;
      DFLOW_RETURN_NOT_OK(r->GetU8(&v));
      *out = Value::Bool(v != 0);
      return Status::OK();
    }
    case DataType::kInt32: {
      int32_t v = 0;
      DFLOW_RETURN_NOT_OK(r->GetI32(&v));
      *out = Value::Int32(v);
      return Status::OK();
    }
    case DataType::kDate32: {
      int32_t v = 0;
      DFLOW_RETURN_NOT_OK(r->GetI32(&v));
      *out = Value::Date32(v);
      return Status::OK();
    }
    case DataType::kInt64: {
      int64_t v = 0;
      DFLOW_RETURN_NOT_OK(r->GetI64(&v));
      *out = Value::Int64(v);
      return Status::OK();
    }
    case DataType::kDouble: {
      double v = 0;
      DFLOW_RETURN_NOT_OK(r->GetDouble(&v));
      *out = Value::Double(v);
      return Status::OK();
    }
    case DataType::kString: {
      std::string s;
      DFLOW_RETURN_NOT_OK(r->GetString(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
  }
  return Status::OutOfRange("corrupt Value type byte");
}

void WriteZoneMap(const ZoneMap& zm, ByteWriter* w) {
  w->PutU8(zm.valid ? 1 : 0);
  w->PutU8(zm.has_nulls ? 1 : 0);
  if (zm.valid) {
    WriteValue(zm.min, w);
    WriteValue(zm.max, w);
  }
}

Status ReadZoneMap(ByteReader* r, ZoneMap* zm) {
  uint8_t valid = 0, has_nulls = 0;
  DFLOW_RETURN_NOT_OK(r->GetU8(&valid));
  DFLOW_RETURN_NOT_OK(r->GetU8(&has_nulls));
  zm->valid = valid != 0;
  zm->has_nulls = has_nulls != 0;
  if (zm->valid) {
    DFLOW_RETURN_NOT_OK(ReadValue(r, &zm->min));
    DFLOW_RETURN_NOT_OK(ReadValue(r, &zm->max));
  }
  return Status::OK();
}

}  // namespace

Status WriteTableToStore(const Table& table, ObjectStore* store) {
  std::vector<uint8_t> meta;
  ByteWriter w(&meta);
  w.PutU32(kTableMetaMagic);
  w.PutString(table.name());
  w.PutU32(static_cast<uint32_t>(table.schema().num_fields()));
  for (const Field& f : table.schema().fields()) {
    w.PutString(f.name);
    w.PutU8(static_cast<uint8_t>(f.type));
  }
  w.PutU32(static_cast<uint32_t>(table.num_row_groups()));
  for (size_t i = 0; i < table.num_row_groups(); ++i) {
    const RowGroup& rg = table.row_group(i);
    w.PutU32(rg.num_rows());
    // Data object: concatenated column payloads; directory records ranges.
    std::vector<uint8_t> data;
    for (size_t c = 0; c < rg.num_columns(); ++c) {
      const EncodedColumn& ec = rg.encoded_column(c);
      w.PutU64(static_cast<uint64_t>(data.size()));          // offset
      w.PutU64(static_cast<uint64_t>(ec.data.size()));       // length
      w.PutU8(static_cast<uint8_t>(ec.encoding));
      w.PutU8(static_cast<uint8_t>(ec.type));
      WriteZoneMap(rg.zone_map(c), &w);
      data.insert(data.end(), ec.data.begin(), ec.data.end());
    }
    DFLOW_RETURN_NOT_OK(store->Put(RowGroupKey(table.name(), i), std::move(data)));
  }
  return store->Put(MetaKey(table.name()), std::move(meta));
}

Result<StoredTableReader> StoredTableReader::Open(const ObjectStore* store,
                                                  const std::string& name) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<uint8_t> meta, store->Get(MetaKey(name)));
  ByteReader r(meta);
  uint32_t magic = 0;
  DFLOW_RETURN_NOT_OK(r.GetU32(&magic));
  if (magic != kTableMetaMagic) {
    return Status::IOError("bad table metadata magic for '" + name + "'");
  }
  StoredTableReader reader;
  reader.store_ = store;
  DFLOW_RETURN_NOT_OK(r.GetString(&reader.name_));
  uint32_t num_fields = 0;
  DFLOW_RETURN_NOT_OK(r.GetU32(&num_fields));
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    Field f;
    DFLOW_RETURN_NOT_OK(r.GetString(&f.name));
    uint8_t type_byte = 0;
    DFLOW_RETURN_NOT_OK(r.GetU8(&type_byte));
    f.type = static_cast<DataType>(type_byte);
    fields.push_back(std::move(f));
  }
  reader.schema_ = Schema(std::move(fields));
  uint32_t num_row_groups = 0;
  DFLOW_RETURN_NOT_OK(r.GetU32(&num_row_groups));
  reader.row_groups_.resize(num_row_groups);
  for (uint32_t i = 0; i < num_row_groups; ++i) {
    RowGroupMeta& rgm = reader.row_groups_[i];
    DFLOW_RETURN_NOT_OK(r.GetU32(&rgm.num_rows));
    rgm.columns.resize(num_fields);
    rgm.zones.resize(num_fields);
    for (uint32_t c = 0; c < num_fields; ++c) {
      ColumnLocation& loc = rgm.columns[c];
      DFLOW_RETURN_NOT_OK(r.GetU64(&loc.offset));
      DFLOW_RETURN_NOT_OK(r.GetU64(&loc.length));
      uint8_t enc = 0, type_byte = 0;
      DFLOW_RETURN_NOT_OK(r.GetU8(&enc));
      DFLOW_RETURN_NOT_OK(r.GetU8(&type_byte));
      loc.encoding = static_cast<Encoding>(enc);
      loc.type = static_cast<DataType>(type_byte);
      DFLOW_RETURN_NOT_OK(ReadZoneMap(&r, &rgm.zones[c]));
    }
  }
  return reader;
}

Result<EncodedColumn> StoredTableReader::ReadColumn(size_t row_group,
                                                    size_t column) const {
  if (row_group >= row_groups_.size()) {
    return Status::OutOfRange("row group index out of range");
  }
  const RowGroupMeta& rgm = row_groups_[row_group];
  if (column >= rgm.columns.size()) {
    return Status::OutOfRange("column index out of range");
  }
  const ColumnLocation& loc = rgm.columns[column];
  DFLOW_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      store_->GetRange(RowGroupKey(name_, row_group), loc.offset, loc.length));
  EncodedColumn ec;
  ec.type = loc.type;
  ec.encoding = loc.encoding;
  ec.num_rows = rgm.num_rows;
  ec.data = std::move(bytes);
  return ec;
}

Result<ColumnVector> StoredTableReader::ReadDecodedColumn(size_t row_group,
                                                          size_t column) const {
  DFLOW_ASSIGN_OR_RETURN(EncodedColumn ec, ReadColumn(row_group, column));
  return DecodeColumn(ec);
}

Result<Table> ReadTableFromStore(const ObjectStore& store,
                                 const std::string& name) {
  DFLOW_ASSIGN_OR_RETURN(StoredTableReader reader,
                         StoredTableReader::Open(&store, name));
  std::vector<RowGroup> row_groups;
  row_groups.reserve(reader.num_row_groups());
  for (size_t i = 0; i < reader.num_row_groups(); ++i) {
    const auto& rgm = reader.row_group_meta(i);
    std::vector<EncodedColumn> columns;
    columns.reserve(rgm.columns.size());
    for (size_t c = 0; c < rgm.columns.size(); ++c) {
      DFLOW_ASSIGN_OR_RETURN(EncodedColumn ec, reader.ReadColumn(i, c));
      columns.push_back(std::move(ec));
    }
    row_groups.emplace_back(rgm.num_rows, std::move(columns), rgm.zones);
  }
  return Table(reader.name(), reader.schema(), std::move(row_groups));
}

}  // namespace dflow
