#include "dflow/storage/object_store.h"

#include "dflow/sim/fault.h"

namespace dflow {

bool ObjectStore::InjectRequestFailure() const {
  if (fault_ == nullptr) return false;
  if (!fault_->NextStorageRequestFails("object_store")) return false;
  stats_.io_errors++;
  return true;
}

Status ObjectStore::Put(const std::string& key, std::vector<uint8_t> data) {
  stats_.put_requests++;
  stats_.bytes_written += data.size();
  objects_[key] = std::move(data);
  return Status::OK();
}

Result<std::vector<uint8_t>> ObjectStore::Get(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("object '" + key + "' not found");
  }
  stats_.get_requests++;
  if (InjectRequestFailure()) {
    return Status::IOError("GET '" + key + "' failed (injected fault)");
  }
  stats_.bytes_read += it->second.size();
  return it->second;
}

Result<std::vector<uint8_t>> ObjectStore::GetRange(const std::string& key,
                                                   uint64_t offset,
                                                   uint64_t length) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("object '" + key + "' not found");
  }
  if (offset + length > it->second.size()) {
    return Status::OutOfRange("range beyond object size");
  }
  stats_.get_requests++;
  if (InjectRequestFailure()) {
    return Status::IOError("GET range '" + key + "' failed (injected fault)");
  }
  stats_.bytes_read += length;
  return std::vector<uint8_t>(it->second.begin() + offset,
                              it->second.begin() + offset + length);
}

Result<std::vector<uint8_t>> ObjectStore::GetWithRetry(
    const std::string& key, uint32_t max_retries) const {
  Result<std::vector<uint8_t>> r = Get(key);
  for (uint32_t i = 0;
       i < max_retries && !r.ok() && r.status().code() == StatusCode::kIOError;
       ++i) {
    stats_.retries++;
    r = Get(key);
  }
  return r;
}

Result<std::vector<uint8_t>> ObjectStore::GetRangeWithRetry(
    const std::string& key, uint64_t offset, uint64_t length,
    uint32_t max_retries) const {
  Result<std::vector<uint8_t>> r = GetRange(key, offset, length);
  for (uint32_t i = 0;
       i < max_retries && !r.ok() && r.status().code() == StatusCode::kIOError;
       ++i) {
    stats_.retries++;
    r = GetRange(key, offset, length);
  }
  return r;
}

Result<uint64_t> ObjectStore::Size(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("object '" + key + "' not found");
  }
  return static_cast<uint64_t>(it->second.size());
}

bool ObjectStore::Exists(const std::string& key) const {
  return objects_.count(key) > 0;
}

std::vector<std::string> ObjectStore::List(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

Status ObjectStore::Delete(const std::string& key) {
  if (objects_.erase(key) == 0) {
    return Status::NotFound("object '" + key + "' not found");
  }
  return Status::OK();
}

uint64_t ObjectStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [key, data] : objects_) {
    total += data.size();
  }
  return total;
}

}  // namespace dflow
