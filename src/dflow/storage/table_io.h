#ifndef DFLOW_STORAGE_TABLE_IO_H_
#define DFLOW_STORAGE_TABLE_IO_H_

#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/storage/object_store.h"
#include "dflow/storage/table.h"

namespace dflow {

/// Table <-> object-store persistence.
///
/// Layout (one table = one metadata object + one data object per row group):
///   tables/<name>/meta   schema, row-group directory, zone maps,
///                        per-column (offset, length, encoding) entries
///   tables/<name>/rg<i>  concatenated encoded column payloads
///
/// Because every column's byte range is in the directory, a reader can fetch
/// a single column of a single row group with one ranged GET — which is what
/// makes storage-side projection pushdown meaningful: unprojected columns
/// never leave the device.
Status WriteTableToStore(const Table& table, ObjectStore* store);

/// Reads the whole table back (metadata + all row groups).
Result<Table> ReadTableFromStore(const ObjectStore& store,
                                 const std::string& name);

/// Column-granular reader over a stored table. Opens the metadata once and
/// then serves ranged reads.
class StoredTableReader {
 public:
  /// Per-column location within a row-group data object.
  struct ColumnLocation {
    uint64_t offset = 0;
    uint64_t length = 0;
    Encoding encoding = Encoding::kPlain;
    DataType type = DataType::kInt64;
  };

  /// Row-group directory entry.
  struct RowGroupMeta {
    uint32_t num_rows = 0;
    std::vector<ColumnLocation> columns;
    std::vector<ZoneMap> zones;
  };

  static Result<StoredTableReader> Open(const ObjectStore* store,
                                        const std::string& name);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return row_groups_.size(); }
  const RowGroupMeta& row_group_meta(size_t i) const { return row_groups_[i]; }

  /// Fetches and returns one encoded column via a ranged GET.
  Result<EncodedColumn> ReadColumn(size_t row_group, size_t column) const;

  /// Fetches and decodes one column.
  Result<ColumnVector> ReadDecodedColumn(size_t row_group,
                                         size_t column) const;

 private:
  StoredTableReader() = default;

  const ObjectStore* store_ = nullptr;
  std::string name_;
  Schema schema_;
  std::vector<RowGroupMeta> row_groups_;
};

}  // namespace dflow

#endif  // DFLOW_STORAGE_TABLE_IO_H_
