#include "dflow/storage/table.h"

#include "dflow/common/logging.h"

namespace dflow {

Result<ColumnVector> RowGroup::DecodeColumnAt(size_t i) const {
  if (i >= columns_.size()) {
    return Status::OutOfRange("column index out of range");
  }
  return DecodeColumn(columns_[i]);
}

Result<std::vector<DataChunk>> RowGroup::DecodeChunks(
    const std::vector<size_t>& indices) const {
  std::vector<ColumnVector> full_columns;
  full_columns.reserve(indices.size());
  for (size_t idx : indices) {
    DFLOW_ASSIGN_OR_RETURN(ColumnVector col, DecodeColumnAt(idx));
    full_columns.push_back(std::move(col));
  }
  std::vector<DataChunk> out;
  const size_t n = num_rows_;
  for (size_t start = 0; start < n; start += kVectorSize) {
    const size_t count = std::min(kVectorSize, n - start);
    SelectionVector sel;
    for (size_t r = 0; r < count; ++r) {
      sel.Append(static_cast<uint32_t>(start + r));
    }
    std::vector<ColumnVector> cols;
    cols.reserve(full_columns.size());
    for (const ColumnVector& col : full_columns) {
      cols.push_back(col.Gather(sel));
    }
    out.emplace_back(std::move(cols));
  }
  return out;
}

uint64_t RowGroup::EncodedBytes(const std::vector<size_t>& indices) const {
  uint64_t bytes = 0;
  for (size_t idx : indices) {
    DFLOW_CHECK_LT(idx, columns_.size());
    bytes += columns_[idx].ByteSize();
  }
  return bytes;
}

uint64_t RowGroup::EncodedBytes() const {
  uint64_t bytes = 0;
  for (const EncodedColumn& col : columns_) {
    bytes += col.ByteSize();
  }
  return bytes;
}

Table::Table(std::string name, Schema schema, std::vector<RowGroup> row_groups)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      row_groups_(std::move(row_groups)) {
  table_zones_.resize(schema_.num_fields());
  for (const RowGroup& rg : row_groups_) {
    num_rows_ += rg.num_rows();
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      table_zones_[c].Merge(rg.zone_map(c));
    }
  }
}

uint64_t Table::EncodedBytes() const {
  uint64_t bytes = 0;
  for (const RowGroup& rg : row_groups_) {
    bytes += rg.EncodedBytes();
  }
  return bytes;
}

Result<std::vector<DataChunk>> Table::ToChunks() const {
  std::vector<size_t> all(schema_.num_fields());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<DataChunk> out;
  for (const RowGroup& rg : row_groups_) {
    DFLOW_ASSIGN_OR_RETURN(std::vector<DataChunk> chunks,
                           rg.DecodeChunks(all));
    for (DataChunk& chunk : chunks) out.push_back(std::move(chunk));
  }
  return out;
}

TableBuilder::TableBuilder(std::string name, Schema schema,
                           size_t row_group_size)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      row_group_size_(row_group_size),
      pending_(DataChunk::EmptyFromSchema(schema_)) {
  DFLOW_CHECK_GT(row_group_size_, 0u);
}

Status TableBuilder::Append(const DataChunk& chunk) {
  if (chunk.num_columns() != schema_.num_fields()) {
    return Status::InvalidArgument("chunk arity does not match schema");
  }
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    if (chunk.column(c).type() != schema_.field(c).type) {
      return Status::InvalidArgument(
          "chunk column type mismatch at column " + std::to_string(c));
    }
  }
  if (!chunk.IsWellFormed()) {
    return Status::InvalidArgument("chunk columns have unequal lengths");
  }
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    pending_.AppendRowFrom(chunk, r);
    if (pending_.num_rows() >= row_group_size_) {
      DFLOW_RETURN_NOT_OK(FlushRowGroup());
    }
  }
  return Status::OK();
}

Status TableBuilder::FlushRowGroup() {
  if (pending_.num_rows() == 0) return Status::OK();
  std::vector<EncodedColumn> encoded;
  std::vector<ZoneMap> zones;
  encoded.reserve(pending_.num_columns());
  zones.reserve(pending_.num_columns());
  for (size_t c = 0; c < pending_.num_columns(); ++c) {
    const ColumnVector& col = pending_.column(c);
    const Encoding enc = ChooseEncoding(col);
    DFLOW_ASSIGN_OR_RETURN(EncodedColumn ec, EncodeColumn(col, enc));
    encoded.push_back(std::move(ec));
    zones.push_back(ZoneMap::Compute(col));
  }
  row_groups_.emplace_back(static_cast<uint32_t>(pending_.num_rows()),
                           std::move(encoded), std::move(zones));
  pending_ = DataChunk::EmptyFromSchema(schema_);
  return Status::OK();
}

Result<Table> TableBuilder::Finish() {
  DFLOW_RETURN_NOT_OK(FlushRowGroup());
  return Table(std::move(name_), std::move(schema_), std::move(row_groups_));
}

}  // namespace dflow
