#include "dflow/storage/catalog.h"

namespace dflow {

Status Catalog::Register(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register null table");
  }
  if (table->name().empty()) {
    return Status::InvalidArgument("table must have a name");
  }
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace dflow
