#ifndef DFLOW_STORAGE_OBJECT_STORE_H_
#define DFLOW_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dflow/common/result.h"

namespace dflow {

namespace sim {
class FaultInjector;
}  // namespace sim

/// Simulated disaggregated object store (the S3-like layer of §3.2).
///
/// Semantics follow cloud object stores: immutable whole-object PUT, GET and
/// ranged GET, list by prefix. Every request is counted — the store is the
/// origin of the "systems charge for the amount of data read from storage"
/// observation, and benches read these counters directly. Latency/bandwidth
/// costs are charged by the fabric simulator (the store itself is
/// time-agnostic; sim::Fabric wraps it in a storage device).
class ObjectStore {
 public:
  struct Stats {
    uint64_t put_requests = 0;
    uint64_t get_requests = 0;
    uint64_t bytes_written = 0;
    uint64_t bytes_read = 0;
    uint64_t io_errors = 0;  // injected request failures served
    uint64_t retries = 0;    // re-issues by the *WithRetry wrappers
  };

  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Stores an immutable object. Overwriting an existing key replaces it
  /// (last-writer-wins, as in S3).
  Status Put(const std::string& key, std::vector<uint8_t> data);

  /// Whole-object read.
  Result<std::vector<uint8_t>> Get(const std::string& key) const;

  /// Ranged read: bytes [offset, offset + length). The range must lie within
  /// the object.
  Result<std::vector<uint8_t>> GetRange(const std::string& key,
                                        uint64_t offset,
                                        uint64_t length) const;

  /// Like Get/GetRange, but re-issues the request up to `max_retries` times
  /// when it fails with an injected kIOError — the client-side retry every
  /// real object-store SDK performs. Other errors (NotFound, OutOfRange) are
  /// not retried.
  Result<std::vector<uint8_t>> GetWithRetry(const std::string& key,
                                            uint32_t max_retries = 4) const;
  Result<std::vector<uint8_t>> GetRangeWithRetry(const std::string& key,
                                                 uint64_t offset,
                                                 uint64_t length,
                                                 uint32_t max_retries = 4) const;

  /// Object size without transferring data (HEAD request; not counted as a
  /// data-bearing GET).
  Result<uint64_t> Size(const std::string& key) const;

  bool Exists(const std::string& key) const;

  /// All keys with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  Status Delete(const std::string& key);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Arms request-level fault injection: data-bearing GETs consult the
  /// injector and fail with kIOError when it says so (null detaches).
  void SetFaultInjector(sim::FaultInjector* fault) { fault_ = fault; }

  /// Total bytes at rest across all objects.
  uint64_t TotalBytes() const;

 private:
  /// Charges one data-bearing request against the injector; true = fail it.
  bool InjectRequestFailure() const;

  std::map<std::string, std::vector<uint8_t>> objects_;
  mutable Stats stats_;
  sim::FaultInjector* fault_ = nullptr;
};

}  // namespace dflow

#endif  // DFLOW_STORAGE_OBJECT_STORE_H_
