#include "dflow/storage/zone_map.h"

namespace dflow {

ZoneMap ZoneMap::Compute(const ColumnVector& col) {
  ZoneMap zm;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsValid(i)) {
      zm.has_nulls = true;
      continue;
    }
    Value v = col.GetValue(i);
    if (!zm.valid) {
      zm.min = v;
      zm.max = v;
      zm.valid = true;
    } else {
      if (v.Compare(zm.min) < 0) zm.min = v;
      if (v.Compare(zm.max) > 0) zm.max = std::move(v);
    }
  }
  return zm;
}

bool ZoneMap::MayMatch(CompareOp op, const Value& constant) const {
  if (!valid) return has_nulls;  // all-null zones can't match any comparison
  if (constant.is_null()) return false;
  switch (op) {
    case CompareOp::kEq:
      return min.Compare(constant) <= 0 && max.Compare(constant) >= 0;
    case CompareOp::kNe:
      // Only prunable when every value equals the constant.
      return !(min.Compare(constant) == 0 && max.Compare(constant) == 0);
    case CompareOp::kLt:
      return min.Compare(constant) < 0;
    case CompareOp::kLe:
      return min.Compare(constant) <= 0;
    case CompareOp::kGt:
      return max.Compare(constant) > 0;
    case CompareOp::kGe:
      return max.Compare(constant) >= 0;
  }
  return true;
}

void ZoneMap::Merge(const ZoneMap& other) {
  has_nulls = has_nulls || other.has_nulls;
  if (!other.valid) return;
  if (!valid) {
    *this = other;
    return;
  }
  if (other.min.Compare(min) < 0) min = other.min;
  if (other.max.Compare(max) > 0) max = other.max;
}

}  // namespace dflow
