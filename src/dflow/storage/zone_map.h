#ifndef DFLOW_STORAGE_ZONE_MAP_H_
#define DFLOW_STORAGE_ZONE_MAP_H_

#include "dflow/types/value.h"
#include "dflow/vector/kernels.h"

namespace dflow {

/// Min/max statistics for one column of one row group. Zone maps are the
/// cloud-native replacement for indexes the paper mentions (§2.1): they let
/// both the compute-side planner and the storage-side processor skip row
/// groups without reading them.
struct ZoneMap {
  Value min;
  Value max;
  bool has_nulls = false;
  bool valid = false;  // false until computed over at least one row

  /// Computes the zone map over a column.
  static ZoneMap Compute(const ColumnVector& col);

  /// Conservatively answers "could any row in this zone satisfy
  /// `col op constant`?". Returns true when unknown.
  bool MayMatch(CompareOp op, const Value& constant) const;

  /// Merges another zone map into this one (for table-level stats).
  void Merge(const ZoneMap& other);
};

}  // namespace dflow

#endif  // DFLOW_STORAGE_ZONE_MAP_H_
