#ifndef DFLOW_STORAGE_TABLE_H_
#define DFLOW_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/encode/encoding.h"
#include "dflow/storage/zone_map.h"
#include "dflow/types/schema.h"
#include "dflow/vector/data_chunk.h"

namespace dflow {

/// Default number of rows per row group.
inline constexpr size_t kDefaultRowGroupSize = 65536;

/// A horizontal partition of a table: each column encoded independently, with
/// a zone map per column. Row groups are the unit of storage-side pruning
/// and of scan parallelism.
class RowGroup {
 public:
  RowGroup() = default;
  RowGroup(uint32_t num_rows, std::vector<EncodedColumn> columns,
           std::vector<ZoneMap> zones)
      : num_rows_(num_rows),
        columns_(std::move(columns)),
        zones_(std::move(zones)) {}

  uint32_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const EncodedColumn& encoded_column(size_t i) const { return columns_[i]; }
  const ZoneMap& zone_map(size_t i) const { return zones_[i]; }

  /// Decodes one column to a full vector.
  Result<ColumnVector> DecodeColumnAt(size_t i) const;

  /// Decodes the given columns into a chunk-sized batch sequence. `indices`
  /// selects and orders the output columns.
  Result<std::vector<DataChunk>> DecodeChunks(
      const std::vector<size_t>& indices) const;

  /// Encoded (on-wire/at-rest) size of the selected columns.
  uint64_t EncodedBytes(const std::vector<size_t>& indices) const;
  uint64_t EncodedBytes() const;

 private:
  uint32_t num_rows_ = 0;
  std::vector<EncodedColumn> columns_;
  std::vector<ZoneMap> zones_;
};

/// An immutable columnar table: schema + row groups. Build with TableBuilder.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema, std::vector<RowGroup> row_groups);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return row_groups_.size(); }
  const RowGroup& row_group(size_t i) const { return row_groups_[i]; }
  uint64_t num_rows() const { return num_rows_; }

  /// Table-level zone map for a column (merged across row groups).
  const ZoneMap& table_zone_map(size_t col) const { return table_zones_[col]; }

  /// Total encoded bytes (the table's at-rest footprint).
  uint64_t EncodedBytes() const;

  /// Decodes the entire table into chunks (test/debug convenience).
  Result<std::vector<DataChunk>> ToChunks() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<RowGroup> row_groups_;
  std::vector<ZoneMap> table_zones_;
  uint64_t num_rows_ = 0;
};

/// Accumulates chunks and cuts them into encoded row groups.
class TableBuilder {
 public:
  TableBuilder(std::string name, Schema schema,
               size_t row_group_size = kDefaultRowGroupSize);

  /// Appends a chunk; its columns must match the schema arity and types.
  Status Append(const DataChunk& chunk);

  /// Finalizes and returns the table. The builder is consumed.
  Result<Table> Finish();

 private:
  Status FlushRowGroup();

  std::string name_;
  Schema schema_;
  size_t row_group_size_;
  DataChunk pending_;
  std::vector<RowGroup> row_groups_;
};

}  // namespace dflow

#endif  // DFLOW_STORAGE_TABLE_H_
