#ifndef DFLOW_STORAGE_CATALOG_H_
#define DFLOW_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/storage/table.h"

namespace dflow {

/// Name -> table registry shared by planner and executors. Tables are
/// immutable and shared; registration replaces any previous entry.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status Register(std::shared_ptr<Table> table);

  Result<std::shared_ptr<Table>> Lookup(const std::string& name) const;

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace dflow

#endif  // DFLOW_STORAGE_CATALOG_H_
