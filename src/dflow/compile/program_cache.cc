#include "dflow/compile/program_cache.h"

#include <utility>

#include "dflow/common/logging.h"

namespace dflow::compile {

ProgramCache::ProgramCache(size_t capacity) : capacity_(capacity) {
  DFLOW_CHECK(capacity_ > 0);
}

std::shared_ptr<CompiledQuery> ProgramCache::Lookup(const CacheKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recently-used
  return lru_.front().entry;
}

void ProgramCache::Insert(const CacheKey& key,
                          std::shared_ptr<CompiledQuery> entry) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ProgramCache::InvalidateStaleEpochs(uint64_t current_epoch) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.fabric_epoch < current_epoch) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

}  // namespace dflow::compile
