#include "dflow/compile/program.h"

#include <sstream>
#include <utility>

#include "dflow/common/hash.h"
#include "dflow/plan/fingerprint.h"

namespace dflow::compile {

std::string_view OpCodeToString(OpCode code) {
  switch (code) {
    case OpCode::kDecode:
      return "DECODE";
    case OpCode::kFilter:
      return "FILTER";
    case OpCode::kProject:
      return "PROJECT";
    case OpCode::kPartialAgg:
      return "PARTIAL_AGG";
    case OpCode::kFinalAgg:
      return "FINAL_AGG";
    case OpCode::kCompleteAgg:
      return "COMPLETE_AGG";
    case OpCode::kCount:
      return "COUNT";
    case OpCode::kSort:
      return "SORT";
    case OpCode::kLimit:
      return "LIMIT";
    case OpCode::kEncode:
      return "ENCODE";
    case OpCode::kReDecode:
      return "REDECODE";
  }
  return "UNKNOWN";
}

namespace {

/// Renders one literal with its type tag, e.g. "date32:9496". NULLs carry
/// only the type so the pool stays unambiguous.
std::string LiteralToString(const Value& v) {
  std::string out(DataTypeToString(v.type()));
  out += ":";
  out += v.is_null() ? "null" : v.ToString();
  return out;
}

/// Renders a resolved expression with literals replaced by their parameter
/// slots ("lit[3]"), matching `slots` in pre-order — the bytecode view of
/// the expression, separating plan shape from the bound constants.
void AppendExprWithSlots(const Expr& e, const std::vector<uint32_t>& slots,
                         size_t* next_slot, std::ostream& os) {
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      os << "lit[" << slots[(*next_slot)++] << "]";
      return;
    case Expr::Kind::kColumnRef:
      os << "col[" << e.column_index() << "]";
      return;
    default:
      break;
  }
  // Structural nodes: render operator name then children in order.
  switch (e.kind()) {
    case Expr::Kind::kCompare:
      os << "cmp" << static_cast<int>(e.compare_op());
      break;
    case Expr::Kind::kArith:
      os << "arith" << static_cast<int>(e.arith_op());
      break;
    case Expr::Kind::kLike:
      os << "like'" << e.pattern() << "'";
      break;
    case Expr::Kind::kAnd:
      os << "and";
      break;
    case Expr::Kind::kOr:
      os << "or";
      break;
    case Expr::Kind::kNot:
      os << "not";
      break;
    default:
      break;
  }
  os << "(";
  for (size_t i = 0; i < e.children().size(); ++i) {
    if (i > 0) os << ",";
    AppendExprWithSlots(*e.children()[i], slots, next_slot, os);
  }
  os << ")";
}

}  // namespace

std::shared_ptr<const DflowProgram> DflowProgram::Builder::Build() && {
  auto program = std::shared_ptr<DflowProgram>(new DflowProgram());
  program->spec_ = std::move(spec);
  program->table_ = std::move(table);
  program->scan_columns_ = std::move(scan_columns);
  program->scan_schema_ = std::move(scan_schema);
  program->filter_ = std::move(filter);
  program->projections_ = std::move(projections);
  program->ops_ = std::move(ops);
  program->fused_groups_ = std::move(fused_groups);
  program->literals_ = std::move(literals);
  program->placement_ = std::move(placement);
  program->credits_ = credits;
  program->demand_ = demand;
  program->verify_stamp_ = std::move(verify_stamp);
  program->plan_fingerprint_ = plan_fingerprint;
  program->fabric_epoch_ = fabric_epoch;
  program->verifier_version_ = verifier_version;
  program->compile_cost_ns_ = compile_cost_ns;
  program->fingerprint_ = HashString(program->SerializeToString());
  return program;
}

std::string DflowProgram::SerializeToString() const {
  std::ostringstream os;
  os << "dflow-program v1\n";
  os << "plan_fingerprint " << plan_fingerprint_ << "\n";
  os << "verifier_version " << verifier_version_ << "\n";
  // The fabric epoch is deliberately NOT serialized: the artifact encodes
  // the plan, not when it was compiled — two compiles of the same plan in
  // different epochs must stay byte-identical (epoch freshness is the
  // cache key's job).
  os << "table " << spec_.table << "\n";
  os << "scan";
  for (const std::string& c : scan_columns_) os << " " << c;
  os << "\n";
  os << "placement " << placement_.name;
  for (Site s : placement_.sites) os << " " << SiteToString(s);
  os << "\n";
  os << "credits " << credits_ << "\n";
  os << "literals " << literals_.size() << "\n";
  for (size_t i = 0; i < literals_.size(); ++i) {
    os << "  lit[" << i << "] " << LiteralToString(literals_[i]) << "\n";
  }
  os << "ops " << ops_.size() << "\n";
  for (size_t i = 0; i < ops_.size(); ++i) {
    const ProgramOp& op = ops_[i];
    os << "  [" << i << "] " << OpCodeToString(op.code) << " @"
       << SiteToString(op.site);
    if (op.code == OpCode::kFilter && filter_ != nullptr) {
      size_t next = 0;
      os << " pred=";
      AppendExprWithSlots(*filter_, op.literal_slots, &next, os);
    } else if (op.code == OpCode::kProject) {
      size_t next = 0;
      os << " exprs=";
      for (size_t p = 0; p < projections_.size(); ++p) {
        if (p > 0) os << ";";
        AppendExprWithSlots(*projections_[p], op.literal_slots, &next, os);
      }
    }
    os << " -> " << op.output_schema.ToString() << "\n";
  }
  os << "fused " << fused_groups_.size() << "\n";
  for (const FusedGroup& g : fused_groups_) {
    os << "  [" << g.first << ".." << (g.first + g.count - 1) << "]\n";
  }
  os << "demand makespan_ns=" << static_cast<uint64_t>(demand_.makespan_ns)
     << " network_bytes=" << demand_.network_bytes
     << " interconnect_bytes=" << demand_.interconnect_bytes
     << " membus_bytes=" << demand_.membus_bytes << "\n";
  os << "verify errors=" << verify_stamp_.num_errors()
     << " warnings=" << verify_stamp_.num_warnings() << "\n";
  return os.str();
}

}  // namespace dflow::compile
