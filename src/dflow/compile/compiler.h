#ifndef DFLOW_COMPILE_COMPILER_H_
#define DFLOW_COMPILE_COMPILER_H_

#include <cstdint>

// The plan compiler's entry points are Engine methods (Engine::CompilePlan,
// Engine::CompileVariant, Engine::Compile, Engine::ExecuteProgram,
// Engine::BuildProgramPipeline — see engine.h); their implementation lives
// in this subsystem (compiler.cc) because lowering needs the engine's
// private query preparation. This header carries the compiler's modeled
// cost constants, shared by the serving loop's cache accounting and the
// bench gates.

namespace dflow::compile {

/// Modeled virtual-time cost of planning and compilation, in nanoseconds.
/// These are *accounting* constants, not simulation events: admission
/// timing on the fabric is unchanged, but every admission adds the costs it
/// actually incurred to the service report's cache counters, which is what
/// makes "warm-path planning cost ~ 0" a gateable, deterministic number.
/// Magnitudes are loosely calibrated to a query-optimizer profile: parsing
/// + resolution tens of microseconds, per-variant costing microseconds,
/// verification per graph element, cache lookup sub-microsecond.
inline constexpr uint64_t kPlanPrepareCostNs = 20'000;
/// Sizing scan the optimizer runs to learn encoded/decoded byte counts.
inline constexpr uint64_t kPlanScanSizingCostNs = 50'000;
inline constexpr uint64_t kPlanPerVariantCostNs = 5'000;
inline constexpr uint64_t kLowerPerOpCostNs = 1'000;
inline constexpr uint64_t kVerifyPerStageCostNs = 2'000;
inline constexpr uint64_t kVerifyPerEdgeCostNs = 1'000;
inline constexpr uint64_t kCacheLookupCostNs = 500;

}  // namespace dflow::compile

#endif  // DFLOW_COMPILE_COMPILER_H_
