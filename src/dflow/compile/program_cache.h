#ifndef DFLOW_COMPILE_PROGRAM_CACHE_H_
#define DFLOW_COMPILE_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dflow/compile/program.h"
#include "dflow/opt/placement.h"

namespace dflow::compile {

/// What a cache entry is filed under: the plan's identity plus the compile
/// environment. A device-health/quarantine change bumps the engine's fabric
/// epoch, so every program verified against the old health registry becomes
/// unreachable (and is swept by InvalidateStaleEpochs) rather than served
/// stale; a verifier-catalogue change strands old stamps the same way.
struct CacheKey {
  uint64_t plan_fingerprint = 0;
  uint64_t fabric_epoch = 0;
  int verifier_version = 0;
  /// Compute node the program was compiled for. The epoch above is that
  /// node's epoch (Engine::fabric_epoch(node)), so a health change on one
  /// cluster node never strands another node's entries.
  int node = 0;

  bool operator<(const CacheKey& o) const {
    if (plan_fingerprint != o.plan_fingerprint) {
      return plan_fingerprint < o.plan_fingerprint;
    }
    if (fabric_epoch != o.fabric_epoch) return fabric_epoch < o.fabric_epoch;
    if (verifier_version != o.verifier_version) {
      return verifier_version < o.verifier_version;
    }
    return node < o.node;
  }
};

/// One cached plan: the ranked variant table from placement enumeration
/// (the expensive part of admission — it sizes the scan and costs every
/// monotone site assignment) plus the programs lowered so far, one per
/// variant actually chosen under live contention. Programs are compiled
/// lazily: the first admission that steers to a new variant pays one
/// lowering (counted as a recompile, not a miss), repeats of it are free.
struct CompiledQuery {
  uint64_t plan_fingerprint = 0;
  uint64_t fabric_epoch = 0;
  /// The plan itself — the retry path recompiles the CPU-only fallback
  /// from here without going back to the tenant's template.
  QuerySpec spec;
  std::vector<RankedPlacement> variants;
  /// The forced extremes, precomputed so a pinned admission (retry,
  /// brownout FORCE_CHEAP) needs no re-preparation to resolve them.
  Placement cpu_only;
  Placement full_offload;
  /// Modeled virtual-time cost of planning (prepare + scan sizing +
  /// per-variant cost-model evaluation); what a cache hit saves.
  uint64_t plan_cost_ns = 0;
  /// Programs by placement (variant) name; deterministic iteration order.
  std::map<std::string, ProgramPtr> programs;

  ProgramPtr ProgramFor(const std::string& variant_name) const {
    auto it = programs.find(variant_name);
    return it == programs.end() ? nullptr : it->second;
  }
};

/// Admission-outcome and bookkeeping counters. `hits`/`misses`/`recompiles`
/// are classified by the caller (the serving loop knows whether a lookup
/// was a repeat admission, a first sight, or a degraded retry);
/// `evictions`/`invalidations` are the cache's own.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t recompiles = 0;
  uint64_t invalidations = 0;
};

/// LRU cache of compiled plans, keyed by plan fingerprint + fabric epoch +
/// verifier version. Single-threaded like the rest of the serving loop;
/// fully deterministic (recency order is usage order, ties impossible).
class ProgramCache {
 public:
  explicit ProgramCache(size_t capacity = 64);

  /// Returns the entry and marks it most-recently-used; null when absent.
  /// Does not classify hit/miss — callers do, via the Count* methods.
  std::shared_ptr<CompiledQuery> Lookup(const CacheKey& key);

  /// Inserts (or replaces) the entry, evicting the least-recently-used
  /// entry when over capacity.
  void Insert(const CacheKey& key, std::shared_ptr<CompiledQuery> entry);

  /// Drops every entry whose epoch predates `current_epoch` (device-health
  /// change); each dropped entry counts as an invalidation, not an
  /// eviction.
  void InvalidateStaleEpochs(uint64_t current_epoch);

  void CountHit() { ++stats_.hits; }
  void CountMiss() { ++stats_.misses; }
  void CountRecompile() { ++stats_.recompiles; }

  const CacheStats& stats() const { return stats_; }
  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    CacheKey key;
    std::shared_ptr<CompiledQuery> entry;
  };

  size_t capacity_;
  /// Most-recently-used at the front.
  std::list<Slot> lru_;
  std::map<CacheKey, std::list<Slot>::iterator> index_;
  CacheStats stats_;
};

}  // namespace dflow::compile

#endif  // DFLOW_COMPILE_PROGRAM_CACHE_H_
