#ifndef DFLOW_COMPILE_PROGRAM_H_
#define DFLOW_COMPILE_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dflow/opt/placement.h"
#include "dflow/plan/expr.h"
#include "dflow/plan/query_spec.h"
#include "dflow/storage/table.h"
#include "dflow/types/schema.h"
#include "dflow/types/value.h"
#include "dflow/verify/verify_report.h"

namespace dflow::compile {

/// Opcode of one lowered pipeline stage. The list is the *final* stage
/// sequence after plan normalization: a CPU-placed partial aggregate has
/// already been collapsed into a single kCompleteAgg, and the optional
/// uplink-recompression pair (kEncode / kReDecode) has been inserted. A
/// program is therefore position-for-position what the dataflow graph will
/// contain — no re-planning happens at execution time.
enum class OpCode : uint8_t {
  kDecode = 0,
  kFilter = 1,
  kProject = 2,
  kPartialAgg = 3,
  kFinalAgg = 4,
  kCompleteAgg = 5,
  kCount = 6,
  kSort = 7,
  kLimit = 8,
  kEncode = 9,    // compress_uplink: re-encode before the network hop
  kReDecode = 10,  // compress_uplink: decode right after the network hop
};

std::string_view OpCodeToString(OpCode code);

/// One instruction of the program: an opcode, the site it is pinned to, and
/// the parameter slots (indices into the literal pool) its expressions
/// read. `output_schema` is the stage's statically-known output layout —
/// the program's schema table, used for serialization, fingerprinting, and
/// the fused-kernel wrappers.
struct ProgramOp {
  OpCode code = OpCode::kDecode;
  std::string label;  // stage label as it appears in the graph ("filter")
  Site site = Site::kCpu;
  std::vector<uint32_t> literal_slots;
  Schema output_schema;
};

/// A maximal run of adjacent same-site ops the fusion pass collapsed into
/// one kernel: ops [first, first + count) execute as a single fused stage.
struct FusedGroup {
  uint32_t first = 0;
  uint32_t count = 0;
};

/// A compact, immutable compiled query: the unit the program cache stores,
/// the serving layer admits, and a future adaptive re-placer would swap.
///
/// The artifact has two faces. The *bytecode* face — opcode list with
/// parameter slots into a literal pool, schema table, placement, credit
/// layout, fused groups — is what SerializeToString renders and what the
/// fingerprint covers; it is byte-identical across processes for the same
/// plan. The *execution* face — the resolved expression trees and the
/// pinned table — is the in-memory payload Engine::ExecuteProgram feeds to
/// the operator constructors; it references the same literals the slots
/// index. Programs are created through Builder (by Engine::Compile) and
/// never mutated afterwards, so they are safe to share across admissions.
class DflowProgram {
 public:
  struct Builder {
    QuerySpec spec;
    std::shared_ptr<Table> table;
    std::vector<std::string> scan_columns;
    Schema scan_schema;
    ExprPtr filter;                    // resolved against scan_schema
    std::vector<ExprPtr> projections;  // resolved against scan_schema
    std::vector<ProgramOp> ops;
    std::vector<FusedGroup> fused_groups;
    std::vector<Value> literals;
    Placement placement;
    uint32_t credits = 8;
    CostEstimate demand;
    verify::VerifyReport verify_stamp;
    uint64_t plan_fingerprint = 0;
    uint64_t fabric_epoch = 0;
    int verifier_version = 0;
    uint64_t compile_cost_ns = 0;

    std::shared_ptr<const DflowProgram> Build() &&;
  };

  // ------------------------------------------------------------- identity --
  /// Fingerprint of the *plan* (QuerySpec) this program was compiled from.
  uint64_t plan_fingerprint() const { return plan_fingerprint_; }
  /// Engine fabric epoch at compile time; a health/quarantine change bumps
  /// the epoch and strands programs compiled under the old one.
  uint64_t fabric_epoch() const { return fabric_epoch_; }
  int verifier_version() const { return verifier_version_; }
  /// Fingerprint of the full serialized artifact (SerializeToString).
  uint64_t fingerprint() const { return fingerprint_; }

  // ------------------------------------------------------------- bytecode --
  const std::vector<ProgramOp>& ops() const { return ops_; }
  const std::vector<FusedGroup>& fused_groups() const { return fused_groups_; }
  const std::vector<Value>& literals() const { return literals_; }
  const Placement& placement() const { return placement_; }
  const std::string& variant() const { return placement_.name; }
  uint32_t credits() const { return credits_; }
  /// The chosen variant's cost-model output — the demand vector the
  /// scheduler charges the ledger from on a cache hit.
  const CostEstimate& demand() const { return demand_; }
  /// Verifier verdict recorded at compile time. A strict-mode compile
  /// refuses to produce a program whose stamp has errors, so a cached
  /// program needs no re-verification while its epoch key is current.
  const verify::VerifyReport& verify_stamp() const { return verify_stamp_; }
  /// Modeled virtual-time cost of lowering + verifying this program (see
  /// compiler.h's cost constants); what a cache hit saves per admission.
  uint64_t compile_cost_ns() const { return compile_cost_ns_; }

  // ------------------------------------------------------------ execution --
  const QuerySpec& spec() const { return spec_; }
  const std::shared_ptr<Table>& table() const { return table_; }
  const std::vector<std::string>& scan_columns() const { return scan_columns_; }
  const Schema& scan_schema() const { return scan_schema_; }
  const ExprPtr& filter() const { return filter_; }
  const std::vector<ExprPtr>& projections() const { return projections_; }

  /// Canonical textual serialization of the artifact: header, placement,
  /// credit layout, literal pool, schema table, instruction list, fused
  /// groups, verifier stamp. Deterministic — a pure function of the plan
  /// and the compile environment, byte-identical across process runs (the
  /// compile_test gate). The layout is documented in DESIGN.md §10.
  std::string SerializeToString() const;

 private:
  friend struct Builder;
  DflowProgram() = default;

  QuerySpec spec_;
  std::shared_ptr<Table> table_;
  std::vector<std::string> scan_columns_;
  Schema scan_schema_;
  ExprPtr filter_;
  std::vector<ExprPtr> projections_;
  std::vector<ProgramOp> ops_;
  std::vector<FusedGroup> fused_groups_;
  std::vector<Value> literals_;
  Placement placement_;
  uint32_t credits_ = 8;
  CostEstimate demand_;
  verify::VerifyReport verify_stamp_;
  uint64_t plan_fingerprint_ = 0;
  uint64_t fabric_epoch_ = 0;
  int verifier_version_ = 0;
  uint64_t compile_cost_ns_ = 0;
  uint64_t fingerprint_ = 0;
};

using ProgramPtr = std::shared_ptr<const DflowProgram>;

}  // namespace dflow::compile

#endif  // DFLOW_COMPILE_PROGRAM_H_
