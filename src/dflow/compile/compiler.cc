// The plan compiler: lowers a prepared, strict-verified query into an
// immutable DflowProgram and rebuilds dataflow graphs from programs without
// re-planning. These are Engine member functions (lowering needs the
// engine's private query preparation); they live here because the program
// format, the fusion pass, and the cache they feed are this subsystem.

#include <utility>

#include "dflow/common/logging.h"
#include "dflow/compile/compiler.h"
#include "dflow/compile/fuse.h"
#include "dflow/compile/program.h"
#include "dflow/compile/program_cache.h"
#include "dflow/engine/engine.h"
#include "dflow/exec/aggregate.h"
#include "dflow/exec/filter.h"
#include "dflow/exec/misc_ops.h"
#include "dflow/exec/project.h"
#include "dflow/exec/scan.h"
#include "dflow/plan/fingerprint.h"

namespace dflow {

namespace {

using compile::DflowProgram;
using compile::FusedGroup;
using compile::OpCode;
using compile::ProgramOp;

/// Appends every literal of `e` (pre-order) to the pool, recording its slot.
void CollectLiterals(const Expr& e, std::vector<Value>* pool,
                     std::vector<uint32_t>* slots) {
  if (e.kind() == Expr::Kind::kLiteral) {
    slots->push_back(static_cast<uint32_t>(pool->size()));
    pool->push_back(e.value());
    return;
  }
  for (const ExprPtr& c : e.children()) CollectLiterals(*c, pool, slots);
}

struct LoweredOps {
  std::vector<ProgramOp> ops;
  std::vector<Value> literals;
};

/// Lowers (prepared, placement) to the final instruction list — the same
/// normalization BuildQueryPipeline applies when interpreting a plan: a
/// CPU-placed partial aggregate collapses into a single complete aggregate,
/// and compress_uplink inserts the encode/decode pair around the network
/// hop. Prototype operators are constructed once to type the schema table.
Result<LoweredOps> LowerStages(const QuerySpec& spec,
                               const Engine::PreparedQuery& prepared,
                               const Placement& placement) {
  using SK = Engine::PreparedQuery::StageKind;
  LoweredOps out;
  Schema current = prepared.scan_schema;
  bool partial_dropped = false;
  auto add = [&](OpCode code, const char* label, Site site,
                 std::vector<uint32_t> slots = {}) {
    out.ops.push_back(
        ProgramOp{code, label, site, std::move(slots), current});
  };
  for (size_t i = 0; i < prepared.kinds.size(); ++i) {
    const Site site = placement.sites[i];
    switch (prepared.kinds[i]) {
      case SK::kDecode:
        add(OpCode::kDecode, "decode", site);
        break;
      case SK::kFilter: {
        std::vector<uint32_t> slots;
        if (prepared.filter != nullptr) {
          CollectLiterals(*prepared.filter, &out.literals, &slots);
        }
        add(OpCode::kFilter, "filter", site, std::move(slots));
        break;
      }
      case SK::kProject: {
        std::vector<uint32_t> slots;
        for (const ExprPtr& p : prepared.projections) {
          CollectLiterals(*p, &out.literals, &slots);
        }
        std::vector<ExprPtr> exprs = prepared.projections;
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr proto,
            ProjectOperator::Make(std::move(exprs), spec.projection_names,
                                  current));
        current = proto->output_schema();
        add(OpCode::kProject, "project", site, std::move(slots));
        break;
      }
      case SK::kCount: {
        OperatorPtr proto(new CountOperator());
        current = proto->output_schema();
        add(OpCode::kCount, "count", site);
        break;
      }
      case SK::kPartialAgg: {
        if (site == Site::kCpu) {
          partial_dropped = true;
          break;
        }
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr proto,
            HashAggregateOperator::Make(current, spec.group_by,
                                        spec.aggregates, AggMode::kPartial,
                                        spec.preagg_budget));
        current = proto->output_schema();
        add(OpCode::kPartialAgg, "agg_partial", site);
        break;
      }
      case SK::kFinalAgg: {
        OperatorPtr proto;
        if (partial_dropped) {
          DFLOW_ASSIGN_OR_RETURN(
              proto, HashAggregateOperator::Make(current, spec.group_by,
                                                 spec.aggregates,
                                                 AggMode::kComplete));
          current = proto->output_schema();
          add(OpCode::kCompleteAgg, "agg_final", site);
        } else {
          DFLOW_ASSIGN_OR_RETURN(
              proto,
              HashAggregateOperator::Make(current, spec.group_by,
                                          MakeMergeSpecs(spec.aggregates),
                                          AggMode::kFinal));
          current = proto->output_schema();
          add(OpCode::kFinalAgg, "agg_final", site);
        }
        break;
      }
      case SK::kSort: {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr proto,
            SortOperator::Make(current, spec.order_by->column,
                               spec.order_by->descending,
                               spec.order_by->limit));
        add(OpCode::kSort, "sort", site);
        break;
      }
      case SK::kLimit: {
        add(OpCode::kLimit, "limit", site);
        break;
      }
    }
  }

  if (spec.compress_uplink) {
    size_t last_storage = out.ops.size();
    for (size_t i = 0; i < out.ops.size(); ++i) {
      if (out.ops[i].site <= Site::kStorageNic) last_storage = i;
    }
    if (last_storage != out.ops.size()) {
      const Schema enc_schema = out.ops[last_storage].output_schema;
      Site dec_site = Site::kCpu;
      for (size_t i = last_storage + 1; i < out.ops.size(); ++i) {
        if (out.ops[i].site > Site::kStorageNic) {
          dec_site = out.ops[i].site;
          break;
        }
      }
      out.ops.insert(out.ops.begin() + last_storage + 1,
                     ProgramOp{OpCode::kEncode, "encode",
                               out.ops[last_storage].site, {}, enc_schema});
      out.ops.insert(out.ops.begin() + last_storage + 2,
                     ProgramOp{OpCode::kReDecode, "decode2", dec_site, {},
                               enc_schema});
    }
  }
  return out;
}

/// Instantiates the live operator for one program op against the running
/// input schema (updated in place).
Result<OperatorPtr> InstantiateOp(const DflowProgram& program,
                                  const ProgramOp& pop, Schema* current) {
  const QuerySpec& spec = program.spec();
  switch (pop.code) {
    case OpCode::kDecode:
      return OperatorPtr(new DecodeOperator(*current));
    case OpCode::kFilter:
      return FilterOperator::Make(program.filter(), *current);
    case OpCode::kProject: {
      std::vector<ExprPtr> exprs = program.projections();
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          ProjectOperator::Make(std::move(exprs), spec.projection_names,
                                *current));
      *current = op->output_schema();
      return op;
    }
    case OpCode::kCount: {
      OperatorPtr op(new CountOperator());
      *current = op->output_schema();
      return op;
    }
    case OpCode::kPartialAgg: {
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          HashAggregateOperator::Make(*current, spec.group_by, spec.aggregates,
                                      AggMode::kPartial, spec.preagg_budget));
      *current = op->output_schema();
      return op;
    }
    case OpCode::kFinalAgg: {
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          HashAggregateOperator::Make(*current, spec.group_by,
                                      MakeMergeSpecs(spec.aggregates),
                                      AggMode::kFinal));
      *current = op->output_schema();
      return op;
    }
    case OpCode::kCompleteAgg: {
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          HashAggregateOperator::Make(*current, spec.group_by, spec.aggregates,
                                      AggMode::kComplete));
      *current = op->output_schema();
      return op;
    }
    case OpCode::kSort:
      return SortOperator::Make(*current, spec.order_by->column,
                                spec.order_by->descending,
                                spec.order_by->limit);
    case OpCode::kLimit:
      return OperatorPtr(new LimitOperator(*current, spec.limit));
    case OpCode::kEncode:
      return OperatorPtr(new EncodeOperator(pop.output_schema));
    case OpCode::kReDecode:
      return OperatorPtr(new DecodeOperator(pop.output_schema));
  }
  return Status::Internal("unknown opcode in program");
}

struct BuiltProgram {
  DataflowGraph::NodeId source = 0;
  DataflowGraph::NodeId sink = 0;
  bool has_network_edge = false;
  DataflowGraph::NodeId net_from = 0;
  DataflowGraph::NodeId net_to = 0;
};

/// The program "VM": replays the instruction list into a dataflow graph —
/// one stage per op, or one fused stage per FusedGroup — and wires the
/// chain with the program's credit layout. Mirrors BuildQueryPipeline's
/// wiring exactly; the DiffRunner's compiled lane holds the two builders
/// result-identical.
Result<BuiltProgram> BuildProgramGraph(Engine* engine, sim::Fabric* fabric,
                                       DataflowGraph* graph,
                                       const DflowProgram& program, int node,
                                       std::vector<ScanBatch> batches,
                                       const std::string& label) {
  BuiltProgram built;
  built.source =
      graph->AddSource("scan:" + label, fabric->store_media(),
                       sim::CostClass::kScan, std::move(batches),
                       program.scan_schema());

  // Live operators, one per program op.
  std::vector<OperatorPtr> live;
  Schema current = program.scan_schema();
  for (const ProgramOp& pop : program.ops()) {
    DFLOW_ASSIGN_OR_RETURN(OperatorPtr op,
                           InstantiateOp(program, pop, &current));
    live.push_back(std::move(op));
  }

  // Collapse fused groups into single kernels.
  struct Stage {
    std::string name;
    OperatorPtr op;
    Site site;
  };
  std::vector<Stage> stages;
  const std::vector<FusedGroup>& groups = program.fused_groups();
  size_t gi = 0;
  for (size_t i = 0; i < live.size();) {
    if (gi < groups.size() && groups[gi].first == i) {
      const FusedGroup& g = groups[gi];
      std::string name = "fused(";
      std::vector<OperatorPtr> inner;
      for (uint32_t k = 0; k < g.count; ++k) {
        if (k > 0) name += "+";
        name += program.ops()[i + k].label;
        inner.push_back(std::move(live[i + k]));
      }
      name += ")";
      DFLOW_ASSIGN_OR_RETURN(OperatorPtr fused,
                             compile::FusedOperator::Make(std::move(inner)));
      stages.push_back(
          Stage{std::move(name), std::move(fused), program.ops()[i].site});
      i += g.count;
      ++gi;
    } else {
      stages.push_back(Stage{program.ops()[i].label, std::move(live[i]),
                             program.ops()[i].site});
      ++i;
    }
  }

  DataflowGraph::NodeId prev = built.source;
  int prev_site = -1;  // media, before kStorageProc
  auto connect = [&](DataflowGraph::NodeId from, DataflowGraph::NodeId to,
                     int from_site, int to_site) -> Status {
    std::vector<sim::Link*> path;
    if (from_site < 0) {
      path = engine->PathBetween(Site::kStorageProc,
                                 static_cast<Site>(to_site), node);
    } else {
      path = engine->PathBetween(static_cast<Site>(from_site),
                                 static_cast<Site>(to_site), node);
    }
    const bool crosses_network =
        from_site < static_cast<int>(Site::kComputeNic) &&
        to_site >= static_cast<int>(Site::kComputeNic);
    DFLOW_RETURN_NOT_OK(graph->Connect(from, to, std::move(path),
                                       program.credits()));
    if (crosses_network && !built.has_network_edge) {
      built.has_network_edge = true;
      built.net_from = from;
      built.net_to = to;
    }
    return Status::OK();
  };
  for (Stage& stage : stages) {
    const DataflowGraph::NodeId id = graph->AddStage(
        stage.name + ":" + label, std::move(stage.op),
        engine->SiteDevice(stage.site, node));
    DFLOW_RETURN_NOT_OK(
        connect(prev, id, prev_site, static_cast<int>(stage.site)));
    prev = id;
    prev_site = static_cast<int>(stage.site);
  }
  built.sink = graph->AddSink("client:" + label);
  DFLOW_RETURN_NOT_OK(connect(prev, built.sink, prev_site,
                              static_cast<int>(Site::kCpu)));
  return built;
}

}  // namespace

Result<std::shared_ptr<compile::CompiledQuery>> Engine::CompilePlan(
    const QuerySpec& spec) {
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(prepared.table, prepared.scan_columns,
                            prepared.filter));
  TableScanSource::ScanStats stats;
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce(&stats));
  uint64_t decoded = 0;
  for (const ScanBatch& b : batches) {
    for (const ScanChunk& sc : b.chunks) decoded += sc.chunk.ByteSize();
  }
  DFLOW_ASSIGN_OR_RETURN(
      PlacementOptimizer::Input input,
      MakeOptimizerInput(spec, prepared, stats.encoded_bytes_read, decoded,
                         batches.size()));
  PlacementOptimizer optimizer(input);
  auto plan = std::make_shared<compile::CompiledQuery>();
  plan->variants = optimizer.Enumerate();
  if (plan->variants.empty()) {
    return Status::Internal("no valid placement found");
  }
  plan->spec = spec;
  plan->plan_fingerprint = FingerprintQuerySpec(spec);
  plan->fabric_epoch = fabric_epoch_;
  plan->cpu_only = optimizer.CpuOnly();
  plan->full_offload = optimizer.FullOffload();
  plan->plan_cost_ns = compile::kPlanPrepareCostNs +
                       compile::kPlanScanSizingCostNs +
                       compile::kPlanPerVariantCostNs * plan->variants.size();
  DFLOW_TRACE(tracer_.get(),
              Instant("compile", "compiler", "plan",
                      fabric_.simulator().now(),
                      /*value=*/plan->variants.size(), spec.table));
  return plan;
}

Result<compile::ProgramPtr> Engine::CompileVariant(
    compile::CompiledQuery* plan, const Placement& placement,
    verify::VerifyMode mode, compile::FuseMode fuse, int node) {
  DFLOW_CHECK(plan != nullptr);
  if (compile::ProgramPtr existing = plan->ProgramFor(placement.name)) {
    return existing;
  }
  const QuerySpec& spec = plan->spec;
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  if (placement.sites.size() != prepared.kinds.size()) {
    return Status::InvalidArgument("placement '" + placement.name +
                                   "' does not match query stages");
  }
  CostEstimate demand;
  bool demand_found = false;
  for (const RankedPlacement& v : plan->variants) {
    if (v.placement.sites == placement.sites) {
      demand = v.cost;
      demand_found = true;
      break;
    }
  }
  if (!demand_found) {
    return Status::Internal("compiler: placement '" + placement.name +
                            "' is not among the enumerated plan variants");
  }
  DFLOW_ASSIGN_OR_RETURN(LoweredOps lowered,
                         LowerStages(spec, prepared, placement));

  auto fill_builder = [&]() {
    DflowProgram::Builder b;
    b.spec = spec;
    b.table = prepared.table;
    b.scan_columns = prepared.scan_columns;
    b.scan_schema = prepared.scan_schema;
    b.filter = prepared.filter;
    b.projections = prepared.projections;
    b.ops = lowered.ops;
    b.literals = lowered.literals;
    if (fuse == compile::FuseMode::kOn) b.fused_groups = PlanFusion(b.ops);
    b.placement = placement;
    b.credits = ExecOptions().credits;
    b.demand = demand;
    b.plan_fingerprint = plan->plan_fingerprint;
    b.fabric_epoch = fabric_epoch_;
    b.verifier_version = verify::kVerifierVersion;
    b.compile_cost_ns = compile::kLowerPerOpCostNs * lowered.ops.size();
    return b;
  };

  // Verify once, at compile time, against the live fabric and health
  // registry. The scratch graph schedules nothing and charges no fabric
  // work (same guarantee Engine::Verify relies on).
  verify::VerifyReport stamp;
  uint64_t verify_cost_ns = 0;
  if (mode != verify::VerifyMode::kOff) {
    compile::ProgramPtr pre = fill_builder().Build();
    DFLOW_ASSIGN_OR_RETURN(
        TableScanSource scan,
        TableScanSource::Make(prepared.table, prepared.scan_columns,
                              prepared.filter));
    DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
    DataflowGraph scratch(&fabric_.simulator());
    DFLOW_ASSIGN_OR_RETURN(
        BuiltProgram built,
        BuildProgramGraph(this, &fabric_, &scratch, *pre, node,
                          std::move(batches), "compile"));
    (void)built;
    stamp = VerifyGraphSpec(scratch.Describe());
    const uint64_t num_stages = lowered.ops.size() + 2;  // + source + sink
    verify_cost_ns = compile::kVerifyPerStageCostNs * num_stages +
                     compile::kVerifyPerEdgeCostNs * (num_stages - 1);
    for (const verify::VerifyIssue& issue : stamp.issues) {
      DFLOW_LOG(Warning) << "compile verify: " << issue.ToString();
    }
    if (mode == verify::VerifyMode::kStrict && !stamp.ok()) {
      return Status::InvalidArgument(
          "plan rejected by static verifier at compile time: " +
          stamp.ToString());
    }
  }

  DflowProgram::Builder builder = fill_builder();
  builder.verify_stamp = std::move(stamp);
  builder.compile_cost_ns += verify_cost_ns;
  const size_t num_fused = builder.fused_groups.size();
  compile::ProgramPtr program = std::move(builder).Build();
  DFLOW_TRACE(tracer_.get(),
              Instant("compile", "compiler", "compile",
                      fabric_.simulator().now(),
                      /*value=*/program->ops().size(),
                      spec.table + " -> " + placement.name));
  if (num_fused > 0) {
    DFLOW_TRACE(tracer_.get(),
                Instant("compile", "compiler", "fuse",
                        fabric_.simulator().now(), /*value=*/num_fused,
                        placement.name));
  }
  plan->programs[placement.name] = program;
  return program;
}

Result<compile::ProgramPtr> Engine::Compile(const QuerySpec& spec,
                                            PlacementChoice choice,
                                            verify::VerifyMode mode,
                                            compile::FuseMode fuse, int node) {
  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<compile::CompiledQuery> plan,
                         CompilePlan(spec));
  Placement placement;
  switch (choice) {
    case PlacementChoice::kAuto: {
      placement = plan->variants.front().placement;
      for (const RankedPlacement& v : plan->variants) {
        if (PlacementHealthy(v.placement, node)) {
          placement = v.placement;
          break;
        }
      }
      break;
    }
    case PlacementChoice::kCpuOnly:
      placement = plan->cpu_only;
      break;
    case PlacementChoice::kFullOffload:
      placement = plan->full_offload;
      break;
  }
  return CompileVariant(plan.get(), placement, mode, fuse, node);
}

Result<QueryResult> Engine::ExecuteProgram(const compile::DflowProgram& program,
                                           const ExecOptions& options) {
  return ExecuteProgramImpl(program, options, /*allow_fallback=*/true);
}

Result<QueryResult> Engine::ExecuteProgramImpl(
    const compile::DflowProgram& program, const ExecOptions& options,
    bool allow_fallback) {
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(program.table(), program.scan_columns(),
                            program.filter()));
  TableScanSource::ScanStats stats;
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce(&stats));

  if (options.trace.enabled && tracer_ == nullptr) {
    EnableTracing(options.trace);
  }
  if (options.reset_fabric) {
    fabric_.Reset();
    if (tracer_ != nullptr) tracer_->Clear();
  } else {
    fabric_.ResetMetrics();
  }
  DataflowGraph graph(&fabric_.simulator());
  ArmGraph(&graph);
  DFLOW_TRACE(tracer_.get(),
              Instant("engine", "engine", "plan_choice",
                      fabric_.simulator().now(), /*value=*/0,
                      program.variant() + " (compiled)"));
  DFLOW_ASSIGN_OR_RETURN(
      BuiltProgram built,
      BuildProgramGraph(this, &fabric_, &graph, program, options.node,
                        std::move(batches), program.spec().table));
  if (options.network_rate_limit_gbps > 0 && built.has_network_edge) {
    DFLOW_RETURN_NOT_OK(graph.SetEdgeRateLimit(
        built.net_from, built.net_to, options.network_rate_limit_gbps));
  }
  const Status run_status = graph.Run();
  if (!run_status.ok()) {
    const std::string dead = graph.failed_device();
    if (allow_fallback && !dead.empty()) {
      // Same graceful degradation as the interpreted path, except the
      // recovery plan is a compiled artifact too: quarantine the device
      // (which bumps the fabric epoch, stranding stale cache entries) and
      // recompile the CPU-only variant.
      MarkDeviceUnhealthy(dead);
      const bool dead_is_unavoidable =
          dead == fabric_.store_media()->name() ||
          dead == fabric_.node(options.node).cpu->name();
      if (!dead_is_unavoidable) {
        DFLOW_ASSIGN_OR_RETURN(
            compile::ProgramPtr fallback,
            Compile(program.spec(), PlacementChoice::kCpuOnly, options.verify,
                    compile::DefaultFuseMode(), options.node));
        if (fallback->placement().sites != program.placement().sites) {
          ExecOptions retry = options;
          retry.reset_fabric = true;  // fresh timeline for the recovery run
          DFLOW_ASSIGN_OR_RETURN(
              QueryResult result,
              ExecuteProgramImpl(*fallback, retry, /*allow_fallback=*/false));
          result.report.fault.cpu_fallback = true;
          result.report.fault.failed_device = dead;
          result.report.variant += "(fallback:" + dead + ")";
          DFLOW_TRACE(tracer_.get(),
                      Instant("engine", "engine", "cpu_fallback",
                              fabric_.simulator().now(), /*value=*/0, dead));
          return result;
        }
      }
    }
    return run_status;
  }

  QueryResult result;
  result.chunks = graph.sink_chunks(built.sink);
  result.report = CollectReport(graph, built.sink, program.variant(), stats);
  result.report.verify = program.verify_stamp();
  return result;
}

Result<Engine::AdmittedPipeline> Engine::BuildProgramPipeline(
    DataflowGraph* graph, const compile::DflowProgram& program,
    const std::string& label, double rate_limit_gbps) {
  DFLOW_CHECK(graph != nullptr);
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(program.table(), program.scan_columns(),
                            program.filter()));
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
  ArmGraph(graph);
  DFLOW_ASSIGN_OR_RETURN(
      BuiltProgram b,
      BuildProgramGraph(this, &fabric_, graph, program, /*node=*/0,
                        std::move(batches), label));
  if (rate_limit_gbps > 0 && b.has_network_edge) {
    DFLOW_RETURN_NOT_OK(
        graph->SetEdgeRateLimit(b.net_from, b.net_to, rate_limit_gbps));
  }
  AdmittedPipeline admitted;
  admitted.source = b.source;
  admitted.sink = b.sink;
  admitted.has_network_edge = b.has_network_edge;
  admitted.net_from = b.net_from;
  admitted.net_to = b.net_to;
  admitted.variant = program.variant();
  return admitted;
}

}  // namespace dflow
