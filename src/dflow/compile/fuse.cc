#include "dflow/compile/fuse.h"

#include <utility>

namespace dflow::compile {

std::string_view FuseModeToString(FuseMode m) {
  return m == FuseMode::kOn ? "on" : "off";
}

Result<FuseMode> ParseFuseMode(std::string_view text) {
  if (text == "on") return FuseMode::kOn;
  if (text == "off") return FuseMode::kOff;
  return Status::InvalidArgument("unknown fuse mode '" + std::string(text) +
                                 "' (want on|off)");
}

namespace {
FuseMode g_default_fuse_mode = FuseMode::kOn;

bool Fusible(OpCode code) {
  switch (code) {
    case OpCode::kFilter:
    case OpCode::kProject:
    case OpCode::kPartialAgg:
      return true;
    default:
      return false;
  }
}
}  // namespace

FuseMode DefaultFuseMode() { return g_default_fuse_mode; }
void SetDefaultFuseMode(FuseMode mode) { g_default_fuse_mode = mode; }

std::vector<FusedGroup> PlanFusion(const std::vector<ProgramOp>& ops) {
  std::vector<FusedGroup> groups;
  size_t i = 0;
  while (i < ops.size()) {
    if (!Fusible(ops[i].code)) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < ops.size() && Fusible(ops[j].code) &&
           ops[j].site == ops[i].site) {
      ++j;
    }
    if (j - i >= 2) {
      groups.push_back(FusedGroup{static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(j - i)});
    }
    i = j;
  }
  return groups;
}

FusedOperator::FusedOperator(std::vector<OperatorPtr> inner)
    : inner_(std::move(inner)) {
  name_ = "fused(";
  for (size_t i = 0; i < inner_.size(); ++i) {
    if (i > 0) name_ += "+";
    name_ += inner_[i]->name();
  }
  name_ += ")";
  // Combined traits: the fused kernel is charged as one stage of the first
  // member's cost class (the per-chunk charges of the rest are what fusion
  // amortizes away); data-reduction estimates multiply along the chain, and
  // the state flags are the conjunction/disjunction placement legality
  // needs — the kernel is only as streaming/stateless as its weakest link.
  traits_ = inner_.front()->traits();
  for (size_t i = 1; i < inner_.size(); ++i) {
    const OperatorTraits t = inner_[i]->traits();
    traits_.streaming = traits_.streaming && t.streaming;
    traits_.stateless = traits_.stateless && t.stateless;
    traits_.bounded_state = traits_.bounded_state || t.bounded_state;
    traits_.reduction_hint *= t.reduction_hint;
  }
}

Result<OperatorPtr> FusedOperator::Make(std::vector<OperatorPtr> inner) {
  if (inner.empty()) {
    return Status::InvalidArgument("fused kernel needs at least one operator");
  }
  for (const OperatorPtr& op : inner) {
    if (op == nullptr) {
      return Status::InvalidArgument("fused kernel member is null");
    }
  }
  return OperatorPtr(new FusedOperator(std::move(inner)));
}

Status FusedOperator::RunFrom(size_t from, const DataChunk& chunk,
                              std::vector<DataChunk>* out) {
  if (from == inner_.size()) {
    RecordOut(chunk);
    out->push_back(chunk);
    return Status::OK();
  }
  std::vector<DataChunk> produced;
  DFLOW_RETURN_NOT_OK(inner_[from]->Push(chunk, &produced));
  for (const DataChunk& c : produced) {
    DFLOW_RETURN_NOT_OK(RunFrom(from + 1, c, out));
  }
  return Status::OK();
}

Status FusedOperator::Push(const DataChunk& input,
                           std::vector<DataChunk>* out) {
  RecordIn(input);
  return RunFrom(0, input, out);
}

Status FusedOperator::Finish(std::vector<DataChunk>* out) {
  // Flush in chain order: operator i's end-of-stream output streams through
  // the members after it *before* they flush — the same order separate
  // stages would observe as EOS propagates down the pipeline.
  for (size_t i = 0; i < inner_.size(); ++i) {
    std::vector<DataChunk> flushed;
    DFLOW_RETURN_NOT_OK(inner_[i]->Finish(&flushed));
    for (const DataChunk& c : flushed) {
      DFLOW_RETURN_NOT_OK(RunFrom(i + 1, c, out));
    }
  }
  return Status::OK();
}

}  // namespace dflow::compile
