#ifndef DFLOW_COMPILE_FUSE_H_
#define DFLOW_COMPILE_FUSE_H_

#include <string_view>
#include <vector>

#include "dflow/compile/program.h"
#include "dflow/exec/operator.h"

namespace dflow::compile {

/// Whether the compiler's operator-fusion pass runs. On by default; the
/// --dflow_fuse=off escape hatch exists so any suspected fusion bug can be
/// bisected in one flag flip (the DiffRunner's compiled lane cross-checks
/// fused vs unfused result fingerprints continuously).
enum class FuseMode { kOff, kOn };

std::string_view FuseModeToString(FuseMode m);

/// Parses "on" / "off" (as in --dflow_fuse=).
Result<FuseMode> ParseFuseMode(std::string_view text);

/// Process-wide default, mirroring verify::DefaultMode(). Not thread-safe;
/// set once during startup (bench/tool flag parsing).
FuseMode DefaultFuseMode();
void SetDefaultFuseMode(FuseMode mode);

/// The fusion pass: finds every maximal run of >= 2 adjacent ops that are
/// (a) placed at the same site and (b) fusible kinds — filter, project,
/// partial (pre-)aggregate. Those are exactly the streaming stages whose
/// per-chunk scheduling overhead fusion amortizes; stateful barriers
/// (final aggregate, sort), stream-shape changers (decode, encode), and
/// cross-site hops stay unfused so placement and recovery semantics are
/// untouched. Legality rules are catalogued in DESIGN.md §10.
std::vector<FusedGroup> PlanFusion(const std::vector<ProgramOp>& ops);

/// A fused kernel: the inner operators execute back-to-back inside one
/// graph stage — one scheduling quantum, one credit hop, one device charge
/// per chunk — with chunk-for-chunk identical output to the unfused chain
/// (each inner operator sees exactly the Push/Finish sequence it would have
/// seen across separate stages, in the same order).
class FusedOperator : public Operator {
 public:
  /// `inner` must be non-empty; ownership transfers.
  static Result<OperatorPtr> Make(std::vector<OperatorPtr> inner);

  std::string name() const override { return name_; }
  const Schema& output_schema() const override {
    return inner_.back()->output_schema();
  }
  const Schema* input_schema() const override {
    return inner_.front()->input_schema();
  }
  OperatorTraits traits() const override { return traits_; }
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;
  Status Finish(std::vector<DataChunk>* out) override;
  uint64_t OutputWireBytes(const DataChunk& output) const override {
    return inner_.back()->OutputWireBytes(output);
  }

 private:
  explicit FusedOperator(std::vector<OperatorPtr> inner);

  /// Pushes `chunk` through inner operators [from, end), appending the
  /// survivors to `out`.
  Status RunFrom(size_t from, const DataChunk& chunk,
                 std::vector<DataChunk>* out);

  std::vector<OperatorPtr> inner_;
  std::string name_;
  OperatorTraits traits_;
};

}  // namespace dflow::compile

#endif  // DFLOW_COMPILE_FUSE_H_
