#include "dflow/cluster/cluster.h"

#include <utility>

#include "dflow/vector/kernels.h"

namespace dflow::cluster {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  if (config_.num_nodes < 1) config_.num_nodes = 1;
  // Every node is an independent single-compute-node fabric: the cluster's
  // parallelism is across nodes, the fabric's is within one.
  sim::FabricConfig node_config = config_.node;
  node_config.num_compute_nodes = 1;
  for (int i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Engine>(node_config));
  }
  links_.resize(static_cast<size_t>(config_.num_nodes) * config_.num_nodes);
  for (int src = 0; src < config_.num_nodes; ++src) {
    for (int dst = 0; dst < config_.num_nodes; ++dst) {
      if (src == dst) continue;
      links_[static_cast<size_t>(src) * config_.num_nodes + dst] =
          std::make_unique<sim::InterNodeLink>(
              "xlink" + std::to_string(src) + "_" + std::to_string(dst),
              config_.xlink_gbps, config_.xlink_latency_ns,
              config_.xlink_credits);
    }
  }
  alive_.assign(config_.num_nodes, true);
}

sim::InterNodeLink& Cluster::link(int src, int dst) {
  return *links_[static_cast<size_t>(src) * config_.num_nodes + dst];
}

Status Cluster::RegisterSharded(std::shared_ptr<Table> table) {
  original_tables_[table->name()] = table;
  const std::vector<int> targets = AliveNodes();
  if (targets.empty()) {
    return Status::InvalidArgument("cluster has no alive nodes to shard onto");
  }
  DFLOW_ASSIGN_OR_RETURN(std::vector<DataChunk> chunks, table->ToChunks());
  std::vector<TableBuilder> builders;
  builders.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    builders.emplace_back(table->name(), table->schema());
  }
  const uint32_t n = static_cast<uint32_t>(targets.size());
  std::vector<uint64_t> hashes;
  for (const DataChunk& chunk : chunks) {
    if (chunk.num_rows() == 0) continue;
    hashes.clear();  // non-empty switches HashColumn into combine mode
    DFLOW_RETURN_NOT_OK(HashColumn(chunk.column(0), &hashes));
    std::vector<SelectionVector> sel(n);
    for (size_t r = 0; r < hashes.size(); ++r) {
      sel[hashes[r] % n].Append(static_cast<uint32_t>(r));
    }
    for (uint32_t p = 0; p < n; ++p) {
      if (sel[p].empty()) continue;
      DFLOW_RETURN_NOT_OK(builders[p].Append(chunk.Gather(sel[p])));
    }
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    DFLOW_ASSIGN_OR_RETURN(Table shard, builders[i].Finish());
    DFLOW_RETURN_NOT_OK(nodes_[targets[i]]->catalog().Register(
        std::make_shared<Table>(std::move(shard))));
  }
  return Status::OK();
}

Status Cluster::ReshardAll() {
  for (const auto& [name, table] : original_tables_) {
    DFLOW_RETURN_NOT_OK(RegisterSharded(table));
  }
  needs_reshard_ = false;
  return Status::OK();
}

void Cluster::MarkNodeLost(int node) {
  if (node < 0 || node >= num_nodes() || !alive_[node]) return;
  alive_[node] = false;
  needs_reshard_ = true;
  node_losses_++;
  // A lost node's cached program slices must never be served again: bump
  // its engine's epoch through the device-health registry.
  nodes_[node]->MarkDeviceUnhealthy("cpu0");
}

std::vector<int> Cluster::AliveNodes() const {
  std::vector<int> alive;
  for (int i = 0; i < num_nodes(); ++i) {
    if (alive_[i]) alive.push_back(i);
  }
  return alive;
}

std::vector<int> Cluster::LostNodes() const {
  std::vector<int> lost;
  for (int i = 0; i < num_nodes(); ++i) {
    if (!alive_[i]) lost.push_back(i);
  }
  return lost;
}

ExchangeStats Cluster::TotalExchangeStats() const {
  ExchangeStats total;
  for (const auto& link : links_) {
    if (link == nullptr) continue;
    total.bytes += link->bytes_transferred();
    total.frames += link->frames();
    total.retransmits += link->retransmits();
    total.frames_lost += link->frames_lost();
    total.credit_stall_ns += link->credit_stall_ns();
  }
  return total;
}

void Cluster::ResetLinks() {
  for (auto& link : links_) {
    if (link != nullptr) link->ResetStats();
  }
}

void Cluster::AttachTracer(trace::Tracer* tracer) {
  for (auto& link : links_) {
    if (link != nullptr) link->SetTracer(tracer);
  }
}

void Cluster::ArmLinkFaults() {
  link_faults_armed_ = true;
  uint64_t i = 0;
  for (auto& link : links_) {
    if (link == nullptr) continue;
    link->ArmFaults(config_.fault.xlink_drop_probability,
                    config_.fault.xlink_corrupt_probability,
                    config_.seed + 0x9e37 * ++i,
                    config_.fault.max_frame_attempts);
  }
}

void Cluster::DisarmLinkFaults() {
  link_faults_armed_ = false;
  for (auto& link : links_) {
    if (link != nullptr) link->DisarmFaults();
  }
}

}  // namespace dflow::cluster
