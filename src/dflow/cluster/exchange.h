#ifndef DFLOW_CLUSTER_EXCHANGE_H_
#define DFLOW_CLUSTER_EXCHANGE_H_

#include <string>
#include <vector>

#include "dflow/cluster/cluster.h"
#include "dflow/common/result.h"
#include "dflow/verify/xchg.h"

namespace dflow::cluster {

/// Terminal state of one exchange. Stable codes: the router maps these to
/// the query's outcome string, and tests match on them exactly.
enum class ExchangeOutcome {
  kDone,
  kCancelled,       // cancel_at_ns hit mid-exchange; credits all returned
  kNodeLost,        // an endpoint died mid-exchange (see ClusterFaultConfig)
  kRetryExhausted,  // a frame ran out of retransmission attempts
};

std::string_view ExchangeOutcomeToString(ExchangeOutcome outcome);

struct ExchangeResult {
  ExchangeOutcome outcome = ExchangeOutcome::kDone;
  /// Chunks delivered to each node (indexed by node id; empty for nodes
  /// outside the destination set).
  std::vector<std::vector<DataChunk>> received;
  /// Per destination node: cluster virtual time when its last frame landed
  /// (at least the node's own ready time, so a purely-local delivery is
  /// free but never time-travels).
  std::vector<sim::SimTime> done_ns;
  ExchangeStats stats;
};

/// One cluster-level data movement: hash-shuffle, broadcast, or gather,
/// lowered onto the mesh of checksummed, credit-windowed inter-node links.
///
/// Execution is phase-structured: inputs are the chunks each node's local
/// fragment produced, stamped with the virtual time that fragment finished
/// (`ready_ns`), and the exchange lays every frame onto the links in a
/// deterministic order (source node asc, chunk order, destination asc) —
/// same inputs, same seed, same schedule, byte-identical counters.
class ExchangeOperator {
 public:
  struct Options {
    verify::ExchangeKind kind = verify::ExchangeKind::kShuffle;
    /// Shuffle key column (index into the input chunks' schema). Rows
    /// route to alive_nodes[hash(key) % alive_count] — the same HashColumn
    /// basis as the intra-node HashPartitioner.
    size_t key_col = 0;
    /// Gather destination.
    int coordinator = 0;
    /// Cancel the exchange at this cluster virtual time (0 = never). Frames
    /// not yet departed are never sent; every in-flight credit is returned.
    sim::SimTime cancel_at_ns = 0;
    std::string name = "xchg";
  };

  ExchangeOperator(Cluster* cluster, Options options);

  /// `inputs[node]` are node's outbound chunks (ignored for lost nodes),
  /// ready at `ready_ns[node]`. Both are indexed by node id over the full
  /// cluster, not just alive nodes.
  Result<ExchangeResult> Run(const std::vector<std::vector<DataChunk>>& inputs,
                             const std::vector<sim::SimTime>& ready_ns);

  const Options& options() const { return options_; }

 private:
  Cluster* cluster_;
  Options options_;
};

}  // namespace dflow::cluster

#endif  // DFLOW_CLUSTER_EXCHANGE_H_
