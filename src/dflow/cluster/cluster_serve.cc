#include "dflow/cluster/cluster_serve.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace dflow::cluster {

ClusterServiceLoop::ClusterServiceLoop(Cluster* cluster,
                                       std::vector<serve::TenantConfig> tenants,
                                       serve::ServiceConfig config)
    : cluster_(cluster),
      tenants_(std::move(tenants)),
      config_(std::move(config)) {}

Result<ClusterServiceResult> ClusterServiceLoop::Run() {
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) {
    return Status::InvalidArgument("cluster has no alive nodes to serve on");
  }

  // Shard tenants round-robin over the alive nodes: deterministic, and an
  // even split so the scale-out bench measures parallelism, not placement
  // luck. (Key-affine routing uses QueryRouter::HomeNode instead.)
  std::vector<std::vector<serve::TenantConfig>> shards(alive.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    shards[t % alive.size()].push_back(tenants_[t]);
  }

  ClusterServiceResult result;
  result.cluster.num_nodes = cluster_->num_nodes();
  result.cluster.node_losses = cluster_->node_losses();
  result.node_results.resize(cluster_->num_nodes());
  result.cluster.nodes.resize(cluster_->num_nodes());
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    result.cluster.nodes[i].node = i;
    result.cluster.nodes[i].alive = cluster_->node_alive(i);
  }

  std::vector<sim::SimTime> node_makespans;
  for (size_t s = 0; s < alive.size(); ++s) {
    const int node = alive[s];
    if (shards[s].empty()) continue;
    // Per-node seed derivation keeps arrival streams independent across
    // nodes while staying a pure function of (config seed, node id).
    serve::ServiceConfig node_config = config_;
    node_config.seed = config_.seed + 0x9e3779b97f4a7c15ULL * (node + 1);
    serve::ServiceLoop loop(&cluster_->node(node), shards[s], node_config);
    DFLOW_ASSIGN_OR_RETURN(serve::ServiceResult node_result, loop.Run());

    const serve::ServiceReport& r = node_result.service;
    result.cluster.arrivals_total += r.arrivals_total;
    result.cluster.admitted_total += r.admitted_total;
    result.cluster.shed_total += r.shed_total;
    result.cluster.completed_total += r.completed_total;
    result.cluster.failed_total += r.failed_total;
    node_makespans.push_back(r.makespan_ns);
    result.cluster.nodes[node].report = r;
    result.node_results[node] = std::move(node_result);
  }

  // Straggler detection over the per-node serving makespans, same rule as
  // the router's per-query detection.
  if (node_makespans.size() >= 2) {
    std::vector<sim::SimTime> sorted = node_makespans;
    std::sort(sorted.begin(), sorted.end());
    const sim::SimTime median = sorted[sorted.size() / 2];
    if (median > 0) {
      const double threshold = static_cast<double>(median) *
                               cluster_->config().straggler_factor;
      for (sim::SimTime m : node_makespans) {
        if (static_cast<double>(m) > threshold) {
          result.cluster.straggler_events++;
        }
      }
    }
  }

  for (sim::SimTime m : node_makespans) {
    result.cluster.makespan_ns = std::max(result.cluster.makespan_ns, m);
  }
  result.cluster.exchange = cluster_->TotalExchangeStats();
  return result;
}

std::string ClusterReportToJson(const ClusterServiceReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"dflow.cluster_report.v1\"";
  os << ",\"num_nodes\":" << report.num_nodes;
  os << ",\"makespan_ns\":" << report.makespan_ns;
  os << ",\"arrivals_total\":" << report.arrivals_total;
  os << ",\"admitted_total\":" << report.admitted_total;
  os << ",\"shed_total\":" << report.shed_total;
  os << ",\"completed_total\":" << report.completed_total;
  os << ",\"failed_total\":" << report.failed_total;
  os << ",\"straggler_events\":" << report.straggler_events;
  os << ",\"node_losses\":" << report.node_losses;
  os << ",\"exchange\":{";
  os << "\"bytes\":" << report.exchange.bytes;
  os << ",\"frames\":" << report.exchange.frames;
  os << ",\"retransmits\":" << report.exchange.retransmits;
  os << ",\"frames_lost\":" << report.exchange.frames_lost;
  os << ",\"credit_stall_ns\":" << report.exchange.credit_stall_ns << "}";
  os << ",\"per_node\":{";
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeServiceReport& node = report.nodes[i];
    if (i > 0) os << ",";
    os << "\"node" << node.node << "\":{";
    os << "\"alive\":" << (node.alive ? "true" : "false");
    os << ",\"admitted\":" << node.report.admitted_total;
    os << ",\"shed\":" << node.report.shed_total;
    os << ",\"completed\":" << node.report.completed_total;
    os << ",\"failed\":" << node.report.failed_total;
    os << ",\"makespan_ns\":" << node.report.makespan_ns << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace dflow::cluster
