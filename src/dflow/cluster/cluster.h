#ifndef DFLOW_CLUSTER_CLUSTER_H_
#define DFLOW_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dflow/engine/engine.h"
#include "dflow/sim/fabric.h"
#include "dflow/sim/inter_node_link.h"
#include "dflow/storage/table.h"

namespace dflow::cluster {

/// Deterministic cluster-level fault schedule. Everything is a pure
/// function of the config + seed, so a faulty run is exactly as
/// reproducible as a clean one.
struct ClusterFaultConfig {
  /// Per-frame drop/corrupt probabilities on every inter-node link.
  double xlink_drop_probability = 0.0;
  double xlink_corrupt_probability = 0.0;
  /// Retransmission attempts per frame before the exchange gives up.
  uint32_t max_frame_attempts = 6;

  /// Node loss: `lose_node` becomes unreachable at cluster virtual time
  /// `lose_node_at_ns`. Loss before dispatch re-routes (the router
  /// re-shards over the survivors); loss mid-exchange fails the query with
  /// the stable NODE_LOST outcome.
  int lose_node = -1;
  sim::SimTime lose_node_at_ns = 0;

  /// Straggler schedule: node `slow_node`'s local fragments take
  /// `slow_factor`x their modeled time (a seeded slow node, not noise).
  int slow_node = -1;
  double slow_factor = 1.0;
};

struct ClusterConfig {
  int num_nodes = 2;
  /// Per-node fabric. Each node is an independent single-compute-node
  /// fabric with its own storage — a shared-nothing shard.
  sim::FabricConfig node;
  /// Inter-node links (full mesh of directed links, one per ordered pair).
  double xlink_gbps = 40.0;
  sim::SimTime xlink_latency_ns = 2'000;
  uint32_t xlink_credits = 8;
  /// Exchange frames larger than this are split (bytes).
  uint64_t frame_bytes = 256 * 1024;
  /// A node whose local-fragment time exceeds straggler_factor x the
  /// median across nodes is flagged a straggler.
  double straggler_factor = 3.0;
  uint64_t seed = 42;
  ClusterFaultConfig fault;
};

/// Aggregated exchange counters (also kept per link on the links
/// themselves; these are the cluster-wide sums the reports carry).
struct ExchangeStats {
  uint64_t bytes = 0;
  uint64_t frames = 0;
  uint64_t retransmits = 0;
  uint64_t frames_lost = 0;
  uint64_t credit_stall_ns = 0;

  void Accumulate(const ExchangeStats& other) {
    bytes += other.bytes;
    frames += other.frames;
    retransmits += other.retransmits;
    frames_lost += other.frames_lost;
    credit_stall_ns += other.credit_stall_ns;
  }
};

/// N independent fabrics composed into a shared-nothing cluster: one
/// Engine (catalog + fabric + optimizer + executors) per node, joined by a
/// full mesh of credit-windowed, checksummed inter-node links. The cluster
/// itself is pure mechanism — sharding tables, owning links, tracking node
/// health; query-level policy (exchange lowering, task lifecycles,
/// merge-at-coordinator) lives in QueryRouter.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Engine& node(int i) { return *nodes_[i]; }
  const Engine& node(int i) const { return *nodes_[i]; }

  /// The directed link src -> dst (src != dst).
  sim::InterNodeLink& link(int src, int dst);

  /// Hash-shards `table` by its first column across all nodes and registers
  /// each shard in the owning node's catalog under the table's own name
  /// (catalogs are per-node, so names never clash). The original is kept so
  /// a re-route after node loss can re-shard over the survivors. Row r goes
  /// to node hash(col0[r]) % num_nodes — the same HashColumn basis as the
  /// intra-node HashPartitioner, so partition agreement is by construction.
  Status RegisterSharded(std::shared_ptr<Table> table);

  /// Re-shards every registered table over the currently-alive nodes
  /// (the re-route step after MarkNodeLost).
  Status ReshardAll();

  /// Node-health registry (the cluster twin of the engine's device-health
  /// registry). MarkNodeLost also bumps the node's engine fabric epoch so
  /// cached per-node program slices stop matching.
  void MarkNodeLost(int node);
  bool node_alive(int node) const { return alive_[node]; }
  /// True after a node loss until ReshardAll re-routes the lost node's
  /// rows over the survivors.
  bool needs_reshard() const { return needs_reshard_; }
  std::vector<int> AliveNodes() const;
  std::vector<int> LostNodes() const;
  uint64_t node_losses() const { return node_losses_; }

  /// Sum of counters over every inter-node link.
  ExchangeStats TotalExchangeStats() const;

  /// Resets link timing/counters (fresh cluster run; node fabrics are reset
  /// per query by their engines).
  void ResetLinks();

  /// Attaches `tracer` to every inter-node link ("xchg" category spans and
  /// instants). nullptr detaches.
  void AttachTracer(trace::Tracer* tracer);

  /// Arms the seeded frame-fault process on every link per config().fault.
  void ArmLinkFaults();
  void DisarmLinkFaults();
  bool link_faults_armed() const { return link_faults_armed_; }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Engine>> nodes_;
  /// links_[src * num_nodes + dst]; null on the diagonal.
  std::vector<std::unique_ptr<sim::InterNodeLink>> links_;
  std::vector<bool> alive_;
  bool needs_reshard_ = false;
  uint64_t node_losses_ = 0;
  bool link_faults_armed_ = false;
  std::map<std::string, std::shared_ptr<Table>> original_tables_;
};

}  // namespace dflow::cluster

#endif  // DFLOW_CLUSTER_CLUSTER_H_
