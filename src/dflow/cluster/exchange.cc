#include "dflow/cluster/exchange.h"

#include <algorithm>
#include <utility>

#include "dflow/vector/kernels.h"

namespace dflow::cluster {

std::string_view ExchangeOutcomeToString(ExchangeOutcome outcome) {
  switch (outcome) {
    case ExchangeOutcome::kDone:
      return "DONE";
    case ExchangeOutcome::kCancelled:
      return "CANCELLED";
    case ExchangeOutcome::kNodeLost:
      return "NODE_LOST";
    case ExchangeOutcome::kRetryExhausted:
      return "RETRY_EXHAUSTED";
  }
  return "?";
}

ExchangeOperator::ExchangeOperator(Cluster* cluster, Options options)
    : cluster_(cluster), options_(std::move(options)) {}

Result<ExchangeResult> ExchangeOperator::Run(
    const std::vector<std::vector<DataChunk>>& inputs,
    const std::vector<sim::SimTime>& ready_ns) {
  const int n = cluster_->num_nodes();
  if (static_cast<int>(inputs.size()) != n ||
      static_cast<int>(ready_ns.size()) != n) {
    return Status::InvalidArgument(
        "exchange inputs/ready must be indexed by node id over the cluster");
  }
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) {
    return Status::InvalidArgument("exchange over a cluster with no nodes");
  }

  ExchangeResult result;
  result.received.resize(n);
  result.done_ns.assign(n, 0);
  for (int d : alive) result.done_ns[d] = ready_ns[d];

  const ClusterFaultConfig& fault = cluster_->config().fault;
  const bool loss_armed = fault.lose_node >= 0 && fault.lose_node < n &&
                          cluster_->node_alive(fault.lose_node);
  const uint64_t frame_cap = std::max<uint64_t>(1, cluster_->config().frame_bytes);
  const ExchangeStats before = cluster_->TotalExchangeStats();

  // Ends the exchange: returns every in-flight credit (delivered frames'
  // acks are all in the virtual past by construction; cancelled frames are
  // explicitly released — either way the window must come back empty), and
  // reports only this exchange's delta of the link counters.
  auto finish = [&](ExchangeOutcome outcome) {
    for (int s : alive) {
      for (int d : alive) {
        if (s != d) cluster_->link(s, d).CancelWindow();
      }
    }
    const ExchangeStats after = cluster_->TotalExchangeStats();
    result.stats.bytes = after.bytes - before.bytes;
    result.stats.frames = after.frames - before.frames;
    result.stats.retransmits = after.retransmits - before.retransmits;
    result.stats.frames_lost = after.frames_lost - before.frames_lost;
    result.stats.credit_stall_ns = after.credit_stall_ns - before.credit_stall_ns;
    result.outcome = outcome;
    return result;
  };

  const uint32_t fanout = static_cast<uint32_t>(alive.size());
  std::vector<uint64_t> hashes;

  // Deterministic frame layout: source nodes ascending, that source's
  // chunks in order, destinations ascending, frames of a chunk in row
  // order. Same inputs => same schedule => byte-identical counters.
  for (int src : alive) {
    for (const DataChunk& chunk : inputs[src]) {
      if (chunk.num_rows() == 0) continue;

      // Route this chunk: per destination node, the piece it receives.
      std::vector<std::pair<int, DataChunk>> routed;
      switch (options_.kind) {
        case verify::ExchangeKind::kShuffle: {
          if (options_.key_col >= chunk.num_columns()) {
            return Status::InvalidArgument("shuffle key column out of range");
          }
          hashes.clear();  // non-empty switches HashColumn into combine mode
          DFLOW_RETURN_NOT_OK(HashColumn(chunk.column(options_.key_col),
                                         &hashes));
          std::vector<SelectionVector> sel(fanout);
          for (size_t r = 0; r < hashes.size(); ++r) {
            sel[hashes[r] % fanout].Append(static_cast<uint32_t>(r));
          }
          for (uint32_t p = 0; p < fanout; ++p) {
            if (sel[p].empty()) continue;
            routed.emplace_back(alive[p], chunk.Gather(sel[p]));
          }
          break;
        }
        case verify::ExchangeKind::kBroadcast: {
          for (int dst : alive) routed.emplace_back(dst, chunk);
          break;
        }
        case verify::ExchangeKind::kGather: {
          routed.emplace_back(options_.coordinator, chunk);
          break;
        }
      }

      for (auto& [dst, piece] : routed) {
        if (dst == src) {
          // Local delivery: no link, no frame, no credit — the piece is
          // already where it needs to be at the fragment's own ready time.
          result.received[src].push_back(std::move(piece));
          continue;
        }
        // Split the piece into wire frames of at most frame_bytes each.
        const uint64_t piece_bytes = piece.ByteSize();
        const size_t piece_rows = piece.num_rows();
        const size_t num_frames = static_cast<size_t>(
            (piece_bytes + frame_cap - 1) / frame_cap);
        const size_t rows_per_frame =
            (piece_rows + num_frames - 1) / num_frames;
        for (size_t start = 0; start < piece_rows; start += rows_per_frame) {
          const size_t count = std::min(rows_per_frame, piece_rows - start);
          SelectionVector rows;
          for (size_t r = start; r < start + count; ++r) {
            rows.Append(static_cast<uint32_t>(r));
          }
          DataChunk frame = piece.Gather(rows);
          const sim::SimTime ready = ready_ns[src];
          if (options_.cancel_at_ns > 0 && ready >= options_.cancel_at_ns) {
            return finish(ExchangeOutcome::kCancelled);
          }
          const sim::InterNodeLink::FrameResult sent = cluster_->link(src, dst)
              .Send(ready, frame.ByteSize(), ChecksumChunk(frame));
          if (loss_armed &&
              (src == fault.lose_node || dst == fault.lose_node) &&
              sent.arrive >= fault.lose_node_at_ns) {
            cluster_->MarkNodeLost(fault.lose_node);
            return finish(ExchangeOutcome::kNodeLost);
          }
          if (!sent.delivered) {
            return finish(ExchangeOutcome::kRetryExhausted);
          }
          result.done_ns[dst] = std::max(result.done_ns[dst], sent.arrive);
          result.received[dst].push_back(std::move(frame));
        }
      }
    }
  }
  return finish(ExchangeOutcome::kDone);
}

}  // namespace dflow::cluster
