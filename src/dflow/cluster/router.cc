#include "dflow/cluster/router.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "dflow/common/hash.h"
#include "dflow/exec/aggregate.h"
#include "dflow/exec/join.h"
#include "dflow/exec/local_executor.h"
#include "dflow/exec/misc_ops.h"

namespace dflow::cluster {
namespace {

/// Modeled per-row cost of router-level operators (pre-aggregation, merge,
/// join build/probe on exchanged rows). The heavy lifting — scans, filters,
/// projections — is priced by each node's fabric simulator; this constant
/// only keeps the cluster-level merge work from being free.
constexpr sim::SimTime kClusterOpNsPerRow = 40;

/// Output column names of a local fragment (scan+filter+project only, so
/// either the projection names or, select-all, the full table schema).
std::vector<std::string> LocalOutputNames(const QuerySpec& spec,
                                          const Schema& table_schema) {
  if (!spec.projections.empty()) return spec.projection_names;
  std::vector<std::string> names;
  names.reserve(table_schema.num_fields());
  for (const Field& f : table_schema.fields()) names.push_back(f.name);
  return names;
}

/// Schema of the chunks flowing between fragments, recovered from the
/// first non-empty chunk (chunks carry types but not names). nullopt when
/// every node produced zero rows.
std::optional<Schema> InferSchema(
    const std::vector<std::vector<DataChunk>>& per_node,
    const std::vector<std::string>& names) {
  for (const auto& chunks : per_node) {
    for (const DataChunk& chunk : chunks) {
      if (chunk.num_rows() == 0 || chunk.num_columns() != names.size()) {
        continue;
      }
      std::vector<Field> fields;
      fields.reserve(names.size());
      for (size_t i = 0; i < names.size(); ++i) {
        fields.push_back(Field{names[i], chunk.column(i).type()});
      }
      return Schema(std::move(fields));
    }
  }
  return std::nullopt;
}

std::optional<Schema> InferSchema(const std::vector<DataChunk>& chunks,
                                  const std::vector<std::string>& names) {
  std::vector<std::vector<DataChunk>> wrap;
  wrap.push_back(chunks);
  return InferSchema(wrap, names);
}

/// Column names of the final (coordinator-side) result, for resolving the
/// ORDER BY column.
std::vector<std::string> FinalOutputNames(const QuerySpec& spec,
                                          const Schema& table_schema) {
  if (spec.count_only) return {"count"};
  if (!spec.aggregates.empty()) {
    std::vector<std::string> names = spec.group_by;
    for (const AggSpec& a : spec.aggregates) names.push_back(a.output_name);
    return names;
  }
  return LocalOutputNames(spec, table_schema);
}

}  // namespace

std::string_view TaskStateToString(TaskInfo::State state) {
  switch (state) {
    case TaskInfo::State::kRegistered:
      return "REGISTERED";
    case TaskInfo::State::kRunning:
      return "RUNNING";
    case TaskInfo::State::kDone:
      return "DONE";
    case TaskInfo::State::kCancelled:
      return "CANCELLED";
    case TaskInfo::State::kFailed:
      return "FAILED";
  }
  return "?";
}

QueryRouter::QueryRouter(Cluster* cluster, RouterOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    schedulers_.push_back(std::make_unique<Scheduler>(&cluster_->node(i)));
    ledgers_.push_back(std::make_unique<DemandLedger>());
  }
  if (options_.coordinator < 0 ||
      options_.coordinator >= cluster_->num_nodes() ||
      !cluster_->node_alive(options_.coordinator)) {
    options_.coordinator = cluster_->AliveNodes().empty()
                               ? 0
                               : cluster_->AliveNodes().front();
  }
}

Status QueryRouter::PrepareCluster() {
  if (cluster_->needs_reshard()) {
    DFLOW_RETURN_NOT_OK(cluster_->ReshardAll());
    // The coordinator itself may have been the lost node: re-home it.
    if (!cluster_->node_alive(options_.coordinator)) {
      const std::vector<int> alive = cluster_->AliveNodes();
      if (alive.empty()) {
        return Status::InvalidArgument("cluster has no alive nodes");
      }
      options_.coordinator = alive.front();
    }
  }
  return Status::OK();
}

Result<QueryResult> QueryRouter::RunLocalFragment(int node,
                                                  const QuerySpec& spec) {
  Engine& engine = cluster_->node(node);
  // Charge this fragment's estimated demand to the node's ledger for the
  // duration of the run — the same charge/release discipline the serving
  // loop applies, kept per node so a hot shard's commitment is visible.
  CostEstimate cost;
  Result<std::vector<RankedPlacement>> variants = engine.PlanVariants(spec);
  if (variants.ok() && !variants.ValueOrDie().empty()) {
    cost = variants.ValueOrDie()[0].cost;
  }
  ledgers_[node]->Charge(*schedulers_[node], cost);
  ledger_charges_++;
  ExecOptions exec;
  exec.placement = options_.placement;
  exec.verify = options_.verify;
  Result<QueryResult> result = engine.Execute(spec, exec);
  ledgers_[node]->Release(*schedulers_[node], cost);
  ledger_releases_++;
  return result;
}

void QueryRouter::DetectStragglers(DistributedResult* result) {
  std::vector<sim::SimTime> times;
  for (const TaskInfo& task : result->tasks) {
    if (task.fragment == "local") times.push_back(task.local_ns);
  }
  if (times.size() < 2) return;
  std::sort(times.begin(), times.end());
  const sim::SimTime median = times[times.size() / 2];
  if (median == 0) return;
  const double threshold =
      static_cast<double>(median) * cluster_->config().straggler_factor;
  for (TaskInfo& task : result->tasks) {
    if (task.fragment != "local") continue;
    if (static_cast<double>(task.local_ns) > threshold) {
      task.straggler = true;
      result->straggler_events++;
    }
  }
}

Result<int> QueryRouter::HomeNode(const std::string& tenant) const {
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) {
    return Status::InvalidArgument("cluster has no alive nodes");
  }
  return alive[HashString(tenant) % alive.size()];
}

Result<DistributedResult> QueryRouter::ExecuteQuery(const QuerySpec& spec) {
  DFLOW_RETURN_NOT_OK(PrepareCluster());
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) {
    return Status::InvalidArgument("cluster has no alive nodes");
  }
  const int n = cluster_->num_nodes();
  const int coord = options_.coordinator;
  DistributedResult result;

  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Table> any_shard,
                         cluster_->node(alive.front()).catalog().Lookup(
                             spec.table));
  const Schema& table_schema = any_shard->schema();

  // ---- Exchange-plan verification: the VY_XCHG_* family runs over the
  // plan snapshot before any frame moves; strict mode refuses errors.
  const bool has_agg = !spec.count_only && !spec.aggregates.empty();
  const bool grouped = has_agg && !spec.group_by.empty();
  {
    verify::ExchangePlanSpec plan;
    plan.num_nodes = n;
    plan.lost_nodes = cluster_->LostNodes();
    plan.lossy_links = cluster_->link_faults_armed();
    for (int i : alive) plan.fragments.push_back("scan@" + std::to_string(i));
    if (grouped) {
      for (int i : alive) {
        plan.fragments.push_back("merge@" + std::to_string(i));
      }
    }
    plan.fragments.push_back("coord");
    const uint32_t credits = cluster_->config().xlink_credits;
    if (grouped) {
      verify::ExchangeSpec shuffle;
      shuffle.name = "shuffle.partial";
      shuffle.kind = verify::ExchangeKind::kShuffle;
      shuffle.from_nodes = alive;
      shuffle.to_nodes = alive;
      shuffle.partition_count = static_cast<uint32_t>(alive.size());
      shuffle.credits = credits;
      shuffle.key_col = 0;  // group columns lead the partial layout
      shuffle.input_arity =
          static_cast<int>(spec.group_by.size() + spec.aggregates.size());
      shuffle.consumer = "merge@" + std::to_string(alive.front());
      plan.exchanges.push_back(std::move(shuffle));
    }
    verify::ExchangeSpec gather;
    gather.name = "gather.result";
    gather.kind = verify::ExchangeKind::kGather;
    gather.from_nodes = alive;
    gather.to_nodes = {coord};
    gather.credits = credits;
    gather.consumer = "coord";
    plan.exchanges.push_back(std::move(gather));
    result.verify = verify::VerifyExchangePlan(plan);
    if (options_.verify == verify::VerifyMode::kStrict &&
        !result.verify.ok()) {
      return Status::InvalidArgument("exchange plan rejected: " +
                                     result.verify.ToString());
    }
  }

  // ---- Phase A: per-node local fragments, each on its own fabric.
  // Aggregation, ordering and limits move to the merge phases; the scan/
  // filter/project work (the bytes-heavy part) runs against each shard.
  QuerySpec local_spec = spec;
  local_spec.order_by.reset();
  local_spec.limit = 0;
  if (!spec.count_only) {
    local_spec.aggregates.clear();
    local_spec.group_by.clear();
  }

  std::vector<std::vector<DataChunk>> local(n);
  std::vector<sim::SimTime> ready(n, 0);
  const ClusterFaultConfig& fault = cluster_->config().fault;
  for (int i : alive) {
    TaskInfo task;
    task.node = i;
    task.fragment = "local";
    task.state = TaskInfo::State::kRunning;
    DFLOW_ASSIGN_OR_RETURN(QueryResult run, RunLocalFragment(i, local_spec));
    sim::SimTime t = run.report.sim_ns;
    if (fault.slow_node == i && fault.slow_factor > 1.0) {
      t = static_cast<sim::SimTime>(static_cast<double>(t) *
                                    fault.slow_factor);
    }
    task.local_ns = t;
    task.state = TaskInfo::State::kDone;
    local[i] = std::move(run.chunks);
    ready[i] = t;
    result.tasks.push_back(std::move(task));
  }
  DetectStragglers(&result);

  // Maps a failed exchange onto the result: stable outcome code, tasks
  // closed out, no rows.
  auto fail_with = [&](const ExchangeResult& xr) {
    result.outcome = std::string(ExchangeOutcomeToString(xr.outcome));
    result.exchange.Accumulate(xr.stats);
    TaskInfo task;
    task.node = coord;
    task.fragment = "coord";
    task.state = xr.outcome == ExchangeOutcome::kCancelled
                     ? TaskInfo::State::kCancelled
                     : TaskInfo::State::kFailed;
    result.tasks.push_back(std::move(task));
    return result;
  };

  const std::vector<std::string> local_names =
      LocalOutputNames(spec, table_schema);

  // ---- Phases B/C by query shape.
  if (spec.count_only) {
    // Per-node counts gather to the coordinator, which sums them.
    ExchangeOperator gather(
        cluster_, {verify::ExchangeKind::kGather, 0, coord,
                   options_.cancel_at_ns, "gather.count"});
    DFLOW_ASSIGN_OR_RETURN(ExchangeResult xr, gather.Run(local, ready));
    if (xr.outcome != ExchangeOutcome::kDone) return fail_with(xr);
    result.exchange.Accumulate(xr.stats);
    int64_t total = 0;
    for (const DataChunk& chunk : xr.received[coord]) {
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        total += chunk.GetValue(r, 0).AsInt64();
      }
    }
    DataChunk out(std::vector<ColumnVector>{ColumnVector::FromInt64({total})});
    result.chunks.push_back(std::move(out));
    result.makespan_ns = xr.done_ns[coord] + kClusterOpNsPerRow;
  } else if (has_agg) {
    // Pre-aggregate per node, shuffle partial states so each group has one
    // home, merge, and gather merged rows to the coordinator (global
    // aggregates skip the shuffle: one kFinal merge at the coordinator).
    std::optional<Schema> in_schema = InferSchema(local, local_names);
    if (!in_schema.has_value()) {
      // Zero rows survived the filter on every shard, so the distributed
      // answer equals the full query over any (empty-result) shard: run it
      // on the coordinator, which also yields the scalar-aggregate
      // empty-state row with the right types.
      DFLOW_ASSIGN_OR_RETURN(QueryResult run, RunLocalFragment(coord, spec));
      result.chunks = std::move(run.chunks);
      sim::SimTime worst = 0;
      for (const TaskInfo& t : result.tasks) worst = std::max(worst, t.local_ns);
      result.makespan_ns = worst + run.report.sim_ns;
    } else {
      std::vector<std::vector<DataChunk>> partial(n);
      Schema partial_schema;
      for (int i : alive) {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr agg,
            HashAggregateOperator::Make(*in_schema, spec.group_by,
                                        spec.aggregates, AggMode::kPartial));
        partial_schema = agg->output_schema();
        DFLOW_ASSIGN_OR_RETURN(partial[i],
                               RunLocalPipeline(local[i], {agg.get()}));
        ready[i] += TotalRows(local[i]) * kClusterOpNsPerRow;
      }
      const std::vector<AggSpec> merge_specs = MakeMergeSpecs(spec.aggregates);
      if (grouped) {
        DFLOW_ASSIGN_OR_RETURN(size_t key_col,
                               partial_schema.FieldIndex(spec.group_by[0]));
        ExchangeOperator shuffle(
            cluster_, {verify::ExchangeKind::kShuffle, key_col, coord,
                       options_.cancel_at_ns, "shuffle.partial"});
        DFLOW_ASSIGN_OR_RETURN(ExchangeResult xr, shuffle.Run(partial, ready));
        if (xr.outcome != ExchangeOutcome::kDone) return fail_with(xr);
        result.exchange.Accumulate(xr.stats);
        std::vector<std::vector<DataChunk>> merged(n);
        std::vector<sim::SimTime> merged_ready(n, 0);
        for (int i : alive) {
          TaskInfo task;
          task.node = i;
          task.fragment = "merge";
          DFLOW_ASSIGN_OR_RETURN(
              OperatorPtr fin,
              HashAggregateOperator::Make(partial_schema, spec.group_by,
                                          merge_specs, AggMode::kFinal));
          DFLOW_ASSIGN_OR_RETURN(
              merged[i], RunLocalPipeline(xr.received[i], {fin.get()}));
          merged_ready[i] =
              xr.done_ns[i] +
              TotalRows(xr.received[i]) * kClusterOpNsPerRow;
          task.state = TaskInfo::State::kDone;
          result.tasks.push_back(std::move(task));
        }
        ExchangeOperator gather(
            cluster_, {verify::ExchangeKind::kGather, 0, coord,
                       options_.cancel_at_ns, "gather.result"});
        DFLOW_ASSIGN_OR_RETURN(ExchangeResult gr,
                               gather.Run(merged, merged_ready));
        if (gr.outcome != ExchangeOutcome::kDone) return fail_with(gr);
        result.exchange.Accumulate(gr.stats);
        result.chunks = std::move(gr.received[coord]);
        result.makespan_ns =
            gr.done_ns[coord] + TotalRows(result.chunks) * kClusterOpNsPerRow;
      } else {
        // Global aggregate: gather partial states, one merge at the
        // coordinator (which emits the empty-state row when nothing came).
        ExchangeOperator gather(
            cluster_, {verify::ExchangeKind::kGather, 0, coord,
                       options_.cancel_at_ns, "gather.result"});
        DFLOW_ASSIGN_OR_RETURN(ExchangeResult xr, gather.Run(partial, ready));
        if (xr.outcome != ExchangeOutcome::kDone) return fail_with(xr);
        result.exchange.Accumulate(xr.stats);
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr fin,
            HashAggregateOperator::Make(partial_schema, spec.group_by,
                                        merge_specs, AggMode::kFinal));
        DFLOW_ASSIGN_OR_RETURN(result.chunks,
                               RunLocalPipeline(xr.received[coord],
                                                {fin.get()}));
        result.makespan_ns =
            xr.done_ns[coord] +
            TotalRows(xr.received[coord]) * kClusterOpNsPerRow;
      }
    }
  } else {
    // Plain select: gather every surviving row to the coordinator.
    ExchangeOperator gather(
        cluster_, {verify::ExchangeKind::kGather, 0, coord,
                   options_.cancel_at_ns, "gather.result"});
    DFLOW_ASSIGN_OR_RETURN(ExchangeResult xr, gather.Run(local, ready));
    if (xr.outcome != ExchangeOutcome::kDone) return fail_with(xr);
    result.exchange.Accumulate(xr.stats);
    result.chunks = std::move(xr.received[coord]);
    result.makespan_ns =
        xr.done_ns[coord] + TotalRows(result.chunks) * kClusterOpNsPerRow;
  }

  // ---- ORDER BY / LIMIT at the coordinator, over the gathered result.
  // Same operators as the single-node engine, so tie-breaking and top-K
  // selection are identical by construction.
  if (!spec.count_only &&
      (spec.order_by.has_value() || spec.limit > 0)) {
    const std::vector<std::string> final_names =
        FinalOutputNames(spec, table_schema);
    std::optional<Schema> out_schema = InferSchema(result.chunks, final_names);
    if (out_schema.has_value()) {
      std::vector<OperatorPtr> owned;
      std::vector<Operator*> ops;
      if (spec.order_by.has_value()) {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr sort,
            SortOperator::Make(*out_schema, spec.order_by->column,
                               spec.order_by->descending,
                               spec.order_by->limit));
        ops.push_back(sort.get());
        owned.push_back(std::move(sort));
      }
      if (spec.limit > 0) {
        owned.push_back(
            std::make_unique<LimitOperator>(*out_schema, spec.limit));
        ops.push_back(owned.back().get());
      }
      const uint64_t sorted_rows = TotalRows(result.chunks);
      DFLOW_ASSIGN_OR_RETURN(result.chunks,
                             RunLocalPipeline(result.chunks, ops));
      result.makespan_ns += sorted_rows * kClusterOpNsPerRow;
    }
  }

  TaskInfo task;
  task.node = coord;
  task.fragment = "coord";
  task.state = TaskInfo::State::kDone;
  result.tasks.push_back(std::move(task));
  return result;
}

Result<DistributedResult> QueryRouter::ExecuteJoin(const JoinSpec& spec) {
  DFLOW_RETURN_NOT_OK(PrepareCluster());
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) {
    return Status::InvalidArgument("cluster has no alive nodes");
  }
  const int n = cluster_->num_nodes();
  const int coord = options_.coordinator;
  DistributedResult result;

  DFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> build_shard,
      cluster_->node(alive.front()).catalog().Lookup(spec.build_table));
  DFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> probe_shard,
      cluster_->node(alive.front()).catalog().Lookup(spec.probe_table));
  const Schema& build_schema = build_shard->schema();
  const Schema& probe_schema = probe_shard->schema();
  DFLOW_ASSIGN_OR_RETURN(size_t build_key,
                         build_schema.FieldIndex(spec.build_key));
  DFLOW_ASSIGN_OR_RETURN(size_t probe_key,
                         probe_schema.FieldIndex(spec.probe_key));

  // ---- Phase A: scan both sides locally (filter pushed to the probe
  // scan), so exchange volume is already post-filter.
  QuerySpec build_scan;
  build_scan.table = spec.build_table;
  QuerySpec probe_scan;
  probe_scan.table = spec.probe_table;
  probe_scan.filter = spec.probe_filter;

  std::vector<std::vector<DataChunk>> build_rows(n);
  std::vector<std::vector<DataChunk>> probe_rows(n);
  std::vector<sim::SimTime> ready(n, 0);
  uint64_t total_build_rows = 0;
  const ClusterFaultConfig& fault = cluster_->config().fault;
  for (int i : alive) {
    TaskInfo task;
    task.node = i;
    task.fragment = "local";
    task.state = TaskInfo::State::kRunning;
    DFLOW_ASSIGN_OR_RETURN(QueryResult b, RunLocalFragment(i, build_scan));
    DFLOW_ASSIGN_OR_RETURN(QueryResult p, RunLocalFragment(i, probe_scan));
    sim::SimTime t = b.report.sim_ns + p.report.sim_ns;
    if (fault.slow_node == i && fault.slow_factor > 1.0) {
      t = static_cast<sim::SimTime>(static_cast<double>(t) *
                                    fault.slow_factor);
    }
    task.local_ns = t;
    task.state = TaskInfo::State::kDone;
    total_build_rows += TotalRows(b.chunks);
    build_rows[i] = std::move(b.chunks);
    probe_rows[i] = std::move(p.chunks);
    ready[i] = t;
    result.tasks.push_back(std::move(task));
  }
  DetectStragglers(&result);

  const bool broadcast =
      options_.broadcast_build_max_rows > 0 &&
      total_build_rows <= options_.broadcast_build_max_rows;

  // ---- Exchange-plan verification.
  {
    verify::ExchangePlanSpec plan;
    plan.num_nodes = n;
    plan.lost_nodes = cluster_->LostNodes();
    plan.lossy_links = cluster_->link_faults_armed();
    for (int i : alive) plan.fragments.push_back("scan@" + std::to_string(i));
    for (int i : alive) plan.fragments.push_back("join@" + std::to_string(i));
    plan.fragments.push_back("coord");
    const uint32_t credits = cluster_->config().xlink_credits;
    auto add = [&](verify::ExchangeSpec x) {
      x.credits = credits;
      plan.exchanges.push_back(std::move(x));
    };
    verify::ExchangeSpec b;
    b.name = broadcast ? "broadcast.build" : "shuffle.build";
    b.kind = broadcast ? verify::ExchangeKind::kBroadcast
                       : verify::ExchangeKind::kShuffle;
    b.from_nodes = alive;
    b.to_nodes = alive;
    b.partition_count =
        broadcast ? 0 : static_cast<uint32_t>(alive.size());
    b.key_col = static_cast<int>(build_key);
    b.input_arity = static_cast<int>(build_schema.num_fields());
    b.consumer = "join@" + std::to_string(alive.front());
    add(std::move(b));
    if (!broadcast) {
      verify::ExchangeSpec p;
      p.name = "shuffle.probe";
      p.kind = verify::ExchangeKind::kShuffle;
      p.from_nodes = alive;
      p.to_nodes = alive;
      p.partition_count = static_cast<uint32_t>(alive.size());
      p.key_col = static_cast<int>(probe_key);
      p.input_arity = static_cast<int>(probe_schema.num_fields());
      p.consumer = "join@" + std::to_string(alive.front());
      add(std::move(p));
    }
    verify::ExchangeSpec g;
    g.name = "gather.counts";
    g.kind = verify::ExchangeKind::kGather;
    g.from_nodes = alive;
    g.to_nodes = {coord};
    g.consumer = "coord";
    add(std::move(g));
    result.verify = verify::VerifyExchangePlan(plan);
    if (options_.verify == verify::VerifyMode::kStrict &&
        !result.verify.ok()) {
      return Status::InvalidArgument("exchange plan rejected: " +
                                     result.verify.ToString());
    }
  }

  auto fail_with = [&](const ExchangeResult& xr) {
    result.outcome = std::string(ExchangeOutcomeToString(xr.outcome));
    result.exchange.Accumulate(xr.stats);
    TaskInfo task;
    task.node = coord;
    task.fragment = "coord";
    task.state = xr.outcome == ExchangeOutcome::kCancelled
                     ? TaskInfo::State::kCancelled
                     : TaskInfo::State::kFailed;
    result.tasks.push_back(std::move(task));
    return result;
  };

  // ---- Phase B: move the build side (shuffle by key, or broadcast when
  // small), then the probe side (stays local under broadcast).
  ExchangeOperator build_xchg(
      cluster_,
      {broadcast ? verify::ExchangeKind::kBroadcast
                 : verify::ExchangeKind::kShuffle,
       build_key, coord, options_.cancel_at_ns,
       broadcast ? "broadcast.build" : "shuffle.build"});
  DFLOW_ASSIGN_OR_RETURN(ExchangeResult bx, build_xchg.Run(build_rows, ready));
  if (bx.outcome != ExchangeOutcome::kDone) return fail_with(bx);
  result.exchange.Accumulate(bx.stats);

  ExchangeResult px;
  if (broadcast) {
    px.received = std::move(probe_rows);
    px.done_ns = ready;
    px.outcome = ExchangeOutcome::kDone;
  } else {
    ExchangeOperator probe_xchg(
        cluster_, {verify::ExchangeKind::kShuffle, probe_key, coord,
                   options_.cancel_at_ns, "shuffle.probe"});
    DFLOW_ASSIGN_OR_RETURN(px, probe_xchg.Run(probe_rows, ready));
    if (px.outcome != ExchangeOutcome::kDone) return fail_with(px);
    result.exchange.Accumulate(px.stats);
  }

  // ---- Phase C: per-node build + probe + count, then gather the counts.
  std::vector<std::vector<DataChunk>> counts(n);
  std::vector<sim::SimTime> count_ready(n, 0);
  for (int i : alive) {
    TaskInfo task;
    task.node = i;
    task.fragment = "join";
    auto table = std::make_shared<JoinHashTable>(build_schema, build_key);
    for (const DataChunk& chunk : bx.received[i]) {
      DFLOW_RETURN_NOT_OK(table->Insert(chunk));
    }
    DFLOW_ASSIGN_OR_RETURN(
        OperatorPtr probe_op,
        HashJoinProbeOperator::Make(table, probe_schema, probe_key));
    CountOperator count_op;
    DFLOW_ASSIGN_OR_RETURN(
        std::vector<DataChunk> count_chunks,
        RunLocalPipeline(px.received[i], {probe_op.get(), &count_op}));
    const uint64_t local_work =
        table->num_rows() + TotalRows(px.received[i]);
    count_ready[i] = std::max(bx.done_ns[i], px.done_ns[i]) +
                     local_work * kClusterOpNsPerRow;
    counts[i] = std::move(count_chunks);
    task.state = TaskInfo::State::kDone;
    result.tasks.push_back(std::move(task));
  }

  ExchangeOperator gather(
      cluster_, {verify::ExchangeKind::kGather, 0, coord,
                 options_.cancel_at_ns, "gather.counts"});
  DFLOW_ASSIGN_OR_RETURN(ExchangeResult gx, gather.Run(counts, count_ready));
  if (gx.outcome != ExchangeOutcome::kDone) return fail_with(gx);
  result.exchange.Accumulate(gx.stats);

  int64_t total = 0;
  for (const DataChunk& chunk : gx.received[coord]) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      total += chunk.GetValue(r, 0).AsInt64();
    }
  }
  result.total_rows = total;
  result.makespan_ns = gx.done_ns[coord] + kClusterOpNsPerRow;

  TaskInfo task;
  task.node = coord;
  task.fragment = "coord";
  task.state = TaskInfo::State::kDone;
  result.tasks.push_back(std::move(task));
  return result;
}

}  // namespace dflow::cluster
