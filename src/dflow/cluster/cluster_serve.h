#ifndef DFLOW_CLUSTER_CLUSTER_SERVE_H_
#define DFLOW_CLUSTER_CLUSTER_SERVE_H_

#include <string>
#include <vector>

#include "dflow/cluster/cluster.h"
#include "dflow/cluster/router.h"
#include "dflow/serve/service_loop.h"

namespace dflow::cluster {

/// One node's slice of a cluster service run.
struct NodeServiceReport {
  int node = 0;
  bool alive = true;
  serve::ServiceReport report;
};

/// Cluster-wide service report: per-node ServiceReport sections plus the
/// cluster totals and exchange counters — the JSON "cluster" section the
/// bench reports carry and check_report.py pins.
struct ClusterServiceReport {
  int num_nodes = 0;
  sim::SimTime makespan_ns = 0;  // max over nodes (they serve concurrently)
  uint64_t arrivals_total = 0;
  uint64_t admitted_total = 0;
  uint64_t shed_total = 0;
  uint64_t completed_total = 0;
  uint64_t failed_total = 0;
  uint64_t straggler_events = 0;
  uint64_t node_losses = 0;
  ExchangeStats exchange;
  std::vector<NodeServiceReport> nodes;
};

struct ClusterServiceResult {
  ClusterServiceReport cluster;
  /// Per-node full results (outcomes, fabric reports) for callers that
  /// need more than the counters.
  std::vector<serve::ServiceResult> node_results;
};

/// The serving layer over the cluster: shards tenants across alive nodes
/// (stable hash, same as QueryRouter::HomeNode) and runs one
/// serve::ServiceLoop per node over that node's tenant subset — admission,
/// lifecycle, breakers, brownout, and the program cache all per node, each
/// node on its own fabric. Nodes serve concurrently, so the cluster
/// makespan is the max of the per-node makespans and throughput scales
/// with alive nodes.
class ClusterServiceLoop {
 public:
  ClusterServiceLoop(Cluster* cluster,
                     std::vector<serve::TenantConfig> tenants,
                     serve::ServiceConfig config);

  Result<ClusterServiceResult> Run();

 private:
  Cluster* cluster_;
  std::vector<serve::TenantConfig> tenants_;
  serve::ServiceConfig config_;
};

/// Deterministic JSON rendering of a ClusterServiceReport (sorted keys,
/// stable formatting — byte-identical per seed). Shape:
///   {"num_nodes":N, "admitted_total":..., ...,
///    "exchange":{"bytes":...,...},
///    "per_node":{"node0":{"admitted":...,...},...}}
std::string ClusterReportToJson(const ClusterServiceReport& report);

}  // namespace dflow::cluster

#endif  // DFLOW_CLUSTER_CLUSTER_SERVE_H_
