#ifndef DFLOW_CLUSTER_ROUTER_H_
#define DFLOW_CLUSTER_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/cluster/cluster.h"
#include "dflow/cluster/exchange.h"
#include "dflow/plan/query_spec.h"
#include "dflow/sched/demand_ledger.h"
#include "dflow/sched/scheduler.h"
#include "dflow/verify/xchg.h"

namespace dflow::cluster {

struct RouterOptions {
  /// Exchange-plan verification mode. Strict refuses to lower a plan whose
  /// VY_XCHG_* report has errors (and is also passed through to each
  /// node-local engine run).
  verify::VerifyMode verify = verify::DefaultMode();
  PlacementChoice placement = PlacementChoice::kAuto;
  /// Node that runs final merges and owns the query's result.
  int coordinator = 0;
  /// Joins whose build side is at most this many rows use a broadcast
  /// exchange (probe stays local) instead of shuffling both sides.
  /// 0 disables the broadcast path.
  uint64_t broadcast_build_max_rows = 0;
  /// Cancel the query's exchanges at this cluster virtual time (0 = never).
  sim::SimTime cancel_at_ns = 0;
};

/// One per-node task of a distributed query (the MPP lifecycle unit).
struct TaskInfo {
  enum class State { kRegistered, kRunning, kDone, kCancelled, kFailed };

  int node = 0;
  std::string fragment;  // "local", "merge", "coord"
  State state = State::kRegistered;
  /// Modeled time this node spent in its local fragment.
  sim::SimTime local_ns = 0;
  bool straggler = false;
};

std::string_view TaskStateToString(TaskInfo::State state);

/// Result of one distributed query. `outcome` is a stable code —
/// "DONE", "CANCELLED", "NODE_LOST", "RETRY_EXHAUSTED" — tests and the
/// serving layer match on it exactly; a non-DONE outcome still returns OK
/// status (the query *ran*, it just didn't finish), while plan-level
/// refusals (strict VY_XCHG_* errors, unknown tables) are error Status.
struct DistributedResult {
  std::string outcome = "DONE";
  /// Coordinator output rows (empty for joins and non-DONE outcomes).
  std::vector<DataChunk> chunks;
  /// Joined-row count (joins only).
  int64_t total_rows = 0;
  /// Cluster makespan: the coordinator's completion time over the phased
  /// schedule (local fragments, exchanges, merges).
  sim::SimTime makespan_ns = 0;
  ExchangeStats exchange;
  uint64_t straggler_events = 0;
  std::vector<TaskInfo> tasks;
  verify::VerifyReport verify;
};

/// Shards queries across the cluster and drives the MPP task lifecycle:
/// per-node local fragments (each on its own fabric, via its own engine),
/// exchange lowering onto the inter-node links, straggler detection,
/// node-loss re-routing, and merge-at-coordinator. Every distributed plan's
/// exchange layer is verified (VY_XCHG_* family) before a single frame
/// moves. Per node, the router keeps the scheduler's demand ledger: local
/// fragments are charged on dispatch and released on completion, same as
/// the single-node serving loop.
class QueryRouter {
 public:
  explicit QueryRouter(Cluster* cluster,
                       RouterOptions options = RouterOptions());

  /// Distributed execution of a single-table query. Semantics match
  /// Engine::Execute of the same spec over the unsharded table exactly
  /// (same canonical fingerprint): scan+filter+project run per shard,
  /// aggregation is pre-aggregated locally, hash-shuffled on the first
  /// group column, merged, and gathered; ORDER BY / LIMIT apply at the
  /// coordinator over the gathered rows.
  Result<DistributedResult> ExecuteQuery(const QuerySpec& spec);

  /// Distributed partitioned equi-join: both sides scan their shards
  /// locally, hash-shuffle on the join key (or broadcast the build side
  /// when small), build+probe per node, and gather per-node counts to the
  /// coordinator. total_rows matches the single-node join count.
  Result<DistributedResult> ExecuteJoin(const JoinSpec& spec);

  /// The node a tenant's queries are routed to (stable hash over the
  /// currently-alive nodes).
  Result<int> HomeNode(const std::string& tenant) const;

  uint64_t ledger_charges() const { return ledger_charges_; }
  uint64_t ledger_releases() const { return ledger_releases_; }

 private:
  /// Re-routes shards over the survivors after a node loss.
  Status PrepareCluster();

  /// Per-alive-node local fragment run: Charge ledger, Execute, Release.
  Result<QueryResult> RunLocalFragment(int node, const QuerySpec& spec);

  /// Flags nodes whose local time exceeds straggler_factor x the median.
  void DetectStragglers(DistributedResult* result);

  Cluster* cluster_;
  RouterOptions options_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::unique_ptr<DemandLedger>> ledgers_;
  uint64_t ledger_charges_ = 0;
  uint64_t ledger_releases_ = 0;
};

}  // namespace dflow::cluster

#endif  // DFLOW_CLUSTER_ROUTER_H_
