#ifndef DFLOW_ACCEL_LIST_UNIT_H_
#define DFLOW_ACCEL_LIST_UNIT_H_

#include <cstdint>
#include <vector>

#include "dflow/common/result.h"

namespace dflow {

/// Near-memory list primitives for background maintenance (§5.4: "a
/// functional unit with fast list primitives could perform some of these
/// maintenance operations near memory", e.g. garbage collection).
///
/// Models a region of fixed-size slots threaded by an intrusive free list.
/// Allocate/Free are the mutator-facing primitives; Sweep is the GC-facing
/// one: given a liveness bitmap it reclaims every dead allocated slot in a
/// single near-memory pass, returning how many were freed — work a CPU
/// would otherwise do by chasing the list across the interconnect.
class FreeListUnit {
 public:
  FreeListUnit(size_t num_slots, size_t slot_bytes);

  size_t num_slots() const { return num_slots_; }
  size_t slot_bytes() const { return slot_bytes_; }
  size_t free_count() const { return free_count_; }
  size_t allocated_count() const { return num_slots_ - free_count_; }

  /// Pops a slot off the free list. ResourceExhausted when full.
  Result<size_t> Allocate();

  /// Returns a slot to the free list. Errors on double free / bad index.
  Status Free(size_t slot);

  bool IsAllocated(size_t slot) const;

  /// Frees every allocated slot whose bit in `live` is 0. `live` must have
  /// one entry per slot. Returns the number of slots reclaimed.
  Result<size_t> Sweep(const std::vector<uint8_t>& live);

  /// Bytes a sweep touches (all slot headers): the near-memory unit reads
  /// them locally; a CPU sweep ships them across the data path.
  uint64_t SweepBytes() const { return num_slots_ * kHeaderBytes; }

  static constexpr uint64_t kHeaderBytes = 16;  // next ptr + state word

 private:
  size_t num_slots_;
  size_t slot_bytes_;
  std::vector<uint8_t> allocated_;  // 1 = in use
  std::vector<size_t> free_list_;   // stack of free slot ids
  size_t free_count_;
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_LIST_UNIT_H_
