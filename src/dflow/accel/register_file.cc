#include "dflow/accel/register_file.h"

#include "dflow/common/logging.h"

namespace dflow {

RegisterFile::RegisterFile(std::vector<RegisterSpec> specs) {
  for (RegisterSpec& spec : specs) {
    DFLOW_CHECK(by_name_.count(spec.name) == 0)
        << "duplicate register name " << spec.name;
    DFLOW_CHECK(by_offset_.count(spec.offset) == 0)
        << "duplicate register offset " << spec.offset;
    by_name_[spec.name] = slots_.size();
    by_offset_[spec.offset] = slots_.size();
    const uint64_t initial = spec.initial;
    slots_.push_back(Slot{std::move(spec), initial});
  }
}

Status RegisterFile::Write(const std::string& name, uint64_t value) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no register named '" + name + "'");
  }
  Slot& slot = slots_[it->second];
  if (!slot.spec.writable) {
    return Status::InvalidArgument("register '" + name + "' is read-only");
  }
  slot.value = value;
  ++write_count_;
  return Status::OK();
}

Result<uint64_t> RegisterFile::Read(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no register named '" + name + "'");
  }
  return slots_[it->second].value;
}

Status RegisterFile::WriteAt(uint32_t offset, uint64_t value) {
  auto it = by_offset_.find(offset);
  if (it == by_offset_.end()) {
    return Status::OutOfRange("no register at offset " +
                              std::to_string(offset));
  }
  Slot& slot = slots_[it->second];
  if (!slot.spec.writable) {
    return Status::InvalidArgument("register at offset " +
                                   std::to_string(offset) + " is read-only");
  }
  slot.value = value;
  ++write_count_;
  return Status::OK();
}

Result<uint64_t> RegisterFile::ReadAt(uint32_t offset) const {
  auto it = by_offset_.find(offset);
  if (it == by_offset_.end()) {
    return Status::OutOfRange("no register at offset " +
                              std::to_string(offset));
  }
  return slots_[it->second].value;
}

bool RegisterFile::Has(const std::string& name) const {
  return by_name_.count(name) > 0;
}

void RegisterFile::Reset() {
  for (Slot& slot : slots_) {
    slot.value = slot.spec.initial;
  }
}

}  // namespace dflow
