#ifndef DFLOW_ACCEL_SMART_NIC_H_
#define DFLOW_ACCEL_SMART_NIC_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/accel/accelerator.h"
#include "dflow/exec/aggregate.h"
#include "dflow/exec/partition.h"

namespace dflow {

/// A bump-on-the-wire NIC processor (§4): BlueField/DPU-class. It can hash,
/// partition (the smart exchange of Figure 4), count, filter, and run
/// bounded pre-aggregation on the stream passing through it — on either the
/// sending or the receiving side of a link.
class SmartNic : public Accelerator {
 public:
  explicit SmartNic(std::string name, sim::Device* device);

  /// Bounded partial group-by: the NIC's pre-aggregation stage in the
  /// staged group-by pipeline of §4.4. `max_groups` is the fixed on-NIC
  /// table budget.
  Result<OperatorPtr> MakePartialAggregate(
      const Schema& input_schema, const std::vector<std::string>& group_by,
      const std::vector<AggSpec>& specs, size_t max_groups);

  /// COUNT(*)-on-the-NIC (§4.4): counts and discards; only the final 8-byte
  /// answer continues to the host.
  Result<OperatorPtr> MakeCount();

  /// On-the-fly partitioner for scatter exchanges (Figure 4).
  Result<HashPartitioner> MakePartitioner(size_t key_col,
                                          uint32_t num_partitions);

  /// Arms the broadcast collective (§4.4): pair with
  /// DataflowGraph::AddBroadcastStage on this NIC's device to replicate a
  /// stream to `num_targets` nodes (e.g. a replicated small-table join).
  Status ArmBroadcast(uint32_t num_targets);

  /// Default on-NIC group table budget when callers do not specify one.
  static constexpr size_t kDefaultGroupBudget = 4096;
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_SMART_NIC_H_
