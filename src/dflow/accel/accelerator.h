#ifndef DFLOW_ACCEL_ACCELERATOR_H_
#define DFLOW_ACCEL_ACCELERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/accel/kernel.h"
#include "dflow/accel/register_file.h"
#include "dflow/exec/operator.h"
#include "dflow/sim/device.h"

namespace dflow {

/// Base for the processing elements along the data path. An accelerator
/// couples:
///  - a sim::Device (the timing/capability model the fabric charges),
///  - a RegisterFile (its ISA-less configuration surface),
///  - a KernelRegistry (installable parsing/filter logic).
///
/// ValidateOperator is the placement contract: streaming-only devices
/// reject blocking operators, stateless-preferred devices reject unbounded
/// state, and the device's rate table rejects unsupported cost classes.
/// This is the enforcement of §3.3's "streaming fashion ... mostly
/// stateless" requirement.
class Accelerator {
 public:
  struct Policy {
    bool require_streaming = true;
    bool allow_unbounded_state = false;
  };

  Accelerator(std::string name, sim::Device* device, Policy policy,
              std::vector<RegisterSpec> registers);
  virtual ~Accelerator() = default;

  Accelerator(const Accelerator&) = delete;
  Accelerator& operator=(const Accelerator&) = delete;

  const std::string& name() const { return name_; }
  sim::Device* device() const { return device_; }
  RegisterFile& registers() { return registers_; }
  const RegisterFile& registers() const { return registers_; }
  KernelRegistry& kernels() { return kernels_; }

  /// Whether `op` may be placed on this accelerator, and why not if not.
  Status ValidateOperator(const Operator& op) const;

 private:
  std::string name_;
  sim::Device* device_;
  Policy policy_;
  RegisterFile registers_;
  KernelRegistry kernels_;
};

/// The policy half of the placement contract, shared by
/// Accelerator::ValidateOperator and the static plan verifier
/// (verify/verifier.cc): whether an operator named `op_name` with `traits`
/// may run on the streaming accelerator `where` under `policy`. Cost-class
/// support is checked separately against the device's rate table.
Status CheckPlacementPolicy(const OperatorTraits& traits,
                            const std::string& op_name,
                            const Accelerator::Policy& policy,
                            const std::string& where);

}  // namespace dflow

#endif  // DFLOW_ACCEL_ACCELERATOR_H_
