#include "dflow/accel/kernel.h"

namespace dflow {

Status KernelRegistry::Install(const std::string& name, KernelFn fn) {
  if (name.empty()) {
    return Status::InvalidArgument("kernel name must not be empty");
  }
  if (fn == nullptr) {
    return Status::InvalidArgument("kernel function must not be null");
  }
  kernels_[name] = std::move(fn);
  return Status::OK();
}

Status KernelRegistry::Uninstall(const std::string& name) {
  if (kernels_.erase(name) == 0) {
    return Status::NotFound("no kernel named '" + name + "'");
  }
  return Status::OK();
}

bool KernelRegistry::Has(const std::string& name) const {
  return kernels_.count(name) > 0;
}

Status KernelRegistry::Invoke(const std::string& name, const DataChunk& input,
                              std::vector<DataChunk>* out) const {
  auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    return Status::NotFound("no kernel named '" + name + "' installed");
  }
  return it->second(input, out);
}

std::vector<std::string> KernelRegistry::InstalledKernels() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, fn] : kernels_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace dflow
