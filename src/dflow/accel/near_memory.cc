#include "dflow/accel/near_memory.h"

#include "dflow/vector/kernels.h"

namespace dflow {

namespace {
std::vector<RegisterSpec> NearMemRegisters() {
  return {
      {"ctrl_filter", 0x00, true, 0},
      {"ctrl_decompress", 0x08, true, 0},
      {"ctrl_transpose", 0x10, true, 0},
      {"ctrl_pointer_chase", 0x18, true, 0},
      {"filter_column", 0x20, true, 0},
      {"status", 0x28, false, 0},
  };
}
}  // namespace

NearMemoryAccelerator::NearMemoryAccelerator(sim::Device* device)
    : Accelerator("near_memory", device,
                  Policy{/*require_streaming=*/true,
                         /*allow_unbounded_state=*/false},
                  NearMemRegisters()) {}

Result<DataChunk> NearMemoryAccelerator::FilterByValue(const DataChunk& region,
                                                       size_t col,
                                                       const Value& value) const {
  if (col >= region.num_columns()) {
    return Status::OutOfRange("filter column out of range");
  }
  Mask mask;
  DFLOW_RETURN_NOT_OK(
      CompareToConstant(region.column(col), CompareOp::kEq, value, &mask));
  return region.Gather(MaskToSelection(mask));
}

Result<DataChunk> NearMemoryAccelerator::FilterByRange(const DataChunk& region,
                                                       size_t col,
                                                       const Value& lo,
                                                       const Value& hi) const {
  if (col >= region.num_columns()) {
    return Status::OutOfRange("filter column out of range");
  }
  Mask ge, le;
  DFLOW_RETURN_NOT_OK(
      CompareToConstant(region.column(col), CompareOp::kGe, lo, &ge));
  DFLOW_RETURN_NOT_OK(
      CompareToConstant(region.column(col), CompareOp::kLe, hi, &le));
  AndMasks(le, &ge);
  return region.Gather(MaskToSelection(ge));
}

Status NearMemoryAccelerator::InstallFilterFunction(KernelFn fn) {
  DFLOW_RETURN_NOT_OK(kernels().Install(kFilterKernel, std::move(fn)));
  return registers().Write("ctrl_filter", 1);
}

Result<DataChunk> NearMemoryAccelerator::FilterByFunction(
    const DataChunk& region) {
  std::vector<DataChunk> out;
  DFLOW_RETURN_NOT_OK(kernels().Invoke(kFilterKernel, region, &out));
  if (out.size() != 1) {
    return Status::Internal("filter kernel must emit exactly one chunk");
  }
  return std::move(out[0]);
}

Result<ColumnVector> NearMemoryAccelerator::Decompress(
    const EncodedColumn& column) const {
  return DecodeColumn(column);
}

}  // namespace dflow
