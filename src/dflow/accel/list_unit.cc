#include "dflow/accel/list_unit.h"

#include "dflow/common/logging.h"

namespace dflow {

FreeListUnit::FreeListUnit(size_t num_slots, size_t slot_bytes)
    : num_slots_(num_slots),
      slot_bytes_(slot_bytes),
      allocated_(num_slots, 0),
      free_count_(num_slots) {
  DFLOW_CHECK_GT(num_slots, 0u);
  free_list_.reserve(num_slots);
  // Push in reverse so slot 0 allocates first.
  for (size_t i = num_slots; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
}

Result<size_t> FreeListUnit::Allocate() {
  if (free_list_.empty()) {
    return Status::ResourceExhausted("no free slots");
  }
  const size_t slot = free_list_.back();
  free_list_.pop_back();
  allocated_[slot] = 1;
  --free_count_;
  return slot;
}

Status FreeListUnit::Free(size_t slot) {
  if (slot >= num_slots_) {
    return Status::OutOfRange("slot index out of range");
  }
  if (!allocated_[slot]) {
    return Status::InvalidArgument("double free of slot " +
                                   std::to_string(slot));
  }
  allocated_[slot] = 0;
  free_list_.push_back(slot);
  ++free_count_;
  return Status::OK();
}

bool FreeListUnit::IsAllocated(size_t slot) const {
  return slot < num_slots_ && allocated_[slot] != 0;
}

Result<size_t> FreeListUnit::Sweep(const std::vector<uint8_t>& live) {
  if (live.size() != num_slots_) {
    return Status::InvalidArgument("liveness bitmap size mismatch");
  }
  size_t reclaimed = 0;
  for (size_t i = 0; i < num_slots_; ++i) {
    if (allocated_[i] && !live[i]) {
      allocated_[i] = 0;
      free_list_.push_back(i);
      ++free_count_;
      ++reclaimed;
    }
  }
  return reclaimed;
}

}  // namespace dflow
