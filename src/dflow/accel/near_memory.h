#ifndef DFLOW_ACCEL_NEAR_MEMORY_H_
#define DFLOW_ACCEL_NEAR_MEMORY_H_

#include <vector>

#include "dflow/accel/accelerator.h"
#include "dflow/encode/encoding.h"
#include "dflow/plan/expr.h"

namespace dflow {

/// The near-memory accelerator of §5: an M7-DAX-class unit interposed
/// between the memory controller and the CPU. Functional units implemented
/// here (the inventory §5.4 calls for):
///  - filter by value, by range, or by an installed filtering function,
///  - decompress-on-demand (memory stays compressed; the pipeline sees
///    decompressed data),
/// with pointer chasing (BlockTree), transposition (RowStore), and list
/// maintenance (FreeListUnit) as sibling units in this module.
class NearMemoryAccelerator : public Accelerator {
 public:
  explicit NearMemoryAccelerator(sim::Device* device);

  /// filter-by-value: rows of `region` where region[col] == value.
  Result<DataChunk> FilterByValue(const DataChunk& region, size_t col,
                                  const Value& value) const;

  /// filter-by-range: rows where lo <= region[col] <= hi.
  Result<DataChunk> FilterByRange(const DataChunk& region, size_t col,
                                  const Value& lo, const Value& hi) const;

  /// Installs a custom filtering function ("a provided filtering
  /// function") as the accelerator's filter kernel.
  Status InstallFilterFunction(KernelFn fn);

  /// Applies the installed filter function.
  Result<DataChunk> FilterByFunction(const DataChunk& region);

  /// Decompress-on-demand: the column lives encoded in memory; the unit
  /// hands the pipeline a decoded vector.
  Result<ColumnVector> Decompress(const EncodedColumn& column) const;

  static constexpr const char* kFilterKernel = "nma_filter";
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_NEAR_MEMORY_H_
