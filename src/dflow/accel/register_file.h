#ifndef DFLOW_ACCEL_REGISTER_FILE_H_
#define DFLOW_ACCEL_REGISTER_FILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dflow/common/result.h"

namespace dflow {

/// One memory-mapped register of an accelerator.
struct RegisterSpec {
  std::string name;
  uint32_t offset = 0;       // byte offset in the device's register window
  bool writable = true;
  uint64_t initial = 0;
};

/// The ISA-less programming surface of an accelerator (§7.2): "accelerators
/// ... are programmed directly — they lack an ISA — simply by filling a
/// small set of memory-mapped registers."
///
/// Registers are addressed by name (host-side convenience) or by offset
/// (what the device actually decodes). Unknown offsets and writes to
/// read-only registers fault, as real devices do.
class RegisterFile {
 public:
  explicit RegisterFile(std::vector<RegisterSpec> specs);

  Status Write(const std::string& name, uint64_t value);
  Result<uint64_t> Read(const std::string& name) const;

  Status WriteAt(uint32_t offset, uint64_t value);
  Result<uint64_t> ReadAt(uint32_t offset) const;

  bool Has(const std::string& name) const;

  /// Restores every register to its initial value.
  void Reset();

  /// Number of writes performed (a cheap proxy for configuration traffic).
  uint64_t write_count() const { return write_count_; }

 private:
  struct Slot {
    RegisterSpec spec;
    uint64_t value;
  };
  std::map<std::string, size_t> by_name_;
  std::map<uint32_t, size_t> by_offset_;
  std::vector<Slot> slots_;
  uint64_t write_count_ = 0;
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_REGISTER_FILE_H_
