#include "dflow/accel/smart_nic.h"

#include "dflow/exec/misc_ops.h"

namespace dflow {

namespace {
std::vector<RegisterSpec> NicRegisters() {
  return {
      {"ctrl_hash", 0x00, true, 0},
      {"ctrl_partition", 0x08, true, 0},
      {"ctrl_preagg", 0x10, true, 0},
      {"ctrl_count", 0x18, true, 0},
      {"num_partitions", 0x20, true, 0},
      {"ctrl_broadcast", 0x38, true, 0},
      {"broadcast_targets", 0x40, true, 0},
      {"group_budget", 0x28, true, SmartNic::kDefaultGroupBudget},
      {"status", 0x30, false, 0},
  };
}
}  // namespace

SmartNic::SmartNic(std::string name, sim::Device* device)
    : Accelerator(std::move(name), device,
                  Policy{/*require_streaming=*/true,
                         /*allow_unbounded_state=*/false},
                  NicRegisters()) {}

Result<OperatorPtr> SmartNic::MakePartialAggregate(
    const Schema& input_schema, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& specs, size_t max_groups) {
  if (max_groups == 0) max_groups = kDefaultGroupBudget;
  DFLOW_ASSIGN_OR_RETURN(
      OperatorPtr op,
      HashAggregateOperator::Make(input_schema, group_by, specs,
                                  AggMode::kPartial, max_groups));
  DFLOW_RETURN_NOT_OK(ValidateOperator(*op));
  DFLOW_RETURN_NOT_OK(registers().Write("ctrl_preagg", 1));
  DFLOW_RETURN_NOT_OK(registers().Write("group_budget", max_groups));
  return op;
}

Result<OperatorPtr> SmartNic::MakeCount() {
  OperatorPtr op(new CountOperator());
  DFLOW_RETURN_NOT_OK(ValidateOperator(*op));
  DFLOW_RETURN_NOT_OK(registers().Write("ctrl_count", 1));
  return op;
}

Status SmartNic::ArmBroadcast(uint32_t num_targets) {
  if (num_targets == 0) {
    return Status::InvalidArgument("broadcast needs at least one target");
  }
  DFLOW_RETURN_NOT_OK(registers().Write("ctrl_broadcast", 1));
  return registers().Write("broadcast_targets", num_targets);
}

Result<HashPartitioner> SmartNic::MakePartitioner(size_t key_col,
                                                  uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("need at least one partition");
  }
  if (!device()->Supports(sim::CostClass::kPartition)) {
    return Status::InvalidArgument(name() + " cannot partition");
  }
  DFLOW_RETURN_NOT_OK(registers().Write("ctrl_partition", 1));
  DFLOW_RETURN_NOT_OK(registers().Write("num_partitions", num_partitions));
  return HashPartitioner(key_col, num_partitions);
}

}  // namespace dflow
