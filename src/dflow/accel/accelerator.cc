#include "dflow/accel/accelerator.h"

#include "dflow/common/logging.h"

namespace dflow {

Accelerator::Accelerator(std::string name, sim::Device* device, Policy policy,
                         std::vector<RegisterSpec> registers)
    : name_(std::move(name)),
      device_(device),
      policy_(policy),
      registers_(std::move(registers)) {
  DFLOW_CHECK(device != nullptr);
}

Status Accelerator::ValidateOperator(const Operator& op) const {
  const OperatorTraits traits = op.traits();
  if (!device_->Supports(traits.cost_class)) {
    return Status::InvalidArgument(
        name_ + " has no functional unit for " +
        std::string(sim::CostClassToString(traits.cost_class)));
  }
  return CheckPlacementPolicy(traits, op.name(), policy_, name_);
}

Status CheckPlacementPolicy(const OperatorTraits& traits,
                            const std::string& op_name,
                            const Accelerator::Policy& policy,
                            const std::string& where) {
  if (policy.require_streaming && !traits.streaming) {
    return Status::InvalidArgument(where + " requires streaming operators; '" +
                                   op_name + "' is blocking");
  }
  if (!policy.allow_unbounded_state && !traits.stateless &&
      !traits.bounded_state) {
    return Status::InvalidArgument(where + " cannot host unbounded state; '" +
                                   op_name + "' needs an unbounded table");
  }
  return Status::OK();
}

}  // namespace dflow
