#include "dflow/accel/smart_storage.h"

#include "dflow/exec/filter.h"
#include "dflow/exec/misc_ops.h"
#include "dflow/exec/project.h"

namespace dflow {

namespace {
std::vector<RegisterSpec> StorageRegisters() {
  return {
      {"ctrl_decode", 0x00, true, 1},     // decode always on by default
      {"ctrl_filter", 0x08, true, 0},
      {"ctrl_project", 0x10, true, 0},
      {"ctrl_recompress", 0x18, true, 0},
      {"flow_id", 0x20, true, 0},
      {"status", 0x28, false, 0},
  };
}
}  // namespace

SmartStorageProcessor::SmartStorageProcessor(sim::Device* device)
    : Accelerator("smart_storage", device,
                  Policy{/*require_streaming=*/true,
                         /*allow_unbounded_state=*/false},
                  StorageRegisters()) {}

Status SmartStorageProcessor::ArmRegisters(bool filter, bool project,
                                           bool recompress) {
  DFLOW_RETURN_NOT_OK(registers().Write("ctrl_filter", filter ? 1 : 0));
  DFLOW_RETURN_NOT_OK(registers().Write("ctrl_project", project ? 1 : 0));
  DFLOW_RETURN_NOT_OK(
      registers().Write("ctrl_recompress", recompress ? 1 : 0));
  return Status::OK();
}

Result<SmartStorageProcessor::ScanProgram>
SmartStorageProcessor::BuildScanProgram(const Schema& scan_schema,
                                        ExprPtr predicate,
                                        std::vector<ExprPtr> project,
                                        std::vector<std::string> project_names,
                                        bool recompress_for_uplink) {
  ScanProgram program;
  Schema current = scan_schema;

  // Stage 1: decode the at-rest format (always).
  program.stages.push_back(OperatorPtr(new DecodeOperator(current)));

  // Stage 2: selection, installed as a kernel (the predicate logic).
  if (predicate != nullptr) {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr resolved,
                           Expr::Resolve(predicate, current));
    DFLOW_RETURN_NOT_OK(kernels().Install(
        "scan_filter",
        [resolved](const DataChunk& input, std::vector<DataChunk>* out) {
          Mask mask;
          DFLOW_RETURN_NOT_OK(resolved->EvaluatePredicate(input, &mask));
          out->push_back(input.Gather(MaskToSelection(mask)));
          return Status::OK();
        }));
    DFLOW_ASSIGN_OR_RETURN(OperatorPtr filter,
                           FilterOperator::Make(resolved, current));
    program.estimated_reduction *= filter->traits().reduction_hint;
    program.stages.push_back(std::move(filter));
  }

  // Stage 3: projection.
  if (!project.empty()) {
    std::vector<ExprPtr> resolved_exprs;
    resolved_exprs.reserve(project.size());
    for (const ExprPtr& e : project) {
      DFLOW_ASSIGN_OR_RETURN(ExprPtr r, Expr::Resolve(e, current));
      resolved_exprs.push_back(std::move(r));
    }
    DFLOW_ASSIGN_OR_RETURN(
        OperatorPtr proj,
        ProjectOperator::Make(std::move(resolved_exprs),
                              std::move(project_names), current));
    program.estimated_reduction *= proj->traits().reduction_hint;
    current = proj->output_schema();
    program.stages.push_back(std::move(proj));
  }

  // Stage 4: recompress for the uplink.
  if (recompress_for_uplink) {
    program.stages.push_back(OperatorPtr(new EncodeOperator(current)));
    program.estimated_reduction *= 0.6;
  }

  // Every stage must satisfy the accelerator contract.
  for (const OperatorPtr& op : program.stages) {
    DFLOW_RETURN_NOT_OK(ValidateOperator(*op));
  }
  DFLOW_RETURN_NOT_OK(ArmRegisters(predicate != nullptr, !project.empty(),
                                   recompress_for_uplink));
  return program;
}

}  // namespace dflow
