#ifndef DFLOW_ACCEL_SMART_STORAGE_H_
#define DFLOW_ACCEL_SMART_STORAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/accel/accelerator.h"
#include "dflow/plan/expr.h"
#include "dflow/storage/table.h"

namespace dflow {

/// The streaming processor colocated with disaggregated storage (§3): an
/// Exadata-cell/AQUA-class device that can run decode, selection,
/// projection (including LIKE), and bounded pre-aggregation on data as it
/// leaves the media — never a blocking or unbounded-state operator.
///
/// Programming model: registers select which stages of the fixed pipeline
/// are armed; the filter itself is installed as a kernel (the predicate
/// "parsing logic" of §7.2).
class SmartStorageProcessor : public Accelerator {
 public:
  explicit SmartStorageProcessor(sim::Device* device);

  /// A validated offload program: the ordered operator chain this device
  /// will run on the scan stream, each already checked against the
  /// accelerator's constraints.
  struct ScanProgram {
    std::vector<OperatorPtr> stages;
    /// Estimated bytes-out / bytes-in across the whole program.
    double estimated_reduction = 1.0;
  };

  /// Builds the offloaded part of a scan: decode, then optional filter
  /// (resolved `predicate` may be null), then optional projection
  /// (`project` may be empty for all columns), then optional recompression
  /// for the uplink. Fails if any piece violates the device's constraints.
  Result<ScanProgram> BuildScanProgram(const Schema& scan_schema,
                                       ExprPtr predicate,
                                       std::vector<ExprPtr> project,
                                       std::vector<std::string> project_names,
                                       bool recompress_for_uplink);

 private:
  Status ArmRegisters(bool filter, bool project, bool recompress);
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_SMART_STORAGE_H_
