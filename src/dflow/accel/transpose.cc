#include "dflow/accel/transpose.h"

#include <cstring>

#include "dflow/common/logging.h"

namespace dflow {

namespace {

Status CheckFixedWidthSchema(const Schema& schema) {
  for (const Field& f : schema.fields()) {
    if (!IsFixedWidth(f.type)) {
      return Status::InvalidArgument("RowStore requires fixed-width columns; '" +
                                     f.name + "' is " +
                                     std::string(DataTypeToString(f.type)));
    }
  }
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("RowStore requires at least one column");
  }
  return Status::OK();
}

}  // namespace

Result<RowStore> RowStore::Empty(const Schema& schema) {
  DFLOW_RETURN_NOT_OK(CheckFixedWidthSchema(schema));
  RowStore store;
  store.schema_ = schema;
  uint32_t offset = 0;
  for (const Field& f : schema.fields()) {
    store.offsets_.push_back(offset);
    offset += FixedWidthBytes(f.type);
  }
  store.row_width_ = offset;
  return store;
}

Result<RowStore> RowStore::FromChunk(const Schema& schema,
                                     const DataChunk& chunk) {
  if (chunk.num_columns() != schema.num_fields()) {
    return Status::InvalidArgument("chunk arity does not match schema");
  }
  DFLOW_ASSIGN_OR_RETURN(RowStore store, Empty(schema));
  const size_t n = chunk.num_rows();
  store.bytes_.resize(n * store.row_width_);
  store.num_rows_ = n;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const ColumnVector& col = chunk.column(c);
    if (col.HasNulls()) {
      return Status::InvalidArgument("RowStore does not support NULLs");
    }
    const uint32_t width = FixedWidthBytes(schema.field(c).type);
    const uint32_t offset = store.offsets_[c];
    for (size_t r = 0; r < n; ++r) {
      uint8_t* dst = store.bytes_.data() + r * store.row_width_ + offset;
      switch (schema.field(c).type) {
        case DataType::kBool:
          dst[0] = col.bool_data()[r];
          break;
        case DataType::kInt32:
        case DataType::kDate32:
          std::memcpy(dst, &col.i32()[r], width);
          break;
        case DataType::kInt64:
          std::memcpy(dst, &col.i64()[r], width);
          break;
        case DataType::kDouble:
          std::memcpy(dst, &col.f64()[r], width);
          break;
        case DataType::kString:
          return Status::Internal("unreachable: string in fixed-width schema");
      }
    }
  }
  return store;
}

Status RowStore::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.num_fields()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  const size_t base = bytes_.size();
  bytes_.resize(base + row_width_);
  for (size_t c = 0; c < values.size(); ++c) {
    const Value& v = values[c];
    if (v.is_null()) {
      return Status::InvalidArgument("RowStore does not support NULLs");
    }
    if (v.type() != schema_.field(c).type) {
      return Status::InvalidArgument("row value type mismatch at column " +
                                     std::to_string(c));
    }
    uint8_t* dst = bytes_.data() + base + offsets_[c];
    switch (v.type()) {
      case DataType::kBool: {
        dst[0] = v.bool_value() ? 1 : 0;
        break;
      }
      case DataType::kInt32: {
        const int32_t x = v.int32_value();
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case DataType::kDate32: {
        const int32_t x = v.date32_value();
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case DataType::kInt64: {
        const int64_t x = v.int64_value();
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case DataType::kDouble: {
        const double x = v.double_value();
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case DataType::kString:
        return Status::Internal("unreachable");
    }
  }
  num_rows_ += 1;
  return Status::OK();
}

Result<DataChunk> RowStore::ToColumnar() const {
  DataChunk chunk = DataChunk::EmptyFromSchema(schema_);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    DFLOW_ASSIGN_OR_RETURN(ColumnVector col, ReadColumn(c));
    chunk.column(c) = std::move(col);
  }
  return chunk;
}

Result<ColumnVector> RowStore::ReadColumn(size_t column) const {
  if (column >= schema_.num_fields()) {
    return Status::OutOfRange("column index out of range");
  }
  const DataType type = schema_.field(column).type;
  const uint32_t offset = offsets_[column];
  ColumnVector col(type);
  col.Reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    const uint8_t* src = bytes_.data() + r * row_width_ + offset;
    switch (type) {
      case DataType::kBool:
        col.bool_data().push_back(src[0]);
        break;
      case DataType::kInt32:
      case DataType::kDate32: {
        int32_t x;
        std::memcpy(&x, src, sizeof(x));
        col.i32().push_back(x);
        break;
      }
      case DataType::kInt64: {
        int64_t x;
        std::memcpy(&x, src, sizeof(x));
        col.i64().push_back(x);
        break;
      }
      case DataType::kDouble: {
        double x;
        std::memcpy(&x, src, sizeof(x));
        col.f64().push_back(x);
        break;
      }
      case DataType::kString:
        return Status::Internal("unreachable");
    }
  }
  return col;
}

}  // namespace dflow
