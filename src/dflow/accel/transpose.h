#ifndef DFLOW_ACCEL_TRANSPOSE_H_
#define DFLOW_ACCEL_TRANSPOSE_H_

#include <cstdint>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/types/schema.h"
#include "dflow/vector/data_chunk.h"

namespace dflow {

/// Row-major storage of fixed-width tuples: the "recent format" an HTAP
/// engine keeps hot data in (§5.4). The transposition functional unit
/// converts between this and the columnar "historical format" without
/// involving the CPU.
///
/// Only fixed-width column types are supported (strings would need an
/// out-of-line heap, which a memory-controller unit would not chase).
class RowStore {
 public:
  /// Serializes a chunk into row-major bytes. All columns must be
  /// fixed-width; NULLs are not supported in the row format (HTAP deltas
  /// are typically NOT NULL).
  static Result<RowStore> FromChunk(const Schema& schema,
                                    const DataChunk& chunk);

  /// An empty row store for the given schema (appendable).
  static Result<RowStore> Empty(const Schema& schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t row_width() const { return row_width_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  uint64_t ByteSize() const { return bytes_.size(); }

  /// Appends one row given as values (types must match the schema).
  Status AppendRow(const std::vector<Value>& values);

  /// The transpose: row-major bytes -> columnar chunk. Exact inverse of
  /// FromChunk.
  Result<DataChunk> ToColumnar() const;

  /// Virtual reverse view (§5.4: "present data in a different format than
  /// that in storage"): reads a single column out of the row format
  /// without materializing the rest.
  Result<ColumnVector> ReadColumn(size_t column) const;

 private:
  RowStore() = default;

  Schema schema_;
  std::vector<uint32_t> offsets_;  // per-column byte offset within a row
  size_t row_width_ = 0;
  size_t num_rows_ = 0;
  std::vector<uint8_t> bytes_;
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_TRANSPOSE_H_
