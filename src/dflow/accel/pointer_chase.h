#ifndef DFLOW_ACCEL_POINTER_CHASE_H_
#define DFLOW_ACCEL_POINTER_CHASE_H_

#include <cstdint>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/sim/link.h"

namespace dflow {

/// An immutable B+tree-like hierarchical block structure living in (remote)
/// memory: the data structure behind §5.4's pointer-chasing functional
/// unit. Inner blocks hold separator keys and child pointers; leaf blocks
/// hold (key, value) entries.
class BlockTree {
 public:
  struct Config {
    size_t fanout = 16;        // children per inner block / entries per leaf
    size_t block_bytes = 256;  // modeled block size (cost accounting)
  };

  /// Builds from key-ascending (key, value) pairs.
  static Result<BlockTree> Build(
      const std::vector<std::pair<int64_t, int64_t>>& sorted_kv,
      Config config);
  static Result<BlockTree> Build(
      const std::vector<std::pair<int64_t, int64_t>>& sorted_kv) {
    return Build(sorted_kv, Config());
  }

  struct LookupTrace {
    bool found = false;
    int64_t value = 0;
    size_t blocks_visited = 0;   // tree levels touched
    uint64_t bytes_touched = 0;  // blocks_visited * block_bytes
  };

  /// Point lookup with full trace (the near-memory unit runs this locally).
  LookupTrace Lookup(int64_t key) const;

  /// Range scan [lo, hi]: returns values; trace reports blocks touched.
  LookupTrace RangeCount(int64_t lo, int64_t hi, uint64_t* count) const;

  size_t height() const { return height_; }
  size_t num_blocks() const { return blocks_.size(); }
  size_t num_entries() const { return num_entries_; }
  const Config& config() const { return config_; }

 private:
  struct Block {
    bool is_leaf = false;
    std::vector<int64_t> keys;      // separators (inner) or entry keys (leaf)
    std::vector<int64_t> children;  // block ids (inner) or values (leaf)
  };

  BlockTree() = default;

  Config config_;
  std::vector<Block> blocks_;
  size_t root_ = 0;
  size_t height_ = 0;
  size_t num_entries_ = 0;
};

/// Cost model comparison for one traversal (§5.4): a CPU-centric
/// architecture ships every visited block across the interconnect and pays
/// a round trip of "think time" per level, because the next block address
/// is only known after the previous block arrived. The near-memory unit
/// traverses locally at its own rate and ships only the leaf entry.
struct TraversalCost {
  uint64_t bytes_moved = 0;
  sim::SimTime latency_ns = 0;
};

/// Dependent loads over `link`: blocks_visited sequential (transfer +
/// round-trip-latency) steps of block_bytes each.
TraversalCost CpuTraversalCost(const BlockTree::LookupTrace& trace,
                               size_t block_bytes, const sim::Link& link);

/// Local traversal at `accel_gbps` plus one entry-sized reply over `link`.
TraversalCost NearMemoryTraversalCost(const BlockTree::LookupTrace& trace,
                                      size_t block_bytes, double accel_gbps,
                                      const sim::Link& link);

}  // namespace dflow

#endif  // DFLOW_ACCEL_POINTER_CHASE_H_
