#include "dflow/accel/pointer_chase.h"

#include <algorithm>

#include "dflow/common/logging.h"

namespace dflow {

Result<BlockTree> BlockTree::Build(
    const std::vector<std::pair<int64_t, int64_t>>& sorted_kv, Config config) {
  if (config.fanout < 2) {
    return Status::InvalidArgument("fanout must be at least 2");
  }
  for (size_t i = 1; i < sorted_kv.size(); ++i) {
    if (sorted_kv[i - 1].first >= sorted_kv[i].first) {
      return Status::InvalidArgument(
          "keys must be strictly ascending for BlockTree::Build");
    }
  }
  BlockTree tree;
  tree.config_ = config;
  tree.num_entries_ = sorted_kv.size();

  // Leaf level.
  std::vector<size_t> level;       // block ids of the current level
  std::vector<int64_t> level_min;  // smallest key in each block
  for (size_t start = 0; start < sorted_kv.size(); start += config.fanout) {
    const size_t count = std::min(config.fanout, sorted_kv.size() - start);
    Block leaf;
    leaf.is_leaf = true;
    for (size_t i = 0; i < count; ++i) {
      leaf.keys.push_back(sorted_kv[start + i].first);
      leaf.children.push_back(sorted_kv[start + i].second);
    }
    level.push_back(tree.blocks_.size());
    level_min.push_back(leaf.keys.front());
    tree.blocks_.push_back(std::move(leaf));
  }
  if (level.empty()) {
    // Empty tree: a single empty leaf.
    Block leaf;
    leaf.is_leaf = true;
    level.push_back(0);
    level_min.push_back(0);
    tree.blocks_.push_back(std::move(leaf));
  }
  tree.height_ = 1;

  // Inner levels until a single root remains.
  while (level.size() > 1) {
    std::vector<size_t> next_level;
    std::vector<int64_t> next_min;
    for (size_t start = 0; start < level.size(); start += config.fanout) {
      const size_t count = std::min(config.fanout, level.size() - start);
      Block inner;
      inner.is_leaf = false;
      for (size_t i = 0; i < count; ++i) {
        inner.keys.push_back(level_min[start + i]);
        inner.children.push_back(static_cast<int64_t>(level[start + i]));
      }
      next_level.push_back(tree.blocks_.size());
      next_min.push_back(inner.keys.front());
      tree.blocks_.push_back(std::move(inner));
    }
    level = std::move(next_level);
    level_min = std::move(next_min);
    tree.height_ += 1;
  }
  tree.root_ = level[0];
  return tree;
}

BlockTree::LookupTrace BlockTree::Lookup(int64_t key) const {
  LookupTrace trace;
  size_t current = root_;
  while (true) {
    const Block& block = blocks_[current];
    trace.blocks_visited += 1;
    trace.bytes_touched += config_.block_bytes;
    if (block.is_leaf) {
      auto it = std::lower_bound(block.keys.begin(), block.keys.end(), key);
      if (it != block.keys.end() && *it == key) {
        trace.found = true;
        trace.value = block.children[it - block.keys.begin()];
      }
      return trace;
    }
    // Child i covers keys in [keys[i], keys[i+1]).
    auto it = std::upper_bound(block.keys.begin(), block.keys.end(), key);
    const size_t idx = it == block.keys.begin()
                           ? 0
                           : static_cast<size_t>(it - block.keys.begin()) - 1;
    current = static_cast<size_t>(block.children[idx]);
  }
}

BlockTree::LookupTrace BlockTree::RangeCount(int64_t lo, int64_t hi,
                                             uint64_t* count) const {
  DFLOW_CHECK(count != nullptr);
  *count = 0;
  LookupTrace trace;
  // Descend to the first candidate leaf, then walk leaves left to right.
  // Leaves were allocated contiguously in build order, so sibling ids are
  // sequential starting at block 0.
  size_t current = root_;
  while (!blocks_[current].is_leaf) {
    const Block& block = blocks_[current];
    trace.blocks_visited += 1;
    trace.bytes_touched += config_.block_bytes;
    auto it = std::upper_bound(block.keys.begin(), block.keys.end(), lo);
    const size_t idx = it == block.keys.begin()
                           ? 0
                           : static_cast<size_t>(it - block.keys.begin()) - 1;
    current = static_cast<size_t>(block.children[idx]);
  }
  while (true) {
    const Block& leaf = blocks_[current];
    trace.blocks_visited += 1;
    trace.bytes_touched += config_.block_bytes;
    for (size_t i = 0; i < leaf.keys.size(); ++i) {
      if (leaf.keys[i] >= lo && leaf.keys[i] <= hi) {
        *count += 1;
        trace.found = true;
      }
    }
    if (!leaf.keys.empty() && leaf.keys.back() > hi) break;
    // Next leaf is the next block id while still in the leaf region.
    const size_t next = current + 1;
    if (next >= blocks_.size() || !blocks_[next].is_leaf) break;
    current = next;
  }
  return trace;
}

TraversalCost CpuTraversalCost(const BlockTree::LookupTrace& trace,
                               size_t block_bytes, const sim::Link& link) {
  TraversalCost cost;
  cost.bytes_moved = trace.blocks_visited * block_bytes;
  // Each level is a dependent load: request latency + transfer + response
  // latency before the next address is known.
  const sim::SimTime per_block =
      2 * link.latency_ns() + link.WireTimeNs(block_bytes);
  cost.latency_ns = trace.blocks_visited * per_block;
  return cost;
}

TraversalCost NearMemoryTraversalCost(const BlockTree::LookupTrace& trace,
                                      size_t block_bytes, double accel_gbps,
                                      const sim::Link& link) {
  TraversalCost cost;
  constexpr uint64_t kEntryBytes = 16;  // key + value
  cost.bytes_moved = kEntryBytes;
  const double local_ns =
      static_cast<double>(trace.blocks_visited * block_bytes) / accel_gbps;
  // One request in, local traversal, one entry-sized reply out.
  cost.latency_ns = 2 * link.latency_ns() +
                    static_cast<sim::SimTime>(local_ns) +
                    link.WireTimeNs(kEntryBytes);
  return cost;
}

}  // namespace dflow
