#ifndef DFLOW_ACCEL_KERNEL_H_
#define DFLOW_ACCEL_KERNEL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/vector/data_chunk.h"

namespace dflow {

/// A unit of installable logic for an accelerator — what §7.2 calls a
/// kernel: "registers can be used to characterize the filter, but parsing
/// logic is necessary to find where the tuples and relevant attributes are
/// within a page", installed "through other means than an ISA".
///
/// A kernel maps one input chunk to zero or more output chunks.
using KernelFn =
    std::function<Status(const DataChunk& input, std::vector<DataChunk>* out)>;

/// Holds the kernels installed on one accelerator. Installation replaces;
/// invocation of an uninstalled kernel faults.
class KernelRegistry {
 public:
  KernelRegistry() = default;

  Status Install(const std::string& name, KernelFn fn);
  Status Uninstall(const std::string& name);
  bool Has(const std::string& name) const;

  /// Runs the named kernel on a chunk.
  Status Invoke(const std::string& name, const DataChunk& input,
                std::vector<DataChunk>* out) const;

  std::vector<std::string> InstalledKernels() const;

 private:
  std::map<std::string, KernelFn> kernels_;
};

}  // namespace dflow

#endif  // DFLOW_ACCEL_KERNEL_H_
