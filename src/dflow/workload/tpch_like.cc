#include "dflow/workload/tpch_like.h"

#include <algorithm>

#include "dflow/common/random.h"
#include "dflow/vector/data_chunk.h"

namespace dflow {

namespace {

constexpr const char* kCommentWords[] = {
    "carefully", "final", "deposits", "sleep",  "quickly", "bold",
    "requests",  "haggle", "furiously", "ideas", "packages", "even",
};
constexpr size_t kNumCommentWords =
    sizeof(kCommentWords) / sizeof(kCommentWords[0]);

std::string MakeComment(Random* rng, bool special) {
  std::string comment;
  const int words = 3 + static_cast<int>(rng->NextUint64(3));
  for (int w = 0; w < words; ++w) {
    if (w > 0) comment += ' ';
    comment += kCommentWords[rng->NextUint64(kNumCommentWords)];
  }
  if (special) {
    comment += " special";
  }
  return comment;
}

}  // namespace

Result<std::shared_ptr<Table>> MakeLineitemTable(const LineitemSpec& spec) {
  Schema schema({{"l_orderkey", DataType::kInt64},
                 {"l_partkey", DataType::kInt64},
                 {"l_suppkey", DataType::kInt64},
                 {"l_quantity", DataType::kDouble},
                 {"l_extendedprice", DataType::kDouble},
                 {"l_discount", DataType::kDouble},
                 {"l_tax", DataType::kDouble},
                 {"l_returnflag", DataType::kString},
                 {"l_linestatus", DataType::kString},
                 {"l_shipdate", DataType::kDate32},
                 {"l_comment", DataType::kString}});
  TableBuilder builder(spec.name, schema, spec.row_group_size);
  Random rng(spec.seed);
  std::unique_ptr<ZipfGenerator> zipf;
  if (spec.orderkey_zipf_theta > 0.0) {
    zipf = std::make_unique<ZipfGenerator>(spec.num_orders,
                                           spec.orderkey_zipf_theta,
                                           spec.seed + 1);
  }
  uint64_t remaining = spec.rows;
  while (remaining > 0) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(remaining, kVectorSize));
    std::vector<int64_t> orderkey(n), partkey(n), suppkey(n);
    std::vector<double> quantity(n), extendedprice(n), discount(n), tax(n);
    std::vector<std::string> returnflag(n), linestatus(n), comment(n);
    std::vector<int32_t> shipdate(n);
    for (size_t i = 0; i < n; ++i) {
      orderkey[i] = zipf ? static_cast<int64_t>(zipf->Next())
                         : rng.NextInt64(0, spec.num_orders - 1);
      partkey[i] = rng.NextInt64(0, spec.num_parts - 1);
      suppkey[i] = rng.NextInt64(0, spec.num_suppliers - 1);
      quantity[i] = 1.0 + static_cast<double>(rng.NextUint64(50));
      extendedprice[i] = quantity[i] * rng.NextDouble(900.0, 105000.0) / 100.0;
      discount[i] = static_cast<double>(rng.NextUint64(11)) / 100.0;
      tax[i] = static_cast<double>(rng.NextUint64(9)) / 100.0;
      const uint64_t flag = rng.NextUint64(3);
      returnflag[i] = flag == 0 ? "A" : (flag == 1 ? "N" : "R");
      linestatus[i] = rng.NextBool() ? "F" : "O";
      shipdate[i] = kShipdateLo + static_cast<int32_t>(rng.NextUint64(
                                      kShipdateHi - kShipdateLo));
      comment[i] =
          MakeComment(&rng, rng.NextDouble() < spec.special_comment_fraction);
    }
    DataChunk chunk;
    chunk.AddColumn(ColumnVector::FromInt64(std::move(orderkey)));
    chunk.AddColumn(ColumnVector::FromInt64(std::move(partkey)));
    chunk.AddColumn(ColumnVector::FromInt64(std::move(suppkey)));
    chunk.AddColumn(ColumnVector::FromDouble(std::move(quantity)));
    chunk.AddColumn(ColumnVector::FromDouble(std::move(extendedprice)));
    chunk.AddColumn(ColumnVector::FromDouble(std::move(discount)));
    chunk.AddColumn(ColumnVector::FromDouble(std::move(tax)));
    chunk.AddColumn(ColumnVector::FromString(std::move(returnflag)));
    chunk.AddColumn(ColumnVector::FromString(std::move(linestatus)));
    chunk.AddColumn(ColumnVector::FromDate32(std::move(shipdate)));
    chunk.AddColumn(ColumnVector::FromString(std::move(comment)));
    DFLOW_RETURN_NOT_OK(builder.Append(chunk));
    remaining -= n;
  }
  DFLOW_ASSIGN_OR_RETURN(Table table, builder.Finish());
  return std::make_shared<Table>(std::move(table));
}

Result<std::shared_ptr<Table>> MakeOrdersTable(const OrdersSpec& spec) {
  Schema schema({{"o_orderkey", DataType::kInt64},
                 {"o_custkey", DataType::kInt64},
                 {"o_orderstatus", DataType::kString},
                 {"o_totalprice", DataType::kDouble},
                 {"o_orderdate", DataType::kDate32},
                 {"o_priority", DataType::kString}});
  TableBuilder builder(spec.name, schema, spec.row_group_size);
  Random rng(spec.seed);
  constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                         "4-NOT SPECIFIED", "5-LOW"};
  uint64_t produced = 0;
  while (produced < spec.rows) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(spec.rows - produced, kVectorSize));
    std::vector<int64_t> orderkey(n), custkey(n);
    std::vector<std::string> status(n), priority(n);
    std::vector<double> totalprice(n);
    std::vector<int32_t> orderdate(n);
    for (size_t i = 0; i < n; ++i) {
      orderkey[i] = static_cast<int64_t>(produced + i);
      custkey[i] = rng.NextInt64(0, spec.num_customers - 1);
      const uint64_t s = rng.NextUint64(3);
      status[i] = s == 0 ? "F" : (s == 1 ? "O" : "P");
      totalprice[i] = rng.NextDouble(1000.0, 500000.0);
      orderdate[i] = kShipdateLo + static_cast<int32_t>(rng.NextUint64(
                                       kShipdateHi - kShipdateLo));
      priority[i] = kPriorities[rng.NextUint64(5)];
    }
    DataChunk chunk;
    chunk.AddColumn(ColumnVector::FromInt64(std::move(orderkey)));
    chunk.AddColumn(ColumnVector::FromInt64(std::move(custkey)));
    chunk.AddColumn(ColumnVector::FromString(std::move(status)));
    chunk.AddColumn(ColumnVector::FromDouble(std::move(totalprice)));
    chunk.AddColumn(ColumnVector::FromDate32(std::move(orderdate)));
    chunk.AddColumn(ColumnVector::FromString(std::move(priority)));
    DFLOW_RETURN_NOT_OK(builder.Append(chunk));
    produced += n;
  }
  DFLOW_ASSIGN_OR_RETURN(Table table, builder.Finish());
  return std::make_shared<Table>(std::move(table));
}

Result<std::shared_ptr<Table>> MakeKvTable(const KvSpec& spec) {
  Schema schema({{"k", DataType::kInt64},
                 {"v", DataType::kInt64},
                 {"payload", DataType::kString}});
  TableBuilder builder(spec.name, schema, spec.row_group_size);
  Random rng(spec.seed);
  std::unique_ptr<ZipfGenerator> zipf;
  if (spec.zipf_theta > 0.0) {
    zipf = std::make_unique<ZipfGenerator>(spec.key_space, spec.zipf_theta,
                                           spec.seed + 1);
  }
  uint64_t produced = 0;
  while (produced < spec.rows) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(spec.rows - produced, kVectorSize));
    std::vector<int64_t> ks(n), vs(n);
    std::vector<std::string> payloads(n);
    for (size_t i = 0; i < n; ++i) {
      ks[i] = zipf ? static_cast<int64_t>(zipf->Next())
                   : rng.NextInt64(0, spec.key_space - 1);
      vs[i] = rng.NextInt64(0, 1'000'000);
      payloads[i] = rng.NextString(spec.payload_len);
    }
    DataChunk chunk;
    chunk.AddColumn(ColumnVector::FromInt64(std::move(ks)));
    chunk.AddColumn(ColumnVector::FromInt64(std::move(vs)));
    chunk.AddColumn(ColumnVector::FromString(std::move(payloads)));
    DFLOW_RETURN_NOT_OK(builder.Append(chunk));
    produced += n;
  }
  DFLOW_ASSIGN_OR_RETURN(Table table, builder.Finish());
  return std::make_shared<Table>(std::move(table));
}

}  // namespace dflow
