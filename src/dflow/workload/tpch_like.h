#ifndef DFLOW_WORKLOAD_TPCH_LIKE_H_
#define DFLOW_WORKLOAD_TPCH_LIKE_H_

#include <cstdint>
#include <memory>

#include "dflow/common/result.h"
#include "dflow/storage/table.h"

namespace dflow {

/// TPC-H-flavoured synthetic data: the analytics workload shape the paper's
/// introduction motivates. Not a compliant dbgen — a deterministic
/// generator with the same statistical texture: a wide fact table
/// (lineitem) with dates, flags, prices, low-cardinality strings and a
/// comment column for LIKE pushdown, plus an orders dimension for joins.

struct LineitemSpec {
  uint64_t rows = 100'000;
  uint64_t num_orders = 25'000;
  uint64_t num_parts = 20'000;
  uint64_t num_suppliers = 1'000;
  /// 0 = uniform order keys; >0 = Zipf-skewed (hot orders).
  double orderkey_zipf_theta = 0.0;
  /// Fraction of comments containing the word "special" (LIKE target).
  double special_comment_fraction = 0.05;
  uint64_t seed = 42;
  size_t row_group_size = kDefaultRowGroupSize;
  /// Table name to register under.
  const char* name = "lineitem";
};

/// Columns:
///   l_orderkey INT64, l_partkey INT64, l_suppkey INT64,
///   l_quantity DOUBLE (1..50), l_extendedprice DOUBLE,
///   l_discount DOUBLE (0.00..0.10), l_tax DOUBLE (0.00..0.08),
///   l_returnflag STRING {A,N,R}, l_linestatus STRING {F,O},
///   l_shipdate DATE32 (days in [8036, 10591] ~ 1992-01-01..1998-12-31),
///   l_comment STRING (~30 chars, some contain "special")
Result<std::shared_ptr<Table>> MakeLineitemTable(const LineitemSpec& spec);

struct OrdersSpec {
  uint64_t rows = 25'000;
  uint64_t num_customers = 5'000;
  uint64_t seed = 43;
  size_t row_group_size = kDefaultRowGroupSize;
  const char* name = "orders";
};

/// Columns:
///   o_orderkey INT64 (dense 0..rows-1), o_custkey INT64,
///   o_orderstatus STRING {F,O,P}, o_totalprice DOUBLE,
///   o_orderdate DATE32, o_priority STRING {1-URGENT..5-LOW}
Result<std::shared_ptr<Table>> MakeOrdersTable(const OrdersSpec& spec);

/// Shipdate domain bounds used by the generator (handy for selectivity
/// sweeps: predicates over [lo, lo + f * (hi - lo)) select fraction ~f).
inline constexpr int32_t kShipdateLo = 8036;
inline constexpr int32_t kShipdateHi = 10592;  // exclusive

/// A plain narrow key/value table (k INT64 dense or zipf, v INT64,
/// payload STRING) for microbenchmarks.
struct KvSpec {
  uint64_t rows = 100'000;
  uint64_t key_space = 100'000;
  double zipf_theta = 0.0;
  size_t payload_len = 16;
  uint64_t seed = 7;
  size_t row_group_size = kDefaultRowGroupSize;
  const char* name = "kv";
};

Result<std::shared_ptr<Table>> MakeKvTable(const KvSpec& spec);

}  // namespace dflow

#endif  // DFLOW_WORKLOAD_TPCH_LIKE_H_
