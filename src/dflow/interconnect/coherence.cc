#include "dflow/interconnect/coherence.h"

#include "dflow/common/logging.h"

namespace dflow::interconnect {

CoherenceDirectory::CoherenceDirectory(int num_agents, CoherenceMode mode,
                                       CoherenceParams params)
    : num_agents_(num_agents), mode_(mode), params_(params) {
  DFLOW_CHECK_GT(num_agents, 0);
}

CoherenceDirectory::LineEntry& CoherenceDirectory::GetLine(uint64_t line) {
  auto it = lines_.find(line);
  if (it == lines_.end()) {
    LineEntry e;
    e.per_agent.assign(num_agents_, LineState::kInvalid);
    e.seen_version.assign(num_agents_, 0);
    e.version = 1;  // versions start at 1 so "never validated" (0) is stale
    it = lines_.emplace(line, std::move(e)).first;
  }
  return it->second;
}

void CoherenceDirectory::Account(const AccessCost& cost) {
  totals_.accesses += 1;
  totals_.messages += cost.messages;
  totals_.total_latency_ns += cost.latency_ns;
  if (cost.hit) totals_.hits += 1;
}

CoherenceDirectory::AccessCost CoherenceDirectory::Read(int agent,
                                                        uint64_t line) {
  DFLOW_CHECK_GE(agent, 0);
  DFLOW_CHECK_LT(agent, num_agents_);
  LineEntry& e = GetLine(line);
  AccessCost cost = mode_ == CoherenceMode::kCxlHardware
                        ? HardwareRead(agent, e)
                        : SoftwareRead(agent, e);
  Account(cost);
  return cost;
}

CoherenceDirectory::AccessCost CoherenceDirectory::Write(int agent,
                                                         uint64_t line) {
  DFLOW_CHECK_GE(agent, 0);
  DFLOW_CHECK_LT(agent, num_agents_);
  LineEntry& e = GetLine(line);
  AccessCost cost = mode_ == CoherenceMode::kCxlHardware
                        ? HardwareWrite(agent, e)
                        : SoftwareWrite(agent, e);
  Account(cost);
  return cost;
}

// ------------------------------------------------------ cxl.cache (hw) ----

CoherenceDirectory::AccessCost CoherenceDirectory::HardwareRead(int agent,
                                                                LineEntry& e) {
  AccessCost cost;
  if (e.per_agent[agent] != LineState::kInvalid) {
    cost.hit = true;  // the hardware keeps cached copies valid
    return cost;
  }
  // Fetch from home: request + data response.
  cost.messages += 2;
  cost.latency_ns += 2 * params_.cxl_latency_ns;
  // If another agent holds the line Modified, the directory snoops it down
  // to Shared first.
  for (int a = 0; a < num_agents_; ++a) {
    if (e.per_agent[a] == LineState::kModified) {
      cost.messages += 2;  // snoop + writeback
      cost.latency_ns += 2 * params_.cxl_latency_ns;
      e.per_agent[a] = LineState::kShared;
    }
  }
  e.per_agent[agent] = LineState::kShared;
  return cost;
}

CoherenceDirectory::AccessCost CoherenceDirectory::HardwareWrite(int agent,
                                                                 LineEntry& e) {
  AccessCost cost;
  if (e.per_agent[agent] == LineState::kModified) {
    cost.hit = true;
    e.version += 1;
    return cost;
  }
  // Upgrade/fetch exclusive.
  cost.messages += 2;
  cost.latency_ns += 2 * params_.cxl_latency_ns;
  // Invalidate every other holder; invalidations travel in parallel, so the
  // latency is one extra hop pair, but each costs messages.
  bool invalidated_any = false;
  for (int a = 0; a < num_agents_; ++a) {
    if (a == agent) continue;
    if (e.per_agent[a] != LineState::kInvalid) {
      cost.messages += 2;  // invalidate + ack
      totals_.invalidations += 1;
      invalidated_any = true;
      e.per_agent[a] = LineState::kInvalid;
    }
  }
  if (invalidated_any) cost.latency_ns += 2 * params_.cxl_latency_ns;
  e.per_agent[agent] = LineState::kModified;
  e.version += 1;
  return cost;
}

// ----------------------------------------------- software-over-RDMA -------

CoherenceDirectory::AccessCost CoherenceDirectory::SoftwareRead(int agent,
                                                                LineEntry& e) {
  AccessCost cost;
  // A reader can never trust its cached copy: one validation verb, always.
  cost.messages += 2;
  cost.latency_ns += params_.rdma_latency_ns;
  const bool fresh = e.per_agent[agent] != LineState::kInvalid &&
                     e.seen_version[agent] == e.version;
  if (fresh) {
    cost.hit = true;  // validation confirmed the copy; no data fetch
    return cost;
  }
  // Stale or absent: fetch the data with a second verb.
  cost.messages += 2;
  cost.latency_ns += params_.rdma_latency_ns;
  e.per_agent[agent] = LineState::kShared;
  e.seen_version[agent] = e.version;
  return cost;
}

CoherenceDirectory::AccessCost CoherenceDirectory::SoftwareWrite(
    int agent, LineEntry& e) {
  AccessCost cost;
  // Lock (CAS verb) + write-back verb on the critical path; unlock verb is
  // asynchronous (messages counted, latency hidden).
  cost.messages += 6;
  cost.latency_ns += 2 * params_.rdma_latency_ns;
  // Every other agent's copy silently goes stale; they pay on their next
  // validation. Count them as (deferred) invalidations for reporting.
  for (int a = 0; a < num_agents_; ++a) {
    if (a == agent) continue;
    if (e.per_agent[a] != LineState::kInvalid &&
        e.seen_version[a] == e.version) {
      totals_.invalidations += 1;
    }
  }
  e.version += 1;
  e.per_agent[agent] = LineState::kModified;
  e.seen_version[agent] = e.version;
  return cost;
}

}  // namespace dflow::interconnect
