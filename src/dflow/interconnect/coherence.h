#ifndef DFLOW_INTERCONNECT_COHERENCE_H_
#define DFLOW_INTERCONNECT_COHERENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/sim/simulator.h"

namespace dflow::interconnect {

/// How coherence over shared (disaggregated) memory is maintained (§6):
///
///  kCxlHardware   cxl.cache: a hardware directory tracks sharers per line;
///                 hits are free, misses fetch from the home node, writes
///                 invalidate sharers — all in hardware at CXL latency.
///
///  kRdmaSoftware  the pre-CXL regime: coherence "maintained via software".
///                 Writers take a lock (one RTT), write back (one RTT) and
///                 release; readers cannot trust any cached copy without a
///                 version check (one RTT), then fetch on staleness. Every
///                 message is an RDMA verb at network latency.
enum class CoherenceMode { kCxlHardware, kRdmaSoftware };

struct CoherenceParams {
  sim::SimTime cxl_latency_ns = 300;     // one hardware coherence hop
  sim::SimTime rdma_latency_ns = 3'000;  // one RDMA verb round trip
  uint32_t line_bytes = 64;
};

/// A directory-based coherence simulator for `num_agents` caching agents
/// (CPU cores, near-memory accelerators, NIC engines — "many active agents
/// [that] cache and operate on the latest version of the memory's contents
/// simultaneously").
///
/// Tracks per-line MSI state per agent and counts every message each
/// protocol needs; Read/Write return the messages and latency that one
/// access costs. Data values are not modeled — this is a traffic/latency
/// model, which is exactly the quantity §6 argues CXL improves.
class CoherenceDirectory {
 public:
  CoherenceDirectory(int num_agents, CoherenceMode mode,
                     CoherenceParams params = CoherenceParams());

  struct AccessCost {
    uint64_t messages = 0;
    sim::SimTime latency_ns = 0;
    bool hit = false;  // served from the agent's own cache
  };

  /// Agent reads a cache line.
  AccessCost Read(int agent, uint64_t line);

  /// Agent writes a cache line (acquiring exclusive ownership).
  AccessCost Write(int agent, uint64_t line);

  struct Totals {
    uint64_t accesses = 0;
    uint64_t messages = 0;
    uint64_t invalidations = 0;
    uint64_t hits = 0;
    sim::SimTime total_latency_ns = 0;
  };
  const Totals& totals() const { return totals_; }
  void ResetTotals() { totals_ = Totals(); }

  CoherenceMode mode() const { return mode_; }

 private:
  enum class LineState : uint8_t { kInvalid, kShared, kModified };

  struct LineEntry {
    std::vector<LineState> per_agent;
    uint64_t version = 0;                // bumped on every write
    std::vector<uint64_t> seen_version;  // software mode: version each agent
                                         // last validated
  };

  LineEntry& GetLine(uint64_t line);
  AccessCost HardwareRead(int agent, LineEntry& e);
  AccessCost HardwareWrite(int agent, LineEntry& e);
  AccessCost SoftwareRead(int agent, LineEntry& e);
  AccessCost SoftwareWrite(int agent, LineEntry& e);
  void Account(const AccessCost& cost);

  int num_agents_;
  CoherenceMode mode_;
  CoherenceParams params_;
  std::map<uint64_t, LineEntry> lines_;
  Totals totals_;
};

}  // namespace dflow::interconnect

#endif  // DFLOW_INTERCONNECT_COHERENCE_H_
