#include "dflow/plan/expr.h"

#include <sstream>

#include "dflow/common/logging.h"

namespace dflow {

ExprPtr Expr::Col(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kColumnRef));
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::ColAt(size_t index) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kColumnRef));
  e->column_index_ = index;
  return e;
}

ExprPtr Expr::Lit(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLiteral));
  e->value_ = std::move(value);
  return e;
}

ExprPtr Expr::Cmp(CompareOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCompare));
  e->compare_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kArith));
  e->arith_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Like(ExprPtr input, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLike));
  e->pattern_ = std::move(pattern);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::And(std::vector<ExprPtr> children) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAnd));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Or(std::vector<ExprPtr> children) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kOr));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kNot));
  e->children_ = {std::move(child)};
  return e;
}

bool Expr::is_resolved() const {
  if (kind_ == Kind::kColumnRef) return column_index_ != kUnresolved;
  for (const ExprPtr& c : children_) {
    if (!c->is_resolved()) return false;
  }
  return true;
}

bool Expr::IsColumnConstantCompare() const {
  return kind_ == Kind::kCompare &&
         children_[0]->kind_ == Kind::kColumnRef &&
         children_[1]->kind_ == Kind::kLiteral;
}

void Expr::CollectColumnIndices(std::vector<size_t>* out) const {
  if (kind_ == Kind::kColumnRef) {
    DFLOW_CHECK(column_index_ != kUnresolved);
    out->push_back(column_index_);
    return;
  }
  for (const ExprPtr& c : children_) {
    c->CollectColumnIndices(out);
  }
}

bool Expr::IsPredicate() const {
  switch (kind_) {
    case Kind::kCompare:
    case Kind::kLike:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      return true;
    case Kind::kLiteral:
      return value_.type() == DataType::kBool;
    case Kind::kColumnRef:
      return false;  // would need schema; treated as value expr
    case Kind::kArith:
      return false;
  }
  return false;
}

Result<ExprPtr> Expr::Resolve(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind_) {
    case Kind::kColumnRef: {
      if (expr->column_index_ != kUnresolved) {
        if (expr->column_index_ >= schema.num_fields()) {
          return Status::InvalidArgument("column index out of schema range");
        }
        return expr;
      }
      DFLOW_ASSIGN_OR_RETURN(size_t idx,
                             schema.FieldIndex(expr->column_name_));
      auto e = std::shared_ptr<Expr>(new Expr(Kind::kColumnRef));
      e->column_name_ = expr->column_name_;
      e->column_index_ = idx;
      return ExprPtr(e);
    }
    case Kind::kLiteral:
      return expr;
    default: {
      auto e = std::shared_ptr<Expr>(new Expr(expr->kind_));
      e->compare_op_ = expr->compare_op_;
      e->arith_op_ = expr->arith_op_;
      e->pattern_ = expr->pattern_;
      e->value_ = expr->value_;
      e->children_.reserve(expr->children_.size());
      for (const ExprPtr& c : expr->children_) {
        DFLOW_ASSIGN_OR_RETURN(ExprPtr rc, Resolve(c, schema));
        e->children_.push_back(std::move(rc));
      }
      return ExprPtr(e);
    }
  }
}

Result<DataType> Expr::OutputType(const Schema& schema) const {
  switch (kind_) {
    case Kind::kColumnRef:
      if (column_index_ == kUnresolved) {
        return Status::InvalidArgument("unresolved column reference");
      }
      return schema.field(column_index_).type;
    case Kind::kLiteral:
      return value_.type();
    case Kind::kCompare:
    case Kind::kLike:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      return DataType::kBool;
    case Kind::kArith: {
      DFLOW_ASSIGN_OR_RETURN(DataType lt, children_[0]->OutputType(schema));
      DFLOW_ASSIGN_OR_RETURN(DataType rt, children_[1]->OutputType(schema));
      if (lt == DataType::kDouble || rt == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
  }
  return Status::Internal("unreachable");
}

Result<ColumnVector> Expr::Evaluate(const DataChunk& chunk) const {
  switch (kind_) {
    case Kind::kColumnRef:
      if (column_index_ == kUnresolved) {
        return Status::InvalidArgument("unresolved column reference '" +
                                       column_name_ + "'");
      }
      if (column_index_ >= chunk.num_columns()) {
        return Status::OutOfRange("column index beyond chunk arity");
      }
      return chunk.column(column_index_);
    case Kind::kLiteral: {
      ColumnVector col(value_.type());
      for (size_t i = 0; i < chunk.num_rows(); ++i) col.AppendValue(value_);
      return col;
    }
    case Kind::kArith: {
      // Literal operands use the constant fast path.
      const ExprPtr& l = children_[0];
      const ExprPtr& r = children_[1];
      ColumnVector out;
      if (r->kind_ == Kind::kLiteral) {
        DFLOW_ASSIGN_OR_RETURN(ColumnVector lv, l->Evaluate(chunk));
        DFLOW_RETURN_NOT_OK(ArithmeticConst(lv, arith_op_, r->value_, &out));
        return out;
      }
      DFLOW_ASSIGN_OR_RETURN(ColumnVector lv, l->Evaluate(chunk));
      DFLOW_ASSIGN_OR_RETURN(ColumnVector rv, r->Evaluate(chunk));
      DFLOW_RETURN_NOT_OK(Arithmetic(lv, arith_op_, rv, &out));
      return out;
    }
    case Kind::kCompare:
    case Kind::kLike:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      Mask mask;
      DFLOW_RETURN_NOT_OK(EvaluatePredicate(chunk, &mask));
      std::vector<uint8_t> bools(mask.begin(), mask.end());
      return ColumnVector::FromBool(std::move(bools));
    }
  }
  return Status::Internal("unreachable");
}

Status Expr::EvaluatePredicate(const DataChunk& chunk, Mask* mask) const {
  switch (kind_) {
    case Kind::kCompare: {
      const ExprPtr& l = children_[0];
      const ExprPtr& r = children_[1];
      if (r->kind_ == Kind::kLiteral) {
        DFLOW_ASSIGN_OR_RETURN(ColumnVector lv, l->Evaluate(chunk));
        return CompareToConstant(lv, compare_op_, r->value_, mask);
      }
      DFLOW_ASSIGN_OR_RETURN(ColumnVector lv, l->Evaluate(chunk));
      DFLOW_ASSIGN_OR_RETURN(ColumnVector rv, r->Evaluate(chunk));
      return CompareColumns(lv, compare_op_, rv, mask);
    }
    case Kind::kLike: {
      DFLOW_ASSIGN_OR_RETURN(ColumnVector input, children_[0]->Evaluate(chunk));
      return ComputeLikeMask(input, pattern_, mask);
    }
    case Kind::kAnd: {
      if (children_.empty()) {
        return Status::InvalidArgument("AND requires children");
      }
      DFLOW_RETURN_NOT_OK(children_[0]->EvaluatePredicate(chunk, mask));
      for (size_t i = 1; i < children_.size(); ++i) {
        Mask other;
        DFLOW_RETURN_NOT_OK(children_[i]->EvaluatePredicate(chunk, &other));
        AndMasks(other, mask);
      }
      return Status::OK();
    }
    case Kind::kOr: {
      if (children_.empty()) {
        return Status::InvalidArgument("OR requires children");
      }
      DFLOW_RETURN_NOT_OK(children_[0]->EvaluatePredicate(chunk, mask));
      for (size_t i = 1; i < children_.size(); ++i) {
        Mask other;
        DFLOW_RETURN_NOT_OK(children_[i]->EvaluatePredicate(chunk, &other));
        OrMasks(other, mask);
      }
      return Status::OK();
    }
    case Kind::kNot: {
      DFLOW_RETURN_NOT_OK(children_[0]->EvaluatePredicate(chunk, mask));
      NotMask(mask);
      return Status::OK();
    }
    case Kind::kLiteral: {
      if (value_.type() != DataType::kBool || value_.is_null()) {
        return Status::InvalidArgument("literal predicate must be BOOL");
      }
      mask->assign(chunk.num_rows(), value_.bool_value() ? 1 : 0);
      return Status::OK();
    }
    case Kind::kColumnRef: {
      DFLOW_ASSIGN_OR_RETURN(ColumnVector col, Evaluate(chunk));
      if (col.type() != DataType::kBool) {
        return Status::InvalidArgument("column predicate must be BOOL");
      }
      mask->assign(col.size(), 0);
      for (size_t i = 0; i < col.size(); ++i) {
        (*mask)[i] = col.IsValid(i) && col.bool_data()[i] ? 1 : 0;
      }
      return Status::OK();
    }
    case Kind::kArith:
      return Status::InvalidArgument("arithmetic expression is not a predicate");
  }
  return Status::Internal("unreachable");
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kColumnRef:
      if (!column_name_.empty()) {
        os << column_name_;
      } else {
        os << "$" << column_index_;
      }
      break;
    case Kind::kLiteral:
      os << value_.ToString();
      break;
    case Kind::kCompare:
      os << "(" << children_[0]->ToString() << " "
         << CompareOpToString(compare_op_) << " " << children_[1]->ToString()
         << ")";
      break;
    case Kind::kArith:
      os << "(" << children_[0]->ToString() << " "
         << ArithOpToString(arith_op_) << " " << children_[1]->ToString()
         << ")";
      break;
    case Kind::kLike:
      os << "(" << children_[0]->ToString() << " LIKE '" << pattern_ << "')";
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind_ == Kind::kAnd ? " AND " : " OR ";
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << sep;
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kNot:
      os << "NOT " << children_[0]->ToString();
      break;
  }
  return os.str();
}

ExprPtr Between(std::string column, Value lo_inclusive, Value hi_exclusive) {
  return Expr::And({Expr::Cmp(CompareOp::kGe, Expr::Col(column),
                              Expr::Lit(std::move(lo_inclusive))),
                    Expr::Cmp(CompareOp::kLt, Expr::Col(std::move(column)),
                              Expr::Lit(std::move(hi_exclusive)))});
}

}  // namespace dflow
