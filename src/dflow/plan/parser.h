#ifndef DFLOW_PLAN_PARSER_H_
#define DFLOW_PLAN_PARSER_H_

#include <string>
#include <string_view>

#include "dflow/common/result.h"
#include "dflow/plan/query_spec.h"

namespace dflow {

/// Parses a SQL subset into a QuerySpec. Supported grammar:
///
///   SELECT <item> [, <item>]* FROM <table>
///     [WHERE <expr>]
///     [GROUP BY <col> [, <col>]*]
///     [ORDER BY <col> [ASC|DESC]]
///     [LIMIT <n>]
///
///   item  := * | expr [AS name]
///          | COUNT(*) | COUNT(col) | SUM(col) | MIN(col) | MAX(col)
///            [AS name]
///   expr  := disjunctions/conjunctions of comparisons (=, <>, <, <=, >,
///            >=), LIKE 'pattern', BETWEEN a AND b, NOT, arithmetic
///            (+ - * /), parentheses, column names, and literals
///   lit   := 123 | 1.5 | 'text' | TRUE | FALSE | DATE 8400
///
/// Keywords are case-insensitive; identifiers are case-sensitive. AVG is
/// intentionally unsupported (lower it to SUM/COUNT yourself); a clear
/// NotImplemented error says so.
///
/// Example:
///   auto spec = ParseQuery(
///       "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) AS n "
///       "FROM lineitem WHERE l_shipdate < DATE 8400 AND l_discount <= 0.05 "
///       "GROUP BY l_returnflag");
Result<QuerySpec> ParseQuery(std::string_view sql);

/// Parses just an expression (the WHERE-clause grammar). Useful for
/// building filters programmatically from config strings.
Result<ExprPtr> ParseExpression(std::string_view sql);

}  // namespace dflow

#endif  // DFLOW_PLAN_PARSER_H_
