#ifndef DFLOW_PLAN_FINGERPRINT_H_
#define DFLOW_PLAN_FINGERPRINT_H_

#include <string>

#include "dflow/plan/query_spec.h"

namespace dflow {

/// Canonical textual form of a QuerySpec: every semantically meaningful
/// field in a fixed order, expressions via Expr::ToString. Two specs that
/// render identically here are the same plan for caching purposes —
/// literals included, so parameterized queries with different constants are
/// distinct plans (re-binding literals through a compiled program's
/// parameter slots without recompiling is future work; see DESIGN.md §10).
std::string CanonicalSpecString(const QuerySpec& spec);

/// Stable 64-bit identity of a plan: HashString over CanonicalSpecString.
/// The program cache keys on this plus fabric epoch and verifier version.
/// Pure function of the spec — identical across processes and runs.
uint64_t FingerprintQuerySpec(const QuerySpec& spec);

}  // namespace dflow

#endif  // DFLOW_PLAN_FINGERPRINT_H_
