#include "dflow/plan/fingerprint.h"

#include <sstream>

#include "dflow/common/hash.h"

namespace dflow {

std::string CanonicalSpecString(const QuerySpec& spec) {
  std::ostringstream os;
  os << "table=" << spec.table;
  os << "|filter=" << (spec.filter != nullptr ? spec.filter->ToString() : "-");
  os << "|proj=";
  for (size_t i = 0; i < spec.projections.size(); ++i) {
    if (i > 0) os << ",";
    os << spec.projection_names[i] << ":" << spec.projections[i]->ToString();
  }
  os << "|group=";
  for (size_t i = 0; i < spec.group_by.size(); ++i) {
    if (i > 0) os << ",";
    os << spec.group_by[i];
  }
  os << "|agg=";
  for (size_t i = 0; i < spec.aggregates.size(); ++i) {
    const AggSpec& a = spec.aggregates[i];
    if (i > 0) os << ",";
    os << AggFuncToString(a.func) << "(" << a.input << ")->" << a.output_name;
  }
  os << "|count_only=" << (spec.count_only ? 1 : 0);
  os << "|order=";
  if (spec.order_by.has_value()) {
    os << spec.order_by->column << (spec.order_by->descending ? ":desc" : ":asc")
       << ":" << spec.order_by->limit;
  } else {
    os << "-";
  }
  os << "|limit=" << spec.limit;
  os << "|compress_uplink=" << (spec.compress_uplink ? 1 : 0);
  os << "|preagg_budget=" << spec.preagg_budget;
  return os.str();
}

uint64_t FingerprintQuerySpec(const QuerySpec& spec) {
  return HashString(CanonicalSpecString(spec));
}

}  // namespace dflow
