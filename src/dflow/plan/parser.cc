#include "dflow/plan/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace dflow {

namespace {

// ------------------------------------------------------------ tokenizer ----

enum class TokenType {
  kIdent,
  kKeyword,
  kInteger,
  kDecimal,
  kString,
  kSymbol,  // ( ) , * + - / = <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // keywords upper-cased; idents verbatim
  size_t position = 0;
};

bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",   "BY",    "ORDER", "LIMIT",
      "AND",    "OR",    "NOT",   "LIKE",    "BETWEEN", "AS",  "ASC",
      "DESC",   "COUNT", "SUM",   "MIN",     "MAX",   "AVG",   "TRUE",
      "FALSE",  "DATE",
  };
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      const size_t start = pos_;
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          word += input_[pos_++];
        }
        std::string upper = word;
        for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
        if (IsKeyword(upper)) {
          tokens.push_back(Token{TokenType::kKeyword, upper, start});
        } else {
          tokens.push_back(Token{TokenType::kIdent, word, start});
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num;
        bool decimal = false;
        while (pos_ < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '.')) {
          if (input_[pos_] == '.') {
            if (decimal) break;
            decimal = true;
          }
          num += input_[pos_++];
        }
        tokens.push_back(Token{
            decimal ? TokenType::kDecimal : TokenType::kInteger, num, start});
        continue;
      }
      if (c == '\'') {
        ++pos_;
        std::string text;
        while (true) {
          if (pos_ >= input_.size()) {
            return Status::InvalidArgument("unterminated string literal at " +
                                           std::to_string(start));
          }
          if (input_[pos_] == '\'') {
            // '' escapes a quote.
            if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
              text += '\'';
              pos_ += 2;
              continue;
            }
            ++pos_;
            break;
          }
          text += input_[pos_++];
        }
        tokens.push_back(Token{TokenType::kString, text, start});
        continue;
      }
      // Symbols, including two-char comparators.
      std::string sym(1, c);
      ++pos_;
      if ((c == '<' || c == '>') && pos_ < input_.size()) {
        const char next = input_[pos_];
        if (next == '=' || (c == '<' && next == '>')) {
          sym += next;
          ++pos_;
        }
      }
      static const std::string kSymbols = "(),*+-/=<>";
      if (kSymbols.find(c) == std::string::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at " + std::to_string(start));
      }
      tokens.push_back(Token{TokenType::kSymbol, sym, start});
    }
    tokens.push_back(Token{TokenType::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- parser ----

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QuerySpec> ParseQuery() {
    QuerySpec spec;
    DFLOW_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    DFLOW_RETURN_NOT_OK(ParseSelectList(&spec));
    DFLOW_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DFLOW_ASSIGN_OR_RETURN(spec.table, ExpectIdent());
    if (AcceptKeyword("WHERE")) {
      DFLOW_ASSIGN_OR_RETURN(spec.filter, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      DFLOW_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        DFLOW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        spec.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("ORDER")) {
      DFLOW_RETURN_NOT_OK(ExpectKeyword("BY"));
      SortSpec sort;
      DFLOW_ASSIGN_OR_RETURN(sort.column, ExpectIdent());
      if (AcceptKeyword("DESC")) {
        sort.descending = true;
      } else {
        (void)AcceptKeyword("ASC");
      }
      spec.order_by = std::move(sort);
    }
    if (AcceptKeyword("LIMIT")) {
      DFLOW_ASSIGN_OR_RETURN(int64_t n, ExpectInteger());
      if (n <= 0) return Error("LIMIT must be positive");
      if (spec.order_by.has_value()) {
        spec.order_by->limit = static_cast<uint64_t>(n);
      } else {
        spec.limit = static_cast<uint64_t>(n);
      }
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    DFLOW_RETURN_NOT_OK(ValidateSpec(&spec));
    return spec;
  }

  Result<ExprPtr> ParseOnlyExpression() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return e;
  }

 private:
  // ---- select list --------------------------------------------------------
  struct SelectItem {
    bool is_aggregate = false;
    AggSpec agg;
    ExprPtr expr;  // non-aggregate
    std::string name;
  };

  Status ParseSelectList(QuerySpec* spec) {
    if (AcceptSymbol("*")) {
      return Status::OK();  // SELECT *: no projections, no aggregates
    }
    std::vector<SelectItem> items;
    do {
      SelectItem item;
      const Token& t = Peek();
      if (t.type == TokenType::kKeyword &&
          (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" ||
           t.text == "MAX" || t.text == "AVG")) {
        DFLOW_RETURN_NOT_OK(ParseAggregate(&item));
      } else {
        DFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          DFLOW_ASSIGN_OR_RETURN(item.name, ExpectIdent());
        } else if (item.expr->kind() == Expr::Kind::kColumnRef) {
          item.name = item.expr->column_name();
        } else {
          item.name = "expr" + std::to_string(items.size());
        }
      }
      items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    bool any_agg = false;
    for (const SelectItem& item : items) any_agg |= item.is_aggregate;
    if (!any_agg) {
      for (SelectItem& item : items) {
        spec->projections.push_back(std::move(item.expr));
        spec->projection_names.push_back(std::move(item.name));
      }
      return Status::OK();
    }
    // Aggregation query: plain items must be bare group-by columns; they
    // come back automatically as group columns of the aggregate output.
    for (SelectItem& item : items) {
      if (item.is_aggregate) {
        spec->aggregates.push_back(std::move(item.agg));
      } else if (item.expr->kind() != Expr::Kind::kColumnRef) {
        return Error(
            "non-aggregate select item must be a group-by column name");
      } else {
        plain_select_columns_.push_back(item.expr->column_name());
      }
    }
    return Status::OK();
  }

  Status ParseAggregate(SelectItem* item) {
    const std::string func = Peek().text;
    Advance();
    if (func == "AVG") {
      return Status::NotImplemented(
          "AVG is not supported; use SUM(col) and COUNT(col) and divide");
    }
    DFLOW_RETURN_NOT_OK(ExpectSymbol("("));
    AggSpec agg;
    if (func == "COUNT") {
      agg.func = AggFunc::kCount;
      if (!AcceptSymbol("*")) {
        DFLOW_ASSIGN_OR_RETURN(agg.input, ExpectIdent());
      }
    } else {
      agg.func = func == "SUM" ? AggFunc::kSum
                               : (func == "MIN" ? AggFunc::kMin : AggFunc::kMax);
      DFLOW_ASSIGN_OR_RETURN(agg.input, ExpectIdent());
    }
    DFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
    if (AcceptKeyword("AS")) {
      DFLOW_ASSIGN_OR_RETURN(agg.output_name, ExpectIdent());
    } else {
      std::string lower = func;
      for (char& c : lower) c = static_cast<char>(std::tolower(c));
      agg.output_name = agg.input.empty() ? lower : lower + "_" + agg.input;
    }
    item->is_aggregate = true;
    item->agg = std::move(agg);
    return Status::OK();
  }

  Status ValidateSpec(QuerySpec* spec) {
    // COUNT(*)-only queries take the counter fast path.
    if (spec->aggregates.size() == 1 && spec->group_by.empty() &&
        plain_select_columns_.empty() &&
        spec->aggregates[0].func == AggFunc::kCount &&
        spec->aggregates[0].input.empty()) {
      spec->aggregates.clear();
      spec->count_only = true;
      return Status::OK();
    }
    // Plain select columns alongside aggregates must appear in GROUP BY.
    for (const std::string& col : plain_select_columns_) {
      bool found = false;
      for (const std::string& g : spec->group_by) found |= g == col;
      if (!found) {
        return Error("column '" + col +
                     "' must appear in GROUP BY or an aggregate");
      }
    }
    return Status::OK();
  }

  // ---- expressions (precedence climbing) ----------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    std::vector<ExprPtr> terms = {left};
    while (AcceptKeyword("OR")) {
      DFLOW_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
      terms.push_back(std::move(next));
    }
    return terms.size() == 1 ? terms[0] : Expr::Or(std::move(terms));
  }

  Result<ExprPtr> ParseAnd() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    std::vector<ExprPtr> terms = {left};
    while (AcceptKeyword("AND")) {
      DFLOW_ASSIGN_OR_RETURN(ExprPtr next, ParseNot());
      terms.push_back(std::move(next));
    }
    return terms.size() == 1 ? terms[0] : Expr::And(std::move(terms));
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      DFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Not(std::move(inner));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    const Token& t = Peek();
    if (t.type == TokenType::kSymbol &&
        (t.text == "=" || t.text == "<>" || t.text == "<" || t.text == "<=" ||
         t.text == ">" || t.text == ">=")) {
      CompareOp op = CompareOp::kEq;
      if (t.text == "<>") op = CompareOp::kNe;
      if (t.text == "<") op = CompareOp::kLt;
      if (t.text == "<=") op = CompareOp::kLe;
      if (t.text == ">") op = CompareOp::kGt;
      if (t.text == ">=") op = CompareOp::kGe;
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Cmp(op, std::move(left), std::move(right));
    }
    if (t.type == TokenType::kKeyword && t.text == "LIKE") {
      Advance();
      if (Peek().type != TokenType::kString) {
        return Error("LIKE requires a string pattern");
      }
      std::string pattern = Peek().text;
      Advance();
      return Expr::Like(std::move(left), std::move(pattern));
    }
    if (t.type == TokenType::kKeyword && t.text == "BETWEEN") {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      DFLOW_RETURN_NOT_OK(ExpectKeyword("AND"));
      DFLOW_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // SQL BETWEEN is inclusive on both ends.
      return Expr::And(
          {Expr::Cmp(CompareOp::kGe, left, std::move(lo)),
           Expr::Cmp(CompareOp::kLe, std::move(left), std::move(hi))});
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      const Token& t = Peek();
      if (t.type != TokenType::kSymbol || (t.text != "+" && t.text != "-")) {
        return left;
      }
      const ArithOp op = t.text == "+" ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Arith(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      const Token& t = Peek();
      if (t.type != TokenType::kSymbol || (t.text != "*" && t.text != "/")) {
        return left;
      }
      const ArithOp op = t.text == "*" ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Arith(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        const int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        Advance();
        return Expr::Lit(Value::Int64(v));
      }
      case TokenType::kDecimal: {
        const double v = std::strtod(t.text.c_str(), nullptr);
        Advance();
        return Expr::Lit(Value::Double(v));
      }
      case TokenType::kString: {
        std::string s = t.text;
        Advance();
        return Expr::Lit(Value::String(std::move(s)));
      }
      case TokenType::kIdent: {
        std::string name = t.text;
        Advance();
        return Expr::Col(std::move(name));
      }
      case TokenType::kKeyword: {
        if (t.text == "TRUE" || t.text == "FALSE") {
          const bool v = t.text == "TRUE";
          Advance();
          return Expr::Lit(Value::Bool(v));
        }
        if (t.text == "DATE") {
          Advance();
          DFLOW_ASSIGN_OR_RETURN(int64_t days, ExpectInteger());
          return Expr::Lit(Value::Date32(static_cast<int32_t>(days)));
        }
        return Error("unexpected keyword '" + t.text + "' in expression");
      }
      case TokenType::kSymbol: {
        if (t.text == "(") {
          Advance();
          DFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          DFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        if (t.text == "-") {  // unary minus on literals
          Advance();
          DFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
          return Expr::Arith(ArithOp::kSub, Expr::Lit(Value::Int64(0)),
                             std::move(inner));
        }
        return Error("unexpected symbol '" + t.text + "' in expression");
      }
      case TokenType::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unreachable");
  }

  // ---- token helpers -------------------------------------------------------
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AcceptKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const char* sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw + ", found '" + Peek().text +
                   "'");
    }
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Error(std::string("expected '") + sym + "', found '" +
                   Peek().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected identifier, found '" + Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<int64_t> ExpectInteger() {
    if (Peek().type != TokenType::kInteger) {
      return Error("expected integer, found '" + Peek().text + "'");
    }
    const int64_t v = std::strtoll(Peek().text.c_str(), nullptr, 10);
    Advance();
    return v;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().position) + ": " +
                                   message);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<std::string> plain_select_columns_;
};

}  // namespace

Result<QuerySpec> ParseQuery(std::string_view sql) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(sql).Tokenize());
  return Parser(std::move(tokens)).ParseQuery();
}

Result<ExprPtr> ParseExpression(std::string_view sql) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(sql).Tokenize());
  return Parser(std::move(tokens)).ParseOnlyExpression();
}

}  // namespace dflow
