#ifndef DFLOW_PLAN_QUERY_SPEC_H_
#define DFLOW_PLAN_QUERY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "dflow/exec/aggregate.h"
#include "dflow/plan/expr.h"

namespace dflow {

struct SortSpec {
  std::string column;
  bool descending = false;
  uint64_t limit = 0;  // 0 = no limit
};

/// A declarative single-table pipeline query — the class of queries whose
/// stages the optimizer places along the data path:
///
///   SELECT <projections | aggregates> FROM <table>
///   WHERE <filter> [GROUP BY ...] [ORDER BY ... LIMIT ...]
///
/// Expressions are written name-based (Expr::Col) and resolved by the
/// engine. When both projections and aggregates are present, the
/// aggregates' input names refer to the projection outputs; otherwise to
/// the scanned columns.
struct QuerySpec {
  std::string table;

  /// Row predicate (also used for zone-map pruning).
  ExprPtr filter;

  /// Computed/selected output columns (empty = all scanned columns).
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  /// Group-by + aggregates (both empty = no aggregation).
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;

  /// SELECT COUNT(*): the whole query is a counter (§4.4's NIC query).
  bool count_only = false;

  std::optional<SortSpec> order_by;
  uint64_t limit = 0;

  /// Recompress the stream before it crosses the network (ablation knob).
  bool compress_uplink = false;

  /// Bounded group-table budget for offloaded partial aggregation.
  size_t preagg_budget = 4096;
};

/// A distributed partitioned equi-join (Figure 4): the build table is
/// scattered across nodes by key, then the probe table streams through the
/// same partitioning, each node joining its partition.
struct JoinSpec {
  std::string build_table;
  std::string probe_table;
  std::string build_key;
  std::string probe_key;
  int num_nodes = 2;

  /// Who runs the scatter exchange.
  enum class Exchange {
    kNicScatter,   // the storage-side NIC partitions on the fly (Figure 4)
    kCpuExchange,  // node 0's CPU receives everything and re-partitions
  };
  Exchange exchange = Exchange::kNicScatter;

  /// Optional storage-side filter on the probe table.
  ExprPtr probe_filter;
};

}  // namespace dflow

#endif  // DFLOW_PLAN_QUERY_SPEC_H_
