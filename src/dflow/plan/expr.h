#ifndef DFLOW_PLAN_EXPR_H_
#define DFLOW_PLAN_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/types/schema.h"
#include "dflow/types/value.h"
#include "dflow/vector/data_chunk.h"
#include "dflow/vector/kernels.h"

namespace dflow {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar expression tree: column references, literals, comparisons,
/// arithmetic, LIKE, and boolean combinators.
///
/// Expressions are built name-based (Col("l_quantity")) and resolved against
/// an input schema before execution (Resolve), which rewrites references to
/// positional indices. Only resolved expressions can be evaluated — the
/// planner resolves once; operators evaluate per chunk.
class Expr {
 public:
  enum class Kind {
    kColumnRef,
    kLiteral,
    kCompare,
    kArith,
    kLike,
    kAnd,
    kOr,
    kNot,
  };

  // -------------------------------------------------------- construction --
  /// Reference by name (unresolved).
  static ExprPtr Col(std::string name);
  /// Reference by position (resolved).
  static ExprPtr ColAt(size_t index);
  static ExprPtr Lit(Value value);
  static ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Like(ExprPtr input, std::string pattern);
  static ExprPtr And(std::vector<ExprPtr> children);
  static ExprPtr Or(std::vector<ExprPtr> children);
  static ExprPtr Not(ExprPtr child);

  // --------------------------------------------------------- introspection --
  Kind kind() const { return kind_; }
  bool is_resolved() const;
  /// For kColumnRef.
  size_t column_index() const { return column_index_; }
  const std::string& column_name() const { return column_name_; }
  /// For kLiteral.
  const Value& value() const { return value_; }
  /// For kCompare / kArith.
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  /// For kLike.
  const std::string& pattern() const { return pattern_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// True when this is `column <op> literal` (zone-map-prunable shape).
  bool IsColumnConstantCompare() const;

  /// Adds every referenced column index to `out` (must be resolved).
  void CollectColumnIndices(std::vector<size_t>* out) const;

  /// True if the expression evaluates to a boolean (usable as a predicate).
  bool IsPredicate() const;

  // ------------------------------------------------------------ resolution --
  /// Returns a copy with all name references resolved to indices in
  /// `schema`. Errors on unknown names.
  static Result<ExprPtr> Resolve(const ExprPtr& expr, const Schema& schema);

  /// Output type of a (resolved) value expression against `schema`.
  Result<DataType> OutputType(const Schema& schema) const;

  // ------------------------------------------------------------ evaluation --
  /// Evaluates a value expression over a chunk. Must be resolved.
  Result<ColumnVector> Evaluate(const DataChunk& chunk) const;

  /// Evaluates a predicate over a chunk into a byte mask. Must be resolved.
  Status EvaluatePredicate(const DataChunk& chunk, Mask* mask) const;

  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  // kColumnRef
  std::string column_name_;
  size_t column_index_ = kUnresolved;
  // kLiteral
  Value value_;
  // kCompare / kArith / kLike
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::string pattern_;
  std::vector<ExprPtr> children_;

  static constexpr size_t kUnresolved = static_cast<size_t>(-1);
};

/// Convenience: conjunction of column-vs-constant range predicates, e.g.
/// BETWEEN. Returns Cmp(ge) AND Cmp(lt).
ExprPtr Between(std::string column, Value lo_inclusive, Value hi_exclusive);

}  // namespace dflow

#endif  // DFLOW_PLAN_EXPR_H_
