#include "dflow/types/schema.h"

#include "dflow/common/logging.h"

namespace dflow {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "' in schema");
}

bool Schema::HasField(const std::string& name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (size_t idx : indices) {
    DFLOW_CHECK_LT(idx, fields_.size());
    out.push_back(fields_[idx]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace dflow
