#include "dflow/types/value.h"

#include <cstdio>

#include "dflow/common/logging.h"

namespace dflow {

int64_t Value::AsInt64() const {
  DFLOW_CHECK(!is_null_);
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate32:
      return std::get<int32_t>(data_);
    case DataType::kInt64:
      return std::get<int64_t>(data_);
    case DataType::kDouble:
      return static_cast<int64_t>(std::get<double>(data_));
    case DataType::kBool:
      return std::get<bool>(data_) ? 1 : 0;
    case DataType::kString:
      break;
  }
  DFLOW_CHECK(false) << "AsInt64 on non-numeric Value";
  return 0;
}

double Value::AsDouble() const {
  DFLOW_CHECK(!is_null_);
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate32:
      return static_cast<double>(std::get<int32_t>(data_));
    case DataType::kInt64:
      return static_cast<double>(std::get<int64_t>(data_));
    case DataType::kDouble:
      return std::get<double>(data_);
    case DataType::kBool:
      return std::get<bool>(data_) ? 1.0 : 0.0;
    case DataType::kString:
      break;
  }
  DFLOW_CHECK(false) << "AsDouble on non-numeric Value";
  return 0.0;
}

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    DFLOW_CHECK(type_ == DataType::kString && other.type_ == DataType::kString)
        << "cannot compare STRING with " << DataTypeToString(other.type_);
    return string_value().compare(other.string_value());
  }
  if (type_ == DataType::kBool || other.type_ == DataType::kBool) {
    DFLOW_CHECK(type_ == DataType::kBool && other.type_ == DataType::kBool)
        << "cannot compare BOOL with non-BOOL";
    const int a = bool_value() ? 1 : 0;
    const int b = other.bool_value() ? 1 : 0;
    return a - b;
  }
  // Numeric comparison promotes everything to double when either side is
  // double; otherwise compares as int64 to avoid precision loss.
  if (type_ == DataType::kDouble || other.type_ == DataType::kDouble) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const int64_t a = AsInt64();
  const int64_t b = other.AsInt64();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  char buf[64];
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", int32_value());
      return buf;
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int64_value()));
      return buf;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    case DataType::kString:
      return string_value();
    case DataType::kDate32:
      std::snprintf(buf, sizeof(buf), "date(%d)", date32_value());
      return buf;
  }
  return "?";
}

}  // namespace dflow
