#ifndef DFLOW_TYPES_DATA_TYPE_H_
#define DFLOW_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string_view>

namespace dflow {

/// Physical column types supported by the engine. DATE32 is days since epoch
/// stored as int32 (Arrow convention).
enum class DataType : uint8_t {
  kBool = 0,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kDate32,
};

/// Human-readable type name ("INT64", "STRING", ...).
std::string_view DataTypeToString(DataType type);

/// True for the fixed-width types (everything except kString).
bool IsFixedWidth(DataType type);

/// Width in bytes of a fixed-width type; 0 for kString (variable).
uint32_t FixedWidthBytes(DataType type);

/// True for types on which arithmetic is defined (kInt32/kInt64/kDouble).
bool IsNumeric(DataType type);

}  // namespace dflow

#endif  // DFLOW_TYPES_DATA_TYPE_H_
