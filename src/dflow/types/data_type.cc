#include "dflow/types/data_type.h"

namespace dflow {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt32:
      return "INT32";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate32:
      return "DATE32";
  }
  return "UNKNOWN";
}

bool IsFixedWidth(DataType type) { return type != DataType::kString; }

uint32_t FixedWidthBytes(DataType type) {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kInt32:
    case DataType::kDate32:
      return 4;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 0;
  }
  return 0;
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64 ||
         type == DataType::kDouble;
}

}  // namespace dflow
