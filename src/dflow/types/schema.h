#ifndef DFLOW_TYPES_SCHEMA_H_
#define DFLOW_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/types/data_type.h"

namespace dflow {

/// A named, typed column slot.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of fields. Schemas are value types: cheap enough to copy
/// through plans, and compared structurally.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or an error if absent.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True if a field named `name` exists.
  bool HasField(const std::string& name) const;

  /// New schema keeping only the given column indices, in the given order.
  Schema Select(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace dflow

#endif  // DFLOW_TYPES_SCHEMA_H_
