#ifndef DFLOW_TYPES_VALUE_H_
#define DFLOW_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "dflow/types/data_type.h"

namespace dflow {

/// A single runtime-typed scalar. Used for literals in expressions, zone-map
/// bounds, and query results. Comparison across int/double is numeric; all
/// other cross-type comparisons are invalid.
class Value {
 public:
  /// A NULL of unspecified type.
  Value() : type_(DataType::kInt64), is_null_(true) {}

  static Value Bool(bool v) { return Value(DataType::kBool, v); }
  static Value Int32(int32_t v) { return Value(DataType::kInt32, v); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Date32(int32_t days) { return Value(DataType::kDate32, days); }
  static Value Null(DataType type) {
    Value v;
    v.type_ = type;
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool bool_value() const { return std::get<bool>(data_); }
  int32_t int32_value() const { return std::get<int32_t>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }
  int32_t date32_value() const { return std::get<int32_t>(data_); }

  /// Numeric view: int32/int64/date32 as int64; double as itself (truncated
  /// for AsInt64). Only valid for numeric/date types.
  int64_t AsInt64() const;
  double AsDouble() const;

  /// Three-way comparison. Requires compatible types (numeric with numeric,
  /// string with string, bool with bool). NULLs compare less than non-NULLs
  /// and equal to each other (total order for sorting).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  std::string ToString() const;

 private:
  template <typename T>
  Value(DataType type, T v) : type_(type), is_null_(false), data_(std::move(v)) {}

  DataType type_;
  bool is_null_ = false;
  std::variant<bool, int32_t, int64_t, double, std::string> data_;
};

}  // namespace dflow

#endif  // DFLOW_TYPES_VALUE_H_
