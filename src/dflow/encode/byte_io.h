#ifndef DFLOW_ENCODE_BYTE_IO_H_
#define DFLOW_ENCODE_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "dflow/common/status.h"

namespace dflow {

/// Append-only little-endian byte sink used by page and column serializers.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }

  template <typename T>
  void PutRaw(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &v, sizeof(T));
  }

  void PutU32(uint32_t v) { PutRaw(v); }
  void PutU64(uint64_t v) { PutRaw(v); }
  void PutI32(int32_t v) { PutRaw(v); }
  void PutI64(int64_t v) { PutRaw(v); }
  void PutDouble(double v) { PutRaw(v); }

  void PutBytes(const void* data, size_t len) {
    const size_t offset = out_->size();
    out_->resize(offset + len);
    std::memcpy(out_->data() + offset, data, len);
  }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian byte source.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

  Status GetU8(uint8_t* v) { return GetRaw(v); }
  Status GetU32(uint32_t* v) { return GetRaw(v); }
  Status GetU64(uint64_t* v) { return GetRaw(v); }
  Status GetI32(int32_t* v) { return GetRaw(v); }
  Status GetI64(int64_t* v) { return GetRaw(v); }
  Status GetDouble(double* v) { return GetRaw(v); }

  template <typename T>
  Status GetRaw(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("ByteReader: truncated input");
    }
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status GetBytes(void* out, size_t len) {
    if (remaining() < len) {
      return Status::OutOfRange("ByteReader: truncated input");
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint32_t len = 0;
    DFLOW_RETURN_NOT_OK(GetU32(&len));
    if (remaining() < len) {
      return Status::OutOfRange("ByteReader: truncated string");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dflow

#endif  // DFLOW_ENCODE_BYTE_IO_H_
