#include "dflow/encode/encoding.h"

#include <unordered_map>

#include "dflow/common/logging.h"
#include "dflow/encode/byte_io.h"

namespace dflow {

std::string_view EncodingToString(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kDictionary:
      return "DICTIONARY";
    case Encoding::kForBitPack:
      return "FOR_BITPACK";
  }
  return "UNKNOWN";
}

namespace {

bool IsIntLike(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64 ||
         type == DataType::kDate32 || type == DataType::kBool;
}

// Reads element i of an int-like column as int64 (placeholder 0 for nulls is
// whatever the storage holds; validity is serialized separately).
int64_t IntAt(const ColumnVector& col, size_t i) {
  switch (col.type()) {
    case DataType::kInt32:
    case DataType::kDate32:
      return col.i32()[i];
    case DataType::kInt64:
      return col.i64()[i];
    case DataType::kBool:
      return col.bool_data()[i];
    default:
      DFLOW_CHECK(false) << "IntAt on non-int column";
      return 0;
  }
}

void IntAppend(ColumnVector* col, int64_t v) {
  switch (col->type()) {
    case DataType::kInt32:
    case DataType::kDate32:
      col->i32().push_back(static_cast<int32_t>(v));
      break;
    case DataType::kInt64:
      col->i64().push_back(v);
      break;
    case DataType::kBool:
      col->bool_data().push_back(static_cast<uint8_t>(v));
      break;
    default:
      DFLOW_CHECK(false) << "IntAppend on non-int column";
  }
}

void WriteValidity(const ColumnVector& col, ByteWriter* w) {
  if (!col.HasNulls()) {
    w->PutU8(0);
    return;
  }
  w->PutU8(1);
  for (size_t i = 0; i < col.size(); ++i) {
    w->PutU8(col.IsValid(i) ? 1 : 0);
  }
}

// ---------------------------------------------------------------- plain ----

Status EncodePlain(const ColumnVector& col, ByteWriter* w) {
  const size_t n = col.size();
  switch (col.type()) {
    case DataType::kBool:
      w->PutBytes(col.bool_data().data(), n);
      break;
    case DataType::kInt32:
    case DataType::kDate32:
      w->PutBytes(col.i32().data(), n * sizeof(int32_t));
      break;
    case DataType::kInt64:
      w->PutBytes(col.i64().data(), n * sizeof(int64_t));
      break;
    case DataType::kDouble:
      w->PutBytes(col.f64().data(), n * sizeof(double));
      break;
    case DataType::kString:
      for (const std::string& s : col.strs()) w->PutString(s);
      break;
  }
  return Status::OK();
}

Status DecodePlain(ByteReader* r, size_t n, ColumnVector* col) {
  switch (col->type()) {
    case DataType::kBool:
      col->bool_data().resize(n);
      return r->GetBytes(col->bool_data().data(), n);
    case DataType::kInt32:
    case DataType::kDate32:
      col->i32().resize(n);
      return r->GetBytes(col->i32().data(), n * sizeof(int32_t));
    case DataType::kInt64:
      col->i64().resize(n);
      return r->GetBytes(col->i64().data(), n * sizeof(int64_t));
    case DataType::kDouble:
      col->f64().resize(n);
      return r->GetBytes(col->f64().data(), n * sizeof(double));
    case DataType::kString: {
      col->strs().resize(n);
      for (size_t i = 0; i < n; ++i) {
        DFLOW_RETURN_NOT_OK(r->GetString(&col->strs()[i]));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

// ------------------------------------------------------------------ rle ----

Status EncodeRle(const ColumnVector& col, ByteWriter* w) {
  if (!IsIntLike(col.type())) {
    return Status::InvalidArgument("RLE supports integer-like columns only");
  }
  const size_t n = col.size();
  size_t i = 0;
  while (i < n) {
    const int64_t v = IntAt(col, i);
    size_t run = 1;
    while (i + run < n && IntAt(col, i + run) == v) ++run;
    w->PutU32(static_cast<uint32_t>(run));
    w->PutI64(v);
    i += run;
  }
  return Status::OK();
}

Status DecodeRle(ByteReader* r, size_t n, ColumnVector* col) {
  size_t produced = 0;
  while (produced < n) {
    uint32_t run = 0;
    int64_t v = 0;
    DFLOW_RETURN_NOT_OK(r->GetU32(&run));
    DFLOW_RETURN_NOT_OK(r->GetI64(&v));
    if (run == 0 || produced + run > n) {
      return Status::OutOfRange("RLE: corrupt run length");
    }
    for (uint32_t k = 0; k < run; ++k) IntAppend(col, v);
    produced += run;
  }
  return Status::OK();
}

// ----------------------------------------------------------- dictionary ----

Status EncodeDictionary(const ColumnVector& col, ByteWriter* w) {
  if (col.type() != DataType::kString) {
    return Status::InvalidArgument("dictionary encoding supports strings only");
  }
  const auto& values = col.strs();
  std::unordered_map<std::string, uint32_t> dict;
  std::vector<const std::string*> entries;
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const std::string& s : values) {
    auto [it, inserted] =
        dict.emplace(s, static_cast<uint32_t>(entries.size()));
    if (inserted) entries.push_back(&it->first);
    codes.push_back(it->second);
  }
  w->PutU32(static_cast<uint32_t>(entries.size()));
  for (const std::string* s : entries) w->PutString(*s);
  for (uint32_t code : codes) w->PutU32(code);
  return Status::OK();
}

Status DecodeDictionary(ByteReader* r, size_t n, ColumnVector* col) {
  uint32_t dict_size = 0;
  DFLOW_RETURN_NOT_OK(r->GetU32(&dict_size));
  std::vector<std::string> entries(dict_size);
  for (uint32_t i = 0; i < dict_size; ++i) {
    DFLOW_RETURN_NOT_OK(r->GetString(&entries[i]));
  }
  col->strs().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t code = 0;
    DFLOW_RETURN_NOT_OK(r->GetU32(&code));
    if (code >= dict_size) {
      return Status::OutOfRange("dictionary: code out of range");
    }
    col->strs().push_back(entries[code]);
  }
  return Status::OK();
}

// --------------------------------------------------------- FOR bitpack ----

uint8_t BitsNeeded(uint64_t range) {
  uint8_t bits = 0;
  while (range > 0) {
    ++bits;
    range >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

Status EncodeForBitPack(const ColumnVector& col, ByteWriter* w) {
  if (!IsIntLike(col.type())) {
    return Status::InvalidArgument("FOR bitpack supports integer-like columns");
  }
  const size_t n = col.size();
  int64_t min_v = 0, max_v = 0;
  if (n > 0) {
    min_v = max_v = IntAt(col, 0);
    for (size_t i = 1; i < n; ++i) {
      const int64_t v = IntAt(col, i);
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
  }
  const uint64_t range = static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
  const uint8_t bits = BitsNeeded(range);
  // The packer keeps at most 7 residual bits in `acc` before adding the next
  // value, so widths above 56 bits would overflow the 64-bit accumulator.
  if (bits > 56) {
    return Status::InvalidArgument(
        "FOR bitpack: value range too wide, use PLAIN");
  }
  w->PutI64(min_v);
  w->PutU8(bits);
  // Pack `bits` bits per value into a little-endian bit stream.
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(IntAt(col, i)) - static_cast<uint64_t>(min_v);
    acc |= (bits < 64 ? (delta & ((1ULL << bits) - 1)) : delta) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      w->PutU8(static_cast<uint8_t>(acc & 0xff));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) w->PutU8(static_cast<uint8_t>(acc & 0xff));
  return Status::OK();
}

Status DecodeForBitPack(ByteReader* r, size_t n, ColumnVector* col) {
  int64_t min_v = 0;
  uint8_t bits = 0;
  DFLOW_RETURN_NOT_OK(r->GetI64(&min_v));
  DFLOW_RETURN_NOT_OK(r->GetU8(&bits));
  if (bits == 0 || bits > 56) {
    return Status::OutOfRange("FOR: corrupt bit width");
  }
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  const uint64_t mask = bits < 64 ? (1ULL << bits) - 1 : ~0ULL;
  for (size_t i = 0; i < n; ++i) {
    while (acc_bits < bits) {
      uint8_t byte = 0;
      DFLOW_RETURN_NOT_OK(r->GetU8(&byte));
      acc |= static_cast<uint64_t>(byte) << acc_bits;
      acc_bits += 8;
    }
    const uint64_t delta = acc & mask;
    acc >>= bits;
    acc_bits -= bits;
    IntAppend(col, static_cast<int64_t>(static_cast<uint64_t>(min_v) + delta));
  }
  return Status::OK();
}

}  // namespace

Result<EncodedColumn> EncodeColumn(const ColumnVector& col, Encoding encoding) {
  EncodedColumn out;
  out.type = col.type();
  out.encoding = encoding;
  out.num_rows = static_cast<uint32_t>(col.size());
  ByteWriter w(&out.data);
  WriteValidity(col, &w);
  switch (encoding) {
    case Encoding::kPlain:
      DFLOW_RETURN_NOT_OK(EncodePlain(col, &w));
      break;
    case Encoding::kRle:
      DFLOW_RETURN_NOT_OK(EncodeRle(col, &w));
      break;
    case Encoding::kDictionary:
      DFLOW_RETURN_NOT_OK(EncodeDictionary(col, &w));
      break;
    case Encoding::kForBitPack: {
      DFLOW_RETURN_NOT_OK(EncodeForBitPack(col, &w));
      break;
    }
  }
  return out;
}

Result<ColumnVector> DecodeColumn(const EncodedColumn& encoded) {
  ColumnVector col(encoded.type);
  const size_t n = encoded.num_rows;
  col.Reserve(n);
  ByteReader r(encoded.data);
  // Validity header is at the front but applied after data materializes.
  uint8_t has_nulls = 0;
  DFLOW_RETURN_NOT_OK(r.GetU8(&has_nulls));
  std::vector<uint8_t> validity;
  if (has_nulls) {
    validity.resize(n);
    DFLOW_RETURN_NOT_OK(r.GetBytes(validity.data(), n));
  }
  switch (encoded.encoding) {
    case Encoding::kPlain:
      DFLOW_RETURN_NOT_OK(DecodePlain(&r, n, &col));
      break;
    case Encoding::kRle:
      DFLOW_RETURN_NOT_OK(DecodeRle(&r, n, &col));
      break;
    case Encoding::kDictionary:
      DFLOW_RETURN_NOT_OK(DecodeDictionary(&r, n, &col));
      break;
    case Encoding::kForBitPack:
      DFLOW_RETURN_NOT_OK(DecodeForBitPack(&r, n, &col));
      break;
  }
  if (col.size() != n) {
    return Status::Internal("decode produced wrong row count");
  }
  for (size_t i = 0; i < validity.size(); ++i) {
    if (!validity[i]) col.SetNull(i);
  }
  return col;
}

Encoding ChooseEncoding(const ColumnVector& col) {
  const size_t n = col.size();
  if (n == 0) return Encoding::kPlain;
  switch (col.type()) {
    case DataType::kDouble:
      return Encoding::kPlain;
    case DataType::kString: {
      // Dictionary pays off when the distinct count is small.
      std::unordered_map<std::string_view, int> distinct;
      for (const std::string& s : col.strs()) {
        distinct.emplace(s, 0);
        if (distinct.size() > n / 4 + 1) return Encoding::kPlain;
      }
      return Encoding::kDictionary;
    }
    case DataType::kBool:
      return Encoding::kRle;
    case DataType::kInt32:
    case DataType::kInt64:
    case DataType::kDate32: {
      // Count runs and value range in one pass.
      size_t runs = 1;
      int64_t min_v = IntAt(col, 0), max_v = min_v;
      for (size_t i = 1; i < n; ++i) {
        const int64_t v = IntAt(col, i);
        if (v != IntAt(col, i - 1)) ++runs;
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
      }
      if (runs <= n / 4) return Encoding::kRle;
      const uint64_t range =
          static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
      const uint8_t bits = BitsNeeded(range);
      const uint32_t plain_bits = FixedWidthBytes(col.type()) * 8;
      if (bits <= plain_bits / 2) return Encoding::kForBitPack;
      return Encoding::kPlain;
    }
  }
  return Encoding::kPlain;
}

}  // namespace dflow
