#ifndef DFLOW_ENCODE_ENCODING_H_
#define DFLOW_ENCODE_ENCODING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/vector/column_vector.h"

namespace dflow {

/// Columnar encodings used by storage pages and by the "keep memory
/// compressed, decompress on demand" near-memory experiments (§5.4).
///
///  kPlain       raw values (strings length-prefixed)
///  kRle         (run length, value) pairs — wins on sorted / low-churn data
///  kDictionary  distinct values + per-row codes — wins on low-cardinality
///               strings (TPC-H flags, statuses)
///  kForBitPack  frame-of-reference + bit packing for integers — wins on
///               value ranges much narrower than the physical type
enum class Encoding : uint8_t {
  kPlain = 0,
  kRle = 1,
  kDictionary = 2,
  kForBitPack = 3,
};

std::string_view EncodingToString(Encoding encoding);

/// A serialized column: the unit stored in row-group pages and shipped over
/// links when data moves compressed.
struct EncodedColumn {
  DataType type = DataType::kInt64;
  Encoding encoding = Encoding::kPlain;
  uint32_t num_rows = 0;
  std::vector<uint8_t> data;

  uint64_t ByteSize() const { return data.size() + 16; }  // payload + header
};

/// Encodes `col` with the requested encoding. Returns InvalidArgument when
/// the encoding does not support the column type (e.g. RLE on doubles).
Result<EncodedColumn> EncodeColumn(const ColumnVector& col, Encoding encoding);

/// Decodes back to a full column. Exact roundtrip for all encodings.
Result<ColumnVector> DecodeColumn(const EncodedColumn& encoded);

/// Picks the cheapest supported encoding for the column by trial encoding
/// (small columns) or heuristics: run-heavy ints -> RLE, narrow ints -> FOR,
/// low-cardinality strings -> dictionary, else plain.
Encoding ChooseEncoding(const ColumnVector& col);

}  // namespace dflow

#endif  // DFLOW_ENCODE_ENCODING_H_
