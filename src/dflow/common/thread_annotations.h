#ifndef DFLOW_COMMON_THREAD_ANNOTATIONS_H_
#define DFLOW_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (the -Wthread-safety family),
/// compiling to nothing on every other compiler. The vocabulary follows the
/// Clang documentation's canonical mutex.h so the analysis, the lock-order
/// lint (tools/lint_lock_order.py), and human readers all speak the same
/// dialect:
///
///   DFLOW_GUARDED_BY(mu)     data member readable/writable only with `mu`
///                            held
///   DFLOW_PT_GUARDED_BY(mu)  pointer member whose *pointee* needs `mu`
///   DFLOW_REQUIRES(mu)       function must be called with `mu` held
///   DFLOW_ACQUIRE(mu...)     function acquires `mu` and does not release it
///   DFLOW_RELEASE(mu...)     function releases `mu`
///   DFLOW_TRY_ACQUIRE(b, mu) function acquires `mu` iff it returns `b`
///   DFLOW_EXCLUDES(mu)       function must NOT be called with `mu` held
///                            (non-reentrancy / deadlock documentation)
///   DFLOW_CAPABILITY(name)   class is a lockable capability (a mutex type)
///   DFLOW_SCOPED_CAPABILITY  class is an RAII lock guard
///   DFLOW_ACQUIRED_AFTER / _BEFORE  static lock-order declarations
///   DFLOW_NO_THREAD_SAFETY_ANALYSIS escape hatch; every use needs a comment
///
/// CI builds src/ with clang and -Wthread-safety -Werror (the
/// DFLOW_THREAD_SAFETY CMake option), so a guarded member touched without
/// its mutex is a build break, not a TSan coin-flip.

#if defined(__clang__) && !defined(SWIG)
#define DFLOW_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DFLOW_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#define DFLOW_CAPABILITY(x) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define DFLOW_SCOPED_CAPABILITY \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define DFLOW_GUARDED_BY(x) DFLOW_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define DFLOW_PT_GUARDED_BY(x) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define DFLOW_ACQUIRED_BEFORE(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define DFLOW_ACQUIRED_AFTER(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define DFLOW_REQUIRES(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define DFLOW_ACQUIRE(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define DFLOW_RELEASE(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define DFLOW_TRY_ACQUIRE(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define DFLOW_EXCLUDES(...) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define DFLOW_ASSERT_CAPABILITY(x) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define DFLOW_RETURN_CAPABILITY(x) \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define DFLOW_NO_THREAD_SAFETY_ANALYSIS \
  DFLOW_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // DFLOW_COMMON_THREAD_ANNOTATIONS_H_
