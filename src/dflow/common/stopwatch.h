#ifndef DFLOW_COMMON_STOPWATCH_H_
#define DFLOW_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dflow {

/// Wall-clock stopwatch for host-side measurements (benchmark harness only;
/// the engine's own timings come from the simulated clock in sim/).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dflow

#endif  // DFLOW_COMMON_STOPWATCH_H_
