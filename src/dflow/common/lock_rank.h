#ifndef DFLOW_COMMON_LOCK_RANK_H_
#define DFLOW_COMMON_LOCK_RANK_H_

#include <condition_variable>
#include <mutex>

#include "dflow/common/thread_annotations.h"

namespace dflow {

/// Central lock-order registry (DESIGN.md §9). Every RankedMutex in the
/// tree is constructed with one of these levels, and a thread may only
/// acquire a mutex whose rank is STRICTLY GREATER than the highest rank it
/// already holds. The total order makes lock-order cycles impossible by
/// construction; the debug checker below turns any violation into an
/// immediate abort, and tools/lint_lock_order.py proves statically that no
/// source file nests acquisitions against this order.
///
/// The numbering leaves gaps so new levels slot in without renumbering.
/// Outer, coarse service-layer locks rank low; leaf locks that are never
/// held across a call rank high. The lint parses this enum — keep one
/// enumerator per line in `kName = value,` form.
enum class LockRank : int {
  /// ServiceLoop completion bookkeeping (outcomes, finished-query maps).
  kServeCompletion = 10,
  /// AdmissionController tenant queues and in-flight counters.
  kAdmission = 20,
  /// The scheduler's committed-demand ledger (sched::DemandLedger).
  kDemandLedger = 30,
  /// Per-device circuit breakers (lifecycle::BreakerRegistry).
  kBreakerRegistry = 40,
  /// The brownout ladder state machine (lifecycle::BrownoutController).
  kBrownout = 50,
  /// WorkStealingScheduler deques, counters, and error slot.
  kStealDeque = 60,
  /// Per-partition hash-table locks in the parallel join build/probe.
  kJoinPartition = 70,
  /// MpmcQueue item buffer and close flag (credit-gated edge analogue).
  kMpmcQueue = 80,
  /// First-error capture slots; leaf rank, never held across a call.
  kErrorSlot = 90,
};

const char* LockRankName(LockRank rank);

namespace lock_rank_detail {
#ifndef DFLOW_INVARIANTS_DISABLED
/// Records `rank` on the calling thread's held-lock stack; aborts with a
/// diagnostic when a lock of rank >= `rank` is already held (out-of-order
/// acquisition). PopRank removes the most recent occurrence.
void PushRank(LockRank rank);
void PopRank(LockRank rank);
#endif
}  // namespace lock_rank_detail

/// std::mutex plus (a) thread-safety-analysis capability annotations and
/// (b) a debug-only runtime lock-order checker. With invariants compiled
/// out (-DDFLOW_DISABLE_INVARIANTS) the rank bookkeeping disappears and
/// lock/unlock forward straight to std::mutex; the annotations are
/// attributes and always cost nothing at runtime.
///
/// Satisfies BasicLockable, so RankedCondVar (condition_variable_any) can
/// wait on it directly — the unlock/relock inside a wait goes through the
/// ranked methods and keeps the checker's stack exact.
class DFLOW_CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(LockRank rank) : rank_(rank) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  LockRank rank() const { return rank_; }

  void lock() DFLOW_ACQUIRE() {
#ifndef DFLOW_INVARIANTS_DISABLED
    lock_rank_detail::PushRank(rank_);
#endif
    mu_.lock();
  }

  void unlock() DFLOW_RELEASE() {
    mu_.unlock();
#ifndef DFLOW_INVARIANTS_DISABLED
    lock_rank_detail::PopRank(rank_);
#endif
  }

  bool try_lock() DFLOW_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifndef DFLOW_INVARIANTS_DISABLED
    lock_rank_detail::PushRank(rank_);
#endif
    return true;
  }

 private:
  std::mutex mu_;
  const LockRank rank_;
};

/// RAII guard for RankedMutex — the annotated std::lock_guard. Scoped so
/// the analysis knows the capability is held for the guard's lifetime.
class DFLOW_SCOPED_CAPABILITY RankedMutexLock {
 public:
  explicit RankedMutexLock(RankedMutex* mu) DFLOW_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~RankedMutexLock() DFLOW_RELEASE() { mu_->unlock(); }
  RankedMutexLock(const RankedMutexLock&) = delete;
  RankedMutexLock& operator=(const RankedMutexLock&) = delete;

 private:
  RankedMutex* mu_;
};

/// Condition variable bound to RankedMutex. Wait() takes the mutex the
/// caller must hold (enforced by the analysis); use an explicit
/// `while (!condition) cv.Wait(&mu);` loop at the call site — predicate
/// lambdas are opaque to -Wthread-safety, explicit loops are not.
class RankedCondVar {
 public:
  void Wait(RankedMutex* mu) DFLOW_REQUIRES(mu) { cv_.wait(*mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dflow

#endif  // DFLOW_COMMON_LOCK_RANK_H_
