#include "dflow/common/random.h"

#include <cmath>

#include "dflow/common/logging.h"

namespace dflow {

Random::Random(uint64_t seed) {
  // SplitMix64 seeding to spread low-entropy seeds across both words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::NextUint64(uint64_t n) {
  DFLOW_CHECK_GT(n, 0u);
  return Next() % n;
}

int64_t Random::NextInt64(int64_t lo, int64_t hi) {
  DFLOW_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Random::NextDouble(double lo, double hi) {
  return lo + NextDouble() * (hi - lo);
}

bool Random::NextBool(double p) { return NextDouble() < p; }

std::string Random::NextString(size_t length) {
  std::string out(length, 'a');
  for (size_t i = 0; i < length; ++i) {
    out[i] = static_cast<char>('a' + NextUint64(26));
  }
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  DFLOW_CHECK_GT(n, 0u);
  DFLOW_CHECK_GE(theta, 0.0);
  DFLOW_CHECK_LT(theta, 1.0);
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace dflow
