#ifndef DFLOW_COMMON_STATUS_H_
#define DFLOW_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dflow {

/// Error categories used across the library. Modeled on the Arrow/RocksDB
/// convention: library code never throws; every fallible function returns a
/// Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kResourceExhausted,
  kIOError,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation);
/// carries a message in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace dflow

/// Propagates an error Status from the current function. `expr` must evaluate
/// to a Status.
#define DFLOW_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::dflow::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // DFLOW_COMMON_STATUS_H_
