#ifndef DFLOW_COMMON_LOGGING_H_
#define DFLOW_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dflow {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for emitted log lines. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by DFLOW_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dflow

#define DFLOW_LOG(level)                                                  \
  ::dflow::internal::LogMessage(::dflow::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check, active in all build modes. Prefer over assert() for
/// conditions that guard data integrity.
#define DFLOW_CHECK(condition)                                            \
  if (!(condition))                                                       \
  ::dflow::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define DFLOW_CHECK_EQ(a, b) DFLOW_CHECK((a) == (b))
#define DFLOW_CHECK_NE(a, b) DFLOW_CHECK((a) != (b))
#define DFLOW_CHECK_LT(a, b) DFLOW_CHECK((a) < (b))
#define DFLOW_CHECK_LE(a, b) DFLOW_CHECK((a) <= (b))
#define DFLOW_CHECK_GT(a, b) DFLOW_CHECK((a) > (b))
#define DFLOW_CHECK_GE(a, b) DFLOW_CHECK((a) >= (b))

#endif  // DFLOW_COMMON_LOGGING_H_
