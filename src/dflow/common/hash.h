#ifndef DFLOW_COMMON_HASH_H_
#define DFLOW_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dflow {

/// 64-bit finalizer-style hash for integer keys (MurmurHash3 fmix64). Fast,
/// well-distributed, and identical everywhere it is computed — which is the
/// point: the same hash function runs on the CPU, on smart NICs, and on
/// storage processors, so partitions computed in-flight agree with hash
/// tables built on the host.
inline uint64_t HashInt64(uint64_t key) {
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Combines an existing hash with another value (for multi-column keys).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (HashInt64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// FNV-1a over arbitrary bytes; used for string keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return HashInt64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashInt64(bits);
}

}  // namespace dflow

#endif  // DFLOW_COMMON_HASH_H_
