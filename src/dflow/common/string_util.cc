#include "dflow/common/string_util.h"

#include <cstdio>

namespace dflow {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatNanos(uint64_t nanos) {
  char buf[64];
  if (nanos >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f s",
                  static_cast<double>(nanos) / 1e9);
  } else if (nanos >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(nanos) / 1e6);
  } else if (nanos >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f us",
                  static_cast<double>(nanos) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(nanos));
  }
  return buf;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace dflow
