#ifndef DFLOW_COMMON_STRING_UTIL_H_
#define DFLOW_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dflow {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// "1.50 GB", "12.00 MB", "512 B" — for human-readable reports.
std::string FormatBytes(uint64_t bytes);

/// "1.234 ms", "56.7 us" — for human-readable simulated durations.
std::string FormatNanos(uint64_t nanos);

/// SQL LIKE matching with '%' (any run) and '_' (any single char).
/// This is the predicate class the paper calls out as the AQUA pushdown
/// example (§3.3): pattern matching is cheap on a streaming accelerator.
bool LikeMatch(std::string_view value, std::string_view pattern);

}  // namespace dflow

#endif  // DFLOW_COMMON_STRING_UTIL_H_
