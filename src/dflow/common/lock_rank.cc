#include "dflow/common/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dflow {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServeCompletion:
      return "ServeCompletion";
    case LockRank::kAdmission:
      return "Admission";
    case LockRank::kDemandLedger:
      return "DemandLedger";
    case LockRank::kBreakerRegistry:
      return "BreakerRegistry";
    case LockRank::kBrownout:
      return "Brownout";
    case LockRank::kStealDeque:
      return "StealDeque";
    case LockRank::kJoinPartition:
      return "JoinPartition";
    case LockRank::kMpmcQueue:
      return "MpmcQueue";
    case LockRank::kErrorSlot:
      return "ErrorSlot";
  }
  return "Unknown";
}

#ifndef DFLOW_INVARIANTS_DISABLED
namespace lock_rank_detail {
namespace {
/// Ranks the calling thread currently holds, in acquisition order. A plain
/// vector: depth is 0–2 in practice, and the checker only runs in
/// invariant-enabled builds.
thread_local std::vector<LockRank> held_ranks;
}  // namespace

void PushRank(LockRank rank) {
  if (!held_ranks.empty() && held_ranks.back() >= rank) {
    std::fprintf(
        stderr,
        "lock-order violation: acquiring %s (rank %d) while holding %s "
        "(rank %d); acquisition must follow strictly increasing LockRank "
        "order (see common/lock_rank.h and DESIGN.md section 9)\n",
        LockRankName(rank), static_cast<int>(rank),
        LockRankName(held_ranks.back()),
        static_cast<int>(held_ranks.back()));
    std::abort();
  }
  held_ranks.push_back(rank);
}

void PopRank(LockRank rank) {
  for (auto it = held_ranks.rbegin(); it != held_ranks.rend(); ++it) {
    if (*it == rank) {
      held_ranks.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "lock-order bookkeeping bug: releasing %s (rank %d) which "
               "this thread does not hold\n",
               LockRankName(rank), static_cast<int>(rank));
  std::abort();
}

}  // namespace lock_rank_detail
#endif  // DFLOW_INVARIANTS_DISABLED

}  // namespace dflow
