#ifndef DFLOW_COMMON_RANDOM_H_
#define DFLOW_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dflow {

/// Deterministic, fast PRNG (xorshift128+). All workload generators take a
/// seed so that every test and benchmark is exactly reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p.
  bool NextBool(double p = 0.5);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed generator over {0, 1, ..., n-1} with skew parameter
/// `theta` in [0, 1). theta = 0 degenerates to uniform; theta ~ 0.99 is the
/// classic YCSB hot-key skew. Uses the standard rejection-free inverse-CDF
/// approximation (Gray et al., "Quickly Generating Billion-Record Synthetic
/// Databases").
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next Zipf-distributed value in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace dflow

#endif  // DFLOW_COMMON_RANDOM_H_
