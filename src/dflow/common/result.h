#ifndef DFLOW_COMMON_RESULT_H_
#define DFLOW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "dflow/common/status.h"

namespace dflow {

/// Either a value of type T or an error Status. The usual Arrow-style vehicle
/// for fallible factory functions:
///
///   Result<Table> t = Table::FromChunks(...);
///   if (!t.ok()) return t.status();
///   Use(t.ValueOrDie());
///
/// Accessing the value of an errored Result aborts in debug builds (assert).
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: allows `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the Result. Only valid when ok().
  T MoveValueUnsafe() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace dflow

/// Evaluates `rexpr` (a Result<T>), propagating its error or assigning its
/// value to `lhs`. `lhs` may include a declaration, e.g.
/// DFLOW_ASSIGN_OR_RETURN(auto table, MakeTable());
#define DFLOW_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()

#define DFLOW_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DFLOW_ASSIGN_OR_RETURN_NAME(x, y) DFLOW_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DFLOW_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  DFLOW_ASSIGN_OR_RETURN_IMPL(                                             \
      DFLOW_ASSIGN_OR_RETURN_NAME(_dflow_result_, __COUNTER__), lhs, rexpr)

#endif  // DFLOW_COMMON_RESULT_H_
