#include "dflow/verify/verifier.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "dflow/sim/cost_class.h"

namespace dflow::verify {
namespace {

bool IsCpuDevice(const std::string& name) {
  return name.rfind("cpu", 0) == 0;
}

std::string NodeRef(const NodeSpec& n) {
  return std::string(NodeKindToString(n.kind)) + " '" + n.name + "'";
}

/// Per-node adjacency computed once; out-of-range edges are dropped here
/// (after being reported) so later passes never index out of bounds.
struct Adjacency {
  std::vector<std::vector<size_t>> out;  // node -> edge indices
  std::vector<std::vector<size_t>> in;
};

// ---------------------------------------------------------------------------
// Family 1: graph structure.
// ---------------------------------------------------------------------------

Adjacency CheckStructure(const GraphSpec& spec, VerifyReport* report) {
  Adjacency adj;
  adj.out.resize(spec.nodes.size());
  adj.in.resize(spec.nodes.size());

  if (spec.nodes.empty()) {
    report->Add(Severity::kError, "VY_GRAPH_EMPTY", "", "",
                "graph has no nodes");
    return adj;
  }

  bool has_source = false;
  bool has_sink = false;
  for (const NodeSpec& n : spec.nodes) {
    has_source |= n.kind == NodeKind::kSource;
    has_sink |= n.kind == NodeKind::kSink;
  }
  if (!has_source) {
    report->Add(Severity::kError, "VY_GRAPH_NO_SOURCE", "", "",
                "graph has no source node; nothing will ever flow");
  }

  for (size_t e = 0; e < spec.edges.size(); ++e) {
    const EdgeSpec& edge = spec.edges[e];
    if (edge.from >= spec.nodes.size() || edge.to >= spec.nodes.size()) {
      report->Add(Severity::kError, "VY_GRAPH_DANGLING", "", edge.label,
                  "edge references node id " +
                      std::to_string(std::max(edge.from, edge.to)) +
                      " but the graph has only " +
                      std::to_string(spec.nodes.size()) + " nodes");
      continue;
    }
    const NodeSpec& to = spec.nodes[edge.to];
    const NodeSpec& from = spec.nodes[edge.from];
    if (to.kind == NodeKind::kSource) {
      report->Add(Severity::kError, "VY_GRAPH_DANGLING", to.name, edge.label,
                  "edge feeds into " + NodeRef(to) +
                      "; sources accept no inputs");
      continue;
    }
    if (from.kind == NodeKind::kSink) {
      report->Add(Severity::kError, "VY_GRAPH_DANGLING", from.name, edge.label,
                  "edge leaves " + NodeRef(from) + "; sinks emit no output");
      continue;
    }
    adj.out[edge.from].push_back(e);
    adj.in[edge.to].push_back(e);
  }

  // Fan-out discipline: sources and stages push to at most one consumer;
  // a partition node must have exactly its partitioner's fan-out.
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const NodeSpec& n = spec.nodes[i];
    const size_t outs = adj.out[i].size();
    if ((n.kind == NodeKind::kSource || n.kind == NodeKind::kStage) &&
        outs > 1) {
      report->Add(Severity::kError, "VY_GRAPH_FANOUT", n.name, "",
                  NodeRef(n) + " has " + std::to_string(outs) +
                      " outgoing edges; sources and stages push to exactly "
                      "one consumer (use a broadcast or partition node)");
    }
    if (n.kind == NodeKind::kPartition && n.partition_fanout > 0 &&
        outs != n.partition_fanout) {
      report->Add(Severity::kError, "VY_GRAPH_FANOUT", n.name, "",
                  NodeRef(n) + " was built for fan-out " +
                      std::to_string(n.partition_fanout) + " but has " +
                      std::to_string(outs) + " outgoing edges");
    }
  }

  // Reachability from the sources (feedback edges count: data does flow on
  // them once the loop is primed).
  std::vector<bool> reachable(spec.nodes.size(), false);
  std::deque<size_t> frontier;
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    if (spec.nodes[i].kind == NodeKind::kSource) {
      reachable[i] = true;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const size_t i = frontier.front();
    frontier.pop_front();
    for (size_t e : adj.out[i]) {
      const size_t to = spec.edges[e].to;
      if (!reachable[to]) {
        reachable[to] = true;
        frontier.push_back(to);
      }
    }
  }
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const NodeSpec& n = spec.nodes[i];
    if (n.kind != NodeKind::kSource && !reachable[i]) {
      report->Add(Severity::kError, "VY_GRAPH_UNREACHABLE", n.name, "",
                  NodeRef(n) +
                      " is not reachable from any source; it would never "
                      "receive data or end-of-stream");
    }
  }

  // Results silently dropped: a terminal non-sink node whose output schema
  // is non-empty loses rows. Build-phase stages that install state and emit
  // nothing (empty output schema) are legitimate terminals.
  bool dropped = false;
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const NodeSpec& n = spec.nodes[i];
    if (n.kind == NodeKind::kSink || !adj.out[i].empty()) continue;
    if (n.has_output_schema && n.output_schema.num_fields() == 0) continue;
    dropped = true;
    if (has_sink) {
      report->Add(Severity::kWarning, "VY_GRAPH_DEAD_END", n.name, "",
                  NodeRef(n) +
                      " has no consumer; rows it emits are silently dropped");
    }
  }
  if (!has_sink && dropped) {
    report->Add(Severity::kWarning, "VY_GRAPH_NO_SINK", "", "",
                "graph has no sink; terminal stages emit rows nobody "
                "collects");
  }

  // Cycles over non-feedback edges: DFS with an explicit path stack so the
  // diagnostic can name the loop.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(spec.nodes.size(), Color::kWhite);
  std::vector<size_t> path;
  bool cycle_reported = false;

  // NOLINTNEXTLINE(misc-no-recursion): graphs are small and tests bound depth.
  auto dfs = [&](auto&& self, size_t i) -> void {
    color[i] = Color::kGray;
    path.push_back(i);
    for (size_t e : adj.out[i]) {
      if (spec.edges[e].feedback) continue;
      const size_t to = spec.edges[e].to;
      if (color[to] == Color::kGray && !cycle_reported) {
        cycle_reported = true;
        std::string names;
        const auto start = std::find(path.begin(), path.end(), to);
        for (auto it = start; it != path.end(); ++it) {
          names += spec.nodes[*it].name + " -> ";
        }
        names += spec.nodes[to].name;
        report->Add(Severity::kError, "VY_GRAPH_CYCLE", spec.nodes[to].name,
                    spec.edges[e].label,
                    "cycle not declared as feedback: " + names +
                        " (declare the closing edge with feedback=true if "
                        "intentional)");
      } else if (color[to] == Color::kWhite) {
        self(self, to);
      }
    }
    path.pop_back();
    color[i] = Color::kBlack;
  };
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    if (color[i] == Color::kWhite) dfs(dfs, i);
  }

  return adj;
}

// ---------------------------------------------------------------------------
// Family 2: schema flow.
// ---------------------------------------------------------------------------

std::string DescribeSchemaDiff(const Schema& produced, const Schema& expected) {
  if (produced.num_fields() != expected.num_fields()) {
    return "producer emits " + std::to_string(produced.num_fields()) +
           " columns, consumer expects " +
           std::to_string(expected.num_fields()) + " (producer: " +
           produced.ToString() + "; consumer: " + expected.ToString() + ")";
  }
  for (size_t c = 0; c < produced.num_fields(); ++c) {
    const Field& got = produced.field(c);
    const Field& want = expected.field(c);
    if (!(got == want)) {
      return "column " + std::to_string(c) + ": producer emits '" + got.name +
             "' (" + std::string(DataTypeToString(got.type)) +
             "), consumer expects '" + want.name + "' (" +
             std::string(DataTypeToString(want.type)) + ")";
    }
  }
  return "schemas differ";
}

void CheckSchemas(const GraphSpec& spec, const Adjacency& adj,
                  VerifyReport* report) {
  // Resolve the schema each node emits. Partition and broadcast nodes are
  // pass-through: their output is whatever their (single) producer emits.
  enum class State { kUnvisited, kResolving, kDone };
  std::vector<State> state(spec.nodes.size(), State::kUnvisited);
  std::vector<std::optional<Schema>> produced(spec.nodes.size());

  // NOLINTNEXTLINE(misc-no-recursion): bounded by graph depth.
  auto resolve = [&](auto&& self, size_t i) -> const std::optional<Schema>& {
    if (state[i] == State::kResolving) {
      // Cycle: already reported by the structure family; schema unknown.
      return produced[i];
    }
    if (state[i] == State::kDone) return produced[i];
    state[i] = State::kResolving;
    const NodeSpec& n = spec.nodes[i];
    if (n.has_output_schema) {
      produced[i] = n.output_schema;
    } else if (n.kind == NodeKind::kPartition ||
               n.kind == NodeKind::kBroadcast) {
      if (!adj.in[i].empty()) {
        produced[i] = self(self, spec.edges[adj.in[i][0]].from);
      }
    }
    state[i] = State::kDone;
    return produced[i];
  };

  for (size_t e = 0; e < spec.edges.size(); ++e) {
    const EdgeSpec& edge = spec.edges[e];
    if (edge.from >= spec.nodes.size() || edge.to >= spec.nodes.size()) {
      continue;  // reported as VY_GRAPH_DANGLING
    }
    const NodeSpec& consumer = spec.nodes[edge.to];
    if (!consumer.has_input_schema) continue;  // accepts any input
    const std::optional<Schema>& got = resolve(resolve, edge.from);
    if (!got.has_value()) continue;  // producer schema unknown; nothing to say
    if (*got == consumer.input_schema) continue;
    report->Add(Severity::kError, "VY_SCHEMA_MISMATCH", consumer.name,
                edge.label,
                "schema break on edge " + edge.label + ": " +
                    DescribeSchemaDiff(*got, consumer.input_schema));
  }
}

// ---------------------------------------------------------------------------
// Family 3: credit / flow-control safety.
// ---------------------------------------------------------------------------

void CheckCredits(const GraphSpec& spec, const Adjacency& adj,
                  VerifyReport* report) {
  for (const EdgeSpec& edge : spec.edges) {
    if (edge.credits == 0) {
      report->Add(Severity::kError, "VY_CREDIT_ZERO", "", edge.label,
                  "edge has a zero-credit window; the producer could never "
                  "send and the graph deadlocks on the first chunk");
    } else if (edge.credits == 1 && edge.hops > 0 &&
               edge.credits != kUnboundedCredits) {
      report->Add(Severity::kWarning, "VY_CREDIT_WINDOW", "", edge.label,
                  "credit window of 1 on a " + std::to_string(edge.hops) +
                      "-hop fabric path serializes every chunk behind its "
                      "ack; pipelining is disabled on this edge");
    }
  }

  // Credit deadlock: a cycle in which every edge has a finite window can
  // wedge — each hop waits for credits only released downstream in the same
  // loop. Non-feedback cycles are already structural errors; this check
  // exists for declared feedback loops.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(spec.nodes.size(), Color::kWhite);
  std::vector<size_t> path;
  bool reported = false;

  // NOLINTNEXTLINE(misc-no-recursion): bounded by graph depth.
  auto dfs = [&](auto&& self, size_t i) -> void {
    color[i] = Color::kGray;
    path.push_back(i);
    for (size_t e : adj.out[i]) {
      const EdgeSpec& edge = spec.edges[e];
      if (edge.credits == kUnboundedCredits) continue;  // cannot back-pressure
      const size_t to = edge.to;
      if (color[to] == Color::kGray && !reported) {
        // Only report loops that include a declared feedback edge; plain
        // cycles were already rejected structurally.
        const auto start = std::find(path.begin(), path.end(), to);
        bool has_feedback = edge.feedback;
        for (auto it = start; !has_feedback && it + 1 != path.end(); ++it) {
          for (size_t oe : adj.out[*it]) {
            if (spec.edges[oe].to == *(it + 1) && spec.edges[oe].feedback) {
              has_feedback = true;
              break;
            }
          }
        }
        if (has_feedback) {
          reported = true;
          std::string names;
          for (auto it = start; it != path.end(); ++it) {
            names += spec.nodes[*it].name + " -> ";
          }
          names += spec.nodes[to].name;
          report->Add(
              Severity::kError, "VY_CREDIT_CYCLE", spec.nodes[to].name,
              edge.label,
              "feedback loop " + names +
                  " has a finite credit window on every hop and can "
                  "deadlock; give at least one edge an unbounded window");
        }
      } else if (color[to] == Color::kWhite) {
        self(self, to);
      }
    }
    path.pop_back();
    color[i] = Color::kBlack;
  };
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    if (color[i] == Color::kWhite) dfs(dfs, i);
  }
}

// ---------------------------------------------------------------------------
// Family 4: placement legality.
// ---------------------------------------------------------------------------

sim::Device* FindDevice(sim::Fabric* fabric, const std::string& name) {
  for (sim::Device* d : fabric->AllDevices()) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

std::string CpuFallbackHint(sim::Fabric* fabric, const NodeSpec& n) {
  if (fabric == nullptr) return "";
  for (sim::Device* d : fabric->AllDevices()) {
    if (!IsCpuDevice(d->name())) continue;
    if (n.has_cost_class && !d->Supports(n.cost_class)) continue;
    return "; suggested rewrite: place '" + n.name + "' on '" + d->name() +
           "' (CPU fallback)";
  }
  return "";
}

void CheckPlacement(const GraphSpec& spec, const VerifyContext& ctx,
                    VerifyReport* report) {
  for (const NodeSpec& n : spec.nodes) {
    if (n.kind == NodeKind::kSink) continue;  // sinks only collect, anywhere
    if (n.device.empty()) {
      if (n.kind == NodeKind::kStage) {
        report->Add(Severity::kError, "VY_PLACE_NO_DEVICE", n.name, "",
                    NodeRef(n) + " has no device assignment");
      }
      continue;
    }

    sim::Device* device = nullptr;
    if (ctx.fabric != nullptr) {
      device = FindDevice(ctx.fabric, n.device);
      if (device == nullptr) {
        report->Add(Severity::kError, "VY_PLACE_UNKNOWN_DEVICE", n.name, "",
                    NodeRef(n) + " is placed on '" + n.device +
                        "', which this fabric does not provision" +
                        CpuFallbackHint(ctx.fabric, n));
        continue;
      }
    }

    const bool dead =
        ctx.unhealthy != nullptr && ctx.unhealthy->count(n.device) > 0;
    if (dead) {
      report->Add(Severity::kError, "VY_PLACE_DEAD_DEVICE", n.name, "",
                  NodeRef(n) + " is placed on '" + n.device +
                      "', which the health registry marks dead" +
                      CpuFallbackHint(ctx.fabric, n));
      continue;
    }

    if (device != nullptr && n.has_cost_class &&
        !device->Supports(n.cost_class)) {
      report->Add(Severity::kError, "VY_PLACE_UNSUPPORTED", n.name, "",
                  "device '" + n.device + "' has no functional unit for " +
                      std::string(sim::CostClassToString(n.cost_class)) +
                      CpuFallbackHint(ctx.fabric, n));
      continue;
    }

    if (ctx.check_streaming_policy && n.kind == NodeKind::kStage &&
        n.has_traits && !IsCpuDevice(n.device)) {
      Status policy = CheckPlacementPolicy(n.traits, n.name, ctx.accel_policy,
                                           n.device);
      if (!policy.ok()) {
        report->Add(Severity::kWarning, "VY_PLACE_POLICY", n.name, "",
                    std::string(policy.message()) +
                        CpuFallbackHint(ctx.fabric, n));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Family 5: deadlock reachability (VY_DEADLOCK_*).
//
// Family 3 flags credit *topology* smells (zero windows anywhere, all-finite
// feedback loops). This family proves the stronger, arithmetic conditions a
// run-time executor actually wedges on: a self-loop that waits on its own
// credits, a live edge whose derived queue would be born closed, and a
// feedback cycle whose total credit pool cannot hold the batch occupancy
// its sources inject. A graph can trip both families on one edge — the
// family 3 code names the smell, the VY_DEADLOCK_* code the proof.
// ---------------------------------------------------------------------------

void CheckDeadlocks(const GraphSpec& spec, const Adjacency& adj,
                    VerifyReport* report) {
  // Liveness: a producer reachable from a source (or a source itself) will
  // eventually push on its out-edges.
  std::vector<bool> live(spec.nodes.size(), false);
  std::deque<size_t> frontier;
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    if (spec.nodes[i].kind == NodeKind::kSource) {
      live[i] = true;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const size_t i = frontier.front();
    frontier.pop_front();
    for (size_t e : adj.out[i]) {
      const size_t to = spec.edges[e].to;
      if (!live[to]) {
        live[to] = true;
        frontier.push_back(to);
      }
    }
  }

  for (size_t e = 0; e < spec.edges.size(); ++e) {
    const EdgeSpec& edge = spec.edges[e];
    if (edge.from >= spec.nodes.size() || edge.to >= spec.nodes.size()) {
      continue;  // reported as VY_GRAPH_DANGLING
    }
    // A node feeding itself over a finite window waits on credits only it
    // can release: wedged on the first full window, whatever the credit
    // count.
    if (edge.from == edge.to && edge.credits != kUnboundedCredits) {
      report->Add(Severity::kError, "VY_DEADLOCK_SELF_WAIT",
                  spec.nodes[edge.from].name, edge.label,
                  NodeRef(spec.nodes[edge.from]) +
                      " feeds itself over a finite credit window (" +
                      std::to_string(edge.credits) +
                      "); it can only release its own credits after the "
                      "downstream half consumes, which is itself — wedged "
                      "once the window fills");
    }
    // Zero credits on a live edge: the parallel runner derives the
    // MpmcQueue capacity from `credits`, and a zero-capacity queue is born
    // closed — every chunk the live producer pushes is rejected.
    if (edge.credits == 0 && live[edge.from]) {
      report->Add(Severity::kError, "VY_DEADLOCK_ZERO_CAPACITY",
                  spec.nodes[edge.from].name, edge.label,
                  "live edge (producer is reachable from a source) has zero "
                  "credits; the derived parallel-executor MpmcQueue would "
                  "have capacity 0 and be born closed, rejecting the first "
                  "chunk");
    }
  }

  // Credit-starved cycles: every edge finite AND the cycle's total credit
  // pool is smaller than the batch occupancy its members inject. Occupancy
  // is the largest max_batch_chunks among cycle members and the sources
  // feeding them (unknown everywhere -> one in-flight chunk per cycle edge).
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(spec.nodes.size(), Color::kWhite);
  std::vector<size_t> path;
  std::vector<size_t> edge_path;  // edge used to reach path[k] from path[k-1]
  bool reported = false;

  // NOLINTNEXTLINE(misc-no-recursion): bounded by graph depth.
  auto dfs = [&](auto&& self, size_t i) -> void {
    color[i] = Color::kGray;
    path.push_back(i);
    for (size_t e : adj.out[i]) {
      const EdgeSpec& edge = spec.edges[e];
      if (edge.credits == kUnboundedCredits) continue;
      const size_t to = edge.to;
      if (to == i) continue;  // self-wait, reported above
      if (color[to] == Color::kGray && !reported) {
        const auto start = std::find(path.begin(), path.end(), to);
        const size_t start_idx =
            static_cast<size_t>(start - path.begin());
        std::vector<size_t> cycle_edges;
        for (size_t k = start_idx + 1; k < path.size(); ++k) {
          cycle_edges.push_back(edge_path[k]);
        }
        cycle_edges.push_back(e);

        uint64_t total_credits = 0;
        for (size_t ce : cycle_edges) total_credits += spec.edges[ce].credits;

        size_t occupancy = 0;
        for (auto it = start; it != path.end(); ++it) {
          occupancy = std::max(occupancy, spec.nodes[*it].max_batch_chunks);
          for (size_t ie : adj.in[*it]) {
            const NodeSpec& producer = spec.nodes[spec.edges[ie].from];
            if (producer.kind == NodeKind::kSource) {
              occupancy = std::max(occupancy, producer.max_batch_chunks);
            }
          }
        }
        if (occupancy == 0) occupancy = cycle_edges.size();

        if (total_credits < occupancy) {
          reported = true;
          std::string names;
          for (auto it = start; it != path.end(); ++it) {
            names += spec.nodes[*it].name + " -> ";
          }
          names += spec.nodes[to].name;
          report->Add(
              Severity::kError, "VY_DEADLOCK_CREDIT_STARVED",
              spec.nodes[to].name, edge.label,
              "cycle " + names + " holds " + std::to_string(total_credits) +
                  " total credits but must absorb a batch occupancy of " +
                  std::to_string(occupancy) +
                  "; once the pool is exhausted every member waits on a "
                  "credit only another member can release");
        }
      } else if (color[to] == Color::kWhite) {
        edge_path.push_back(e);
        self(self, to);
        edge_path.pop_back();
      }
    }
    path.pop_back();
    color[i] = Color::kBlack;
  };
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    if (color[i] == Color::kWhite) {
      edge_path.push_back(static_cast<size_t>(-1));
      dfs(dfs, i);
      edge_path.pop_back();
    }
  }
}

}  // namespace

VerifyReport VerifyGraph(const GraphSpec& spec, const VerifyContext& ctx) {
  VerifyReport report;
  const Adjacency adj = CheckStructure(spec, &report);
  if (spec.nodes.empty()) return report;  // nothing else to analyze
  CheckSchemas(spec, adj, &report);
  CheckCredits(spec, adj, &report);
  CheckPlacement(spec, ctx, &report);
  CheckDeadlocks(spec, adj, &report);
  return report;
}

}  // namespace dflow::verify
