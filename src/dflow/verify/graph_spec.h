#ifndef DFLOW_VERIFY_GRAPH_SPEC_H_
#define DFLOW_VERIFY_GRAPH_SPEC_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dflow/exec/operator.h"
#include "dflow/types/schema.h"

namespace dflow::verify {

/// Sentinel for edges with no credit-based flow control (unbounded window).
/// Stored in EdgeSpec::credits; the credit-cycle check treats such edges as
/// incapable of back-pressure deadlock.
inline constexpr uint32_t kUnboundedCredits =
    std::numeric_limits<uint32_t>::max();

enum class NodeKind { kSource, kStage, kPartition, kBroadcast, kSink };

std::string_view NodeKindToString(NodeKind k);

/// Value-type snapshot of one graph node: everything the static verifier
/// needs, nothing borrowed from the live graph. Schemas and traits are
/// copied so a GraphSpec stays valid after the DataflowGraph is destroyed —
/// and so tests can hand-build malformed specs the builder API would reject.
struct NodeSpec {
  size_t id = 0;
  NodeKind kind = NodeKind::kStage;
  std::string name;
  /// Placement target ("" = unplaced; an error for stages).
  std::string device;

  bool has_cost_class = false;
  sim::CostClass cost_class = sim::CostClass::kFilter;

  bool has_traits = false;
  OperatorTraits traits;

  /// Schema the node emits (sources: declared; stages: op->output_schema();
  /// partition/broadcast: pass-through, resolved by the verifier).
  bool has_output_schema = false;
  Schema output_schema;

  /// Schema the node requires on its input edge(s); absent = accepts any.
  bool has_input_schema = false;
  Schema input_schema;

  /// For kPartition: the fan-out the partitioner was built for.
  size_t partition_fanout = 0;

  /// Largest number of chunks a source emits back-to-back per batch; used by
  /// the credit-window heuristics. 0 = unknown.
  size_t max_batch_chunks = 0;
};

struct EdgeSpec {
  size_t from = 0;
  size_t to = 0;
  std::string label;  // "from_name->to_name"
  uint32_t credits = 0;
  /// Declared feedback edge: exempt from the structural cycle check but
  /// still part of the credit-deadlock analysis.
  bool feedback = false;
  /// Number of fabric links on the path (0 = device-local hand-off).
  size_t hops = 0;
};

/// Plain-data description of a dataflow graph, produced by
/// DataflowGraph::Describe() or hand-assembled by tests.
struct GraphSpec {
  std::vector<NodeSpec> nodes;
  std::vector<EdgeSpec> edges;
};

inline std::string_view NodeKindToString(NodeKind k) {
  switch (k) {
    case NodeKind::kSource:
      return "source";
    case NodeKind::kStage:
      return "stage";
    case NodeKind::kPartition:
      return "partition";
    case NodeKind::kBroadcast:
      return "broadcast";
    case NodeKind::kSink:
      return "sink";
  }
  return "stage";
}

}  // namespace dflow::verify

#endif  // DFLOW_VERIFY_GRAPH_SPEC_H_
