#include "dflow/verify/verify_report.h"

#include <algorithm>

namespace dflow::verify {

namespace {
VerifyMode g_default_mode = VerifyMode::kStrict;
}  // namespace

std::string_view SeverityToString(Severity s) {
  switch (s) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

std::string_view VerifyModeToString(VerifyMode m) {
  switch (m) {
    case VerifyMode::kOff:
      return "off";
    case VerifyMode::kWarn:
      return "warn";
    case VerifyMode::kStrict:
      return "strict";
  }
  return "strict";
}

Result<VerifyMode> ParseVerifyMode(std::string_view text) {
  if (text == "off") return VerifyMode::kOff;
  if (text == "warn") return VerifyMode::kWarn;
  if (text == "strict") return VerifyMode::kStrict;
  return Status::InvalidArgument("unknown verify mode '" + std::string(text) +
                                 "' (expected strict|warn|off)");
}

VerifyMode DefaultMode() { return g_default_mode; }

void SetDefaultMode(VerifyMode mode) { g_default_mode = mode; }

std::string VerifyIssue::ToString() const {
  std::string out = "[" + code + "] " + std::string(SeverityToString(severity));
  if (!stage.empty()) out += " stage=" + stage;
  if (!edge.empty()) out += " edge=" + edge;
  out += ": " + message;
  return out;
}

size_t VerifyReport::num_errors() const {
  return static_cast<size_t>(
      std::count_if(issues.begin(), issues.end(), [](const VerifyIssue& i) {
        return i.severity == Severity::kError;
      }));
}

size_t VerifyReport::num_warnings() const {
  return issues.size() - num_errors();
}

bool VerifyReport::HasCode(std::string_view code) const {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const VerifyIssue& i) { return i.code == code; });
}

void VerifyReport::Add(Severity severity, std::string code, std::string stage,
                       std::string edge, std::string message) {
  issues.push_back(VerifyIssue{severity, std::move(code), std::move(stage),
                               std::move(edge), std::move(message)});
}

std::string VerifyReport::ToString() const {
  if (issues.empty()) return "clean";
  std::string out = std::to_string(num_errors()) + " error(s), " +
                    std::to_string(num_warnings()) + " warning(s)";
  for (const VerifyIssue& issue : issues) {
    out += "\n  " + issue.ToString();
  }
  return out;
}

}  // namespace dflow::verify
