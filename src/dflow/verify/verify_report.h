#ifndef DFLOW_VERIFY_VERIFY_REPORT_H_
#define DFLOW_VERIFY_VERIFY_REPORT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "dflow/common/result.h"

namespace dflow::verify {

/// How a failed check affects execution.
///  - kError: the graph is broken — running it would produce wrong results,
///    deadlock, or fail at runtime. Strict mode refuses to execute.
///  - kWarning: the graph runs, but something is suspicious (results
///    silently dropped, pipelining disabled). Never blocks execution; the
///    bench regression gate still flags new warnings.
enum class Severity { kWarning, kError };

std::string_view SeverityToString(Severity s);

/// When the static verifier runs relative to execution.
///  - kStrict: verify before every run; refuse to execute on any error.
///  - kWarn:   verify, record the report, execute anyway.
///  - kOff:    skip verification entirely.
enum class VerifyMode { kOff, kWarn, kStrict };

/// Version of the static check catalogue. Bumped whenever a check is added,
/// removed, or its semantics change, so artifacts that embed a verifier
/// verdict (compiled DflowPrograms, cached plans) can tell a stale stamp
/// from a current one — the program cache keys on this.
inline constexpr int kVerifierVersion = 1;

std::string_view VerifyModeToString(VerifyMode m);

/// Parses "strict" / "warn" / "off" (as in --dflow_verify=).
Result<VerifyMode> ParseVerifyMode(std::string_view text);

/// Process-wide default for ExecOptions::verify. Strict unless a bench/tool
/// flag (--dflow_verify=) overrides it. Reading and setting are not
/// thread-safe; set it once during startup.
VerifyMode DefaultMode();
void SetDefaultMode(VerifyMode mode);

/// One finding of the static plan verifier. `code` is a stable identifier
/// (catalogued in DESIGN.md) that tests and CI gates match on; `stage` and
/// `edge` locate the finding in the graph ("" when not applicable).
struct VerifyIssue {
  Severity severity = Severity::kError;
  std::string code;     // e.g. "VY_SCHEMA_MISMATCH"
  std::string stage;    // offending node name, if any
  std::string edge;     // offending edge label ("from->to"), if any
  std::string message;  // human-readable diagnostic, with suggested rewrite

  std::string ToString() const;
};

/// Everything the verifier found for one graph, in deterministic order
/// (check family by check family, nodes/edges in graph order).
struct VerifyReport {
  std::vector<VerifyIssue> issues;

  size_t num_errors() const;
  size_t num_warnings() const;
  /// True when the graph may execute (warnings allowed, errors not).
  bool ok() const { return num_errors() == 0; }
  bool HasCode(std::string_view code) const;

  void Add(Severity severity, std::string code, std::string stage,
           std::string edge, std::string message);

  /// "2 errors, 1 warning: [VY_...] ...; [VY_...] ..." ("clean" when empty).
  std::string ToString() const;
};

}  // namespace dflow::verify

#endif  // DFLOW_VERIFY_VERIFY_REPORT_H_
