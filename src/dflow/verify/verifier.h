#ifndef DFLOW_VERIFY_VERIFIER_H_
#define DFLOW_VERIFY_VERIFIER_H_

#include <set>
#include <string>

#include "dflow/accel/accelerator.h"
#include "dflow/sim/fabric.h"
#include "dflow/verify/graph_spec.h"
#include "dflow/verify/verify_report.h"

namespace dflow::verify {

/// Environment the graph is checked against. Every member is optional: with
/// all of them null the verifier still runs the structural, schema, and
/// credit families; placement checks that need the fabric/health state are
/// skipped silently.
struct VerifyContext {
  /// Topology for placement legality: device names, rate tables, CPU
  /// fallback candidates. Non-const because sim accessors are non-const;
  /// the verifier never mutates it.
  sim::Fabric* fabric = nullptr;
  /// Engine device-health registry (devices marked dead after crashes).
  /// Deliberately the only liveness source: a fault injector's *scheduled*
  /// crashes are runtime events the recovery layer degrades from, not
  /// static illegality — consulting them here would also perturb the
  /// injector's first-observation bookkeeping.
  const std::set<std::string>* unhealthy = nullptr;
  /// Apply the accelerator streaming/state policy to stages placed off-CPU.
  bool check_streaming_policy = true;
  Accelerator::Policy accel_policy;
};

/// Runs the full static check catalogue (see DESIGN.md "Static plan
/// verifier") over `spec`. Pure analysis: no simulation events are created
/// and nothing in `ctx` is modified. Issues come out in deterministic order:
/// family by family (structure, schema, credit, placement), nodes and edges
/// in graph order within each family.
VerifyReport VerifyGraph(const GraphSpec& spec, const VerifyContext& ctx);

}  // namespace dflow::verify

#endif  // DFLOW_VERIFY_VERIFIER_H_
