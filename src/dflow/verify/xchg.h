#ifndef DFLOW_VERIFY_XCHG_H_
#define DFLOW_VERIFY_XCHG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/verify/verify_report.h"

namespace dflow::verify {

/// Kind of inter-node data movement an exchange performs.
enum class ExchangeKind {
  kShuffle,    // hash-partition rows across destination nodes
  kBroadcast,  // replicate every row to every destination node
  kGather,     // funnel everything to one destination (the coordinator)
};

std::string_view ExchangeKindToString(ExchangeKind kind);

/// One exchange edge of a distributed plan, as plain data. The router
/// snapshots every exchange it is about to lower and runs the VY_XCHG_*
/// family over the snapshot before any frame moves — the distributed twin
/// of GraphSpec/VerifyGraph, and deliberately just as executable-agnostic
/// so hand-built (including hand-broken) plans are checkable in tests.
struct ExchangeSpec {
  std::string name;  // e.g. "shuffle.build"
  ExchangeKind kind = ExchangeKind::kShuffle;
  std::vector<int> from_nodes;
  std::vector<int> to_nodes;
  /// Shuffle fanout: must equal the destination count so every hash bucket
  /// has exactly one home. Ignored for broadcast/gather.
  uint32_t partition_count = 0;
  /// Credit window on each underlying inter-node link. 0 deadlocks;
  /// kUnboundedCredits over a lossy link means an unbounded retransmit
  /// buffer — both are plan bugs, not runtime conditions.
  uint32_t credits = 0;
  /// Shuffle key column, an index into the producing fragment's output.
  int key_col = 0;
  /// Arity of the producing fragment's output (for key range checking).
  int input_arity = 0;
  /// Name of the consuming fragment; "" = the exchange output feeds nothing.
  std::string consumer;
};

/// Matches verify::kUnboundedCredits in graph_spec.h (duplicated here so
/// the exchange checks do not pull in the single-node graph snapshot).
inline constexpr uint32_t kUnboundedXchgCredits = 0xffffffffu;

/// A distributed plan's exchange layer, as plain data.
struct ExchangePlanSpec {
  int num_nodes = 0;
  /// Nodes the router currently considers lost (health registry snapshot).
  std::vector<int> lost_nodes;
  /// True when frame-fault injection is armed on the inter-node links.
  bool lossy_links = false;
  /// Fragment names that exist in the plan (consumers must be among them).
  std::vector<std::string> fragments;
  std::vector<ExchangeSpec> exchanges;
};

/// The VY_XCHG_* check family. Stable codes (catalogued in DESIGN.md §11):
///
///   VY_XCHG_NO_SOURCE          exchange has no source nodes
///   VY_XCHG_ORPHAN             exchange output feeds no known fragment
///   VY_XCHG_NODE_RANGE         endpoint outside [0, num_nodes)
///   VY_XCHG_NODE_DOWN          endpoint routed to a lost node
///   VY_XCHG_PARTITION_MISMATCH shuffle fanout != destination count
///   VY_XCHG_KEY_RANGE          shuffle key column outside producer arity
///   VY_XCHG_CREDIT_ZERO        zero-credit cross-node edge (deadlock)
///   VY_XCHG_CREDIT_UNBOUNDED   unbounded credits over a lossy link
///                              (warning: unbounded retransmit buffer)
///
/// Deterministic order: exchanges in plan order, checks in the order above.
VerifyReport VerifyExchangePlan(const ExchangePlanSpec& plan);

}  // namespace dflow::verify

#endif  // DFLOW_VERIFY_XCHG_H_
