#include "dflow/verify/xchg.h"

#include <algorithm>
#include <string>

namespace dflow::verify {
namespace {

std::string NodeListEdge(const ExchangeSpec& x) {
  std::string edge = "[";
  for (size_t i = 0; i < x.from_nodes.size(); ++i) {
    if (i > 0) edge += ",";
    edge += std::to_string(x.from_nodes[i]);
  }
  edge += "]->[";
  for (size_t i = 0; i < x.to_nodes.size(); ++i) {
    if (i > 0) edge += ",";
    edge += std::to_string(x.to_nodes[i]);
  }
  edge += "]";
  return edge;
}

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

std::string_view ExchangeKindToString(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kShuffle:
      return "shuffle";
    case ExchangeKind::kBroadcast:
      return "broadcast";
    case ExchangeKind::kGather:
      return "gather";
  }
  return "?";
}

VerifyReport VerifyExchangePlan(const ExchangePlanSpec& plan) {
  VerifyReport report;
  for (const ExchangeSpec& x : plan.exchanges) {
    const std::string edge = NodeListEdge(x);

    if (x.from_nodes.empty()) {
      report.Add(Severity::kError, "VY_XCHG_NO_SOURCE", x.name, edge,
                 "exchange has no source nodes; every exchange must be fed "
                 "by at least one fragment");
    }

    if (x.consumer.empty() ||
        std::find(plan.fragments.begin(), plan.fragments.end(), x.consumer) ==
            plan.fragments.end()) {
      report.Add(Severity::kError, "VY_XCHG_ORPHAN", x.name, edge,
                 x.consumer.empty()
                     ? "exchange output feeds no fragment; its rows would be "
                       "silently discarded"
                     : "exchange consumer '" + x.consumer +
                           "' is not a fragment of this plan");
    }

    auto check_nodes = [&](const std::vector<int>& nodes, const char* side) {
      for (int n : nodes) {
        if (n < 0 || n >= plan.num_nodes) {
          report.Add(Severity::kError, "VY_XCHG_NODE_RANGE", x.name, edge,
                     std::string(side) + " node " + std::to_string(n) +
                         " outside [0, " + std::to_string(plan.num_nodes) +
                         ")");
        } else if (Contains(plan.lost_nodes, n)) {
          report.Add(Severity::kError, "VY_XCHG_NODE_DOWN", x.name, edge,
                     std::string(side) + " node " + std::to_string(n) +
                         " is marked lost; re-route the exchange before "
                         "lowering");
        }
      }
    };
    check_nodes(x.from_nodes, "source");
    check_nodes(x.to_nodes, "destination");

    if (x.kind == ExchangeKind::kShuffle &&
        x.partition_count != x.to_nodes.size()) {
      report.Add(Severity::kError, "VY_XCHG_PARTITION_MISMATCH", x.name, edge,
                 "shuffle fanout " + std::to_string(x.partition_count) +
                     " != destination count " +
                     std::to_string(x.to_nodes.size()) +
                     "; some hash buckets would have no (or two) homes");
    }

    if (x.kind == ExchangeKind::kShuffle &&
        (x.key_col < 0 || x.key_col >= x.input_arity)) {
      report.Add(Severity::kError, "VY_XCHG_KEY_RANGE", x.name, edge,
                 "shuffle key column " + std::to_string(x.key_col) +
                     " outside producer arity " +
                     std::to_string(x.input_arity));
    }

    if (x.credits == 0) {
      report.Add(Severity::kError, "VY_XCHG_CREDIT_ZERO", x.name, edge,
                 "zero-credit cross-node edge can never move a frame; the "
                 "sender deadlocks on first send");
    } else if (x.credits == kUnboundedXchgCredits && plan.lossy_links) {
      report.Add(Severity::kWarning, "VY_XCHG_CREDIT_UNBOUNDED", x.name, edge,
                 "unbounded credit window over a lossy inter-node link: the "
                 "retransmit buffer is unbounded; bound the window");
    }
  }
  return report;
}

}  // namespace dflow::verify
