#ifndef DFLOW_SCHED_DEMAND_LEDGER_H_
#define DFLOW_SCHED_DEMAND_LEDGER_H_

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/sched/scheduler.h"

namespace dflow {

/// Thread-safe owner of the rolling CommittedDemand ledger. The service
/// loop is a deterministic single-threaded event loop today, but the
/// ledger is the one piece of scheduler state a future adaptive runtime
/// re-placement thread must read concurrently (ROADMAP: re-invoking
/// PlanOne mid-flight), so it is a monitor now: callers get a value
/// Snapshot to cost candidates against, and Charge / Release mutate under
/// the lock. PlanOne itself stays lock-free — it takes the snapshot by
/// value, so planning never holds kDemandLedger while costing.
///
/// Rank: kDemandLedger. Nothing is called out to while locked, so the
/// ledger never nests inside or around another ranked lock.
class DemandLedger {
 public:
  DemandLedger() = default;
  DemandLedger(const DemandLedger&) = delete;
  DemandLedger& operator=(const DemandLedger&) = delete;

  /// Value copy of the current ledger — what PlanOne costs against.
  CommittedDemand Snapshot() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return committed_;
  }

  /// Adds a launched query's estimated demand to the ledger.
  void Charge(const Scheduler& scheduler, const CostEstimate& cost)
      DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    scheduler.Charge(cost, &committed_);
  }

  /// Removes a completed query's demand from the ledger.
  void Release(const Scheduler& scheduler, const CostEstimate& cost)
      DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    scheduler.Release(cost, &committed_);
  }

 private:
  mutable RankedMutex mutex_{LockRank::kDemandLedger};
  CommittedDemand committed_ DFLOW_GUARDED_BY(mutex_);
};

}  // namespace dflow

#endif  // DFLOW_SCHED_DEMAND_LEDGER_H_
