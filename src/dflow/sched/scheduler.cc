#include "dflow/sched/scheduler.h"

#include <algorithm>
#include <array>

#include "dflow/common/logging.h"

namespace dflow {

Scheduler::Scheduler(Engine* engine) : engine_(engine) {
  DFLOW_CHECK(engine != nullptr);
}

// Drops variants that place stages on devices the engine has quarantined
// (accelerators that crashed in earlier runs). Keeps the original list when
// every variant is tainted — there is nothing better to offer, and the
// engine's own fallback still applies. Concurrent queries run on node 0.
static std::vector<RankedPlacement> HealthyVariants(
    Engine* engine, std::vector<RankedPlacement> variants) {
  std::vector<RankedPlacement> healthy;
  for (RankedPlacement& v : variants) {
    if (engine->PlacementHealthy(v.placement, /*node=*/0)) {
      healthy.push_back(std::move(v));
    }
  }
  return healthy.empty() ? variants : healthy;
}

Result<ScheduleDecision> Scheduler::PlanNaive(
    const std::vector<QuerySpec>& specs) const {
  ScheduleDecision decision;
  for (const QuerySpec& spec : specs) {
    DFLOW_ASSIGN_OR_RETURN(std::vector<RankedPlacement> variants,
                           engine_->PlanVariants(spec));
    variants = HealthyVariants(engine_, std::move(variants));
    decision.placements.push_back(variants.front().placement);
    decision.network_rate_limits_gbps.push_back(0.0);
    decision.rationale.push_back("individually optimal (no contention model)");
    DFLOW_TRACE(engine_->tracer(),
                Instant("sched", "scheduler", "naive_choice",
                        engine_->fabric().simulator().now(),
                        /*value=*/decision.placements.size() - 1,
                        variants.front().placement.name));
  }
  return decision;
}

double Scheduler::NetworkGbps() const {
  const sim::FabricConfig& config = engine_->config();
  return std::min(config.storage_uplink_gbps, config.network_gbps);
}

double Scheduler::ContendedCompletionNs(
    const CostEstimate& cost, const CommittedDemand& committed) const {
  // Contended completion estimate: every shared resource serves this
  // query after (or interleaved with) the demand already committed.
  double completion = cost.media_ns;
  for (int s = 0; s < kNumSites; ++s) {
    completion = std::max(completion,
                          committed.site_busy_ns[s] + cost.device_busy_ns[s]);
  }
  completion = std::max(
      completion, committed.network_ns +
                      static_cast<double>(cost.network_bytes) / NetworkGbps());
  return completion;
}

void Scheduler::Charge(const CostEstimate& cost,
                       CommittedDemand* committed) const {
  for (int s = 0; s < kNumSites; ++s) {
    committed->site_busy_ns[s] += cost.device_busy_ns[s];
  }
  if (cost.network_bytes > 0) {
    const double bytes = static_cast<double>(cost.network_bytes);
    committed->network_ns += bytes / NetworkGbps();
    committed->network_bytes += bytes;
    ++committed->network_users;
  }
}

void Scheduler::Release(const CostEstimate& cost,
                        CommittedDemand* committed) const {
  for (int s = 0; s < kNumSites; ++s) {
    committed->site_busy_ns[s] =
        std::max(0.0, committed->site_busy_ns[s] - cost.device_busy_ns[s]);
  }
  if (cost.network_bytes > 0) {
    const double bytes = static_cast<double>(cost.network_bytes);
    committed->network_ns =
        std::max(0.0, committed->network_ns - bytes / NetworkGbps());
    committed->network_bytes = std::max(0.0, committed->network_bytes - bytes);
    committed->network_users = std::max(0, committed->network_users - 1);
  }
}

Result<ScheduleDecision> Scheduler::Plan(
    const std::vector<QuerySpec>& specs) const {
  ScheduleDecision decision;
  CommittedDemand committed;  // accumulated demand committed so far
  std::vector<double> chosen_network_bytes(specs.size(), 0.0);
  const double network_gbps = NetworkGbps();

  for (size_t q = 0; q < specs.size(); ++q) {
    DFLOW_ASSIGN_OR_RETURN(std::vector<RankedPlacement> variants,
                           engine_->PlanVariants(specs[q]));
    variants = HealthyVariants(engine_, std::move(variants));
    double best_completion = 0;
    size_t best = 0;
    for (size_t v = 0; v < variants.size(); ++v) {
      const double completion =
          ContendedCompletionNs(variants[v].cost, committed);
      if (v == 0 || completion < best_completion) {
        best_completion = completion;
        best = v;
      }
    }
    const CostEstimate& cost = variants[best].cost;
    Charge(cost, &committed);
    chosen_network_bytes[q] = static_cast<double>(cost.network_bytes);
    decision.placements.push_back(variants[best].placement);
    decision.rationale.push_back(
        best == 0 ? "uncontended optimum"
                  : "diverted to variant #" + std::to_string(best) +
                        " to avoid contention");
    DFLOW_TRACE(engine_->tracer(),
                Instant("sched", "scheduler", "plan_choice",
                        engine_->fabric().simulator().now(), /*value=*/q,
                        variants[best].placement.name + " (" +
                            decision.rationale.back() + ")"));
  }

  // Fair-share rate caps when the chosen variants oversubscribe the
  // network: each flow gets bandwidth proportional to its byte demand.
  double total_bytes = 0;
  size_t network_users = 0;
  for (double b : chosen_network_bytes) {
    total_bytes += b;
    if (b > 0) ++network_users;
  }
  for (size_t q = 0; q < specs.size(); ++q) {
    double cap = 0.0;
    if (network_users > 1 && chosen_network_bytes[q] > 0) {
      cap = network_gbps * chosen_network_bytes[q] / total_bytes;
    }
    decision.network_rate_limits_gbps.push_back(cap);
  }
  return decision;
}

Result<IncrementalDecision> Scheduler::PlanOne(const QuerySpec& spec,
                                               const CommittedDemand& committed,
                                               PlacementChoice choice,
                                               const PlacementFilter& filter)
    const {
  DFLOW_ASSIGN_OR_RETURN(std::vector<RankedPlacement> variants,
                         engine_->PlanVariants(spec));
  Placement forced;
  if (choice != PlacementChoice::kAuto) {
    DFLOW_ASSIGN_OR_RETURN(forced, engine_->ChoosePlacement(spec, choice));
  }
  return PlanFromVariants(variants, forced, committed, choice, filter);
}

Result<IncrementalDecision> Scheduler::PlanFromVariants(
    const std::vector<RankedPlacement>& variants, const Placement& forced,
    const CommittedDemand& committed, PlacementChoice choice,
    const PlacementFilter& filter) const {
  IncrementalDecision decision;
  if (choice == PlacementChoice::kAuto) {
    std::vector<RankedPlacement> healthy = HealthyVariants(engine_, variants);
    if (filter) {
      std::vector<RankedPlacement> allowed;
      for (RankedPlacement& v : healthy) {
        if (filter(v.placement)) allowed.push_back(std::move(v));
      }
      if (!allowed.empty()) healthy = std::move(allowed);
    }
    double best_completion = 0;
    size_t best = 0;
    for (size_t v = 0; v < healthy.size(); ++v) {
      const double completion = ContendedCompletionNs(healthy[v].cost,
                                                      committed);
      if (v == 0 || completion < best_completion) {
        best_completion = completion;
        best = v;
      }
    }
    decision.placement = healthy[best].placement;
    decision.cost = healthy[best].cost;
    decision.rationale =
        best == 0 ? "uncontended optimum"
                  : "diverted to variant #" + std::to_string(best) +
                        " to avoid contention";
  } else {
    // Forced extreme (CPU-only / full-offload): still costed, so the
    // ledger and the rate cap stay honest.
    decision.placement = forced;
    bool found = false;
    for (const RankedPlacement& v : variants) {
      if (v.placement.sites == decision.placement.sites) {
        decision.cost = v.cost;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("scheduler: forced placement '" +
                              decision.placement.name +
                              "' is not among the enumerated plan variants");
    }
    decision.rationale = choice == PlacementChoice::kCpuOnly
                             ? "forced cpu-only"
                             : "forced full-offload";
  }
  // Admission-time fair share: an arriving flow joining n running network
  // users gets capacity / (n + 1) so it cannot starve them.
  if (decision.cost.network_bytes > 0 && committed.network_users >= 1) {
    decision.network_rate_limit_gbps =
        NetworkGbps() / static_cast<double>(committed.network_users + 1);
    decision.rationale += "; fair-share cap across " +
                          std::to_string(committed.network_users + 1) +
                          " network flows";
  }
  DFLOW_TRACE(engine_->tracer(),
              Instant("sched", "scheduler", "plan_one",
                      engine_->fabric().simulator().now(),
                      /*value=*/committed.network_users,
                      decision.placement.name + " (" + decision.rationale +
                          ")"));
  return decision;
}

Result<Engine::ConcurrentResult> Scheduler::Run(
    const std::vector<QuerySpec>& specs, const ScheduleDecision& decision) {
  // Statically verify every (query, placement) decision before committing
  // fabric time to any of them; under the strict default one bad decision
  // rejects the batch up front rather than mid-run.
  const verify::VerifyMode mode = verify::DefaultMode();
  if (mode != verify::VerifyMode::kOff &&
      specs.size() == decision.placements.size()) {
    for (size_t q = 0; q < specs.size(); ++q) {
      DFLOW_ASSIGN_OR_RETURN(verify::VerifyReport report,
                             engine_->Verify(specs[q], decision.placements[q]));
      for (const verify::VerifyIssue& issue : report.issues) {
        DFLOW_LOG(Warning) << "sched verify (query " << q
                           << "): " << issue.ToString();
      }
      if (mode == verify::VerifyMode::kStrict && !report.ok()) {
        return Status::InvalidArgument(
            "scheduler: query " + std::to_string(q) + " placement '" +
            decision.placements[q].name +
            "' rejected by static verifier: " + report.ToString());
      }
    }
  }
  return engine_->ExecuteConcurrent(specs, decision.placements,
                                    decision.network_rate_limits_gbps);
}

}  // namespace dflow
