#ifndef DFLOW_SCHED_SCHEDULER_H_
#define DFLOW_SCHED_SCHEDULER_H_

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "dflow/engine/engine.h"

namespace dflow {

/// What the scheduler decided for a batch of concurrent queries: which data
/// path alternative each runs (§7.3: "a scheduler may decide which plan
/// variation to activate at runtime") and an optional network DMA rate cap
/// per query ("the scheduler should be able to rate limit the bandwidth").
struct ScheduleDecision {
  std::vector<Placement> placements;
  std::vector<double> network_rate_limits_gbps;  // 0 = uncapped
  std::vector<std::string> rationale;            // per query, for reports
};

/// Rolling resource ledger for arrival-driven scheduling: the device and
/// network demand committed by queries that are admitted and still
/// running. PlanOne costs candidates *on top of* this ledger; the serving
/// layer Charges a query's demand at admission and Releases it at
/// completion, so every admission decision sees what is already running.
struct CommittedDemand {
  std::array<double, kNumSites> site_busy_ns{};
  double network_ns = 0;     // time the shared network is claimed for
  double network_bytes = 0;  // bytes claimed across the uplink
  int network_users = 0;     // running queries with network traffic
};

/// What the scheduler decided for one incrementally-admitted query.
struct IncrementalDecision {
  Placement placement;
  /// The estimate that was (or is to be) charged to the ledger; hand it
  /// back to Release when the query completes.
  CostEstimate cost;
  /// Admission-time fair share of the network (0 = uncapped): when n
  /// running queries use the uplink, a newly admitted network user is
  /// capped at capacity / n.
  double network_rate_limit_gbps = 0;
  std::string rationale;
};

/// Interference-aware scheduler over the engine's fabric.
///
/// PlanNaive gives every query its individually optimal variant — which
/// piles all of them onto the same accelerators and links. Plan instead
/// commits queries one at a time, charging each candidate variant's device
/// and link demand on top of what earlier queries already claimed, and
/// picks the variant with the lowest *contended* completion estimate; when
/// the chosen variants oversubscribe the network, flows get fair-share rate
/// caps.
class Scheduler {
 public:
  explicit Scheduler(Engine* engine);

  Result<ScheduleDecision> Plan(const std::vector<QuerySpec>& specs) const;
  Result<ScheduleDecision> PlanNaive(
      const std::vector<QuerySpec>& specs) const;

  /// Executes a decision on the engine (all queries admitted at t = 0).
  Result<Engine::ConcurrentResult> Run(const std::vector<QuerySpec>& specs,
                                       const ScheduleDecision& decision);

  // ------------------------------------------------- incremental planning
  // Arrival-driven form of Plan: queries are admitted one at a time as
  // they arrive, each costed against the demand of queries still running.
  // The serving layer calls PlanOne at admission, Charge when the query
  // launches, and Release when it completes.

  /// Vetoes candidate placements (e.g. ones whose devices have an open
  /// circuit breaker). Applied to kAuto variant selection on top of the
  /// health registry; like the health filter, it is advisory — when it
  /// rejects every candidate the unfiltered list is kept, so PlanOne
  /// always returns a plan and the caller decides whether to launch it.
  using PlacementFilter = std::function<bool(const Placement&)>;

  /// Picks the variant with the lowest contended completion estimate given
  /// what is already committed. kCpuOnly / kFullOffload force the extreme
  /// plan (still costed, for the ledger; the filter is not applied to a
  /// forced choice). Does not mutate `committed`.
  Result<IncrementalDecision> PlanOne(
      const QuerySpec& spec, const CommittedDemand& committed,
      PlacementChoice choice = PlacementChoice::kAuto,
      const PlacementFilter& filter = nullptr) const;

  /// PlanOne's decision core, starting from an already-enumerated variant
  /// table (e.g. a program-cache entry) instead of re-planning the spec.
  /// `forced` is the pre-resolved extreme placement for kCpuOnly /
  /// kFullOffload and is ignored for kAuto. Decisions are byte-identical
  /// to PlanOne over the same variants — PlanOne delegates here.
  Result<IncrementalDecision> PlanFromVariants(
      const std::vector<RankedPlacement>& variants, const Placement& forced,
      const CommittedDemand& committed,
      PlacementChoice choice = PlacementChoice::kAuto,
      const PlacementFilter& filter = nullptr) const;

  /// Adds / removes a query's estimated demand to / from the ledger.
  void Charge(const CostEstimate& cost, CommittedDemand* committed) const;
  void Release(const CostEstimate& cost, CommittedDemand* committed) const;

 private:
  /// The shared-network bottleneck bandwidth (min of uplink and network).
  double NetworkGbps() const;
  /// Completion estimate for `cost` stacked on top of `committed` — the
  /// same formula Plan uses when committing a batch sequentially.
  double ContendedCompletionNs(const CostEstimate& cost,
                               const CommittedDemand& committed) const;

  Engine* engine_;
};

}  // namespace dflow

#endif  // DFLOW_SCHED_SCHEDULER_H_
