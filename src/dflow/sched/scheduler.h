#ifndef DFLOW_SCHED_SCHEDULER_H_
#define DFLOW_SCHED_SCHEDULER_H_

#include <string>
#include <vector>

#include "dflow/engine/engine.h"

namespace dflow {

/// What the scheduler decided for a batch of concurrent queries: which data
/// path alternative each runs (§7.3: "a scheduler may decide which plan
/// variation to activate at runtime") and an optional network DMA rate cap
/// per query ("the scheduler should be able to rate limit the bandwidth").
struct ScheduleDecision {
  std::vector<Placement> placements;
  std::vector<double> network_rate_limits_gbps;  // 0 = uncapped
  std::vector<std::string> rationale;            // per query, for reports
};

/// Interference-aware scheduler over the engine's fabric.
///
/// PlanNaive gives every query its individually optimal variant — which
/// piles all of them onto the same accelerators and links. Plan instead
/// commits queries one at a time, charging each candidate variant's device
/// and link demand on top of what earlier queries already claimed, and
/// picks the variant with the lowest *contended* completion estimate; when
/// the chosen variants oversubscribe the network, flows get fair-share rate
/// caps.
class Scheduler {
 public:
  explicit Scheduler(Engine* engine);

  Result<ScheduleDecision> Plan(const std::vector<QuerySpec>& specs) const;
  Result<ScheduleDecision> PlanNaive(
      const std::vector<QuerySpec>& specs) const;

  /// Executes a decision on the engine (all queries admitted at t = 0).
  Result<Engine::ConcurrentResult> Run(const std::vector<QuerySpec>& specs,
                                       const ScheduleDecision& decision);

 private:
  Engine* engine_;
};

}  // namespace dflow

#endif  // DFLOW_SCHED_SCHEDULER_H_
