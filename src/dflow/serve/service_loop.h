#ifndef DFLOW_SERVE_SERVICE_LOOP_H_
#define DFLOW_SERVE_SERVICE_LOOP_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/compile/program_cache.h"
#include "dflow/engine/engine.h"
#include "dflow/lifecycle/breaker.h"
#include "dflow/lifecycle/brownout.h"
#include "dflow/lifecycle/lifecycle.h"
#include "dflow/sched/demand_ledger.h"
#include "dflow/sched/scheduler.h"
#include "dflow/serve/admission.h"
#include "dflow/serve/service_report.h"
#include "dflow/serve/workload.h"

namespace dflow::serve {

/// Query-lifecycle policy of one service run (DESIGN.md §7). The defaults
/// reproduce the pre-lifecycle serving behaviour exactly: a device crash
/// gets one immediate CPU-only retry and a permanent quarantine, there are
/// no deadlines, and breakers and the brownout ladder are off.
struct LifecyclePolicy {
  lifecycle::RetryPolicy retry;
  lifecycle::BreakerConfig breaker;
  lifecycle::BrownoutConfig brownout;
  /// Permanently quarantine a crashed device in the engine's health
  /// registry (the PR 1 policy). Turn off when breakers are enabled — a
  /// breaker re-probes a flapping device instead of writing it off.
  bool quarantine_on_crash = true;
};

/// An externally scheduled cancellation (tests / the chaos bench): cancel
/// `query_id` at virtual time `at_ns`, wherever the query is at that
/// moment — still queued, in retry backoff, or running on the fabric.
struct CancelRequest {
  sim::SimTime at_ns = 0;
  uint64_t query_id = 0;
};

struct ServiceConfig {
  /// Seeds every arrival / mix RNG stream (per tenant, derived).
  uint64_t seed = 42;
  /// Open-loop arrivals and closed-loop reissues stop at this virtual
  /// time; queries already admitted or queued still drain.
  sim::SimTime horizon_ns = 50'000'000;
  /// Plan-variant policy for every admitted query. kAuto lets the
  /// interference-aware scheduler pick per arrival; the extremes pin the
  /// whole service to one data path (the bench sweeps both).
  PlacementChoice placement = PlacementChoice::kAuto;
  AdmissionConfig admission;
  /// Legacy knob, kept for callers that predate LifecyclePolicy: when
  /// false, device crashes are not retried (lifecycle.retry's
  /// retry_device_crash is forced off).
  bool degrade_on_crash = true;
  /// Deadlines, retries, breakers, brownout (defaults = legacy behaviour).
  LifecyclePolicy lifecycle;
  /// Explicit cancellations to inject at fixed virtual times.
  std::vector<CancelRequest> cancel_schedule;
  /// Copy each terminal attempt's sink chunks into its QueryOutcome (the
  /// chaos oracle fingerprints them against a fault-free reference). Off
  /// by default: serving benches only need the counts.
  bool collect_results = false;
  /// Event budget for the whole service run.
  uint64_t max_events = 200'000'000;
  /// Capacity of the compiled-program admission cache (entries = distinct
  /// (plan fingerprint, fabric epoch, verifier version) keys).
  size_t program_cache_capacity = 64;
};

struct ServiceResult {
  ServiceReport service;
  /// Fabric-level measurements of the whole run (variant "service"):
  /// bytes per data-path segment, device busy time, aggregated fault
  /// counters across all per-query graphs.
  ExecutionReport fabric;

  /// Terminal record of one admitted query — what the chaos lanes
  /// fingerprint over (retried queries must land on the same rows as a
  /// fault-free reference run of the same plan).
  struct QueryOutcome {
    uint64_t query_id = 0;
    size_t tenant = 0;
    std::string template_name;
    lifecycle::OutcomeCode outcome = lifecycle::OutcomeCode::kDone;
    /// Launch attempts consumed (1 = no retries; 0 = cancelled while
    /// queued).
    uint32_t attempts = 0;
    /// Rows the terminal attempt delivered to its sink.
    uint64_t result_rows = 0;
    /// The sink chunks themselves; only when collect_results is set.
    std::vector<DataChunk> chunks;
  };
  /// Every query that entered the lifecycle, ordered by query id.
  std::vector<QueryOutcome> outcomes;
};

/// The virtual-time query service: wires the workload driver, the
/// admission controller, the incremental scheduler, the lifecycle manager
/// (deadlines, cancellation, retries), per-device circuit breakers, the
/// brownout ladder, and per-query dataflow graphs onto one shared fabric
/// simulation.
///
/// Every admitted query runs as its own DataflowGraph on the engine's
/// simulator, so one query's failure (crashed accelerator, delivery
/// give-up) never poisons its neighbours. On each arrival or completion
/// the loop re-invokes Scheduler::PlanOne against the live demand ledger,
/// so later admissions divert around the load earlier ones committed —
/// §7.3's runtime plan choice, driven by arrivals instead of a batch.
class ServiceLoop {
 public:
  ServiceLoop(Engine* engine, std::vector<TenantConfig> tenants,
              ServiceConfig config);

  /// Runs the whole service to completion (resets the fabric first).
  Result<ServiceResult> Run();

 private:
  struct QueryState {
    Ticket ticket;
    size_t graph_index = 0;
    Engine::AdmittedPipeline pipeline;
    CostEstimate cost;  // charged to the ledger; released on completion
    std::string variant;
    std::string template_name;
    bool degraded = false;
    /// Devices the placement runs on — circuit-breaker feedback targets.
    std::vector<std::string> devices;
    /// Set when this launch took a half-open breaker's probe slot.
    std::string probe_device;
    /// The cache entry this launch was served from — the retry path reuses
    /// its variant table instead of re-enumerating placements.
    std::shared_ptr<compile::CompiledQuery> plan;
  };
  /// A retry waiting out its backoff (slot retained; cancellable).
  struct PendingRetry {
    Ticket ticket;
    PlacementChoice placement = PlacementChoice::kCpuOnly;
    std::shared_ptr<compile::CompiledQuery> plan;
  };

  void OnArrival(const Arrival& arrival, bool closed_loop);
  void DrainRunnable();
  /// Launches one attempt. `is_retry` relaunches after a transient
  /// failure, pinned to `retry_placement` from the fallback chain;
  /// `prior_plan` (retries only) carries the previous attempt's cache
  /// entry so a post-crash relaunch recompiles from its variant table
  /// instead of re-planning from scratch.
  Status StartQuery(const Ticket& ticket, bool is_retry,
                    PlacementChoice retry_placement,
                    const std::shared_ptr<compile::CompiledQuery>& prior_plan =
                        nullptr);
  void OnQueryDone(uint64_t query_id, const Status& status);
  /// Deadline event: cancels the query with DEADLINE_EXCEEDED wherever it
  /// is; a no-op once the query reached a terminal state.
  void OnDeadline(uint64_t query_id);
  /// Cancels a live query (queued, in backoff, or running). The reason's
  /// code (kDeadlineExceeded vs. kCancelled) picks the outcome counter.
  void CancelQuery(uint64_t query_id, Status reason);
  /// Relaunches a retry whose backoff elapsed (unless cancelled meanwhile).
  void LaunchRetry(uint64_t query_id);
  /// Terminal housekeeping for a query that held an in-flight slot.
  void FinishSlot(const Ticket& ticket);
  void RecordOutcome(const Ticket& ticket, lifecycle::OutcomeCode outcome,
                     uint32_t attempts);
  /// Re-evaluates the brownout ladder against live signals.
  void UpdateBrownout();
  void ScheduleReissue(size_t tenant);
  void EmitQueueDepth(size_t tenant);
  ExecutionReport CollectFabricReport() const;

  Engine* engine_;
  std::vector<TenantConfig> tenants_;
  ServiceConfig config_;
  WorkloadDriver driver_;
  AdmissionController admission_;
  Scheduler scheduler_;
  DemandLedger ledger_;
  lifecycle::LifecycleManager lifecycle_;
  lifecycle::BreakerRegistry breakers_;
  lifecycle::BrownoutController brownout_;
  /// Compiled-program admission cache: repeat queries skip planning,
  /// placement enumeration and re-verification (DESIGN.md §10).
  compile::ProgramCache program_cache_;
  /// Modeled planning virtual time, split cold (miss/recompile) vs. warm
  /// (hit); reported as service.cache.planning_ns_{cold,warm}.
  uint64_t cache_planning_ns_cold_ = 0;
  uint64_t cache_planning_ns_warm_ = 0;

  std::vector<std::unique_ptr<DataflowGraph>> graphs_;
  std::map<uint64_t, QueryState> active_;
  std::map<uint64_t, PendingRetry> pending_retries_;
  /// Completion state: written on every terminal transition, read by the
  /// end-of-run drain and the brownout signal sampler. Guarded at
  /// LockRank::kServeCompletion so a monitoring thread can snapshot
  /// outcome counts while the event loop runs; the loop itself never
  /// nests this lock with another ranked lock.
  mutable RankedMutex completion_mutex_{LockRank::kServeCompletion};
  /// query_id -> (graph index, sink node) of the *terminal* attempt: for
  /// result-row accounting after the run (graphs outlive their queries).
  std::map<uint64_t, std::pair<size_t, size_t>> finished_
      DFLOW_GUARDED_BY(completion_mutex_);
  std::map<uint64_t, ServiceResult::QueryOutcome> outcomes_
      DFLOW_GUARDED_BY(completion_mutex_);
  uint64_t next_query_id_ = 0;
  Status failure_;  // first configuration-level error (fails the run)

  std::vector<TenantStats> stats_;
  std::vector<std::vector<sim::SimTime>> latencies_;  // per tenant
  uint64_t peak_in_flight_ = 0;
  std::string first_failed_device_;
  /// Cumulative run-wide counters feeding the brownout signals and the
  /// ledger-conservation invariant.
  uint64_t deadline_missed_total_ DFLOW_GUARDED_BY(completion_mutex_) = 0;
  uint64_t terminal_total_ DFLOW_GUARDED_BY(completion_mutex_) = 0;
  /// Virtual time of the last real service action; reported as the
  /// makespan (stale deadline events in the far future are no-ops and do
  /// not extend it).
  sim::SimTime last_activity_ns_ = 0;
  uint64_t ledger_charges_ = 0;
  uint64_t ledger_releases_ = 0;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_SERVICE_LOOP_H_
