#ifndef DFLOW_SERVE_SERVICE_LOOP_H_
#define DFLOW_SERVE_SERVICE_LOOP_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dflow/engine/engine.h"
#include "dflow/sched/scheduler.h"
#include "dflow/serve/admission.h"
#include "dflow/serve/service_report.h"
#include "dflow/serve/workload.h"

namespace dflow::serve {

struct ServiceConfig {
  /// Seeds every arrival / mix RNG stream (per tenant, derived).
  uint64_t seed = 42;
  /// Open-loop arrivals and closed-loop reissues stop at this virtual
  /// time; queries already admitted or queued still drain.
  sim::SimTime horizon_ns = 50'000'000;
  /// Plan-variant policy for every admitted query. kAuto lets the
  /// interference-aware scheduler pick per arrival; the extremes pin the
  /// whole service to one data path (the bench sweeps both).
  PlacementChoice placement = PlacementChoice::kAuto;
  AdmissionConfig admission;
  /// Re-admit a query CPU-only when its accelerator crashes mid-run
  /// (instead of failing it); the crashed device is quarantined either
  /// way.
  bool degrade_on_crash = true;
  /// Event budget for the whole service run.
  uint64_t max_events = 200'000'000;
};

struct ServiceResult {
  ServiceReport service;
  /// Fabric-level measurements of the whole run (variant "service"):
  /// bytes per data-path segment, device busy time, aggregated fault
  /// counters across all per-query graphs.
  ExecutionReport fabric;
};

/// The virtual-time query service: wires the workload driver, the
/// admission controller, the incremental scheduler, and per-query
/// dataflow graphs onto one shared fabric simulation.
///
/// Every admitted query runs as its own DataflowGraph on the engine's
/// simulator, so one query's failure (crashed accelerator, delivery
/// give-up) never poisons its neighbours. On each arrival or completion
/// the loop re-invokes Scheduler::PlanOne against the live demand ledger,
/// so later admissions divert around the load earlier ones committed —
/// §7.3's runtime plan choice, driven by arrivals instead of a batch.
class ServiceLoop {
 public:
  ServiceLoop(Engine* engine, std::vector<TenantConfig> tenants,
              ServiceConfig config);

  /// Runs the whole service to completion (resets the fabric first).
  Result<ServiceResult> Run();

 private:
  struct QueryState {
    Ticket ticket;
    size_t graph_index = 0;
    Engine::AdmittedPipeline pipeline;
    CostEstimate cost;  // charged to the ledger; released on completion
    std::string variant;
    std::string template_name;
    bool degraded = false;
  };

  void OnArrival(const Arrival& arrival, bool closed_loop);
  void DrainRunnable();
  Status StartQuery(const Ticket& ticket, bool degraded_restart);
  void OnQueryDone(uint64_t query_id, const Status& status);
  void ScheduleReissue(size_t tenant);
  void EmitQueueDepth(size_t tenant);
  ExecutionReport CollectFabricReport() const;

  Engine* engine_;
  std::vector<TenantConfig> tenants_;
  ServiceConfig config_;
  WorkloadDriver driver_;
  AdmissionController admission_;
  Scheduler scheduler_;
  CommittedDemand committed_;

  std::vector<std::unique_ptr<DataflowGraph>> graphs_;
  std::map<uint64_t, QueryState> active_;
  /// query_id -> (graph index, sink node): for result-row accounting
  /// after the run (graphs outlive their queries).
  std::map<uint64_t, std::pair<size_t, size_t>> finished_;
  uint64_t next_query_id_ = 0;
  Status failure_;  // first configuration-level error (fails the run)

  std::vector<TenantStats> stats_;
  std::vector<std::vector<sim::SimTime>> latencies_;  // per tenant
  uint64_t peak_in_flight_ = 0;
  std::string first_failed_device_;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_SERVICE_LOOP_H_
