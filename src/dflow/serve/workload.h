#ifndef DFLOW_SERVE_WORKLOAD_H_
#define DFLOW_SERVE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/common/random.h"
#include "dflow/plan/query_spec.h"
#include "dflow/sim/simulator.h"

namespace dflow::serve {

/// One entry of a tenant's query-template mix.
struct TemplateMix {
  QuerySpec spec;
  std::string name;  // template label; appears in traces and spans
  uint32_t weight = 1;
};

/// How one tenant offers load to the service.
struct TenantConfig {
  std::string name;
  /// Priority class; lower number is served first when queued.
  int priority = 1;
  /// Bounded admission queue (waiting, not in flight); arrivals beyond
  /// this are shed with QUEUE_FULL.
  size_t queue_capacity = 8;
  /// Per-tenant in-flight cap (0 = only the global cap applies).
  size_t max_in_flight = 0;
  /// Relative virtual-time deadline for each of this tenant's queries,
  /// measured from arrival (0 = none). A query that misses it — queued or
  /// running — is cancelled with DEADLINE_EXCEEDED.
  sim::SimTime deadline_ns = 0;

  // Open-loop arrivals, Poisson-like: each slot of slot_ns draws
  // Bernoulli(arrival_probability); an accepted slot places the arrival
  // uniformly inside the slot. Pure integer and IEEE-compare arithmetic —
  // no libm — so the arrival sequence is bit-reproducible across
  // platforms, which the byte-identical-report guarantee depends on.
  sim::SimTime slot_ns = 1'000'000;
  double arrival_probability = 0.0;  // per slot; 0 disables open-loop

  // Closed-loop clients: each issues a query, waits for its completion,
  // thinks, and reissues until the horizon.
  size_t closed_loop_clients = 0;
  sim::SimTime think_time_ns = 0;

  std::vector<TemplateMix> templates;
};

/// One query arrival (open- or closed-loop).
struct Arrival {
  sim::SimTime at = 0;
  size_t tenant = 0;
  size_t template_index = 0;
};

/// Deterministic arrival-stream generator. One Random stream per tenant
/// per purpose (arrival times vs. template mix), each derived from the
/// base seed and the tenant index, so adding a tenant or reordering calls
/// for one tenant never perturbs another tenant's sequence.
class WorkloadDriver {
 public:
  WorkloadDriver(std::vector<TenantConfig> tenants, uint64_t seed,
                 sim::SimTime horizon_ns);

  const std::vector<TenantConfig>& tenants() const { return tenants_; }
  sim::SimTime horizon_ns() const { return horizon_ns_; }

  /// Every open-loop arrival in [0, horizon), sorted by (time, tenant);
  /// template indices already sampled. Call once.
  std::vector<Arrival> OpenLoopArrivals();

  /// Samples which template the next query of `tenant` runs.
  size_t PickTemplate(size_t tenant);

  /// When a closed-loop client of `tenant` first issues (staggered
  /// uniformly inside the tenant's first slot).
  sim::SimTime InitialIssueTime(size_t tenant);

  /// Think time before a closed-loop client reissues: the configured base
  /// plus uniform jitter of up to one slot.
  sim::SimTime NextThinkTime(size_t tenant);

 private:
  std::vector<TenantConfig> tenants_;
  sim::SimTime horizon_ns_;
  std::vector<Random> arrival_rng_;  // open-loop slots + closed-loop timing
  std::vector<Random> mix_rng_;      // template choice
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_WORKLOAD_H_
