#include "dflow/serve/service_loop.h"

#include <algorithm>
#include <utility>

#include "dflow/common/logging.h"

namespace dflow::serve {

ServiceLoop::ServiceLoop(Engine* engine, std::vector<TenantConfig> tenants,
                         ServiceConfig config)
    : engine_(engine),
      tenants_(std::move(tenants)),
      config_(config),
      driver_(tenants_, config.seed, config.horizon_ns),
      admission_(config.admission, &tenants_),
      scheduler_(engine) {
  DFLOW_CHECK(engine != nullptr && !tenants_.empty());
  stats_.resize(tenants_.size());
  latencies_.resize(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    stats_[t].name = tenants_[t].name;
  }
}

Result<ServiceResult> ServiceLoop::Run() {
  engine_->fabric().Reset();
  if (engine_->tracer() != nullptr) engine_->tracer()->Clear();
  sim::Simulator& sim = engine_->fabric().simulator();

  // Open-loop arrivals are generated up front (they depend only on the
  // seed); closed-loop clients schedule themselves as they complete.
  for (const Arrival& a : driver_.OpenLoopArrivals()) {
    sim.ScheduleAt(a.at, [this, a] { OnArrival(a, /*closed_loop=*/false); });
  }
  for (size_t t = 0; t < tenants_.size(); ++t) {
    for (size_t c = 0; c < tenants_[t].closed_loop_clients; ++c) {
      Arrival a;
      a.at = driver_.InitialIssueTime(t);
      a.tenant = t;
      a.template_index = driver_.PickTemplate(t);
      sim.ScheduleAt(a.at, [this, a] { OnArrival(a, /*closed_loop=*/true); });
    }
  }

  const bool drained = sim.RunWithLimit(config_.max_events);
  DFLOW_RETURN_NOT_OK(failure_);
  if (!drained) {
    return Status::InvalidArgument("service run exceeded event budget (" +
                                   std::to_string(config_.max_events) + ")");
  }
  if (!active_.empty()) {
    return Status::Internal("service drained with " +
                            std::to_string(active_.size()) +
                            " queries still marked active");
  }

  ServiceResult result;
  ServiceReport& report = result.service;
  report.makespan_ns = sim.now();
  report.peak_in_flight = peak_in_flight_;
  std::vector<sim::SimTime> all_latencies;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    TenantStats& ts = stats_[t];
    ts.p50_ns = PercentileNs(latencies_[t], 0.50);
    ts.p95_ns = PercentileNs(latencies_[t], 0.95);
    ts.p99_ns = PercentileNs(latencies_[t], 0.99);
    report.arrivals_total += ts.arrivals;
    report.admitted_total += ts.admitted;
    report.shed_total += ts.shed_queue_full + ts.shed_overload;
    report.completed_total += ts.completed;
    report.failed_total += ts.failed;
    report.degraded_total += ts.degraded;
    all_latencies.insert(all_latencies.end(), latencies_[t].begin(),
                         latencies_[t].end());
    report.tenants.push_back(ts);
  }
  report.p99_ns = PercentileNs(std::move(all_latencies), 0.99);
  result.fabric = CollectFabricReport();
  result.fabric.fault.cpu_fallback = report.degraded_total > 0;
  result.fabric.fault.failed_device = first_failed_device_;
  result.fabric.result_rows = 0;
  for (const auto& [id, st] : finished_) {
    (void)id;
    for (const DataChunk& c : graphs_[st.first]->sink_chunks(st.second)) {
      result.fabric.result_rows += c.num_rows();
    }
  }
  return result;
}

void ServiceLoop::OnArrival(const Arrival& arrival, bool closed_loop) {
  if (!failure_.ok()) return;
  const sim::SimTime now = engine_->fabric().simulator().now();
  Ticket ticket;
  ticket.query_id = next_query_id_++;
  ticket.tenant = arrival.tenant;
  ticket.template_index = arrival.template_index;
  ticket.arrival_ns = now;
  ticket.closed_loop = closed_loop;

  TenantStats& ts = stats_[arrival.tenant];
  ++ts.arrivals;
  const std::string& tenant_name = tenants_[arrival.tenant].name;
  const std::string& template_name =
      tenants_[arrival.tenant].templates[arrival.template_index].name;
  DFLOW_TRACE(engine_->tracer(),
              Instant("serve", "tenant:" + tenant_name, "arrival", now,
                      ticket.query_id, template_name));

  if (std::optional<RejectCode> rejected = admission_.Offer(ticket)) {
    if (*rejected == RejectCode::kQueueFull) {
      ++ts.shed_queue_full;
    } else {
      ++ts.shed_overload;
    }
    DFLOW_TRACE(engine_->tracer(),
                Instant("serve", "tenant:" + tenant_name,
                        std::string("shed:") + RejectCodeName(*rejected), now,
                        ticket.query_id, template_name));
    // A shed closed-loop client backs off a think time and tries again.
    if (closed_loop) ScheduleReissue(arrival.tenant);
    return;
  }
  EmitQueueDepth(arrival.tenant);
  DrainRunnable();
}

void ServiceLoop::DrainRunnable() {
  while (std::optional<Ticket> ticket = admission_.PopRunnable()) {
    const Status started = StartQuery(*ticket, /*degraded_restart=*/false);
    if (!started.ok()) {
      failure_ = started;
      return;
    }
    peak_in_flight_ =
        std::max<uint64_t>(peak_in_flight_, admission_.in_flight_total());
    EmitQueueDepth(ticket->tenant);
  }
  DFLOW_TRACE(engine_->tracer(),
              Counter("serve", "service", "in_flight",
                      engine_->fabric().simulator().now(),
                      admission_.in_flight_total()));
}

Status ServiceLoop::StartQuery(const Ticket& ticket, bool degraded_restart) {
  const sim::SimTime now = engine_->fabric().simulator().now();
  const TenantConfig& tenant = tenants_[ticket.tenant];
  const TemplateMix& tmpl = tenant.templates[ticket.template_index];
  TenantStats& ts = stats_[ticket.tenant];

  // Re-plan against the live demand ledger on every admission; a restart
  // after an accelerator crash is pinned to the CPU-only data path.
  PlacementChoice choice =
      degraded_restart ? PlacementChoice::kCpuOnly : config_.placement;
  DFLOW_ASSIGN_OR_RETURN(IncrementalDecision decision,
                         scheduler_.PlanOne(tmpl.spec, committed_, choice));
  bool degraded_at_admission = false;
  if (!engine_->PlacementHealthy(decision.placement, /*node=*/0) &&
      choice != PlacementChoice::kCpuOnly) {
    // A forced-offload placement whose accelerator is quarantined falls
    // back to the CPU-only plan instead of launching onto a dead device.
    DFLOW_ASSIGN_OR_RETURN(
        decision,
        scheduler_.PlanOne(tmpl.spec, committed_, PlacementChoice::kCpuOnly));
    degraded_at_admission = true;
  }
  scheduler_.Charge(decision.cost, &committed_);

  graphs_.push_back(
      std::make_unique<DataflowGraph>(&engine_->fabric().simulator()));
  DataflowGraph* graph = graphs_.back().get();
  const size_t graph_index = graphs_.size() - 1;
  const std::string label =
      tenant.name + "#" + std::to_string(ticket.query_id);
  DFLOW_ASSIGN_OR_RETURN(
      Engine::AdmittedPipeline pipeline,
      engine_->BuildServicePipeline(graph, tmpl.spec, decision.placement,
                                    label,
                                    decision.network_rate_limit_gbps));

  const verify::VerifyMode mode = verify::DefaultMode();
  if (mode != verify::VerifyMode::kOff) {
    verify::VerifyReport vreport = engine_->VerifyGraphSpec(graph->Describe());
    for (const verify::VerifyIssue& issue : vreport.issues) {
      DFLOW_LOG(Warning) << "serve verify (" << label
                         << "): " << issue.ToString();
    }
    if (mode == verify::VerifyMode::kStrict && !vreport.ok()) {
      return Status::InvalidArgument(
          "service: query " + label + " placement '" + decision.placement.name +
          "' rejected by static verifier: " + vreport.ToString());
    }
  }

  QueryState st;
  st.ticket = ticket;
  st.graph_index = graph_index;
  st.pipeline = pipeline;
  st.cost = decision.cost;
  st.variant = decision.placement.name;
  st.template_name = tmpl.name;
  st.degraded = degraded_restart || degraded_at_admission;
  active_.emplace(ticket.query_id, std::move(st));

  if (degraded_restart || degraded_at_admission) {
    ++ts.degraded;
  }
  if (!degraded_restart) {
    ++ts.admitted;
    if (now > ticket.arrival_ns) ++ts.queued;
  }
  DFLOW_TRACE(engine_->tracer(),
              Instant("serve", "tenant:" + tenant.name, "admit", now,
                      ticket.query_id,
                      decision.placement.name + " (" + decision.rationale +
                          ")"));

  const uint64_t query_id = ticket.query_id;
  graph->SetCompletionCallback([this, query_id](const Status& status) {
    OnQueryDone(query_id, status);
  });
  return graph->Launch();
}

void ServiceLoop::OnQueryDone(uint64_t query_id, const Status& status) {
  if (!failure_.ok()) return;
  auto it = active_.find(query_id);
  DFLOW_CHECK(it != active_.end());
  QueryState st = std::move(it->second);
  active_.erase(it);
  finished_.emplace(query_id,
                    std::make_pair(st.graph_index, st.pipeline.sink));

  const sim::SimTime now = engine_->fabric().simulator().now();
  const size_t tenant = st.ticket.tenant;
  const std::string& tenant_name = tenants_[tenant].name;
  TenantStats& ts = stats_[tenant];
  scheduler_.Release(st.cost, &committed_);

  if (status.ok()) {
    ++ts.completed;
    latencies_[tenant].push_back(now - st.ticket.arrival_ns);
    DFLOW_TRACE(engine_->tracer(),
                Span("serve", "tenant:" + tenant_name, st.template_name,
                     st.ticket.arrival_ns, now, query_id, st.variant));
  } else {
    const std::string& dev = graphs_[st.graph_index]->failed_device();
    if (!dev.empty()) {
      engine_->MarkDeviceUnhealthy(dev);
      if (first_failed_device_.empty()) first_failed_device_ = dev;
      DFLOW_TRACE(engine_->tracer(),
                  Instant("serve", "tenant:" + tenant_name, "device_crash",
                          now, query_id, dev));
    }
    if (config_.degrade_on_crash && !dev.empty() && !st.degraded) {
      // The accelerator died under this query: keep its admission slot
      // and relaunch it on the CPU-only plan. Queued queries are
      // untouched — they re-plan around the quarantined device when
      // their turn comes.
      const Status restarted =
          StartQuery(st.ticket, /*degraded_restart=*/true);
      if (!restarted.ok()) failure_ = restarted;
      return;
    }
    ++ts.failed;
    DFLOW_TRACE(engine_->tracer(),
                Instant("serve", "tenant:" + tenant_name, "query_failed", now,
                        query_id, status.ToString()));
  }

  admission_.OnCompletion(tenant);
  if (st.ticket.closed_loop) ScheduleReissue(tenant);
  DrainRunnable();
}

void ServiceLoop::ScheduleReissue(size_t tenant) {
  sim::Simulator& sim = engine_->fabric().simulator();
  const sim::SimTime at = sim.now() + driver_.NextThinkTime(tenant);
  if (at >= config_.horizon_ns) return;  // the client's session is over
  Arrival a;
  a.at = at;
  a.tenant = tenant;
  a.template_index = driver_.PickTemplate(tenant);
  sim.ScheduleAt(at, [this, a] { OnArrival(a, /*closed_loop=*/true); });
}

void ServiceLoop::EmitQueueDepth(size_t tenant) {
  const uint64_t depth = admission_.queued(tenant);
  TenantStats& ts = stats_[tenant];
  ts.queue_depth_peak = std::max(ts.queue_depth_peak, depth);
  DFLOW_TRACE(engine_->tracer(),
              Counter("serve", "queue:" + tenants_[tenant].name, "depth",
                      engine_->fabric().simulator().now(), depth));
}

ExecutionReport ServiceLoop::CollectFabricReport() const {
  sim::Fabric& fabric = engine_->fabric();
  ExecutionReport report;
  report.variant = "service";
  report.sim_ns = fabric.simulator().now();
  report.media_bytes = fabric.store_media()->bytes_processed();
  report.network_bytes = fabric.storage_uplink()->bytes_transferred();
  report.interconnect_bytes = fabric.node(0).interconnect->bytes_transferred();
  report.membus_bytes = fabric.node(0).memory_bus->bytes_transferred();
  for (const auto& graph : graphs_) {
    // Sum of per-graph peaks: an upper bound on simultaneous in-flight
    // bytes, comparable across runs of the same workload.
    report.peak_queue_bytes += graph->TotalPeakQueueBytes();
  }
  for (sim::Link* l : fabric.AllLinks()) {
    if (l->num_messages() > 0) {
      report.link_bytes[l->name()] = l->bytes_transferred();
    }
    report.fault.chunks_dropped += l->messages_dropped();
    report.fault.chunks_corrupted += l->messages_corrupted();
  }
  for (sim::Device* d : fabric.AllDevices()) {
    if (d->items_processed() > 0) {
      report.device_busy_ns[d->name()] = d->busy_ns();
    }
    report.fault.device_stalls += d->stalls();
    report.fault.device_stall_ns += d->stall_ns();
  }
  for (const auto& graph : graphs_) {
    const DataflowGraph::RecoveryStats& rs = graph->recovery_stats();
    report.fault.retransmits += rs.retransmits;
    report.fault.delivery_timeouts += rs.delivery_timeouts;
    report.fault.checksum_failures += rs.checksum_failures;
    report.fault.storage_io_errors += rs.storage_io_errors;
    report.fault.storage_retries += rs.storage_retries;
  }
  return report;
}

}  // namespace dflow::serve
