#include "dflow/serve/service_loop.h"

#include <algorithm>
#include <utility>

#include "dflow/common/logging.h"
#include "dflow/compile/compiler.h"
#include "dflow/exec/invariants.h"
#include "dflow/plan/fingerprint.h"

namespace dflow::serve {

namespace {

// The legacy degrade_on_crash knob predates LifecyclePolicy; map it onto
// the retry policy so old callers keep their exact semantics.
lifecycle::RetryPolicy EffectiveRetryPolicy(const ServiceConfig& config) {
  lifecycle::RetryPolicy retry = config.lifecycle.retry;
  if (!config.degrade_on_crash) retry.retry_device_crash = false;
  return retry;
}

}  // namespace

ServiceLoop::ServiceLoop(Engine* engine, std::vector<TenantConfig> tenants,
                         ServiceConfig config)
    : engine_(engine),
      tenants_(std::move(tenants)),
      config_(config),
      driver_(tenants_, config.seed, config.horizon_ns),
      admission_(config.admission, &tenants_),
      scheduler_(engine),
      lifecycle_(EffectiveRetryPolicy(config)),
      breakers_(config.lifecycle.breaker),
      brownout_(config.lifecycle.brownout),
      program_cache_(config.program_cache_capacity) {
  DFLOW_CHECK(engine != nullptr && !tenants_.empty());
  stats_.resize(tenants_.size());
  latencies_.resize(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    stats_[t].name = tenants_[t].name;
  }
}

Result<ServiceResult> ServiceLoop::Run() {
  engine_->fabric().Reset();
  if (engine_->tracer() != nullptr) engine_->tracer()->Clear();
  sim::Simulator& sim = engine_->fabric().simulator();

  // Open-loop arrivals are generated up front (they depend only on the
  // seed); closed-loop clients schedule themselves as they complete.
  for (const Arrival& a : driver_.OpenLoopArrivals()) {
    sim.ScheduleAt(a.at, [this, a] { OnArrival(a, /*closed_loop=*/false); });
  }
  for (size_t t = 0; t < tenants_.size(); ++t) {
    for (size_t c = 0; c < tenants_[t].closed_loop_clients; ++c) {
      Arrival a;
      a.at = driver_.InitialIssueTime(t);
      a.tenant = t;
      a.template_index = driver_.PickTemplate(t);
      sim.ScheduleAt(a.at, [this, a] { OnArrival(a, /*closed_loop=*/true); });
    }
  }
  for (const CancelRequest& cancel : config_.cancel_schedule) {
    const uint64_t id = cancel.query_id;
    sim.ScheduleAt(cancel.at_ns, [this, id] {
      if (!failure_.ok()) return;
      CancelQuery(id, Status::Cancelled("query " + std::to_string(id) +
                                        " cancelled by schedule"));
    });
  }

  const bool drained = sim.RunWithLimit(config_.max_events);
  DFLOW_RETURN_NOT_OK(failure_);
  if (!drained) {
    return Status::InvalidArgument("service run exceeded event budget (" +
                                   std::to_string(config_.max_events) + ")");
  }
  if (!active_.empty()) {
    return Status::Internal("service drained with " +
                            std::to_string(active_.size()) +
                            " queries still marked active");
  }
  // Conservation at drain: every launch charged the ledger exactly once
  // and every terminal attempt released it exactly once — a crash retry
  // that double-charged (or a cancellation that leaked its release) shows
  // up here as residual demand.
  DFLOW_INVARIANT(pending_retries_.empty(),
                  "service drained with retries still pending backoff");
  DFLOW_INVARIANT(ledger_charges_ == ledger_releases_,
                  "scheduler ledger: " + std::to_string(ledger_charges_) +
                      " charges vs " + std::to_string(ledger_releases_) +
                      " releases");
  const CommittedDemand drained_demand = ledger_.Snapshot();
  DFLOW_INVARIANT(drained_demand.network_users == 0,
                  "scheduler ledger: " +
                      std::to_string(drained_demand.network_users) +
                      " network users still committed at drain");
  DFLOW_INVARIANTS_ONLY({
    double residual = drained_demand.network_ns + drained_demand.network_bytes;
    for (int s = 0; s < kNumSites; ++s) {
      residual += drained_demand.site_busy_ns[s];
    }
    DFLOW_INVARIANT(residual <= 1e-3,
                    "scheduler ledger: residual committed demand " +
                        std::to_string(residual) + " at drain");
  });

  ServiceResult result;
  ServiceReport& report = result.service;
  // Not sim.now(): a stale deadline event for a query that already
  // finished is a no-op far in the virtual future and must not pad the
  // reported makespan.
  report.makespan_ns = last_activity_ns_;
  report.peak_in_flight = peak_in_flight_;
  std::vector<sim::SimTime> all_latencies;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    TenantStats& ts = stats_[t];
    ts.p50_ns = PercentileNs(latencies_[t], 0.50);
    ts.p95_ns = PercentileNs(latencies_[t], 0.95);
    ts.p99_ns = PercentileNs(latencies_[t], 0.99);
    report.arrivals_total += ts.arrivals;
    report.admitted_total += ts.admitted;
    report.shed_total +=
        ts.shed_queue_full + ts.shed_overload + ts.shed_brownout;
    report.completed_total += ts.completed;
    report.failed_total += ts.failed;
    report.degraded_total += ts.degraded;
    report.deadline_missed_total += ts.deadline_missed;
    report.cancelled_total += ts.cancelled;
    report.retries_total += ts.retries;
    report.retry_exhausted_total += ts.retry_exhausted;
    report.shed_brownout_total += ts.shed_brownout;
    all_latencies.insert(all_latencies.end(), latencies_[t].begin(),
                         latencies_[t].end());
    report.tenants.push_back(ts);
  }
  report.p99_ns = PercentileNs(std::move(all_latencies), 0.99);
  const compile::CacheStats& cache = program_cache_.stats();
  report.cache_hits = cache.hits;
  report.cache_misses = cache.misses;
  report.cache_evictions = cache.evictions;
  report.cache_recompiles = cache.recompiles;
  report.cache_invalidations = cache.invalidations;
  report.cache_planning_ns_cold = cache_planning_ns_cold_;
  report.cache_planning_ns_warm = cache_planning_ns_warm_;
  report.breaker_transitions = breakers_.transitions_total();
  report.breaker_probes = breakers_.probes_total();
  report.brownout_escalations = brownout_.escalations();
  report.brownout_peak_level =
      static_cast<uint64_t>(brownout_.peak_level());
  result.fabric = CollectFabricReport();
  result.fabric.fault.cpu_fallback = report.degraded_total > 0;
  result.fabric.fault.failed_device = first_failed_device_;
  result.fabric.result_rows = 0;
  {
    RankedMutexLock lock(&completion_mutex_);
    for (const auto& [id, st] : finished_) {
      uint64_t rows = 0;
      for (const DataChunk& c : graphs_[st.first]->sink_chunks(st.second)) {
        rows += c.num_rows();
      }
      result.fabric.result_rows += rows;
      auto out = outcomes_.find(id);
      if (out != outcomes_.end()) {
        out->second.result_rows = rows;
        if (config_.collect_results) {
          out->second.chunks = graphs_[st.first]->sink_chunks(st.second);
        }
      }
    }
    for (auto& [id, outcome] : outcomes_) {
      (void)id;
      result.outcomes.push_back(std::move(outcome));
    }
  }
  return result;
}

void ServiceLoop::OnArrival(const Arrival& arrival, bool closed_loop) {
  if (!failure_.ok()) return;
  const sim::SimTime now = engine_->fabric().simulator().now();
  last_activity_ns_ = now;
  Ticket ticket;
  ticket.query_id = next_query_id_++;
  ticket.tenant = arrival.tenant;
  ticket.template_index = arrival.template_index;
  ticket.arrival_ns = now;
  ticket.closed_loop = closed_loop;

  TenantStats& ts = stats_[arrival.tenant];
  ++ts.arrivals;
  const TenantConfig& tenant = tenants_[arrival.tenant];
  const std::string& template_name =
      tenant.templates[arrival.template_index].name;
  DFLOW_TRACE(engine_->tracer(),
              Instant("serve", "tenant:" + tenant.name, "arrival", now,
                      ticket.query_id, template_name));

  // Brownout shedding precedes queueing: at SHED_LOW_PRIORITY the ladder
  // drops low-priority arrivals, at PROBES_ONLY it drops everything (the
  // probes it still admits are launches of already-queued queries).
  const lifecycle::BrownoutLevel level = brownout_.level();
  if (config_.lifecycle.brownout.enabled &&
      (level == lifecycle::BrownoutLevel::kProbesOnly ||
       (level >= lifecycle::BrownoutLevel::kShedLowPriority &&
        tenant.priority >= config_.lifecycle.brownout.shed_priority_min))) {
    ++ts.shed_brownout;
    DFLOW_TRACE(engine_->tracer(),
                Instant("serve", "tenant:" + tenant.name,
                        std::string("shed:") +
                            RejectCodeName(RejectCode::kBrownout),
                        now, ticket.query_id, template_name));
    if (closed_loop) ScheduleReissue(arrival.tenant);
    UpdateBrownout();
    return;
  }

  if (std::optional<RejectCode> rejected = admission_.Offer(ticket)) {
    if (*rejected == RejectCode::kQueueFull) {
      ++ts.shed_queue_full;
    } else {
      ++ts.shed_overload;
    }
    DFLOW_TRACE(engine_->tracer(),
                Instant("serve", "tenant:" + tenant.name,
                        std::string("shed:") + RejectCodeName(*rejected), now,
                        ticket.query_id, template_name));
    // A shed closed-loop client backs off a think time and tries again.
    if (closed_loop) ScheduleReissue(arrival.tenant);
    UpdateBrownout();
    return;
  }
  // Accepted into the lifecycle: create the record (and cancel token) and
  // arm the absolute virtual-time deadline.
  const sim::SimTime deadline =
      tenant.deadline_ns == 0 ? 0 : now + tenant.deadline_ns;
  lifecycle_.Admit(ticket.query_id, deadline);
  if (deadline > 0) {
    const uint64_t id = ticket.query_id;
    engine_->fabric().simulator().ScheduleAt(deadline,
                                             [this, id] { OnDeadline(id); });
  }
  UpdateBrownout();
  EmitQueueDepth(arrival.tenant);
  DrainRunnable();
}

void ServiceLoop::DrainRunnable() {
  while (true) {
    // PROBES_ONLY serves at concurrency one: the single launch doubles as
    // the breaker probe, and completions keep re-entering this loop, so
    // the queue drains (slowly) instead of deadlocking.
    if (brownout_.level() == lifecycle::BrownoutLevel::kProbesOnly &&
        admission_.in_flight_total() >= 1) {
      break;
    }
    std::optional<Ticket> ticket = admission_.PopRunnable();
    if (!ticket.has_value()) break;
    const Status started = StartQuery(*ticket, /*is_retry=*/false,
                                      PlacementChoice::kCpuOnly);
    if (!started.ok()) {
      failure_ = started;
      return;
    }
    peak_in_flight_ =
        std::max<uint64_t>(peak_in_flight_, admission_.in_flight_total());
    EmitQueueDepth(ticket->tenant);
  }
  DFLOW_TRACE(engine_->tracer(),
              Counter("serve", "service", "in_flight",
                      engine_->fabric().simulator().now(),
                      admission_.in_flight_total()));
}

Status ServiceLoop::StartQuery(
    const Ticket& ticket, bool is_retry, PlacementChoice retry_placement,
    const std::shared_ptr<compile::CompiledQuery>& prior_plan) {
  const sim::SimTime now = engine_->fabric().simulator().now();
  const TenantConfig& tenant = tenants_[ticket.tenant];
  const TemplateMix& tmpl = tenant.templates[ticket.template_index];
  TenantStats& ts = stats_[ticket.tenant];
  const lifecycle::QueryRecord* record = lifecycle_.Get(ticket.query_id);
  DFLOW_CHECK(record != nullptr);

  // A query popped at (or past) its deadline is a miss, not a launch.
  if (record->deadline_ns > 0 && now >= record->deadline_ns) {
    ++ts.deadline_missed;
    {
      RankedMutexLock lock(&completion_mutex_);
      ++deadline_missed_total_;
    }
    RecordOutcome(ticket, lifecycle::OutcomeCode::kDeadlineExceeded,
                  record->attempts);
    DFLOW_TRACE(engine_->tracer(),
                Instant("lifecycle", "tenant:" + tenant.name,
                        "deadline_exceeded", now, ticket.query_id,
                        "missed before launch"));
    lifecycle_.Transition(ticket.query_id, lifecycle::QueryState::kCancelled);
    FinishSlot(ticket);
    return Status::OK();
  }

  // Placement choice: a retry is pinned to its fallback-chain entry; a
  // brownout at FORCE_CHEAP or above pins fresh launches to the cheapest
  // (CPU-only) data path.
  PlacementChoice choice = is_retry ? retry_placement : config_.placement;
  if (!is_retry &&
      brownout_.level() >= lifecycle::BrownoutLevel::kForceCheap &&
      choice != PlacementChoice::kCpuOnly) {
    choice = PlacementChoice::kCpuOnly;
  }

  // Program-cache admission (compile once, serve millions): look the plan
  // up under (fingerprint, fabric epoch, verifier version, node). The
  // epoch is node-scoped — the serving loop launches on compute node 0,
  // and a health change confined to another node must not invalidate this
  // node's programs.
  constexpr int kServeNode = 0;
  program_cache_.InvalidateStaleEpochs(engine_->fabric_epoch(kServeNode));
  const compile::CacheKey key{FingerprintQuerySpec(tmpl.spec),
                              engine_->fabric_epoch(kServeNode),
                              verify::kVerifierVersion, kServeNode};
  std::shared_ptr<compile::CompiledQuery> plan = program_cache_.Lookup(key);
  bool fresh_plan = false;
  if (plan == nullptr) {
    if (prior_plan != nullptr &&
        prior_plan->plan_fingerprint == key.plan_fingerprint) {
      // Retry after a crash bumped the epoch: the variant table and the
      // forced extremes are placement-enumeration results, valid across
      // health changes (health filtering happens at decision time), so
      // clone them into the new epoch and only relower what gets chosen —
      // a recompile, not a from-scratch re-plan.
      plan = std::make_shared<compile::CompiledQuery>(*prior_plan);
      plan->fabric_epoch = key.fabric_epoch;
      plan->programs.clear();  // compiled under a stale health registry
    } else {
      DFLOW_ASSIGN_OR_RETURN(plan, engine_->CompilePlan(tmpl.spec));
      fresh_plan = true;
    }
    program_cache_.Insert(key, plan);
  }

  // Decide the variant against a snapshot of the live demand ledger on
  // every launch (the snapshot is coherent: Charge happens after the final
  // choice). Open-breaker devices are vetoed from kAuto selection.
  const CommittedDemand committed = ledger_.Snapshot();
  Scheduler::PlacementFilter filter;
  if (breakers_.enabled() && choice == PlacementChoice::kAuto) {
    filter = [this, now](const Placement& placement) {
      for (const std::string& dev :
           engine_->PlacementDevices(placement, /*node=*/0)) {
        if (!breakers_.Allows(dev, now)) return false;
      }
      return true;
    };
  }
  const Placement forced = choice == PlacementChoice::kFullOffload
                               ? plan->full_offload
                               : plan->cpu_only;
  DFLOW_ASSIGN_OR_RETURN(
      IncrementalDecision decision,
      scheduler_.PlanFromVariants(plan->variants, forced, committed, choice,
                                  filter));
  bool degraded_at_admission = false;
  if (!engine_->PlacementHealthy(decision.placement, /*node=*/0) &&
      choice != PlacementChoice::kCpuOnly) {
    // A forced-offload placement whose accelerator is quarantined falls
    // back to the CPU-only plan instead of launching onto a dead device.
    DFLOW_ASSIGN_OR_RETURN(
        decision,
        scheduler_.PlanFromVariants(plan->variants, plan->cpu_only, committed,
                                    PlacementChoice::kCpuOnly));
    degraded_at_admission = true;
  }
  if (breakers_.enabled() && choice != PlacementChoice::kCpuOnly) {
    // Breaker veto on the final placement (forced choices bypass the kAuto
    // filter): fall back to the CPU-only plan as the deterministic last
    // resort rather than feeding a tripping device.
    bool blocked = false;
    for (const std::string& dev :
         engine_->PlacementDevices(decision.placement, /*node=*/0)) {
      if (!breakers_.Allows(dev, now)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      DFLOW_ASSIGN_OR_RETURN(
          decision,
          scheduler_.PlanFromVariants(plan->variants, plan->cpu_only,
                                      committed, PlacementChoice::kCpuOnly));
      degraded_at_admission = true;
    }
  }

  // Fetch (or lazily lower) the compiled program for the chosen variant.
  // Cold path: full planning + lowering + one compile-time verification.
  // Warm path: a cache lookup. A new variant of a cached plan — or the
  // CPU-only fallback after a crash — relowers only (a recompile).
  compile::ProgramPtr program = plan->ProgramFor(decision.placement.name);
  uint64_t planning_ns = compile::kCacheLookupCostNs;
  const char* cache_event = "cache_hit";
  if (program == nullptr) {
    DFLOW_ASSIGN_OR_RETURN(
        program, engine_->CompileVariant(plan.get(), decision.placement));
    planning_ns += program->compile_cost_ns();
    if (fresh_plan) {
      planning_ns += plan->plan_cost_ns;
      program_cache_.CountMiss();
      cache_event = "cache_miss";
    } else {
      program_cache_.CountRecompile();
      cache_event = "recompile";
    }
    cache_planning_ns_cold_ += planning_ns;
  } else {
    program_cache_.CountHit();
    cache_planning_ns_warm_ += planning_ns;
  }
  DFLOW_TRACE(engine_->tracer(),
              Instant("compile", "cache", cache_event, now, ticket.query_id,
                      tmpl.name + " -> " + decision.placement.name));

  // Charge the ledger from the program's precomputed demand vector (the
  // same CostEstimate the decision was ranked by).
  decision.cost = program->demand();
  ledger_.Charge(scheduler_, decision.cost);
  ++ledger_charges_;

  graphs_.push_back(
      std::make_unique<DataflowGraph>(&engine_->fabric().simulator()));
  DataflowGraph* graph = graphs_.back().get();
  const size_t graph_index = graphs_.size() - 1;
  const std::string label =
      tenant.name + "#" + std::to_string(ticket.query_id);
  // The program was verified once at compile time against the current
  // fabric epoch (CompileVariant refuses to produce a program under strict
  // mode); an epoch bump strands the cache entry, so there is nothing to
  // re-verify per launch.
  DFLOW_ASSIGN_OR_RETURN(
      Engine::AdmittedPipeline pipeline,
      engine_->BuildProgramPipeline(graph, *program, label,
                                    decision.network_rate_limit_gbps));

  QueryState st;
  st.ticket = ticket;
  st.graph_index = graph_index;
  st.pipeline = pipeline;
  st.cost = decision.cost;
  st.variant = decision.placement.name;
  st.template_name = tmpl.name;
  st.degraded = is_retry || degraded_at_admission;
  st.plan = plan;
  st.devices = engine_->PlacementDevices(decision.placement, /*node=*/0);
  if (breakers_.enabled()) {
    for (const std::string& dev : st.devices) {
      if (breakers_.state(dev, now) == lifecycle::BreakerState::kHalfOpen &&
          breakers_.BeginProbe(dev, now)) {
        st.probe_device = dev;
        DFLOW_TRACE(engine_->tracer(),
                    Instant("lifecycle", "breaker:" + dev, "probe", now,
                            ticket.query_id, label));
        break;  // one probe per launch
      }
    }
  }
  active_.emplace(ticket.query_id, std::move(st));

  if (is_retry || degraded_at_admission) {
    ++ts.degraded;
  }
  if (!is_retry) {
    ++ts.admitted;
    if (now > ticket.arrival_ns) ++ts.queued;
  }
  lifecycle_.OnLaunch(ticket.query_id, is_retry || degraded_at_admission);
  DFLOW_TRACE(engine_->tracer(),
              Instant("serve", "tenant:" + tenant.name, "admit", now,
                      ticket.query_id,
                      decision.placement.name + " (" + decision.rationale +
                          ")"));

  graph->SetCancelToken(record->token);
  const uint64_t query_id = ticket.query_id;
  graph->SetCompletionCallback([this, query_id](const Status& status) {
    OnQueryDone(query_id, status);
  });
  return graph->Launch();
}

void ServiceLoop::OnQueryDone(uint64_t query_id, const Status& status) {
  if (!failure_.ok()) return;
  auto it = active_.find(query_id);
  DFLOW_CHECK(it != active_.end());
  QueryState st = std::move(it->second);
  active_.erase(it);

  const sim::SimTime now = engine_->fabric().simulator().now();
  last_activity_ns_ = now;
  const size_t tenant = st.ticket.tenant;
  const std::string& tenant_name = tenants_[tenant].name;
  TenantStats& ts = stats_[tenant];
  // Release this attempt's demand immediately — also on cancellation and
  // deadline, which is the whole point: a cancelled query frees its
  // scheduler ledger at cancel time, not at drain.
  ledger_.Release(scheduler_, st.cost);
  ++ledger_releases_;

  const lifecycle::QueryRecord* record = lifecycle_.Get(query_id);
  DFLOW_CHECK(record != nullptr);
  const uint32_t attempts = record->attempts;

  if (status.ok()) {
    // Success feedback to every device the placement ran on (closes a
    // half-open breaker's probe, clears failure streaks).
    for (const std::string& dev : st.devices) {
      breakers_.RecordSuccess(dev, now);
    }
    lifecycle_.Transition(query_id, lifecycle::QueryState::kDone);
    {
      RankedMutexLock lock(&completion_mutex_);
      finished_[query_id] = std::make_pair(st.graph_index, st.pipeline.sink);
    }
    RecordOutcome(st.ticket, lifecycle::OutcomeCode::kDone, attempts);
    ++ts.completed;
    latencies_[tenant].push_back(now - st.ticket.arrival_ns);
    DFLOW_TRACE(engine_->tracer(),
                Span("serve", "tenant:" + tenant_name, st.template_name,
                     st.ticket.arrival_ns, now, query_id, st.variant));
    FinishSlot(st.ticket);
    return;
  }

  // Failed attempt: classify structurally (no status-string matching).
  DataflowGraph* graph = graphs_[st.graph_index].get();
  lifecycle::QueryFailure failure;
  failure.kind = graph->failure_kind();
  failure.device = graph->failed_device();
  failure.status = status;

  if (failure.kind == lifecycle::FailureKind::kDeviceCrash &&
      !failure.device.empty()) {
    breakers_.RecordFailure(failure.device, now);
    if (config_.lifecycle.quarantine_on_crash) {
      engine_->MarkDeviceUnhealthy(failure.device);
    }
    if (first_failed_device_.empty()) first_failed_device_ = failure.device;
    DFLOW_TRACE(engine_->tracer(),
                Instant("serve", "tenant:" + tenant_name, "device_crash",
                        now, query_id, failure.device));
  }
  if (!st.probe_device.empty() && st.probe_device != failure.device) {
    // The probe query died of an unrelated cause; free the probe slot
    // conservatively (counts as a failed probe, re-opening the breaker).
    breakers_.RecordFailure(st.probe_device, now);
  }

  const lifecycle::RetryDecision decision = lifecycle_.Decide(query_id, failure);
  if (decision.retry) {
    lifecycle_.OnRetryScheduled(query_id);
    ++ts.retries;
    DFLOW_TRACE(
        engine_->tracer(),
        Instant("lifecycle", "tenant:" + tenant_name, "retry", now, query_id,
                std::string(lifecycle::FailureKindName(failure.kind)) +
                    " backoff=" + std::to_string(decision.backoff_ns) + "ns"));
    // The query keeps its admission slot across the retry; queued queries
    // are untouched — they re-plan around the unhealthy device when their
    // turn comes.
    if (decision.backoff_ns == 0) {
      // Immediate relaunch in the same event (the legacy crash path).
      const Status restarted =
          StartQuery(st.ticket, /*is_retry=*/true, decision.placement,
                     st.plan);
      if (!restarted.ok()) failure_ = restarted;
    } else {
      PendingRetry pending;
      pending.ticket = st.ticket;
      pending.placement = decision.placement;
      pending.plan = st.plan;
      pending_retries_.emplace(query_id, std::move(pending));
      engine_->fabric().simulator().ScheduleAt(
          now + decision.backoff_ns, [this, query_id] { LaunchRetry(query_id); });
    }
    return;
  }

  // Terminal failure: distinct stable outcome codes, not one bucket.
  {
    RankedMutexLock lock(&completion_mutex_);
    finished_[query_id] = std::make_pair(st.graph_index, st.pipeline.sink);
  }
  RecordOutcome(st.ticket, decision.outcome, attempts);
  lifecycle::QueryState terminal = lifecycle::QueryState::kFailed;
  switch (decision.outcome) {
    case lifecycle::OutcomeCode::kDeadlineExceeded:
      ++ts.deadline_missed;
      {
        RankedMutexLock lock(&completion_mutex_);
        ++deadline_missed_total_;
      }
      terminal = lifecycle::QueryState::kCancelled;
      DFLOW_TRACE(engine_->tracer(),
                  Instant("lifecycle", "tenant:" + tenant_name,
                          "deadline_exceeded", now, query_id,
                          status.ToString()));
      break;
    case lifecycle::OutcomeCode::kCancelled:
      ++ts.cancelled;
      terminal = lifecycle::QueryState::kCancelled;
      DFLOW_TRACE(engine_->tracer(),
                  Instant("lifecycle", "tenant:" + tenant_name, "cancelled",
                          now, query_id, status.ToString()));
      break;
    case lifecycle::OutcomeCode::kRetryExhausted:
      ++ts.retry_exhausted;
      DFLOW_TRACE(engine_->tracer(),
                  Instant("lifecycle", "tenant:" + tenant_name,
                          "retry_exhausted", now, query_id,
                          status.ToString()));
      break;
    case lifecycle::OutcomeCode::kDone:
    case lifecycle::OutcomeCode::kFailed:
      ++ts.failed;
      DFLOW_TRACE(engine_->tracer(),
                  Instant("serve", "tenant:" + tenant_name, "query_failed",
                          now, query_id, status.ToString()));
      break;
  }
  lifecycle_.Transition(query_id, terminal);
  FinishSlot(st.ticket);
}

void ServiceLoop::OnDeadline(uint64_t query_id) {
  if (!failure_.ok()) return;
  CancelQuery(query_id,
              Status::DeadlineExceeded("query " + std::to_string(query_id) +
                                       " passed its deadline"));
}

void ServiceLoop::CancelQuery(uint64_t query_id, Status reason) {
  const lifecycle::QueryRecord* record = lifecycle_.Get(query_id);
  if (record == nullptr) return;  // already terminal
  const bool deadline = reason.IsDeadlineExceeded();
  const sim::SimTime now = engine_->fabric().simulator().now();
  last_activity_ns_ = now;
  switch (record->state) {
    case lifecycle::QueryState::kAdmitted: {
      // Still queued: drop the ticket before it ever launches.
      std::optional<Ticket> ticket = admission_.CancelQueued(query_id);
      DFLOW_CHECK(ticket.has_value());
      TenantStats& ts = stats_[ticket->tenant];
      if (deadline) {
        ++ts.deadline_missed;
        RankedMutexLock lock(&completion_mutex_);
        ++deadline_missed_total_;
      } else {
        ++ts.cancelled;
      }
      RecordOutcome(*ticket,
                    deadline ? lifecycle::OutcomeCode::kDeadlineExceeded
                             : lifecycle::OutcomeCode::kCancelled,
                    /*attempts=*/0);
      DFLOW_TRACE(engine_->tracer(),
                  Instant("lifecycle",
                          "tenant:" + tenants_[ticket->tenant].name,
                          deadline ? "deadline_exceeded" : "cancelled", now,
                          query_id, "while queued"));
      lifecycle_.Transition(query_id, lifecycle::QueryState::kCancelled);
      {
        RankedMutexLock lock(&completion_mutex_);
        ++terminal_total_;
      }
      UpdateBrownout();
      EmitQueueDepth(ticket->tenant);
      if (ticket->closed_loop) ScheduleReissue(ticket->tenant);
      break;
    }
    case lifecycle::QueryState::kRetrying: {
      // Waiting out a retry backoff: the scheduled relaunch becomes a
      // no-op once the pending entry is gone.
      auto it = pending_retries_.find(query_id);
      DFLOW_CHECK(it != pending_retries_.end());
      const Ticket ticket = it->second.ticket;
      pending_retries_.erase(it);
      TenantStats& ts = stats_[ticket.tenant];
      if (deadline) {
        ++ts.deadline_missed;
        RankedMutexLock lock(&completion_mutex_);
        ++deadline_missed_total_;
      } else {
        ++ts.cancelled;
      }
      RecordOutcome(ticket,
                    deadline ? lifecycle::OutcomeCode::kDeadlineExceeded
                             : lifecycle::OutcomeCode::kCancelled,
                    record->attempts);
      DFLOW_TRACE(engine_->tracer(),
                  Instant("lifecycle", "tenant:" + tenants_[ticket.tenant].name,
                          deadline ? "deadline_exceeded" : "cancelled", now,
                          query_id, "during retry backoff"));
      lifecycle_.Transition(query_id, lifecycle::QueryState::kCancelled);
      FinishSlot(ticket);
      break;
    }
    case lifecycle::QueryState::kRunning:
    case lifecycle::QueryState::kDegraded: {
      // Running on the fabric: set the token (so in-flight graph events
      // observe it) and fail the graph now; its completion callback runs
      // synchronously and does all terminal accounting.
      auto it = active_.find(query_id);
      DFLOW_CHECK(it != active_.end());
      record->token->Cancel(reason);
      graphs_[it->second.graph_index]->Cancel(std::move(reason));
      break;
    }
    case lifecycle::QueryState::kDone:
    case lifecycle::QueryState::kCancelled:
    case lifecycle::QueryState::kFailed:
      break;  // unreachable: terminal records are erased
  }
}

void ServiceLoop::LaunchRetry(uint64_t query_id) {
  if (!failure_.ok()) return;
  auto it = pending_retries_.find(query_id);
  if (it == pending_retries_.end()) return;  // cancelled during backoff
  last_activity_ns_ = engine_->fabric().simulator().now();
  const PendingRetry pending = std::move(it->second);
  pending_retries_.erase(it);
  const Status restarted = StartQuery(pending.ticket, /*is_retry=*/true,
                                      pending.placement, pending.plan);
  if (!restarted.ok()) failure_ = restarted;
}

void ServiceLoop::FinishSlot(const Ticket& ticket) {
  {
    RankedMutexLock lock(&completion_mutex_);
    ++terminal_total_;
  }
  admission_.OnCompletion(ticket.tenant);
  UpdateBrownout();
  if (ticket.closed_loop) ScheduleReissue(ticket.tenant);
  DrainRunnable();
}

void ServiceLoop::RecordOutcome(const Ticket& ticket,
                                lifecycle::OutcomeCode outcome,
                                uint32_t attempts) {
  ServiceResult::QueryOutcome rec;
  rec.query_id = ticket.query_id;
  rec.tenant = ticket.tenant;
  rec.template_name =
      tenants_[ticket.tenant].templates[ticket.template_index].name;
  rec.outcome = outcome;
  rec.attempts = attempts;
  RankedMutexLock lock(&completion_mutex_);
  outcomes_.emplace(ticket.query_id, std::move(rec));
}

void ServiceLoop::UpdateBrownout() {
  if (!config_.lifecycle.brownout.enabled) return;
  const sim::SimTime now = engine_->fabric().simulator().now();
  lifecycle::BrownoutSignals signals;
  signals.queue_fraction =
      config_.admission.global_queue_capacity == 0
          ? 0.0
          : static_cast<double>(admission_.queued_total()) /
                static_cast<double>(config_.admission.global_queue_capacity);
  {
    RankedMutexLock lock(&completion_mutex_);
    signals.deadline_misses = deadline_missed_total_;
    signals.terminals = terminal_total_;
  }
  signals.open_breakers = breakers_.open_count(now);
  const lifecycle::BrownoutLevel before = brownout_.level();
  const lifecycle::BrownoutLevel after = brownout_.Update(signals, now);
  if (after != before) {
    DFLOW_TRACE(engine_->tracer(),
                Instant("lifecycle", "brownout", lifecycle::BrownoutLevelName(after),
                        now, static_cast<uint64_t>(after),
                        std::string("from ") +
                            lifecycle::BrownoutLevelName(before)));
  }
}

void ServiceLoop::ScheduleReissue(size_t tenant) {
  sim::Simulator& sim = engine_->fabric().simulator();
  const sim::SimTime at = sim.now() + driver_.NextThinkTime(tenant);
  if (at >= config_.horizon_ns) return;  // the client's session is over
  Arrival a;
  a.at = at;
  a.tenant = tenant;
  a.template_index = driver_.PickTemplate(tenant);
  sim.ScheduleAt(at, [this, a] { OnArrival(a, /*closed_loop=*/true); });
}

void ServiceLoop::EmitQueueDepth(size_t tenant) {
  const uint64_t depth = admission_.queued(tenant);
  TenantStats& ts = stats_[tenant];
  ts.queue_depth_peak = std::max(ts.queue_depth_peak, depth);
  DFLOW_TRACE(engine_->tracer(),
              Counter("serve", "queue:" + tenants_[tenant].name, "depth",
                      engine_->fabric().simulator().now(), depth));
}

ExecutionReport ServiceLoop::CollectFabricReport() const {
  sim::Fabric& fabric = engine_->fabric();
  ExecutionReport report;
  report.variant = "service";
  // Time of the last real service action (stale no-op deadline events in
  // the far future do not count).
  report.sim_ns = last_activity_ns_;
  report.media_bytes = fabric.store_media()->bytes_processed();
  report.network_bytes = fabric.storage_uplink()->bytes_transferred();
  report.interconnect_bytes = fabric.node(0).interconnect->bytes_transferred();
  report.membus_bytes = fabric.node(0).memory_bus->bytes_transferred();
  for (const auto& graph : graphs_) {
    // Sum of per-graph peaks: an upper bound on simultaneous in-flight
    // bytes, comparable across runs of the same workload.
    report.peak_queue_bytes += graph->TotalPeakQueueBytes();
  }
  for (sim::Link* l : fabric.AllLinks()) {
    if (l->num_messages() > 0) {
      report.link_bytes[l->name()] = l->bytes_transferred();
    }
    report.fault.chunks_dropped += l->messages_dropped();
    report.fault.chunks_corrupted += l->messages_corrupted();
  }
  for (sim::Device* d : fabric.AllDevices()) {
    if (d->items_processed() > 0) {
      report.device_busy_ns[d->name()] = d->busy_ns();
    }
    report.fault.device_stalls += d->stalls();
    report.fault.device_stall_ns += d->stall_ns();
  }
  for (const auto& graph : graphs_) {
    const DataflowGraph::RecoveryStats& rs = graph->recovery_stats();
    report.fault.retransmits += rs.retransmits;
    report.fault.delivery_timeouts += rs.delivery_timeouts;
    report.fault.checksum_failures += rs.checksum_failures;
    report.fault.storage_io_errors += rs.storage_io_errors;
    report.fault.storage_retries += rs.storage_retries;
  }
  return report;
}

}  // namespace dflow::serve
