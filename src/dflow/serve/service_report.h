#ifndef DFLOW_SERVE_SERVICE_REPORT_H_
#define DFLOW_SERVE_SERVICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/sim/simulator.h"

namespace dflow::serve {

/// Per-tenant service-level counters for one run. All integers — the
/// report must serialize byte-identically for a given seed.
struct TenantStats {
  std::string name;
  uint64_t arrivals = 0;
  uint64_t admitted = 0;         // started executing on the fabric
  uint64_t queued = 0;           // waited in the queue before starting
  uint64_t shed_queue_full = 0;  // rejected: tenant queue at capacity
  uint64_t shed_overload = 0;    // rejected: global waiting budget spent
  uint64_t completed = 0;
  uint64_t failed = 0;    // admitted but finished with an error
  uint64_t degraded = 0;  // re-admitted CPU-only after a device crash
  uint64_t queue_depth_peak = 0;
  // ---- lifecycle counters (PR 6): distinct terminal outcomes and the
  // retry machinery that produced them.
  uint64_t deadline_missed = 0;   // cancelled with DEADLINE_EXCEEDED
  uint64_t cancelled = 0;         // explicitly cancelled (not deadline)
  uint64_t retries = 0;           // retry attempts scheduled
  uint64_t retry_exhausted = 0;   // failed after spending the retry budget
  uint64_t shed_brownout = 0;     // rejected: brownout ladder shedding
  // Virtual-time latency (arrival -> completion), nearest-rank.
  sim::SimTime p50_ns = 0;
  sim::SimTime p95_ns = 0;
  sim::SimTime p99_ns = 0;
};

/// What one service run measured: the paper's serving-side quantities —
/// per-tenant throughput, shed counts proving admission engaged, and
/// virtual-time tail latency.
struct ServiceReport {
  sim::SimTime makespan_ns = 0;
  uint64_t arrivals_total = 0;
  uint64_t admitted_total = 0;
  uint64_t shed_total = 0;
  uint64_t completed_total = 0;
  uint64_t failed_total = 0;
  uint64_t degraded_total = 0;
  uint64_t peak_in_flight = 0;
  sim::SimTime p99_ns = 0;  // across all tenants' completions
  // ---- lifecycle totals (PR 6).
  uint64_t deadline_missed_total = 0;
  uint64_t cancelled_total = 0;
  uint64_t retries_total = 0;
  uint64_t retry_exhausted_total = 0;
  uint64_t shed_brownout_total = 0;
  uint64_t breaker_transitions = 0;  // circuit-breaker state changes
  uint64_t breaker_probes = 0;       // half-open probe launches
  uint64_t brownout_escalations = 0;
  uint64_t brownout_peak_level = 0;  // highest ladder rung reached
  // ---- program-cache admission counters (PR 9): compile-once serving.
  uint64_t cache_hits = 0;        // admissions served a cached program
  uint64_t cache_misses = 0;      // first sight of a plan: full compile
  uint64_t cache_evictions = 0;   // LRU evictions under capacity pressure
  uint64_t cache_recompiles = 0;  // new variant / post-crash relower only
  uint64_t cache_invalidations = 0;  // entries stranded by an epoch bump
  /// Modeled planning + compilation + verification virtual time summed
  /// over cold admissions (misses and recompiles) vs. warm ones (hits).
  /// Warm ~ admissions * cache-lookup cost; the bench gates the ratio.
  uint64_t cache_planning_ns_cold = 0;
  uint64_t cache_planning_ns_warm = 0;
  std::vector<TenantStats> tenants;

  std::string ToString() const;
};

/// Nearest-rank percentile (q in (0, 1]) over unsorted latency samples;
/// 0 when empty. Deterministic: integer sort + index, no interpolation.
sim::SimTime PercentileNs(std::vector<sim::SimTime> samples, double q);

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_SERVICE_REPORT_H_
