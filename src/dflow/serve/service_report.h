#ifndef DFLOW_SERVE_SERVICE_REPORT_H_
#define DFLOW_SERVE_SERVICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/sim/simulator.h"

namespace dflow::serve {

/// Per-tenant service-level counters for one run. All integers — the
/// report must serialize byte-identically for a given seed.
struct TenantStats {
  std::string name;
  uint64_t arrivals = 0;
  uint64_t admitted = 0;         // started executing on the fabric
  uint64_t queued = 0;           // waited in the queue before starting
  uint64_t shed_queue_full = 0;  // rejected: tenant queue at capacity
  uint64_t shed_overload = 0;    // rejected: global waiting budget spent
  uint64_t completed = 0;
  uint64_t failed = 0;    // admitted but finished with an error
  uint64_t degraded = 0;  // re-admitted CPU-only after a device crash
  uint64_t queue_depth_peak = 0;
  // Virtual-time latency (arrival -> completion), nearest-rank.
  sim::SimTime p50_ns = 0;
  sim::SimTime p95_ns = 0;
  sim::SimTime p99_ns = 0;
};

/// What one service run measured: the paper's serving-side quantities —
/// per-tenant throughput, shed counts proving admission engaged, and
/// virtual-time tail latency.
struct ServiceReport {
  sim::SimTime makespan_ns = 0;
  uint64_t arrivals_total = 0;
  uint64_t admitted_total = 0;
  uint64_t shed_total = 0;
  uint64_t completed_total = 0;
  uint64_t failed_total = 0;
  uint64_t degraded_total = 0;
  uint64_t peak_in_flight = 0;
  sim::SimTime p99_ns = 0;  // across all tenants' completions
  std::vector<TenantStats> tenants;

  std::string ToString() const;
};

/// Nearest-rank percentile (q in (0, 1]) over unsorted latency samples;
/// 0 when empty. Deterministic: integer sort + index, no interpolation.
sim::SimTime PercentileNs(std::vector<sim::SimTime> samples, double q);

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_SERVICE_REPORT_H_
