#include "dflow/serve/service_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dflow::serve {

sim::SimTime PercentileNs(std::vector<sim::SimTime> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: the ceil(q * n)-th smallest sample (1-based). q * n is
  // computed in binary floating point, which can land a hair above the
  // exact product (0.95 * 20 = 19.000000000000004) and inflate the rank by
  // one whole sample; shave an ulp-scale epsilon before taking the ceiling
  // so exact-integer ranks stay exact.
  const double scaled = q * static_cast<double>(samples.size());
  size_t rank = static_cast<size_t>(
      std::ceil(scaled - 1e-9 * std::max(1.0, scaled)));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

std::string ServiceReport::ToString() const {
  std::ostringstream os;
  os << "service: makespan=" << makespan_ns << "ns arrivals=" << arrivals_total
     << " admitted=" << admitted_total << " shed=" << shed_total
     << " completed=" << completed_total << " failed=" << failed_total
     << " degraded=" << degraded_total << " peak_in_flight=" << peak_in_flight
     << " p99=" << p99_ns << "ns";
  if (deadline_missed_total + cancelled_total + retries_total +
          retry_exhausted_total + shed_brownout_total + breaker_transitions +
          breaker_probes + brownout_escalations + brownout_peak_level >
      0) {
    os << "\n  lifecycle: deadline_missed=" << deadline_missed_total
       << " cancelled=" << cancelled_total << " retries=" << retries_total
       << " retry_exhausted=" << retry_exhausted_total
       << " shed_brownout=" << shed_brownout_total
       << " breaker_transitions=" << breaker_transitions
       << " breaker_probes=" << breaker_probes
       << " brownout_escalations=" << brownout_escalations
       << " brownout_peak_level=" << brownout_peak_level;
  }
  if (cache_hits + cache_misses + cache_recompiles > 0) {
    os << "\n  cache: hits=" << cache_hits << " misses=" << cache_misses
       << " evictions=" << cache_evictions
       << " recompiles=" << cache_recompiles
       << " invalidations=" << cache_invalidations
       << " planning_cold=" << cache_planning_ns_cold << "ns"
       << " planning_warm=" << cache_planning_ns_warm << "ns";
  }
  for (const TenantStats& t : tenants) {
    os << "\n  tenant " << t.name << ": arrivals=" << t.arrivals
       << " admitted=" << t.admitted << " queued=" << t.queued
       << " shed="
       << (t.shed_queue_full + t.shed_overload + t.shed_brownout)
       << " completed=" << t.completed << " failed=" << t.failed
       << " degraded=" << t.degraded
       << " deadline_missed=" << t.deadline_missed
       << " cancelled=" << t.cancelled << " retries=" << t.retries
       << " retry_exhausted=" << t.retry_exhausted
       << " depth_peak=" << t.queue_depth_peak << " p50=" << t.p50_ns
       << " p95=" << t.p95_ns << " p99=" << t.p99_ns;
  }
  return os.str();
}

}  // namespace dflow::serve
