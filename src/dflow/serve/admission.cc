#include "dflow/serve/admission.h"

#include "dflow/common/logging.h"

namespace dflow::serve {

const char* RejectCodeName(RejectCode code) {
  switch (code) {
    case RejectCode::kQueueFull:
      return "QUEUE_FULL";
    case RejectCode::kOverload:
      return "OVERLOAD";
    case RejectCode::kBrownout:
      return "BROWNOUT";
  }
  return "UNKNOWN";
}

AdmissionController::AdmissionController(
    AdmissionConfig config, const std::vector<TenantConfig>* tenants)
    : config_(config), tenants_(tenants) {
  DFLOW_CHECK(tenants != nullptr && !tenants->empty());
  queues_.resize(tenants->size());
  in_flight_.resize(tenants->size(), 0);
}

std::optional<RejectCode> AdmissionController::Offer(const Ticket& ticket) {
  RankedMutexLock lock(&mutex_);
  const TenantConfig& tenant = (*tenants_)[ticket.tenant];
  if (queues_[ticket.tenant].size() >= tenant.queue_capacity) {
    return RejectCode::kQueueFull;
  }
  if (queued_total_ >= config_.global_queue_capacity) {
    return RejectCode::kOverload;
  }
  queues_[ticket.tenant].push_back(ticket);
  ++queued_total_;
  return std::nullopt;
}

bool AdmissionController::CanStartLocked(size_t tenant) const {
  if (in_flight_total_ >= config_.global_max_in_flight) return false;
  const size_t cap = (*tenants_)[tenant].max_in_flight;
  return cap == 0 || in_flight_[tenant] < cap;
}

std::optional<Ticket> AdmissionController::PopRunnable() {
  RankedMutexLock lock(&mutex_);
  const size_t n = queues_.size();
  bool found = false;
  size_t best = 0;
  int best_priority = 0;
  // Scan tenants starting after the round-robin cursor so equal-priority
  // classes take turns; a strictly lower priority number always wins.
  for (size_t step = 1; step <= n; ++step) {
    const size_t t = (rr_cursor_ + step) % n;
    if (queues_[t].empty() || !CanStartLocked(t)) continue;
    const int priority = (*tenants_)[t].priority;
    if (!found || priority < best_priority) {
      found = true;
      best = t;
      best_priority = priority;
    }
  }
  if (!found) return std::nullopt;
  Ticket ticket = queues_[best].front();
  queues_[best].pop_front();
  --queued_total_;
  ++in_flight_[best];
  ++in_flight_total_;
  rr_cursor_ = best;
  return ticket;
}

void AdmissionController::OnCompletion(size_t tenant) {
  RankedMutexLock lock(&mutex_);
  DFLOW_CHECK(in_flight_[tenant] > 0 && in_flight_total_ > 0);
  --in_flight_[tenant];
  --in_flight_total_;
}

std::optional<Ticket> AdmissionController::CancelQueued(uint64_t query_id) {
  RankedMutexLock lock(&mutex_);
  for (std::deque<Ticket>& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->query_id != query_id) continue;
      Ticket ticket = *it;
      queue.erase(it);
      --queued_total_;
      return ticket;
    }
  }
  return std::nullopt;
}

}  // namespace dflow::serve
