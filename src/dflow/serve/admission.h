#ifndef DFLOW_SERVE_ADMISSION_H_
#define DFLOW_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/serve/workload.h"
#include "dflow/sim/simulator.h"

namespace dflow::serve {

/// Why an arrival was shed. The names are stable API — they appear in
/// traces, reports, and CI expectations.
enum class RejectCode {
  kQueueFull,  // the tenant's bounded queue is at capacity
  kOverload,   // the global waiting-query budget is exhausted
  kBrownout,   // the brownout ladder is shedding this priority class
};
// "QUEUE_FULL" / "OVERLOAD" / "BROWNOUT"
const char* RejectCodeName(RejectCode code);

struct AdmissionConfig {
  /// Queries executing concurrently on the fabric, across all tenants.
  size_t global_max_in_flight = 4;
  /// Queries waiting in queues, across all tenants; beyond this every
  /// arrival is shed with OVERLOAD regardless of tenant-queue headroom.
  size_t global_queue_capacity = 64;
};

/// One admitted-or-waiting query.
struct Ticket {
  uint64_t query_id = 0;
  size_t tenant = 0;
  size_t template_index = 0;
  sim::SimTime arrival_ns = 0;
  bool closed_loop = false;  // reissue on completion
};

/// Bounded-queue admission control with priority classes.
///
/// Arrivals are offered; an offer either enters the owning tenant's FIFO
/// queue or is shed with a stable rejection code. The service loop then
/// pops runnable tickets: lowest priority number first, FIFO within a
/// tenant, round-robin across tenants of equal priority, subject to the
/// global and per-tenant in-flight caps. An arrival that finds the fabric
/// idle is popped in the same event, so "admit immediately" is just
/// Offer + Pop at one timestamp.
///
/// The controller is a monitor: every queue and counter is guarded by one
/// mutex at LockRank::kAdmission, and no method calls out while holding
/// it. The service loop is single-threaded today; the lock makes the
/// controller safe for the roadmap's adaptive re-placement thread, which
/// must read queue depths concurrently with the event loop.
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config,
                      const std::vector<TenantConfig>* tenants);

  /// Queues the ticket or sheds it (returned code says why).
  std::optional<RejectCode> Offer(const Ticket& ticket)
      DFLOW_EXCLUDES(mutex_);

  /// Highest-priority runnable waiting ticket, if any; marks it in
  /// flight.
  std::optional<Ticket> PopRunnable() DFLOW_EXCLUDES(mutex_);

  /// A query finished (or was failed); frees its in-flight slot.
  void OnCompletion(size_t tenant) DFLOW_EXCLUDES(mutex_);

  /// Removes a still-queued ticket (deadline hit or explicit cancel before
  /// launch). Returns the ticket if it was found waiting.
  std::optional<Ticket> CancelQueued(uint64_t query_id)
      DFLOW_EXCLUDES(mutex_);

  size_t queued(size_t tenant) const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return queues_[tenant].size();
  }
  size_t queued_total() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return queued_total_;
  }
  size_t in_flight(size_t tenant) const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return in_flight_[tenant];
  }
  size_t in_flight_total() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return in_flight_total_;
  }

 private:
  bool CanStartLocked(size_t tenant) const DFLOW_REQUIRES(mutex_);

  AdmissionConfig config_;
  const std::vector<TenantConfig>* tenants_;
  mutable RankedMutex mutex_{LockRank::kAdmission};
  std::vector<std::deque<Ticket>> queues_ DFLOW_GUARDED_BY(mutex_);
  std::vector<size_t> in_flight_ DFLOW_GUARDED_BY(mutex_);
  size_t in_flight_total_ DFLOW_GUARDED_BY(mutex_) = 0;
  size_t queued_total_ DFLOW_GUARDED_BY(mutex_) = 0;
  /// Last tenant popped; equal-priority ties go to the next tenant after
  /// it in index order (fair round-robin, fully deterministic).
  size_t rr_cursor_ DFLOW_GUARDED_BY(mutex_) = 0;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_ADMISSION_H_
