#include "dflow/serve/workload.h"

#include <algorithm>

#include "dflow/common/logging.h"

namespace dflow::serve {

namespace {

// Distinct, fixed stream tags keep the per-tenant RNG sequences
// independent of each other and of call interleaving.
constexpr uint64_t kArrivalStream = 0x61727276ULL;  // "arrv"
constexpr uint64_t kMixStream = 0x6d697874ULL;      // "mixt"

uint64_t TenantSeed(uint64_t base, size_t tenant, uint64_t stream) {
  // SplitMix-style mix of (base, tenant, stream); any bijective-ish hash
  // works, it only has to decorrelate the streams deterministically.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (tenant + 1) + stream;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

WorkloadDriver::WorkloadDriver(std::vector<TenantConfig> tenants,
                               uint64_t seed, sim::SimTime horizon_ns)
    : tenants_(std::move(tenants)), horizon_ns_(horizon_ns) {
  for (size_t t = 0; t < tenants_.size(); ++t) {
    DFLOW_CHECK(!tenants_[t].templates.empty());
    DFLOW_CHECK(tenants_[t].slot_ns > 0);
    arrival_rng_.emplace_back(TenantSeed(seed, t, kArrivalStream));
    mix_rng_.emplace_back(TenantSeed(seed, t, kMixStream));
  }
}

std::vector<Arrival> WorkloadDriver::OpenLoopArrivals() {
  std::vector<Arrival> arrivals;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    const TenantConfig& tenant = tenants_[t];
    if (tenant.arrival_probability <= 0) continue;
    Random& rng = arrival_rng_[t];
    for (sim::SimTime slot = 0; slot < horizon_ns_; slot += tenant.slot_ns) {
      if (!rng.NextBool(tenant.arrival_probability)) continue;
      Arrival a;
      a.at = slot + rng.NextUint64(tenant.slot_ns);
      a.tenant = t;
      a.template_index = PickTemplate(t);
      if (a.at < horizon_ns_) arrivals.push_back(a);
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at != b.at ? a.at < b.at : a.tenant < b.tenant;
                   });
  return arrivals;
}

size_t WorkloadDriver::PickTemplate(size_t tenant) {
  const std::vector<TemplateMix>& mix = tenants_[tenant].templates;
  uint64_t total = 0;
  for (const TemplateMix& m : mix) total += m.weight;
  DFLOW_CHECK(total > 0);
  uint64_t r = mix_rng_[tenant].NextUint64(total);
  for (size_t i = 0; i < mix.size(); ++i) {
    if (r < mix[i].weight) return i;
    r -= mix[i].weight;
  }
  return mix.size() - 1;
}

sim::SimTime WorkloadDriver::InitialIssueTime(size_t tenant) {
  return arrival_rng_[tenant].NextUint64(tenants_[tenant].slot_ns);
}

sim::SimTime WorkloadDriver::NextThinkTime(size_t tenant) {
  const TenantConfig& t = tenants_[tenant];
  return t.think_time_ns + arrival_rng_[tenant].NextUint64(t.slot_ns);
}

}  // namespace dflow::serve
