#ifndef DFLOW_OPT_PLACEMENT_H_
#define DFLOW_OPT_PLACEMENT_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/sim/fabric.h"

namespace dflow {

/// The processing sites along the data path of Figure 6, in flow order.
enum class Site : uint8_t {
  kStorageProc = 0,
  kStorageNic = 1,
  kComputeNic = 2,
  kNearMemory = 3,
  kCpu = 4,
};
inline constexpr int kNumSites = 5;

std::string_view SiteToString(Site site);

/// A streaming stage the optimizer can place. Non-offloadable stages
/// (unbounded state: final aggregation, join build, sort) are pinned to the
/// CPU.
struct StageDesc {
  std::string label;
  sim::CostClass cost_class = sim::CostClass::kFilter;
  /// Estimated bytes-out / bytes-in.
  double reduction = 1.0;
  bool offloadable = true;
};

/// One candidate layout: stage i runs at sites[i]; sites are non-decreasing
/// along the flow (data never moves backwards).
struct Placement {
  std::vector<Site> sites;
  std::string name;
};

/// Cost-model output for one placement. `makespan_ns` is a bottleneck
/// estimate (pipeline throughput limited by the slowest device or hop plus
/// fixed latencies); `network_bytes` is the headline data-movement number —
/// what crosses the storage uplink (§1: "data movement cost in a
/// disaggregated setting as a first-class concern").
struct CostEstimate {
  double makespan_ns = 0;
  uint64_t network_bytes = 0;
  uint64_t interconnect_bytes = 0;
  uint64_t membus_bytes = 0;
  std::array<double, kNumSites> device_busy_ns{};
  double media_ns = 0;
};

struct RankedPlacement {
  Placement placement;
  CostEstimate cost;
};

/// Enumerates every monotone assignment of stages to sites (skipping
/// placements where a device lacks the stage's functional unit or the
/// stage is not offloadable) and returns them sorted by estimated makespan,
/// network bytes breaking ties. The first entry is what a
/// movement-cost-first optimizer picks; the full list is the set of "data
/// path alternatives" §7.3 wants every plan to carry.
class PlacementOptimizer {
 public:
  struct Input {
    double input_bytes = 0;  // encoded bytes leaving the media
    double media_ns = 0;     // media read time for the whole input
    std::vector<StageDesc> stages;
    sim::FabricConfig config;
  };

  explicit PlacementOptimizer(const Input& input);

  /// All valid placements, best first. Never empty for valid stages (the
  /// all-CPU placement always exists).
  std::vector<RankedPlacement> Enumerate() const;

  /// Costs one specific site assignment.
  Result<CostEstimate> Cost(const std::vector<Site>& sites) const;

  /// The all-CPU placement (the "plan entirely executed on a compute
  /// node", §7.3).
  Placement CpuOnly() const;

  /// The most aggressive valid offload: each stage at the earliest site
  /// that supports it.
  Placement FullOffload() const;

 private:
  bool SiteSupports(Site site, const StageDesc& stage) const;
  static std::string PlacementName(const std::vector<Site>& sites,
                                   const std::vector<StageDesc>& stages);

  Input input_;
  // Rate tables per site, indexed [site][cost class], bytes/ns.
  std::array<std::unique_ptr<sim::Device>, kNumSites> site_models_;
};

}  // namespace dflow

#endif  // DFLOW_OPT_PLACEMENT_H_
