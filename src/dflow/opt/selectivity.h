#ifndef DFLOW_OPT_SELECTIVITY_H_
#define DFLOW_OPT_SELECTIVITY_H_

#include "dflow/plan/expr.h"
#include "dflow/storage/table.h"

namespace dflow {

/// Fraction of rows a `col op constant` conjunct keeps, estimated from the
/// column's table-level zone map (uniformity assumption over [min, max]).
double EstimateCompareSelectivity(CompareOp op, const ZoneMap& zone,
                                  const Value& constant);

/// Selectivity of an arbitrary predicate against `table`:
/// column-vs-constant comparisons use zone maps, LIKE uses a fixed default,
/// AND multiplies, OR adds with the inclusion-exclusion bound, NOT inverts,
/// anything unknown defaults to 1/3.
double EstimatePredicateSelectivity(const ExprPtr& predicate,
                                    const Table& table);

/// Default selectivity for shapes we cannot estimate.
inline constexpr double kDefaultSelectivity = 1.0 / 3.0;
inline constexpr double kDefaultLikeSelectivity = 0.1;
inline constexpr double kDefaultEqSelectivity = 0.01;

}  // namespace dflow

#endif  // DFLOW_OPT_SELECTIVITY_H_
