#include "dflow/opt/placement.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "dflow/common/logging.h"

namespace dflow {

std::string_view SiteToString(Site site) {
  switch (site) {
    case Site::kStorageProc:
      return "storage";
    case Site::kStorageNic:
      return "snic";
    case Site::kComputeNic:
      return "cnic";
    case Site::kNearMemory:
      return "nearmem";
    case Site::kCpu:
      return "cpu";
  }
  return "?";
}

PlacementOptimizer::PlacementOptimizer(const Input& input) : input_(input) {
  site_models_[0] = std::make_unique<sim::Device>("m_storage");
  sim::ConfigureStorageProcDevice(site_models_[0].get(), input.config);
  site_models_[1] = std::make_unique<sim::Device>("m_snic");
  sim::ConfigureNicDevice(site_models_[1].get(), input.config);
  site_models_[2] = std::make_unique<sim::Device>("m_cnic");
  sim::ConfigureNicDevice(site_models_[2].get(), input.config);
  site_models_[3] = std::make_unique<sim::Device>("m_nearmem");
  sim::ConfigureNearMemDevice(site_models_[3].get(), input.config);
  site_models_[4] = std::make_unique<sim::Device>("m_cpu");
  sim::ConfigureCpuDevice(site_models_[4].get(), input.config);
}

bool PlacementOptimizer::SiteSupports(Site site,
                                      const StageDesc& stage) const {
  if (site != Site::kCpu && !stage.offloadable) return false;
  return site_models_[static_cast<int>(site)]->Supports(stage.cost_class);
}

std::string PlacementOptimizer::PlacementName(
    const std::vector<Site>& sites, const std::vector<StageDesc>& stages) {
  std::string name;
  for (size_t i = 0; i < sites.size(); ++i) {
    if (i > 0) name += ",";
    name += stages[i].label;
    name += "@";
    name += SiteToString(sites[i]);
  }
  return name;
}

Result<CostEstimate> PlacementOptimizer::Cost(
    const std::vector<Site>& sites) const {
  if (sites.size() != input_.stages.size()) {
    return Status::InvalidArgument("placement arity mismatch");
  }
  for (size_t i = 0; i < sites.size(); ++i) {
    if (i > 0 && sites[i] < sites[i - 1]) {
      return Status::InvalidArgument("placement must be monotone along the path");
    }
    if (!SiteSupports(sites[i], input_.stages[i])) {
      return Status::InvalidArgument(
          "site " + std::string(SiteToString(sites[i])) +
          " cannot host stage '" + input_.stages[i].label + "'");
    }
  }
  CostEstimate est;
  est.media_ns = input_.media_ns;

  // Device busy time per site and bytes at each path boundary.
  double bytes = input_.input_bytes;
  // bytes_after_site[s]: bytes flowing past site s toward s+1.
  std::array<double, kNumSites> bytes_after;
  size_t stage = 0;
  for (int s = 0; s < kNumSites; ++s) {
    while (stage < sites.size() && static_cast<int>(sites[stage]) == s) {
      const StageDesc& d = input_.stages[stage];
      const double rate =
          site_models_[s]->RateGbps(d.cost_class);  // bytes per ns
      est.device_busy_ns[s] += bytes / rate;
      bytes *= d.reduction;
      ++stage;
    }
    bytes_after[s] = bytes;
  }

  const sim::FabricConfig& c = input_.config;
  const double ic_gbps = c.use_cxl ? c.cxl_gbps : c.interconnect_gbps;
  const double ic_latency = static_cast<double>(
      c.use_cxl ? c.cxl_latency_ns : c.interconnect_latency_ns);
  // Hop h carries bytes_after[h]: h=0 on-node (free), h=1 network,
  // h=2 interconnect, h=3 memory bus.
  const double network_gbps =
      std::min(c.storage_uplink_gbps, c.network_gbps);
  const double hop_ns[4] = {
      0.0,
      bytes_after[1] / network_gbps,
      bytes_after[2] / ic_gbps,
      bytes_after[3] / c.memory_bus_gbps,
  };
  est.network_bytes = static_cast<uint64_t>(bytes_after[1]);
  est.interconnect_bytes = static_cast<uint64_t>(bytes_after[2]);
  est.membus_bytes = static_cast<uint64_t>(bytes_after[3]);

  double bottleneck = input_.media_ns;
  for (double busy : est.device_busy_ns) bottleneck = std::max(bottleneck, busy);
  for (double hop : hop_ns) bottleneck = std::max(bottleneck, hop);
  const double fixed_latency =
      static_cast<double>(c.storage_uplink_latency_ns) +
      static_cast<double>(c.network_latency_ns) + ic_latency +
      static_cast<double>(c.memory_bus_latency_ns);
  est.makespan_ns = bottleneck + fixed_latency;
  return est;
}

std::vector<RankedPlacement> PlacementOptimizer::Enumerate() const {
  std::vector<RankedPlacement> ranked;
  std::vector<Site> current(input_.stages.size());
  // Depth-first enumeration of monotone assignments.
  std::function<void(size_t, int)> recurse = [&](size_t stage, int min_site) {
    if (stage == current.size()) {
      Result<CostEstimate> cost = Cost(current);
      if (cost.ok()) {
        ranked.push_back(RankedPlacement{
            Placement{current, PlacementName(current, input_.stages)},
            cost.ValueOrDie()});
      }
      return;
    }
    for (int s = min_site; s < kNumSites; ++s) {
      if (!SiteSupports(static_cast<Site>(s), input_.stages[stage])) continue;
      current[stage] = static_cast<Site>(s);
      recurse(stage + 1, s);
    }
  };
  if (!current.empty()) {
    recurse(0, 0);
  } else {
    Result<CostEstimate> cost = Cost({});
    if (cost.ok()) {
      ranked.push_back(
          RankedPlacement{Placement{{}, "empty"}, cost.ValueOrDie()});
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedPlacement& a, const RankedPlacement& b) {
                     if (a.cost.makespan_ns != b.cost.makespan_ns) {
                       return a.cost.makespan_ns < b.cost.makespan_ns;
                     }
                     return a.cost.network_bytes < b.cost.network_bytes;
                   });
  return ranked;
}

Placement PlacementOptimizer::CpuOnly() const {
  std::vector<Site> sites(input_.stages.size(), Site::kCpu);
  return Placement{sites, PlacementName(sites, input_.stages)};
}

Placement PlacementOptimizer::FullOffload() const {
  std::vector<Site> sites;
  int min_site = 0;
  for (const StageDesc& stage : input_.stages) {
    int chosen = kNumSites - 1;
    for (int s = min_site; s < kNumSites; ++s) {
      if (SiteSupports(static_cast<Site>(s), stage)) {
        chosen = s;
        break;
      }
    }
    sites.push_back(static_cast<Site>(chosen));
    min_site = chosen;
  }
  return Placement{sites, PlacementName(sites, input_.stages)};
}

}  // namespace dflow
