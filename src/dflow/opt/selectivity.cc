#include "dflow/opt/selectivity.h"

#include <algorithm>

namespace dflow {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

// Position of `c` within [min, max] as a fraction; 0.5 when degenerate.
double RangeFraction(const ZoneMap& zone, const Value& c) {
  if (!zone.valid) return 0.0;
  if (!IsNumeric(c.type()) && c.type() != DataType::kDate32) return 0.5;
  const double lo = zone.min.AsDouble();
  const double hi = zone.max.AsDouble();
  if (hi <= lo) return 0.5;
  return Clamp01((c.AsDouble() - lo) / (hi - lo));
}

}  // namespace

double EstimateCompareSelectivity(CompareOp op, const ZoneMap& zone,
                                  const Value& constant) {
  if (constant.is_null()) return 0.0;
  if (!zone.valid) return kDefaultSelectivity;
  // Out-of-range constants first.
  if (constant.Compare(zone.min) < 0) {
    switch (op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
      case CompareOp::kEq:
        return 0.0;
      default:
        return 1.0;
    }
  }
  if (constant.Compare(zone.max) > 0) {
    switch (op) {
      case CompareOp::kGt:
      case CompareOp::kGe:
      case CompareOp::kEq:
        return 0.0;
      default:
        return 1.0;
    }
  }
  switch (op) {
    case CompareOp::kEq:
      return kDefaultEqSelectivity;
    case CompareOp::kNe:
      return 1.0 - kDefaultEqSelectivity;
    case CompareOp::kLt:
    case CompareOp::kLe:
      return Clamp01(RangeFraction(zone, constant));
    case CompareOp::kGt:
    case CompareOp::kGe:
      return Clamp01(1.0 - RangeFraction(zone, constant));
  }
  return kDefaultSelectivity;
}

double EstimatePredicateSelectivity(const ExprPtr& predicate,
                                    const Table& table) {
  if (predicate == nullptr) return 1.0;
  switch (predicate->kind()) {
    case Expr::Kind::kCompare: {
      if (!predicate->IsColumnConstantCompare()) return kDefaultSelectivity;
      const ExprPtr& col = predicate->children()[0];
      size_t idx;
      if (col->is_resolved()) {
        idx = col->column_index();
      } else {
        auto r = table.schema().FieldIndex(col->column_name());
        if (!r.ok()) return kDefaultSelectivity;
        idx = r.ValueOrDie();
      }
      if (idx >= table.schema().num_fields()) return kDefaultSelectivity;
      return EstimateCompareSelectivity(predicate->compare_op(),
                                        table.table_zone_map(idx),
                                        predicate->children()[1]->value());
    }
    case Expr::Kind::kLike:
      return kDefaultLikeSelectivity;
    case Expr::Kind::kAnd: {
      double s = 1.0;
      for (const ExprPtr& c : predicate->children()) {
        s *= EstimatePredicateSelectivity(c, table);
      }
      return s;
    }
    case Expr::Kind::kOr: {
      double keep_none = 1.0;
      for (const ExprPtr& c : predicate->children()) {
        keep_none *= 1.0 - EstimatePredicateSelectivity(c, table);
      }
      return 1.0 - keep_none;
    }
    case Expr::Kind::kNot:
      return 1.0 -
             EstimatePredicateSelectivity(predicate->children()[0], table);
    default:
      return kDefaultSelectivity;
  }
}

}  // namespace dflow
