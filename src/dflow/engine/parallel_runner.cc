// ExecMode::kParallel: Engine entry points for the morsel-driven real-
// thread executor, plus the QuerySpec -> ParallelPipelineSpec lowering.
//
// The simulator stays the oracle: these paths must produce byte-identical
// canonical results (DiffRunner's real-parallel lane enforces it against
// the Volcano reference for every fuzzed plan).

#include "dflow/engine/parallel_runner.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dflow/exec/aggregate.h"
#include "dflow/exec/filter.h"
#include "dflow/exec/misc_ops.h"
#include "dflow/exec/parallel/parallel_join.h"
#include "dflow/exec/project.h"
#include "dflow/exec/scan.h"

namespace dflow {

namespace {

/// Output schema of the worker chain: what the merge chain receives.
Result<Schema> WorkerOutputSchema(const Engine::PreparedQuery& prepared,
                                  const QuerySpec& spec) {
  if (spec.count_only) return CountOperator().output_schema();
  if (!spec.aggregates.empty()) {
    DFLOW_ASSIGN_OR_RETURN(
        OperatorPtr proto,
        HashAggregateOperator::Make(prepared.after_project, spec.group_by,
                                    spec.aggregates, AggMode::kPartial));
    return proto->output_schema();
  }
  return prepared.after_project;
}

/// Output schema of the merge chain: what ORDER BY / LIMIT receive.
Result<Schema> MergedOutputSchema(const Engine::PreparedQuery& prepared,
                                  const QuerySpec& spec) {
  if (spec.count_only) return CountOperator().output_schema();
  if (!spec.aggregates.empty()) {
    DFLOW_ASSIGN_OR_RETURN(Schema partial,
                           WorkerOutputSchema(prepared, spec));
    DFLOW_ASSIGN_OR_RETURN(
        OperatorPtr proto,
        HashAggregateOperator::Make(partial, spec.group_by,
                                    MakeMergeSpecs(spec.aggregates),
                                    AggMode::kFinal));
    return proto->output_schema();
  }
  return prepared.after_project;
}

}  // namespace

Result<parallel::ParallelPipelineSpec> BuildParallelPipelineSpec(
    const Engine::PreparedQuery& prepared, const QuerySpec& spec) {
  parallel::ParallelPipelineSpec pipeline;

  // Worker chain: streaming stages plus worker-local bounded state. One
  // instance per worker; the captured resolved expressions are shared and
  // const-evaluated, which is thread-safe.
  pipeline.make_worker_chain =
      [prepared, spec]() -> Result<std::vector<OperatorPtr>> {
    std::vector<OperatorPtr> ops;
    if (prepared.filter != nullptr) {
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          FilterOperator::Make(prepared.filter, prepared.scan_schema));
      ops.push_back(std::move(op));
    }
    if (!prepared.projections.empty()) {
      std::vector<ExprPtr> exprs = prepared.projections;
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          ProjectOperator::Make(std::move(exprs), spec.projection_names,
                                prepared.scan_schema));
      ops.push_back(std::move(op));
    }
    if (spec.count_only) {
      ops.push_back(OperatorPtr(new CountOperator()));
    } else if (!spec.aggregates.empty()) {
      // Unbounded worker-local pre-aggregation (max_groups = 0): the
      // worker never flushes early, so the merge sees exactly one partial
      // state per (worker, group).
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          HashAggregateOperator::Make(prepared.after_project, spec.group_by,
                                      spec.aggregates, AggMode::kPartial));
      ops.push_back(std::move(op));
    }
    return ops;
  };

  // Merge chain: combines the workers' partial states exactly.
  if (spec.count_only) {
    pipeline.make_merge_chain =
        [prepared, spec]() -> Result<std::vector<OperatorPtr>> {
      DFLOW_ASSIGN_OR_RETURN(Schema count_schema,
                             WorkerOutputSchema(prepared, spec));
      // Each worker's CountOperator emits one row (possibly zero); the sum
      // of the per-worker counts is the global COUNT(*).
      std::vector<AggSpec> sum_counts{{AggFunc::kSum, "count", "count"}};
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          HashAggregateOperator::Make(count_schema, {}, sum_counts,
                                      AggMode::kComplete));
      std::vector<OperatorPtr> ops;
      ops.push_back(std::move(op));
      return ops;
    };
  } else if (!spec.aggregates.empty()) {
    pipeline.make_merge_chain =
        [prepared, spec]() -> Result<std::vector<OperatorPtr>> {
      DFLOW_ASSIGN_OR_RETURN(Schema partial,
                             WorkerOutputSchema(prepared, spec));
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr op,
          HashAggregateOperator::Make(partial, spec.group_by,
                                      MakeMergeSpecs(spec.aggregates),
                                      AggMode::kFinal));
      std::vector<OperatorPtr> ops;
      ops.push_back(std::move(op));
      return ops;
    };
  }

  // Without a total order from the query itself, canonically order the
  // merged rows so downstream stages (and the client) see a stream that
  // never depends on scheduling.
  pipeline.canonical_order = !spec.order_by.has_value();

  if (spec.order_by.has_value() || spec.limit > 0) {
    pipeline.make_output_chain =
        [prepared, spec]() -> Result<std::vector<OperatorPtr>> {
      DFLOW_ASSIGN_OR_RETURN(Schema merged,
                             MergedOutputSchema(prepared, spec));
      std::vector<OperatorPtr> ops;
      if (spec.order_by.has_value()) {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr op,
            SortOperator::Make(merged, spec.order_by->column,
                               spec.order_by->descending,
                               spec.order_by->limit));
        ops.push_back(std::move(op));
      }
      if (spec.limit > 0) {
        ops.push_back(OperatorPtr(new LimitOperator(merged, spec.limit)));
      }
      return ops;
    };
  }

  return pipeline;
}

Result<QueryResult> Engine::ExecuteParallel(const QuerySpec& spec,
                                            const ExecOptions& options) {
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(prepared.table, prepared.scan_columns,
                            prepared.filter));
  TableScanSource::ScanStats scan_stats;
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches,
                         scan.Produce(&scan_stats));
  std::vector<DataChunk> inputs;
  for (ScanBatch& b : batches) {
    for (ScanChunk& sc : b.chunks) inputs.push_back(std::move(sc.chunk));
  }

  DFLOW_ASSIGN_OR_RETURN(parallel::ParallelPipelineSpec pipeline,
                         BuildParallelPipelineSpec(prepared, spec));
  parallel::ParallelExecOptions popt;
  popt.workers = std::max(1u, options.parallel_workers);
  popt.morsel_rows = options.morsel_rows;
  popt.queue_capacity = options.credits;

  QueryResult result;
  DFLOW_ASSIGN_OR_RETURN(
      result.chunks,
      parallel::RunMorselPipeline(inputs, pipeline, popt, &result.parallel));
  result.report.variant = "real-parallel:w" + std::to_string(popt.workers);
  result.report.sim_ns = 0;  // no simulated time in this mode
  uint64_t rows = 0;
  for (const DataChunk& c : result.chunks) rows += c.num_rows();
  result.report.result_rows = rows;
  result.report.scan = scan_stats;
  return result;
}

Result<JoinRunResult> Engine::ExecuteParallelJoin(const JoinSpec& spec,
                                                  const ExecOptions& options) {
  if (spec.num_nodes < 1) {
    return Status::InvalidArgument("join needs >= 1 partition");
  }
  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Table> build_table,
                         catalog_.Lookup(spec.build_table));
  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Table> probe_table,
                         catalog_.Lookup(spec.probe_table));

  parallel::ParallelJoinInputs inputs;
  inputs.build_schema = build_table->schema();
  inputs.probe_schema = probe_table->schema();
  DFLOW_ASSIGN_OR_RETURN(inputs.build_key,
                         build_table->schema().FieldIndex(spec.build_key));
  DFLOW_ASSIGN_OR_RETURN(inputs.probe_key,
                         probe_table->schema().FieldIndex(spec.probe_key));
  // Partition count mirrors the simulated plan's num_nodes, so the
  // per-partition counts line up with the per-node sink counts.
  inputs.partitions = static_cast<uint32_t>(spec.num_nodes);
  if (spec.probe_filter != nullptr) {
    DFLOW_ASSIGN_OR_RETURN(
        inputs.probe_filter,
        Expr::Resolve(spec.probe_filter, probe_table->schema()));
  }

  {
    DFLOW_ASSIGN_OR_RETURN(TableScanSource scan,
                           TableScanSource::Make(build_table, {}, nullptr));
    DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
    for (ScanBatch& b : batches) {
      for (ScanChunk& sc : b.chunks) {
        inputs.build_chunks.push_back(std::move(sc.chunk));
      }
    }
  }
  TableScanSource::ScanStats scan_stats;
  {
    // Zone pruning via the filter; the surviving rows still get the row
    // filter inside the join's probe tasks.
    DFLOW_ASSIGN_OR_RETURN(
        TableScanSource scan,
        TableScanSource::Make(probe_table, {}, inputs.probe_filter));
    DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches,
                           scan.Produce(&scan_stats));
    for (ScanBatch& b : batches) {
      for (ScanChunk& sc : b.chunks) {
        inputs.probe_chunks.push_back(std::move(sc.chunk));
      }
    }
  }

  parallel::ParallelExecOptions popt;
  popt.workers = std::max(1u, options.parallel_workers);
  popt.morsel_rows = options.morsel_rows;
  popt.queue_capacity = options.credits;

  JoinRunResult result;
  DFLOW_ASSIGN_OR_RETURN(
      parallel::ParallelJoinResult joined,
      parallel::RunParallelHashJoin(inputs, popt, &result.parallel));
  result.node_counts = std::move(joined.partition_counts);
  result.total_rows = joined.total_rows;
  result.report.variant =
      "real-parallel-join:w" + std::to_string(popt.workers);
  result.report.sim_ns = 0;
  result.report.result_rows = static_cast<uint64_t>(result.total_rows);
  result.report.scan = scan_stats;
  return result;
}

}  // namespace dflow
