#ifndef DFLOW_ENGINE_REPORT_H_
#define DFLOW_ENGINE_REPORT_H_

#include <map>
#include <string>

#include "dflow/exec/scan.h"
#include "dflow/sim/simulator.h"

namespace dflow {

/// What one simulated execution measured. These are the paper's quantities:
/// completion time, bytes over each segment of the data path, device busy
/// time, and the engine's in-flight memory under credit flow control.
struct ExecutionReport {
  std::string variant;
  sim::SimTime sim_ns = 0;
  uint64_t result_rows = 0;

  /// Encoded bytes read off the storage media.
  uint64_t media_bytes = 0;
  /// Bytes that crossed the storage uplink (the disaggregation boundary —
  /// the headline data-movement number).
  uint64_t network_bytes = 0;
  /// Bytes that crossed node 0's NIC->memory interconnect.
  uint64_t interconnect_bytes = 0;
  /// Bytes that crossed node 0's memory bus toward the CPU.
  uint64_t membus_bytes = 0;

  /// Peak bytes simultaneously queued/in flight across all pipeline edges.
  uint64_t peak_queue_bytes = 0;

  std::map<std::string, uint64_t> link_bytes;
  std::map<std::string, uint64_t> device_busy_ns;

  TableScanSource::ScanStats scan;

  std::string ToString() const;
};

}  // namespace dflow

#endif  // DFLOW_ENGINE_REPORT_H_
