#ifndef DFLOW_ENGINE_REPORT_H_
#define DFLOW_ENGINE_REPORT_H_

#include <map>
#include <string>

#include "dflow/exec/scan.h"
#include "dflow/sim/simulator.h"
#include "dflow/verify/verify_report.h"

namespace dflow {

/// What the recovery layer did during one execution under an unreliable
/// fabric (all zero when no fault injector is armed).
struct FaultReport {
  uint64_t chunks_dropped = 0;      // link-level drops observed
  uint64_t chunks_corrupted = 0;    // link-level corruptions observed
  uint64_t retransmits = 0;         // sender retries after delivery timeout
  uint64_t delivery_timeouts = 0;   // watchdog expirations
  uint64_t checksum_failures = 0;   // receiver-side verification failures
  uint64_t storage_io_errors = 0;   // injected object-store request failures
  uint64_t storage_retries = 0;     // storage read retries
  uint64_t device_stalls = 0;       // transient device stalls served
  uint64_t device_stall_ns = 0;     // total stall time
  bool cpu_fallback = false;        // accelerator died; CPU-only plan re-ran
  std::string failed_device;        // name of the crashed device, if any

  bool Any() const {
    return chunks_dropped + chunks_corrupted + retransmits +
                   delivery_timeouts + checksum_failures + storage_io_errors +
                   storage_retries + device_stalls >
               0 ||
           cpu_fallback || !failed_device.empty();
  }
};

/// What one simulated execution measured. These are the paper's quantities:
/// completion time, bytes over each segment of the data path, device busy
/// time, and the engine's in-flight memory under credit flow control.
struct ExecutionReport {
  std::string variant;
  sim::SimTime sim_ns = 0;
  uint64_t result_rows = 0;

  /// Encoded bytes read off the storage media.
  uint64_t media_bytes = 0;
  /// Bytes that crossed the storage uplink (the disaggregation boundary —
  /// the headline data-movement number).
  uint64_t network_bytes = 0;
  /// Bytes that crossed node 0's NIC->memory interconnect.
  uint64_t interconnect_bytes = 0;
  /// Bytes that crossed node 0's memory bus toward the CPU.
  uint64_t membus_bytes = 0;

  /// Peak bytes simultaneously queued/in flight across all pipeline edges.
  uint64_t peak_queue_bytes = 0;

  std::map<std::string, uint64_t> link_bytes;
  std::map<std::string, uint64_t> device_busy_ns;

  TableScanSource::ScanStats scan;

  FaultReport fault;

  /// What the static plan verifier found before this run (empty when
  /// ExecOptions::verify was kOff).
  verify::VerifyReport verify;

  std::string ToString() const;
};

}  // namespace dflow

#endif  // DFLOW_ENGINE_REPORT_H_
