#ifndef DFLOW_ENGINE_ENGINE_H_
#define DFLOW_ENGINE_ENGINE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dflow/compile/fuse.h"
#include "dflow/compile/program.h"
#include "dflow/engine/report.h"
#include "dflow/engine/volcano_runner.h"
#include "dflow/exec/dataflow.h"
#include "dflow/exec/parallel/parallel_executor.h"
#include "dflow/opt/placement.h"
#include "dflow/plan/query_spec.h"
#include "dflow/storage/catalog.h"
#include "dflow/trace/tracer.h"
#include "dflow/verify/verifier.h"

namespace dflow {

namespace compile {
struct CompiledQuery;
}  // namespace compile

/// Which data-path alternative to run (§7.3's plan variants).
enum class PlacementChoice {
  kAuto,         // movement-cost-first optimizer picks
  kCpuOnly,      // the traditional CPU-centric plan
  kFullOffload,  // every stage at the earliest capable site
};

/// How Engine::Execute actually runs the plan.
enum class ExecMode {
  /// The discrete-event simulator over the modeled fabric (the default,
  /// and the oracle every other mode is differential-tested against).
  kSimulated,
  /// Real threads on the host: the morsel-driven work-stealing executor
  /// (src/dflow/exec/parallel/). No fabric, no placement, no simulated
  /// time — wall-clock performance with byte-identical results.
  kParallel,
};

struct ExecOptions {
  PlacementChoice placement = PlacementChoice::kAuto;
  /// Simulator (default) or the real multithreaded executor.
  ExecMode mode = ExecMode::kSimulated;
  /// Worker threads for ExecMode::kParallel (>= 1).
  uint32_t parallel_workers = 4;
  /// Rows per morsel for ExecMode::kParallel (0 = library default).
  size_t morsel_rows = parallel::kDefaultMorselRows;
  /// Credits (chunks in flight) per pipeline edge.
  uint32_t credits = 8;
  /// DMA rate limit on the network edge, Gbps (0 = none). Set by the
  /// scheduler to tame background queries.
  double network_rate_limit_gbps = 0.0;
  /// Compute node hosting the query's final stages.
  int node = 0;
  /// Reset fabric clock/stats before running (disable to chain phases).
  bool reset_fabric = true;
  /// Observability: when trace.enabled, the engine records a virtual-time
  /// event trace of the run (device/link/stage/edge timelines), retrievable
  /// via Engine::tracer(). Tracing never changes scheduling or results.
  trace::TraceOptions trace;
  /// Static plan verification before execution. kStrict (the process-wide
  /// default) refuses to run a graph with verifier errors; kWarn records
  /// the report in ExecutionReport::verify but runs anyway; kOff skips the
  /// pass. Benches override the default via --dflow_verify=.
  verify::VerifyMode verify = verify::DefaultMode();
};

struct QueryResult {
  std::vector<DataChunk> chunks;
  ExecutionReport report;
  /// Populated only by ExecMode::kParallel (morsel/steal/wall-clock
  /// counters); all zeros for simulated runs.
  parallel::ParallelExecStats parallel;
};

/// Result of a distributed partitioned join.
struct JoinRunResult {
  /// Joined-row count per node (the per-node COUNT sink). In
  /// ExecMode::kParallel this is the per-partition count (the same hash
  /// routing, so the same values the simulated per-node sinks report).
  std::vector<int64_t> node_counts;
  int64_t total_rows = 0;
  ExecutionReport report;
  /// Populated only by ExecMode::kParallel.
  parallel::ParallelExecStats parallel;
};

/// The data flow engine: a catalog, a simulated fabric, the placement
/// optimizer, and executors for the data-flow architecture and for the
/// conventional (Volcano + buffer pool) baseline — everything the paper's
/// experiments compare.
class Engine {
 public:
  explicit Engine(sim::FabricConfig config = sim::FabricConfig());
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Catalog& catalog() { return catalog_; }
  sim::Fabric& fabric() { return fabric_; }
  const sim::FabricConfig& config() const { return config_; }

  // ------------------------------------------------- unreliable-fabric mode
  /// Arms deterministic fault injection on every fabric link and device and
  /// enables the matching recovery layer on graphs the engine builds:
  /// checksummed transfers with timeout/backoff retransmission, bounded
  /// storage-read retry, and CPU-only fallback when an accelerator crashes
  /// permanently. Same config and seed => byte-identical event trace.
  void EnableFaultInjection(const sim::FaultConfig& config,
                            const RecoveryPolicy& policy = RecoveryPolicy());
  void DisableFaultInjection();
  /// The active injector (crash scheduling, trace, counters); null when
  /// fault injection is off.
  sim::FaultInjector* fault_injector() { return fault_.get(); }

  // ------------------------------------------------------- observability
  /// Attaches an event tracer to every fabric device/link and to graphs the
  /// engine builds. The trace covers the most recent run whose options had
  /// reset_fabric set (chained runs append). Also enabled lazily by
  /// ExecOptions::trace.enabled.
  void EnableTracing(const trace::TraceOptions& options);
  void DisableTracing();
  /// The active tracer; null when tracing is off.
  trace::Tracer* tracer() { return tracer_.get(); }

  /// Device-health registry: a device marked unhealthy (by fallback after a
  /// crash, or manually) is excluded from kAuto placement and from the
  /// scheduler's variant choices until cleared.
  void MarkDeviceUnhealthy(const std::string& name);
  bool IsDeviceHealthy(const std::string& name) const;
  void ClearDeviceHealth();
  const std::set<std::string>& unhealthy_devices() const { return unhealthy_; }
  /// Monotone device-health epoch: every MarkDeviceUnhealthy /
  /// ClearDeviceHealth bumps it. Part of the program-cache key, so a
  /// compiled program verified against a stale health registry is never
  /// served — the key simply stops matching.
  uint64_t fabric_epoch() const { return fabric_epoch_; }
  /// Per-compute-node epoch: a health change on a node-scoped device
  /// ("cnic1", "cpu0", ...) bumps only that node's epoch; a change on a
  /// shared device (the storage chain has no node suffix) bumps every
  /// node. Cache keys that carry a node id use this so a crash on node 1
  /// never invalidates node 0's compiled programs.
  uint64_t fabric_epoch(int node) const;
  /// True iff every device this placement uses (on `node`) is healthy.
  bool PlacementHealthy(const Placement& placement, int node);
  /// The (deduplicated, ordered) device names this placement runs stages
  /// on — what the circuit-breaker registry keys its per-device state by.
  std::vector<std::string> PlacementDevices(const Placement& placement,
                                            int node);

  // --------------------------------------------------- static verification
  /// Statically checks the graph the engine would build for (spec,
  /// placement) — structure, schema flow, credit safety, placement legality
  /// — without executing it (no simulation events, no fabric state change).
  /// Returns the diagnostics; callers decide whether errors are fatal.
  Result<verify::VerifyReport> Verify(
      const QuerySpec& spec, const Placement& placement,
      const ExecOptions& options = ExecOptions());

  /// Same, for the placement Execute would auto-choose.
  Result<verify::VerifyReport> Verify(
      const QuerySpec& spec, const ExecOptions& options = ExecOptions());

  /// Runs the check catalogue over an arbitrary graph snapshot (e.g. from
  /// DataflowGraph::Describe on a hand-built graph) against this engine's
  /// fabric topology, device-health registry, and fault injector.
  verify::VerifyReport VerifyGraphSpec(const verify::GraphSpec& spec);

  /// Runs a query on the data-flow architecture.
  Result<QueryResult> Execute(const QuerySpec& spec,
                              const ExecOptions& options = ExecOptions());

  // ---------------------------------- plan compiler (src/dflow/compile/)
  /// Front half of the compiler: prepares the query and enumerates + costs
  /// its placement variants — the expensive, spec-only part of admission
  /// that the program cache lets repeat queries skip.
  Result<std::shared_ptr<compile::CompiledQuery>> CompilePlan(
      const QuerySpec& spec);

  /// Back half: lowers one chosen variant of `plan` into an immutable
  /// DflowProgram (opcode list with literal parameter slots, schema table,
  /// placement, credit layout, precomputed demand vector, verifier stamp),
  /// runs the fusion pass per `fuse`, verifies the lowered graph once, and
  /// records the program in `plan->programs`. Strict mode refuses to
  /// produce a program whose stamp has errors.
  Result<compile::ProgramPtr> CompileVariant(
      compile::CompiledQuery* plan, const Placement& placement,
      verify::VerifyMode mode = verify::DefaultMode(),
      compile::FuseMode fuse = compile::DefaultFuseMode(), int node = 0);

  /// One-shot convenience: CompilePlan, resolve `choice` to a placement
  /// (healthy-first for kAuto, the forced extreme otherwise), CompileVariant.
  Result<compile::ProgramPtr> Compile(
      const QuerySpec& spec, PlacementChoice choice = PlacementChoice::kAuto,
      verify::VerifyMode mode = verify::DefaultMode(),
      compile::FuseMode fuse = compile::DefaultFuseMode(), int node = 0);

  /// Executes a compiled program on the simulated fabric. No planning, no
  /// placement enumeration, no re-verification — the program's embedded
  /// stamp and its epoch key already cover those. Keeps the engine's
  /// crash-fallback semantics: if a device dies permanently mid-run, the
  /// CPU-only variant is compiled (a recompile, not a re-plan) and re-run.
  Result<QueryResult> ExecuteProgram(const compile::DflowProgram& program,
                                     const ExecOptions& options =
                                         ExecOptions());

  /// The placement Execute would pick for `choice` (kAuto: best healthy
  /// variant; kCpuOnly / kFullOffload: the forced extreme). Exposed so the
  /// serving layer and the scheduler resolve plan variants without
  /// executing anything.
  Result<Placement> ChoosePlacement(const QuerySpec& spec,
                                    PlacementChoice choice, int node = 0);

  // --------------------------------------------------------- serving hooks
  /// One query pipeline admitted into an externally-owned graph (the
  /// serving layer launches many of these onto the shared fabric while the
  /// simulation is live).
  struct AdmittedPipeline {
    size_t source = 0;
    size_t sink = 0;
    bool has_network_edge = false;
    size_t net_from = 0;
    size_t net_to = 0;
    std::string variant;  // placement name
  };

  /// Builds (spec, placement) into `graph`, which must run on this
  /// engine's fabric simulator. Arms the graph with the engine's fault
  /// injector and tracer, and applies `rate_limit_gbps` to the pipeline's
  /// network edge (0 = uncapped). Launching and draining the simulator
  /// stay with the caller — see DataflowGraph::Launch.
  Result<AdmittedPipeline> BuildServicePipeline(DataflowGraph* graph,
                                                const QuerySpec& spec,
                                                const Placement& placement,
                                                const std::string& label,
                                                double rate_limit_gbps = 0.0);

  /// BuildServicePipeline's warm-path twin: builds `program` into an
  /// externally-owned graph without Prepare or re-verification. Launching
  /// stays with the caller.
  Result<AdmittedPipeline> BuildProgramPipeline(
      DataflowGraph* graph, const compile::DflowProgram& program,
      const std::string& label, double rate_limit_gbps = 0.0);

  /// Runs with an explicitly chosen placement (one of PlanVariants).
  Result<QueryResult> ExecuteWithPlacement(
      const QuerySpec& spec, const Placement& placement,
      const ExecOptions& options = ExecOptions());

  /// Enumerates this query's data-path alternatives with cost estimates,
  /// best first.
  Result<std::vector<RankedPlacement>> PlanVariants(
      const QuerySpec& spec) const;

  /// Runs several queries concurrently on the shared fabric, one pipeline
  /// each. `placements[i]` chooses query i's variant;
  /// `network_rate_limits_gbps` (same length, or empty) caps each query's
  /// network DMA, and `start_offsets_ns` (same length, or empty) delays
  /// each query's admission to the given virtual time — the batch
  /// degenerates to the classic everything-at-t=0 run when empty. Returns
  /// per-query completion and the overall makespan.
  struct ConcurrentResult {
    std::vector<sim::SimTime> completion_ns;
    std::vector<uint64_t> result_rows;
    sim::SimTime makespan_ns = 0;
  };
  Result<ConcurrentResult> ExecuteConcurrent(
      const std::vector<QuerySpec>& specs,
      const std::vector<Placement>& placements,
      const std::vector<double>& network_rate_limits_gbps = {},
      const std::vector<sim::SimTime>& start_offsets_ns = {});

  /// Distributed partitioned hash join across compute nodes (Figure 4).
  Result<JoinRunResult> ExecutePartitionedJoin(
      const JoinSpec& spec, const ExecOptions& options = ExecOptions());

  /// Runs the same query on the conventional engine (pull-based iterators
  /// over a buffer pool of `pool_pages` pages).
  Result<VolcanoRunResult> ExecuteOnVolcano(const QuerySpec& spec,
                                            size_t pool_pages,
                                            int repeats = 1);

  // Implementation helpers exposed for the pipeline builder (and useful to
  // power users assembling custom graphs on the engine's fabric).
  struct PreparedQuery {
    enum class StageKind {
      kDecode,
      kFilter,
      kProject,
      kPartialAgg,
      kFinalAgg,
      kCount,
      kSort,
      kLimit,
    };

    std::shared_ptr<Table> table;
    std::vector<std::string> scan_columns;
    Schema scan_schema;
    ExprPtr filter;                    // resolved against scan_schema
    std::vector<ExprPtr> projections;  // resolved against scan_schema
    Schema after_project;              // schema entering aggregation
    std::vector<StageKind> kinds;
    std::vector<StageDesc> descs;
  };

  /// The processing element hosting `site` on compute node `node`.
  sim::Device* SiteDevice(Site site, int node);

  /// The ordered links a chunk crosses moving from `from` to `to`.
  std::vector<sim::Link*> PathBetween(Site from, Site to, int node);

 private:
  Result<PreparedQuery> Prepare(const QuerySpec& spec) const;
  /// ExecMode::kParallel implementations (engine/parallel_runner.cc):
  /// plan the query with Prepare, then run it on the morsel-driven
  /// work-stealing executor with real threads.
  Result<QueryResult> ExecuteParallel(const QuerySpec& spec,
                                      const ExecOptions& options);
  Result<JoinRunResult> ExecuteParallelJoin(const JoinSpec& spec,
                                            const ExecOptions& options);
  Result<PlacementOptimizer::Input> MakeOptimizerInput(
      const QuerySpec& spec, const PreparedQuery& prepared,
      uint64_t encoded_bytes, uint64_t decoded_bytes,
      size_t num_batches) const;
  ExecutionReport CollectReport(const DataflowGraph& graph,
                                DataflowGraph::NodeId sink,
                                const std::string& variant,
                                const TableScanSource::ScanStats& scan);
  /// Attaches the active injector and recovery policy to a graph (no-op
  /// when fault injection is off).
  void ArmGraph(DataflowGraph* graph);
  Result<QueryResult> ExecuteWithPlacementImpl(const QuerySpec& spec,
                                               const Placement& placement,
                                               const ExecOptions& options,
                                               bool allow_fallback);

  sim::FabricConfig config_;
  sim::Fabric fabric_;
  Catalog catalog_;
  VolcanoRunner volcano_;
  std::unique_ptr<sim::FaultInjector> fault_;
  std::unique_ptr<trace::Tracer> tracer_;
  RecoveryPolicy recovery_policy_;
  std::set<std::string> unhealthy_;
  uint64_t fabric_epoch_ = 0;
  /// Indexed by compute node; grown lazily (see fabric_epoch(int)).
  std::vector<uint64_t> node_epochs_;

  /// Program lowering + graph construction from bytecode live in
  /// src/dflow/compile/compiler.cc.
  Result<QueryResult> ExecuteProgramImpl(const compile::DflowProgram& program,
                                         const ExecOptions& options,
                                         bool allow_fallback);
};

}  // namespace dflow

#endif  // DFLOW_ENGINE_ENGINE_H_
