#include "dflow/engine/engine.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "dflow/common/logging.h"
#include "dflow/common/string_util.h"
#include "dflow/exec/filter.h"
#include "dflow/exec/join.h"
#include "dflow/exec/misc_ops.h"
#include "dflow/exec/project.h"
#include "dflow/opt/selectivity.h"

namespace dflow {

namespace {

// Collects the names of all column references in an expression tree.
void CollectColumnNames(const ExprPtr& expr, std::set<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kColumnRef) {
    if (!expr->column_name().empty()) out->insert(expr->column_name());
    return;
  }
  for (const ExprPtr& c : expr->children()) {
    CollectColumnNames(c, out);
  }
}

}  // namespace

std::string ExecutionReport::ToString() const {
  std::ostringstream os;
  os << "variant=" << variant << " time=" << FormatNanos(sim_ns)
     << " rows=" << result_rows << " media=" << FormatBytes(media_bytes)
     << " network=" << FormatBytes(network_bytes)
     << " interconnect=" << FormatBytes(interconnect_bytes)
     << " membus=" << FormatBytes(membus_bytes)
     << " peak_queue=" << FormatBytes(peak_queue_bytes);
  if (fault.Any()) {
    os << " | faults: drops=" << fault.chunks_dropped
       << " corrupt=" << fault.chunks_corrupted
       << " retransmits=" << fault.retransmits
       << " timeouts=" << fault.delivery_timeouts
       << " checksum_fail=" << fault.checksum_failures
       << " io_errors=" << fault.storage_io_errors
       << " io_retries=" << fault.storage_retries
       << " stalls=" << fault.device_stalls;
    if (fault.cpu_fallback) os << " cpu_fallback";
    if (!fault.failed_device.empty()) {
      os << " failed_device=" << fault.failed_device;
    }
  }
  return os.str();
}

Engine::Engine(sim::FabricConfig config)
    : config_(config), fabric_(config), volcano_(config) {}

void Engine::EnableFaultInjection(const sim::FaultConfig& config,
                                  const RecoveryPolicy& policy) {
  fault_ = std::make_unique<sim::FaultInjector>(config, &fabric_.simulator());
  recovery_policy_ = policy;
  for (sim::Link* l : fabric_.AllLinks()) l->SetFaultInjector(fault_.get());
  for (sim::Device* d : fabric_.AllDevices()) {
    d->SetFaultInjector(fault_.get());
  }
}

void Engine::DisableFaultInjection() {
  for (sim::Link* l : fabric_.AllLinks()) l->SetFaultInjector(nullptr);
  for (sim::Device* d : fabric_.AllDevices()) d->SetFaultInjector(nullptr);
  fault_.reset();
}

void Engine::EnableTracing(const trace::TraceOptions& options) {
  trace::TraceOptions effective = options;
  effective.enabled = true;
  tracer_ = std::make_unique<trace::Tracer>(effective);
  fabric_.AttachTracer(tracer_.get());
}

void Engine::DisableTracing() {
  fabric_.AttachTracer(nullptr);
  tracer_.reset();
}

namespace {

// Trailing digits of a device name identify its compute node ("cnic1" ->
// node 1). The storage chain ("store_media", "storage_nic", ...) has no
// suffix: those devices are shared, so a health change there is -1
// (every node's epoch moves).
int DeviceNode(const std::string& name) {
  size_t begin = name.size();
  while (begin > 0 && name[begin - 1] >= '0' && name[begin - 1] <= '9') {
    --begin;
  }
  if (begin == name.size()) return -1;
  return std::stoi(name.substr(begin));
}

}  // namespace

void Engine::MarkDeviceUnhealthy(const std::string& name) {
  if (!unhealthy_.insert(name).second) return;
  ++fabric_epoch_;
  if (node_epochs_.empty()) {
    node_epochs_.assign(std::max(1, config_.num_compute_nodes), 0);
  }
  const int node = DeviceNode(name);
  if (node >= 0 && node < static_cast<int>(node_epochs_.size())) {
    ++node_epochs_[node];
  } else {
    for (uint64_t& e : node_epochs_) ++e;
  }
}

bool Engine::IsDeviceHealthy(const std::string& name) const {
  return unhealthy_.count(name) == 0;
}

void Engine::ClearDeviceHealth() {
  if (!unhealthy_.empty()) {
    ++fabric_epoch_;
    for (uint64_t& e : node_epochs_) ++e;
  }
  unhealthy_.clear();
}

uint64_t Engine::fabric_epoch(int node) const {
  if (node < 0 || node >= static_cast<int>(node_epochs_.size())) {
    return fabric_epoch_;
  }
  return node_epochs_[node];
}

bool Engine::PlacementHealthy(const Placement& placement, int node) {
  if (unhealthy_.empty()) return true;
  for (Site s : placement.sites) {
    sim::Device* d = SiteDevice(s, node);
    if (d != nullptr && unhealthy_.count(d->name()) > 0) return false;
  }
  return true;
}

std::vector<std::string> Engine::PlacementDevices(const Placement& placement,
                                                  int node) {
  std::set<std::string> seen;
  std::vector<std::string> devices;
  for (Site s : placement.sites) {
    sim::Device* d = SiteDevice(s, node);
    if (d != nullptr && seen.insert(d->name()).second) {
      devices.push_back(d->name());
    }
  }
  return devices;
}

void Engine::ArmGraph(DataflowGraph* graph) {
  if (tracer_ != nullptr) graph->SetTracer(tracer_.get());
  if (fault_ == nullptr) return;
  graph->SetFaultInjector(fault_.get());
  graph->SetRecoveryPolicy(recovery_policy_);
}

Result<Engine::PreparedQuery> Engine::Prepare(const QuerySpec& spec) const {
  PreparedQuery prepared;
  DFLOW_ASSIGN_OR_RETURN(prepared.table, catalog_.Lookup(spec.table));
  const Schema& table_schema = prepared.table->schema();

  // ---- Column pruning: scan only what downstream stages reference.
  const bool select_all = spec.projections.empty() && !spec.count_only &&
                          spec.aggregates.empty();
  if (select_all) {
    for (const Field& f : table_schema.fields()) {
      prepared.scan_columns.push_back(f.name);
    }
  } else {
    std::set<std::string> needed;
    CollectColumnNames(spec.filter, &needed);
    for (const ExprPtr& e : spec.projections) CollectColumnNames(e, &needed);
    if (spec.projections.empty()) {
      // Aggregation over raw columns.
      for (const std::string& g : spec.group_by) needed.insert(g);
      for (const AggSpec& a : spec.aggregates) {
        if (!a.input.empty()) needed.insert(a.input);
      }
    }
    if (spec.order_by.has_value() && spec.projections.empty() &&
        spec.aggregates.empty() && !spec.count_only) {
      needed.insert(spec.order_by->column);
    }
    // Keep table column order for determinism.
    for (const Field& f : table_schema.fields()) {
      if (needed.count(f.name) > 0) prepared.scan_columns.push_back(f.name);
    }
    if (prepared.scan_columns.empty()) {
      // COUNT(*) with no predicate: scan the narrowest column.
      size_t best = 0;
      uint32_t best_width = UINT32_MAX;
      for (size_t i = 0; i < table_schema.num_fields(); ++i) {
        const uint32_t w = IsFixedWidth(table_schema.field(i).type)
                               ? FixedWidthBytes(table_schema.field(i).type)
                               : 64;
        if (w < best_width) {
          best_width = w;
          best = i;
        }
      }
      prepared.scan_columns.push_back(table_schema.field(best).name);
    }
  }
  {
    std::vector<size_t> indices;
    for (const std::string& name : prepared.scan_columns) {
      DFLOW_ASSIGN_OR_RETURN(size_t idx, table_schema.FieldIndex(name));
      indices.push_back(idx);
    }
    prepared.scan_schema = table_schema.Select(indices);
  }

  // ---- Resolve expressions against the pruned scan schema.
  if (spec.filter != nullptr) {
    DFLOW_ASSIGN_OR_RETURN(prepared.filter,
                           Expr::Resolve(spec.filter, prepared.scan_schema));
  }
  prepared.after_project = prepared.scan_schema;
  if (!spec.projections.empty()) {
    if (spec.projections.size() != spec.projection_names.size()) {
      return Status::InvalidArgument("projection arity mismatch");
    }
    std::vector<Field> fields;
    for (size_t i = 0; i < spec.projections.size(); ++i) {
      DFLOW_ASSIGN_OR_RETURN(
          ExprPtr r, Expr::Resolve(spec.projections[i], prepared.scan_schema));
      DFLOW_ASSIGN_OR_RETURN(DataType type,
                             r->OutputType(prepared.scan_schema));
      fields.push_back(Field{spec.projection_names[i], type});
      prepared.projections.push_back(std::move(r));
    }
    prepared.after_project = Schema(std::move(fields));
  }

  // ---- Stage plan. Reductions for decode are patched in later (they
  // depend on measured encoded/decoded sizes).
  using SK = PreparedQuery::StageKind;
  prepared.kinds.push_back(SK::kDecode);
  prepared.descs.push_back(
      StageDesc{"decode", sim::CostClass::kDecode, 1.0, true});
  if (spec.filter != nullptr) {
    prepared.kinds.push_back(SK::kFilter);
    prepared.descs.push_back(StageDesc{
        "filter", sim::CostClass::kFilter,
        EstimatePredicateSelectivity(spec.filter, *prepared.table), true});
  }
  if (!spec.projections.empty()) {
    // Width ratio from a prototype operator.
    std::vector<ExprPtr> exprs = prepared.projections;
    DFLOW_ASSIGN_OR_RETURN(
        OperatorPtr proto,
        ProjectOperator::Make(std::move(exprs), spec.projection_names,
                              prepared.scan_schema));
    prepared.kinds.push_back(SK::kProject);
    prepared.descs.push_back(StageDesc{"project", sim::CostClass::kProject,
                                       proto->traits().reduction_hint, true});
  }
  if (spec.count_only) {
    prepared.kinds.push_back(SK::kCount);
    prepared.descs.push_back(
        StageDesc{"count", sim::CostClass::kCount, 1e-6, true});
  } else if (!spec.aggregates.empty()) {
    prepared.kinds.push_back(SK::kPartialAgg);
    prepared.descs.push_back(
        StageDesc{"agg*", sim::CostClass::kAggregate, 0.05, true});
    prepared.kinds.push_back(SK::kFinalAgg);
    prepared.descs.push_back(
        StageDesc{"agg", sim::CostClass::kAggregate, 1.0, false});
  }
  if (spec.order_by.has_value()) {
    prepared.kinds.push_back(SK::kSort);
    prepared.descs.push_back(StageDesc{
        "sort", sim::CostClass::kSort,
        spec.order_by->limit > 0 ? 0.1 : 1.0, false});
  }
  if (spec.limit > 0) {
    prepared.kinds.push_back(SK::kLimit);
    prepared.descs.push_back(
        StageDesc{"limit", sim::CostClass::kMemcpy, 0.5, false});
  }
  return prepared;
}

Result<PlacementOptimizer::Input> Engine::MakeOptimizerInput(
    const QuerySpec& spec, const PreparedQuery& prepared,
    uint64_t encoded_bytes, uint64_t decoded_bytes, size_t num_batches) const {
  (void)spec;
  PlacementOptimizer::Input input;
  input.input_bytes = static_cast<double>(encoded_bytes);
  input.media_ns =
      static_cast<double>(encoded_bytes) / config_.store_media_gbps +
      static_cast<double>(num_batches) *
          static_cast<double>(config_.store_request_latency_ns);
  input.stages = prepared.descs;
  // Decode expands the stream from at-rest to in-memory size.
  if (!input.stages.empty() && encoded_bytes > 0) {
    input.stages[0].reduction =
        static_cast<double>(decoded_bytes) / static_cast<double>(encoded_bytes);
  }
  input.config = config_;
  return input;
}

sim::Device* Engine::SiteDevice(Site site, int node) {
  switch (site) {
    case Site::kStorageProc:
      return fabric_.storage_proc();
    case Site::kStorageNic:
      return fabric_.storage_nic();
    case Site::kComputeNic:
      return fabric_.node(node).nic.get();
    case Site::kNearMemory:
      return fabric_.node(node).near_mem.get();
    case Site::kCpu:
      return fabric_.node(node).cpu.get();
  }
  return nullptr;
}

std::vector<sim::Link*> Engine::PathBetween(Site from, Site to, int node) {
  std::vector<sim::Link*> path;
  // Links crossed when entering each site along the chain.
  for (int s = static_cast<int>(from) + 1; s <= static_cast<int>(to); ++s) {
    switch (static_cast<Site>(s)) {
      case Site::kStorageProc:
      case Site::kStorageNic:
        break;  // on the storage node
      case Site::kComputeNic:
        path.push_back(fabric_.storage_uplink());
        path.push_back(fabric_.node(node).net_rx.get());
        break;
      case Site::kNearMemory:
        path.push_back(fabric_.node(node).interconnect.get());
        break;
      case Site::kCpu:
        path.push_back(fabric_.node(node).memory_bus.get());
        break;
    }
  }
  return path;
}

ExecutionReport Engine::CollectReport(const DataflowGraph& graph,
                                      DataflowGraph::NodeId sink,
                                      const std::string& variant,
                                      const TableScanSource::ScanStats& scan) {
  ExecutionReport report;
  report.variant = variant;
  report.sim_ns = fabric_.simulator().now();
  uint64_t rows = 0;
  for (const DataChunk& c : graph.sink_chunks(sink)) rows += c.num_rows();
  report.result_rows = rows;
  report.media_bytes = fabric_.store_media()->bytes_processed();
  report.network_bytes = fabric_.storage_uplink()->bytes_transferred();
  report.interconnect_bytes =
      fabric_.node(0).interconnect->bytes_transferred();
  report.membus_bytes = fabric_.node(0).memory_bus->bytes_transferred();
  report.peak_queue_bytes = graph.TotalPeakQueueBytes();
  for (sim::Link* l : fabric_.AllLinks()) {
    if (l->num_messages() > 0) {
      report.link_bytes[l->name()] = l->bytes_transferred();
    }
  }
  for (sim::Device* d : fabric_.AllDevices()) {
    if (d->items_processed() > 0) {
      report.device_busy_ns[d->name()] = d->busy_ns();
    }
  }
  report.scan = scan;

  FaultReport& f = report.fault;
  const DataflowGraph::RecoveryStats& rs = graph.recovery_stats();
  f.retransmits = rs.retransmits;
  f.delivery_timeouts = rs.delivery_timeouts;
  f.checksum_failures = rs.checksum_failures;
  f.storage_io_errors = rs.storage_io_errors;
  f.storage_retries = rs.storage_retries;
  f.failed_device = graph.failed_device();
  for (sim::Link* l : fabric_.AllLinks()) {
    f.chunks_dropped += l->messages_dropped();
    f.chunks_corrupted += l->messages_corrupted();
  }
  for (sim::Device* d : fabric_.AllDevices()) {
    f.device_stalls += d->stalls();
    f.device_stall_ns += d->stall_ns();
  }
  return report;
}

namespace {

/// Shared pipeline-construction result.
struct BuiltPipeline {
  DataflowGraph::NodeId source = 0;
  DataflowGraph::NodeId sink = 0;
  // The edge that crosses the network (for rate limiting), if any.
  bool has_network_edge = false;
  DataflowGraph::NodeId net_from = 0;
  DataflowGraph::NodeId net_to = 0;
};

}  // namespace

// Builds one query pipeline into `graph` and returns its endpoints.
static Result<BuiltPipeline> BuildQueryPipeline(
    Engine* engine, sim::Fabric* fabric, DataflowGraph* graph,
    const QuerySpec& spec, const Engine::PreparedQuery& prepared,
    const Placement& placement, const ExecOptions& options,
    std::vector<ScanBatch> batches, const std::string& label);

Result<Placement> Engine::ChoosePlacement(const QuerySpec& spec,
                                          PlacementChoice choice, int node) {
  switch (choice) {
    case PlacementChoice::kAuto: {
      // Best-ranked variant whose devices are all healthy; if every variant
      // touches a dead device, keep the best and let fallback handle it.
      DFLOW_ASSIGN_OR_RETURN(std::vector<RankedPlacement> variants,
                             PlanVariants(spec));
      DFLOW_CHECK(!variants.empty());
      for (const RankedPlacement& v : variants) {
        if (PlacementHealthy(v.placement, node)) return v.placement;
      }
      return variants.front().placement;
    }
    case PlacementChoice::kCpuOnly: {
      DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
      PlacementOptimizer::Input input;
      input.stages = prepared.descs;
      input.config = config_;
      return PlacementOptimizer(input).CpuOnly();
    }
    case PlacementChoice::kFullOffload: {
      DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
      PlacementOptimizer::Input input;
      input.stages = prepared.descs;
      input.config = config_;
      return PlacementOptimizer(input).FullOffload();
    }
  }
  return Status::InvalidArgument("unknown placement choice");
}

Result<QueryResult> Engine::Execute(const QuerySpec& spec,
                                    const ExecOptions& options) {
  if (options.mode == ExecMode::kParallel) {
    return ExecuteParallel(spec, options);
  }
  DFLOW_ASSIGN_OR_RETURN(
      Placement placement,
      ChoosePlacement(spec, options.placement, options.node));
  return ExecuteWithPlacement(spec, placement, options);
}

Result<std::vector<RankedPlacement>> Engine::PlanVariants(
    const QuerySpec& spec) const {
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(prepared.table, prepared.scan_columns,
                            prepared.filter));
  TableScanSource::ScanStats stats;
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce(&stats));
  uint64_t decoded = 0;
  for (const ScanBatch& b : batches) {
    for (const ScanChunk& sc : b.chunks) decoded += sc.chunk.ByteSize();
  }
  DFLOW_ASSIGN_OR_RETURN(
      PlacementOptimizer::Input input,
      MakeOptimizerInput(spec, prepared, stats.encoded_bytes_read, decoded,
                         batches.size()));
  PlacementOptimizer optimizer(input);
  std::vector<RankedPlacement> variants = optimizer.Enumerate();
  if (variants.empty()) {
    return Status::Internal("no valid placement found");
  }
  return variants;
}

Result<QueryResult> Engine::ExecuteWithPlacement(const QuerySpec& spec,
                                                 const Placement& placement,
                                                 const ExecOptions& options) {
  return ExecuteWithPlacementImpl(spec, placement, options,
                                  /*allow_fallback=*/true);
}

verify::VerifyReport Engine::VerifyGraphSpec(const verify::GraphSpec& spec) {
  verify::VerifyContext ctx;
  ctx.fabric = &fabric_;
  ctx.unhealthy = &unhealthy_;
  return verify::VerifyGraph(spec, ctx);
}

Result<verify::VerifyReport> Engine::Verify(const QuerySpec& spec,
                                            const Placement& placement,
                                            const ExecOptions& options) {
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  if (placement.sites.size() != prepared.kinds.size()) {
    return Status::InvalidArgument("placement does not match query stages");
  }
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(prepared.table, prepared.scan_columns,
                            prepared.filter));
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
  // Building a graph schedules nothing and charges no device/link work, so
  // verification is side-effect free on the fabric.
  DataflowGraph graph(&fabric_.simulator());
  DFLOW_ASSIGN_OR_RETURN(
      BuiltPipeline built,
      BuildQueryPipeline(this, &fabric_, &graph, spec, prepared, placement,
                         options, std::move(batches), spec.table));
  (void)built;
  return VerifyGraphSpec(graph.Describe());
}

Result<verify::VerifyReport> Engine::Verify(const QuerySpec& spec,
                                            const ExecOptions& options) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<RankedPlacement> variants,
                         PlanVariants(spec));
  DFLOW_CHECK(!variants.empty());
  Placement placement = variants.front().placement;
  for (const RankedPlacement& v : variants) {
    if (PlacementHealthy(v.placement, options.node)) {
      placement = v.placement;
      break;
    }
  }
  return Verify(spec, placement, options);
}

Result<QueryResult> Engine::ExecuteWithPlacementImpl(const QuerySpec& spec,
                                                     const Placement& placement,
                                                     const ExecOptions& options,
                                                     bool allow_fallback) {
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  if (placement.sites.size() != prepared.kinds.size()) {
    return Status::InvalidArgument("placement does not match query stages");
  }
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(prepared.table, prepared.scan_columns,
                            prepared.filter));
  TableScanSource::ScanStats stats;
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce(&stats));

  if (options.trace.enabled && tracer_ == nullptr) {
    EnableTracing(options.trace);
  }
  if (options.reset_fabric) {
    fabric_.Reset();
    // Trace and report describe the same window: the events of this run.
    if (tracer_ != nullptr) tracer_->Clear();
  } else {
    // Chained run: keep the clock and timing state but zero the byte/busy
    // counters so this run's report counts only its own traffic.
    fabric_.ResetMetrics();
  }
  DataflowGraph graph(&fabric_.simulator());
  ArmGraph(&graph);
  DFLOW_TRACE(tracer_.get(),
              Instant("engine", "engine", "plan_choice",
                      fabric_.simulator().now(), /*value=*/0, placement.name));
  DFLOW_ASSIGN_OR_RETURN(
      BuiltPipeline built,
      BuildQueryPipeline(this, &fabric_, &graph, spec, prepared, placement,
                         options, std::move(batches), spec.table));
  if (options.network_rate_limit_gbps > 0 && built.has_network_edge) {
    DFLOW_RETURN_NOT_OK(graph.SetEdgeRateLimit(
        built.net_from, built.net_to, options.network_rate_limit_gbps));
  }
  verify::VerifyReport vreport;
  if (options.verify != verify::VerifyMode::kOff) {
    vreport = VerifyGraphSpec(graph.Describe());
    for (const verify::VerifyIssue& issue : vreport.issues) {
      DFLOW_LOG(Warning) << "verify: " << issue.ToString();
    }
    if (options.verify == verify::VerifyMode::kStrict && !vreport.ok()) {
      return Status::InvalidArgument("plan rejected by static verifier: " +
                                     vreport.ToString());
    }
  }
  const Status run_status = graph.Run();
  if (!run_status.ok()) {
    const std::string dead = graph.failed_device();
    if (allow_fallback && !dead.empty()) {
      // Graceful degradation (§7): a processing element died permanently
      // mid-query. Quarantine it and re-run the traditional CPU-centric
      // plan, which touches only the media, the links, and the CPU.
      MarkDeviceUnhealthy(dead);
      PlacementOptimizer::Input input;
      input.stages = prepared.descs;
      input.config = config_;
      const Placement cpu_only = PlacementOptimizer(input).CpuOnly();
      const bool dead_is_unavoidable =
          dead == fabric_.store_media()->name() ||
          dead == fabric_.node(options.node).cpu->name();
      if (!dead_is_unavoidable && cpu_only.sites != placement.sites) {
        ExecOptions retry = options;
        retry.reset_fabric = true;  // fresh timeline for the recovery run
        DFLOW_ASSIGN_OR_RETURN(
            QueryResult result,
            ExecuteWithPlacementImpl(spec, cpu_only, retry,
                                     /*allow_fallback=*/false));
        result.report.fault.cpu_fallback = true;
        result.report.fault.failed_device = dead;
        result.report.variant += "(fallback:" + dead + ")";
        DFLOW_TRACE(tracer_.get(),
                    Instant("engine", "engine", "cpu_fallback",
                            fabric_.simulator().now(), /*value=*/0, dead));
        return result;
      }
    }
    return run_status;
  }

  QueryResult result;
  result.chunks = graph.sink_chunks(built.sink);
  result.report = CollectReport(graph, built.sink, placement.name, stats);
  result.report.verify = std::move(vreport);
  return result;
}

static Result<BuiltPipeline> BuildQueryPipeline(
    Engine* engine, sim::Fabric* fabric, DataflowGraph* graph,
    const QuerySpec& spec, const Engine::PreparedQuery& prepared,
    const Placement& placement, const ExecOptions& options,
    std::vector<ScanBatch> batches, const std::string& label) {
  using SK = Engine::PreparedQuery::StageKind;
  BuiltPipeline built;
  built.source =
      graph->AddSource("scan:" + label, fabric->store_media(),
                       sim::CostClass::kScan, std::move(batches),
                       prepared.scan_schema);

  // Materialize (kind, site, operator) triples. A partial aggregate placed
  // on the CPU is dropped and the final aggregate becomes a single-stage
  // complete aggregate (no point pre-aggregating on the device that also
  // merges).
  struct Inst {
    std::string name;
    OperatorPtr op;
    Site site;
  };
  std::vector<Inst> stages;
  Schema current = prepared.scan_schema;
  Schema partial_schema;
  bool partial_dropped = false;
  for (size_t i = 0; i < prepared.kinds.size(); ++i) {
    const Site site = placement.sites[i];
    switch (prepared.kinds[i]) {
      case SK::kDecode: {
        stages.push_back(
            Inst{"decode", OperatorPtr(new DecodeOperator(current)), site});
        break;
      }
      case SK::kFilter: {
        DFLOW_ASSIGN_OR_RETURN(OperatorPtr op,
                               FilterOperator::Make(prepared.filter, current));
        stages.push_back(Inst{"filter", std::move(op), site});
        break;
      }
      case SK::kProject: {
        std::vector<ExprPtr> exprs = prepared.projections;
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr op,
            ProjectOperator::Make(std::move(exprs), spec.projection_names,
                                  current));
        current = op->output_schema();
        stages.push_back(Inst{"project", std::move(op), site});
        break;
      }
      case SK::kCount: {
        OperatorPtr op(new CountOperator());
        current = op->output_schema();
        stages.push_back(Inst{"count", std::move(op), site});
        break;
      }
      case SK::kPartialAgg: {
        if (site == Site::kCpu) {
          partial_dropped = true;
          break;
        }
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr op,
            HashAggregateOperator::Make(current, spec.group_by,
                                        spec.aggregates, AggMode::kPartial,
                                        spec.preagg_budget));
        partial_schema = op->output_schema();
        current = partial_schema;
        stages.push_back(Inst{"agg_partial", std::move(op), site});
        break;
      }
      case SK::kFinalAgg: {
        OperatorPtr op;
        if (partial_dropped) {
          DFLOW_ASSIGN_OR_RETURN(
              op, HashAggregateOperator::Make(current, spec.group_by,
                                              spec.aggregates,
                                              AggMode::kComplete));
        } else {
          DFLOW_ASSIGN_OR_RETURN(
              op, HashAggregateOperator::Make(current, spec.group_by,
                                              MakeMergeSpecs(spec.aggregates),
                                              AggMode::kFinal));
        }
        current = op->output_schema();
        stages.push_back(Inst{"agg_final", std::move(op), site});
        break;
      }
      case SK::kSort: {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr op,
            SortOperator::Make(current, spec.order_by->column,
                               spec.order_by->descending,
                               spec.order_by->limit));
        stages.push_back(Inst{"sort", std::move(op), site});
        break;
      }
      case SK::kLimit: {
        stages.push_back(Inst{
            "limit", OperatorPtr(new LimitOperator(current, spec.limit)),
            site});
        break;
      }
    }
  }

  // Optional recompression around the network hop (§3.3): encode at the
  // last storage-side stage's site, decode right after the network.
  if (spec.compress_uplink) {
    size_t last_storage = stages.size();
    for (size_t i = 0; i < stages.size(); ++i) {
      if (stages[i].site <= Site::kStorageNic) last_storage = i;
    }
    if (last_storage != stages.size()) {
      const Schema enc_schema = stages[last_storage].op->output_schema();
      Site dec_site = Site::kCpu;
      for (size_t i = last_storage + 1; i < stages.size(); ++i) {
        if (stages[i].site > Site::kStorageNic) {
          dec_site = stages[i].site;
          break;
        }
      }
      stages.insert(stages.begin() + last_storage + 1,
                    Inst{"encode", OperatorPtr(new EncodeOperator(enc_schema)),
                         stages[last_storage].site});
      stages.insert(stages.begin() + last_storage + 2,
                    Inst{"decode2",
                         OperatorPtr(new DecodeOperator(enc_schema)), dec_site});
    }
  }

  // Wire the chain: source -> stages -> sink (client colocated with CPU).
  const int node = options.node;
  DataflowGraph::NodeId prev = built.source;
  int prev_site = -1;  // media, before kStorageProc
  auto connect = [&](DataflowGraph::NodeId from, DataflowGraph::NodeId to,
                     int from_site, int to_site) -> Status {
    std::vector<sim::Link*> path;
    if (from_site < 0) {
      path = engine->PathBetween(Site::kStorageProc, static_cast<Site>(to_site),
                                 node);
    } else {
      path = engine->PathBetween(static_cast<Site>(from_site),
                                 static_cast<Site>(to_site), node);
    }
    const bool crosses_network =
        from_site < static_cast<int>(Site::kComputeNic) &&
        to_site >= static_cast<int>(Site::kComputeNic);
    DFLOW_RETURN_NOT_OK(graph->Connect(from, to, std::move(path),
                                       options.credits));
    if (crosses_network && !built.has_network_edge) {
      built.has_network_edge = true;
      built.net_from = from;
      built.net_to = to;
    }
    return Status::OK();
  };
  for (Inst& inst : stages) {
    const DataflowGraph::NodeId id = graph->AddStage(
        inst.name + ":" + label, std::move(inst.op),
        engine->SiteDevice(inst.site, node));
    DFLOW_RETURN_NOT_OK(
        connect(prev, id, prev_site, static_cast<int>(inst.site)));
    prev = id;
    prev_site = static_cast<int>(inst.site);
  }
  built.sink = graph->AddSink("client:" + label);
  DFLOW_RETURN_NOT_OK(connect(prev, built.sink, prev_site,
                              static_cast<int>(Site::kCpu)));
  return built;
}

Result<Engine::AdmittedPipeline> Engine::BuildServicePipeline(
    DataflowGraph* graph, const QuerySpec& spec, const Placement& placement,
    const std::string& label, double rate_limit_gbps) {
  DFLOW_CHECK(graph != nullptr);
  DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(spec));
  if (placement.sites.size() != prepared.kinds.size()) {
    return Status::InvalidArgument("placement '" + placement.name +
                                   "' does not match query stages");
  }
  DFLOW_ASSIGN_OR_RETURN(
      TableScanSource scan,
      TableScanSource::Make(prepared.table, prepared.scan_columns,
                            prepared.filter));
  DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
  ArmGraph(graph);
  ExecOptions options;
  DFLOW_ASSIGN_OR_RETURN(
      BuiltPipeline b,
      BuildQueryPipeline(this, &fabric_, graph, spec, prepared, placement,
                         options, std::move(batches), label));
  if (rate_limit_gbps > 0 && b.has_network_edge) {
    DFLOW_RETURN_NOT_OK(
        graph->SetEdgeRateLimit(b.net_from, b.net_to, rate_limit_gbps));
  }
  AdmittedPipeline admitted;
  admitted.source = b.source;
  admitted.sink = b.sink;
  admitted.has_network_edge = b.has_network_edge;
  admitted.net_from = b.net_from;
  admitted.net_to = b.net_to;
  admitted.variant = placement.name;
  return admitted;
}

Result<Engine::ConcurrentResult> Engine::ExecuteConcurrent(
    const std::vector<QuerySpec>& specs,
    const std::vector<Placement>& placements,
    const std::vector<double>& network_rate_limits_gbps,
    const std::vector<sim::SimTime>& start_offsets_ns) {
  if (specs.size() != placements.size()) {
    return Status::InvalidArgument("one placement per query required");
  }
  if (!network_rate_limits_gbps.empty() &&
      network_rate_limits_gbps.size() != specs.size()) {
    return Status::InvalidArgument("rate limit list length mismatch");
  }
  if (!start_offsets_ns.empty() && start_offsets_ns.size() != specs.size()) {
    return Status::InvalidArgument("start offset list length mismatch");
  }
  fabric_.Reset();
  if (tracer_ != nullptr) tracer_->Clear();
  DataflowGraph graph(&fabric_.simulator());
  ArmGraph(&graph);
  std::vector<BuiltPipeline> built;
  for (size_t q = 0; q < specs.size(); ++q) {
    DFLOW_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(specs[q]));
    if (placements[q].sites.size() != prepared.kinds.size()) {
      return Status::InvalidArgument("placement mismatch for query " +
                                     std::to_string(q));
    }
    DFLOW_ASSIGN_OR_RETURN(
        TableScanSource scan,
        TableScanSource::Make(prepared.table, prepared.scan_columns,
                              prepared.filter));
    DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
    ExecOptions options;
    DFLOW_ASSIGN_OR_RETURN(
        BuiltPipeline b,
        BuildQueryPipeline(this, &fabric_, &graph, specs[q], prepared,
                           placements[q], options, std::move(batches),
                           specs[q].table + "#" + std::to_string(q)));
    if (!network_rate_limits_gbps.empty() &&
        network_rate_limits_gbps[q] > 0 && b.has_network_edge) {
      DFLOW_RETURN_NOT_OK(graph.SetEdgeRateLimit(
          b.net_from, b.net_to, network_rate_limits_gbps[q]));
    }
    if (!start_offsets_ns.empty() && start_offsets_ns[q] > 0) {
      DFLOW_RETURN_NOT_OK(
          graph.SetSourceStartTime(b.source, start_offsets_ns[q]));
    }
    built.push_back(b);
  }
  // The combined multi-query graph goes through the same static gate as a
  // single-query run (one shared graph, so one shared report).
  const verify::VerifyMode mode = verify::DefaultMode();
  if (mode != verify::VerifyMode::kOff) {
    const verify::VerifyReport vreport = VerifyGraphSpec(graph.Describe());
    if (mode == verify::VerifyMode::kStrict && !vreport.ok()) {
      return Status::InvalidArgument(
          "concurrent plan rejected by static verifier: " +
          vreport.ToString());
    }
  }
  DFLOW_RETURN_NOT_OK(graph.Run());
  ConcurrentResult result;
  for (const BuiltPipeline& b : built) {
    result.completion_ns.push_back(graph.sink_finish_time(b.sink));
    uint64_t rows = 0;
    for (const DataChunk& c : graph.sink_chunks(b.sink)) rows += c.num_rows();
    result.result_rows.push_back(rows);
    result.makespan_ns =
        std::max(result.makespan_ns, graph.sink_finish_time(b.sink));
  }
  return result;
}

Result<JoinRunResult> Engine::ExecutePartitionedJoin(
    const JoinSpec& spec, const ExecOptions& options) {
  if (options.mode == ExecMode::kParallel) {
    return ExecuteParallelJoin(spec, options);
  }
  if (spec.num_nodes < 1 || spec.num_nodes > fabric_.num_nodes()) {
    return Status::InvalidArgument(
        "join needs 1.." + std::to_string(fabric_.num_nodes()) + " nodes");
  }
  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Table> build_table,
                         catalog_.Lookup(spec.build_table));
  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Table> probe_table,
                         catalog_.Lookup(spec.probe_table));
  DFLOW_ASSIGN_OR_RETURN(size_t build_key,
                         build_table->schema().FieldIndex(spec.build_key));
  DFLOW_ASSIGN_OR_RETURN(size_t probe_key,
                         probe_table->schema().FieldIndex(spec.probe_key));
  const bool nic_scatter = spec.exchange == JoinSpec::Exchange::kNicScatter;
  const uint32_t p = static_cast<uint32_t>(spec.num_nodes);

  if (options.trace.enabled && tracer_ == nullptr) {
    EnableTracing(options.trace);
  }
  if (options.reset_fabric) {
    fabric_.Reset();
    if (tracer_ != nullptr) tracer_->Clear();
  } else {
    fabric_.ResetMetrics();
  }

  // Per-node shared hash tables, filled by the build phase.
  std::vector<std::shared_ptr<JoinHashTable>> tables;
  for (uint32_t i = 0; i < p; ++i) {
    tables.push_back(
        std::make_shared<JoinHashTable>(build_table->schema(), build_key));
  }

  // Path helper: storage NIC (or node-0 CPU) to node i's CPU.
  auto scatter_path = [&](uint32_t i) {
    return std::vector<sim::Link*>{
        fabric_.storage_uplink(), fabric_.node(i).net_rx.get(),
        fabric_.node(i).interconnect.get(), fabric_.node(i).memory_bus.get()};
  };
  auto peer_path = [&](uint32_t i) {  // node 0 CPU -> node i CPU
    return std::vector<sim::Link*>{
        fabric_.node(0).net_tx.get(), fabric_.node(i).net_rx.get(),
        fabric_.node(i).interconnect.get(), fabric_.node(i).memory_bus.get()};
  };

  // ---------------------------------------------------------- build phase
  {
    DFLOW_ASSIGN_OR_RETURN(TableScanSource scan,
                           TableScanSource::Make(build_table, {}, nullptr));
    DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches, scan.Produce());
    DataflowGraph graph(&fabric_.simulator());
    ArmGraph(&graph);
    auto src = graph.AddSource("scan:" + spec.build_table,
                               fabric_.store_media(), sim::CostClass::kScan,
                               std::move(batches), build_table->schema());
    if (nic_scatter) {
      auto decode = graph.AddStage(
          "decode", OperatorPtr(new DecodeOperator(build_table->schema())),
          fabric_.storage_proc());
      auto part = graph.AddPartitionStage(
          "scatter", HashPartitioner(build_key, p), fabric_.storage_nic());
      DFLOW_RETURN_NOT_OK(graph.Connect(src, decode, {}, options.credits));
      DFLOW_RETURN_NOT_OK(graph.Connect(decode, part, {}, options.credits));
      for (uint32_t i = 0; i < p; ++i) {
        DFLOW_ASSIGN_OR_RETURN(OperatorPtr build_op,
                               JoinBuildOperator::Make(tables[i]));
        auto build = graph.AddStage("build@" + std::to_string(i),
                                    std::move(build_op),
                                    fabric_.node(i).cpu.get());
        DFLOW_RETURN_NOT_OK(
            graph.Connect(part, build, scatter_path(i), options.credits));
      }
    } else {
      // Everything to node 0's CPU first, then re-partition from there.
      auto decode = graph.AddStage(
          "decode", OperatorPtr(new DecodeOperator(build_table->schema())),
          fabric_.node(0).cpu.get());
      auto part = graph.AddPartitionStage(
          "exchange", HashPartitioner(build_key, p),
          fabric_.node(0).cpu.get());
      DFLOW_RETURN_NOT_OK(
          graph.Connect(src, decode, scatter_path(0), options.credits));
      DFLOW_RETURN_NOT_OK(graph.Connect(decode, part, {}, options.credits));
      for (uint32_t i = 0; i < p; ++i) {
        DFLOW_ASSIGN_OR_RETURN(OperatorPtr build_op,
                               JoinBuildOperator::Make(tables[i]));
        auto build = graph.AddStage("build@" + std::to_string(i),
                                    std::move(build_op),
                                    fabric_.node(i).cpu.get());
        std::vector<sim::Link*> path =
            i == 0 ? std::vector<sim::Link*>{} : peer_path(i);
        DFLOW_RETURN_NOT_OK(
            graph.Connect(part, build, std::move(path), options.credits));
      }
    }
    if (options.verify != verify::VerifyMode::kOff) {
      const verify::VerifyReport vreport = VerifyGraphSpec(graph.Describe());
      if (options.verify == verify::VerifyMode::kStrict && !vreport.ok()) {
        return Status::InvalidArgument(
            "join build phase rejected by static verifier: " +
            vreport.ToString());
      }
    }
    DFLOW_RETURN_NOT_OK(graph.Run());
  }

  // ---------------------------------------------------------- probe phase
  JoinRunResult result;
  {
    ExprPtr resolved_filter;
    if (spec.probe_filter != nullptr) {
      DFLOW_ASSIGN_OR_RETURN(
          resolved_filter,
          Expr::Resolve(spec.probe_filter, probe_table->schema()));
    }
    DFLOW_ASSIGN_OR_RETURN(
        TableScanSource scan,
        TableScanSource::Make(probe_table, {}, resolved_filter));
    TableScanSource::ScanStats stats;
    DFLOW_ASSIGN_OR_RETURN(std::vector<ScanBatch> batches,
                           scan.Produce(&stats));
    DataflowGraph graph(&fabric_.simulator());
    ArmGraph(&graph);
    auto src = graph.AddSource("scan:" + spec.probe_table,
                               fabric_.store_media(), sim::CostClass::kScan,
                               std::move(batches), probe_table->schema());
    DataflowGraph::NodeId part;
    if (nic_scatter) {
      auto decode = graph.AddStage(
          "decode", OperatorPtr(new DecodeOperator(probe_table->schema())),
          fabric_.storage_proc());
      DFLOW_RETURN_NOT_OK(graph.Connect(src, decode, {}, options.credits));
      DataflowGraph::NodeId upstream = decode;
      if (resolved_filter != nullptr) {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr filter,
            FilterOperator::Make(resolved_filter, probe_table->schema()));
        auto f = graph.AddStage("filter", std::move(filter),
                                fabric_.storage_proc());
        DFLOW_RETURN_NOT_OK(graph.Connect(upstream, f, {}, options.credits));
        upstream = f;
      }
      part = graph.AddPartitionStage("scatter", HashPartitioner(probe_key, p),
                                     fabric_.storage_nic());
      DFLOW_RETURN_NOT_OK(graph.Connect(upstream, part, {}, options.credits));
    } else {
      auto decode = graph.AddStage(
          "decode", OperatorPtr(new DecodeOperator(probe_table->schema())),
          fabric_.node(0).cpu.get());
      DFLOW_RETURN_NOT_OK(
          graph.Connect(src, decode, scatter_path(0), options.credits));
      DataflowGraph::NodeId upstream = decode;
      if (resolved_filter != nullptr) {
        DFLOW_ASSIGN_OR_RETURN(
            OperatorPtr filter,
            FilterOperator::Make(resolved_filter, probe_table->schema()));
        auto f = graph.AddStage("filter", std::move(filter),
                                fabric_.node(0).cpu.get());
        DFLOW_RETURN_NOT_OK(graph.Connect(upstream, f, {}, options.credits));
        upstream = f;
      }
      part = graph.AddPartitionStage("exchange", HashPartitioner(probe_key, p),
                                     fabric_.node(0).cpu.get());
      DFLOW_RETURN_NOT_OK(graph.Connect(upstream, part, {}, options.credits));
    }
    std::vector<DataflowGraph::NodeId> sinks;
    for (uint32_t i = 0; i < p; ++i) {
      DFLOW_ASSIGN_OR_RETURN(
          OperatorPtr probe_op,
          HashJoinProbeOperator::Make(tables[i], probe_table->schema(),
                                      probe_key));
      auto probe = graph.AddStage("probe@" + std::to_string(i),
                                  std::move(probe_op),
                                  fabric_.node(i).cpu.get());
      std::vector<sim::Link*> path;
      if (nic_scatter) {
        path = scatter_path(i);
      } else {
        path = i == 0 ? std::vector<sim::Link*>{} : peer_path(i);
      }
      DFLOW_RETURN_NOT_OK(
          graph.Connect(part, probe, std::move(path), options.credits));
      auto count = graph.AddStage("count@" + std::to_string(i),
                                  OperatorPtr(new CountOperator()),
                                  fabric_.node(i).cpu.get());
      DFLOW_RETURN_NOT_OK(graph.Connect(probe, count, {}, options.credits));
      auto sink = graph.AddSink("client@" + std::to_string(i));
      DFLOW_RETURN_NOT_OK(graph.Connect(count, sink, {}, options.credits));
      sinks.push_back(sink);
    }
    verify::VerifyReport vreport;
    if (options.verify != verify::VerifyMode::kOff) {
      vreport = VerifyGraphSpec(graph.Describe());
      if (options.verify == verify::VerifyMode::kStrict && !vreport.ok()) {
        return Status::InvalidArgument(
            "join probe phase rejected by static verifier: " +
            vreport.ToString());
      }
    }
    DFLOW_RETURN_NOT_OK(graph.Run());
    for (DataflowGraph::NodeId sink : sinks) {
      const auto& chunks = graph.sink_chunks(sink);
      int64_t count = 0;
      if (!chunks.empty()) count = chunks[0].GetValue(0, 0).int64_value();
      result.node_counts.push_back(count);
      result.total_rows += count;
    }
    result.report = CollectReport(graph, sinks[0],
                                  nic_scatter ? "nic-scatter" : "cpu-exchange",
                                  stats);
    result.report.sim_ns = fabric_.simulator().now();
    result.report.verify = std::move(vreport);
  }
  return result;
}

Result<VolcanoRunResult> Engine::ExecuteOnVolcano(const QuerySpec& spec,
                                                  size_t pool_pages,
                                                  int repeats) {
  return volcano_.Run(catalog_, spec, pool_pages, repeats);
}

}  // namespace dflow
