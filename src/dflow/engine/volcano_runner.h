#ifndef DFLOW_ENGINE_VOLCANO_RUNNER_H_
#define DFLOW_ENGINE_VOLCANO_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dflow/plan/query_spec.h"
#include "dflow/storage/catalog.h"
#include "dflow/volcano/iterators.h"

namespace dflow {

/// Outcome of one baseline (conventional-engine) execution.
struct VolcanoRunResult {
  std::vector<volcano::Row> rows;
  sim::SimTime sim_ns = 0;
  uint64_t bytes_fetched = 0;
  uint64_t page_fetches = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Peak resident memory: buffer pool frames + operator state — the
  /// footprint §7.4 wants eliminated.
  uint64_t peak_resident_bytes = 0;
  /// With repeats > 1: virtual time of the cold first run and of the last
  /// (warmest) run. Equal to sim_ns when repeats == 1.
  sim::SimTime first_run_ns = 0;
  sim::SimTime last_run_ns = 0;
};

/// Executes QuerySpec/JoinSpec on the CPU-centric pull engine: row pages
/// fetched through a buffer pool across the full conventional data path,
/// tuple-at-a-time iterators on the CPU. Heap files are materialized from
/// columnar tables once and cached (that conversion is the legacy engine's
/// loading step, not part of query time).
class VolcanoRunner {
 public:
  explicit VolcanoRunner(const sim::FabricConfig& config);

  /// Runs the query `repeats` times against ONE buffer pool (the warm-cache
  /// scenario §7.5 discusses); rows/metrics of the last run are returned,
  /// with per-run times in first_run_ns / last_run_ns.
  Result<VolcanoRunResult> Run(const Catalog& catalog, const QuerySpec& spec,
                               size_t pool_pages, int repeats = 1);

  /// Single-node hash join + COUNT on the baseline engine.
  Result<VolcanoRunResult> RunJoinCount(const Catalog& catalog,
                                        const JoinSpec& spec,
                                        size_t pool_pages);

 private:
  Result<const volcano::HeapFile*> GetHeapFile(const Catalog& catalog,
                                               const std::string& table);

  sim::FabricConfig config_;
  std::map<std::string, std::unique_ptr<volcano::HeapFile>> heap_files_;
};

}  // namespace dflow

#endif  // DFLOW_ENGINE_VOLCANO_RUNNER_H_
