#include "dflow/engine/volcano_runner.h"

#include "dflow/common/logging.h"

namespace dflow {

using volcano::BufferPool;
using volcano::CostMeter;
using volcano::FilterIterator;
using volcano::HashAggIterator;
using volcano::HashJoinIterator;
using volcano::HeapFile;
using volcano::LimitIterator;
using volcano::ProjectIterator;
using volcano::Row;
using volcano::RowIteratorPtr;
using volcano::SeqScanIterator;
using volcano::SortIterator;
using volcano::VolcanoContext;

VolcanoRunner::VolcanoRunner(const sim::FabricConfig& config)
    : config_(config) {}

Result<const HeapFile*> VolcanoRunner::GetHeapFile(const Catalog& catalog,
                                                   const std::string& table) {
  auto it = heap_files_.find(table);
  if (it != heap_files_.end()) return it->second.get();
  DFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog.Lookup(table));
  DFLOW_ASSIGN_OR_RETURN(HeapFile file, HeapFile::FromTable(*t));
  auto owned = std::make_unique<HeapFile>(std::move(file));
  const HeapFile* raw = owned.get();
  heap_files_[table] = std::move(owned);
  return raw;
}

namespace {

// Builds the iterator tree for one execution (iterators are single-use).
Result<RowIteratorPtr> BuildQueryTree(const HeapFile* file,
                                      const QuerySpec& spec,
                                      VolcanoContext* ctx);

}  // namespace

Result<VolcanoRunResult> VolcanoRunner::Run(const Catalog& catalog,
                                            const QuerySpec& spec,
                                            size_t pool_pages, int repeats) {
  if (repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  DFLOW_ASSIGN_OR_RETURN(const HeapFile* file, GetHeapFile(catalog, spec.table));
  CostMeter meter(config_);
  BufferPool pool(pool_pages, &meter);
  VolcanoContext ctx;
  ctx.pool = &pool;
  ctx.meter = &meter;

  VolcanoRunResult result;
  sim::SimTime prev_total = 0;
  for (int r = 0; r < repeats; ++r) {
    DFLOW_ASSIGN_OR_RETURN(RowIteratorPtr root,
                           BuildQueryTree(file, spec, &ctx));
    DFLOW_ASSIGN_OR_RETURN(std::vector<Row> rows, DrainIterator(root.get()));
    const sim::SimTime run_ns = meter.total_ns() - prev_total;
    prev_total = meter.total_ns();
    if (r == 0) result.first_run_ns = run_ns;
    result.last_run_ns = run_ns;
    result.rows = std::move(rows);
  }
  result.sim_ns = meter.total_ns();
  result.bytes_fetched = meter.bytes_fetched();
  result.page_fetches = meter.page_fetches();
  result.pool_hits = pool.hits();
  result.pool_misses = pool.misses();
  result.peak_resident_bytes =
      pool.peak_resident_bytes() + ctx.peak_operator_state_bytes;
  return result;
}

namespace {

Result<RowIteratorPtr> BuildQueryTree(const HeapFile* file,
                                      const QuerySpec& spec,
                                      VolcanoContext* ctx) {
  RowIteratorPtr it(new SeqScanIterator(file, ctx));
  if (spec.filter != nullptr) {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr resolved,
                           Expr::Resolve(spec.filter, it->schema()));
    it = RowIteratorPtr(
        new FilterIterator(std::move(it), std::move(resolved), ctx));
  }
  if (!spec.projections.empty()) {
    std::vector<ExprPtr> resolved;
    for (const ExprPtr& e : spec.projections) {
      DFLOW_ASSIGN_OR_RETURN(ExprPtr r, Expr::Resolve(e, it->schema()));
      resolved.push_back(std::move(r));
    }
    DFLOW_ASSIGN_OR_RETURN(
        it, ProjectIterator::Make(std::move(it), std::move(resolved),
                                  spec.projection_names, ctx));
  }
  if (spec.count_only) {
    DFLOW_ASSIGN_OR_RETURN(
        it, HashAggIterator::Make(std::move(it), {},
                                  {{AggFunc::kCount, "", "count"}}, ctx));
  } else if (!spec.aggregates.empty()) {
    DFLOW_ASSIGN_OR_RETURN(
        it, HashAggIterator::Make(std::move(it), spec.group_by,
                                  spec.aggregates, ctx));
  }
  if (spec.order_by.has_value()) {
    DFLOW_ASSIGN_OR_RETURN(
        it, SortIterator::Make(std::move(it), spec.order_by->column,
                               spec.order_by->descending,
                               spec.order_by->limit, ctx));
  }
  if (spec.limit > 0) {
    it = RowIteratorPtr(new LimitIterator(std::move(it), spec.limit));
  }
  return it;
}

}  // namespace

Result<VolcanoRunResult> VolcanoRunner::RunJoinCount(const Catalog& catalog,
                                                     const JoinSpec& spec,
                                                     size_t pool_pages) {
  DFLOW_ASSIGN_OR_RETURN(const HeapFile* build_file,
                         GetHeapFile(catalog, spec.build_table));
  DFLOW_ASSIGN_OR_RETURN(const HeapFile* probe_file,
                         GetHeapFile(catalog, spec.probe_table));
  CostMeter meter(config_);
  BufferPool pool(pool_pages, &meter);
  VolcanoContext ctx;
  ctx.pool = &pool;
  ctx.meter = &meter;

  RowIteratorPtr build(new SeqScanIterator(build_file, &ctx));
  RowIteratorPtr probe(new SeqScanIterator(probe_file, &ctx));
  if (spec.probe_filter != nullptr) {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr resolved,
                           Expr::Resolve(spec.probe_filter, probe->schema()));
    probe = RowIteratorPtr(
        new FilterIterator(std::move(probe), std::move(resolved), &ctx));
  }
  DFLOW_ASSIGN_OR_RETURN(size_t build_key,
                         build->schema().FieldIndex(spec.build_key));
  DFLOW_ASSIGN_OR_RETURN(size_t probe_key,
                         probe->schema().FieldIndex(spec.probe_key));
  RowIteratorPtr join(new HashJoinIterator(std::move(build), std::move(probe),
                                           build_key, probe_key, &ctx));
  DFLOW_ASSIGN_OR_RETURN(
      RowIteratorPtr count,
      HashAggIterator::Make(std::move(join), {},
                            {{AggFunc::kCount, "", "count"}}, &ctx));

  DFLOW_ASSIGN_OR_RETURN(std::vector<Row> rows, DrainIterator(count.get()));
  VolcanoRunResult result;
  result.rows = std::move(rows);
  result.sim_ns = meter.total_ns();
  result.bytes_fetched = meter.bytes_fetched();
  result.page_fetches = meter.page_fetches();
  result.pool_hits = pool.hits();
  result.pool_misses = pool.misses();
  result.peak_resident_bytes =
      pool.peak_resident_bytes() + ctx.peak_operator_state_bytes;
  result.first_run_ns = result.sim_ns;
  result.last_run_ns = result.sim_ns;
  return result;
}

}  // namespace dflow
