#ifndef DFLOW_ENGINE_PARALLEL_RUNNER_H_
#define DFLOW_ENGINE_PARALLEL_RUNNER_H_

#include "dflow/engine/engine.h"
#include "dflow/exec/parallel/parallel_executor.h"
#include "dflow/plan/query_spec.h"

namespace dflow {

/// Lowers a prepared query to the real-parallel executor's three-layer
/// pipeline shape (see parallel::ParallelPipelineSpec):
///
///   worker chain   [filter] [project] ([count] | [partial agg])
///   merge chain    [count-sum merge]  | [final agg]   (else empty)
///   output chain   [sort] [limit]                     (else empty)
///
/// with canonical ordering enabled whenever the query lacks an ORDER BY.
/// Decode/encode stages of the simulated plan are omitted: they are
/// identity on data and model wire sizes the real executor doesn't have.
/// Exposed so tests and benches can run engine-shaped pipelines on custom
/// inputs without an Engine.
Result<parallel::ParallelPipelineSpec> BuildParallelPipelineSpec(
    const Engine::PreparedQuery& prepared, const QuerySpec& spec);

}  // namespace dflow

#endif  // DFLOW_ENGINE_PARALLEL_RUNNER_H_
