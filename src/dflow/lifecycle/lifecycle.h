#ifndef DFLOW_LIFECYCLE_LIFECYCLE_H_
#define DFLOW_LIFECYCLE_LIFECYCLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dflow/engine/engine.h"
#include "dflow/lifecycle/cancel.h"
#include "dflow/sim/simulator.h"

namespace dflow::lifecycle {

/// Per-query lifecycle state machine (DESIGN.md §7):
///
///   ADMITTED ──launch──> RUNNING ──ok──────────────> DONE
///      │                  │  └──transient failure──> RETRYING ──backoff──┐
///      │                  │         (RETRYING relaunches may run on a    │
///      │                  │          fallback placement: DEGRADED)       │
///      │                  ├──cancel/deadline───────> CANCELLED           │
///      │                  └──non-retryable/chain-─-> FAILED              │
///      │                       exhausted                                 │
///      └──cancel/deadline while queued────────────> CANCELLED            │
///   RUNNING/DEGRADED <───────────────────────────────────────────────────┘
enum class QueryState : uint8_t {
  kAdmitted = 0,
  kRunning,
  kRetrying,
  kDegraded,  // running again on a fallback placement
  kDone,
  kCancelled,
  kFailed,
};
const char* QueryStateName(QueryState state);  // "ADMITTED" / ...
bool IsTerminal(QueryState state);
/// Whether the state machine permits `from` -> `to` (the manager CHECKs
/// this on every transition; exposed for the table-driven tests).
bool LegalTransition(QueryState from, QueryState to);

/// Stable terminal outcome codes. These are API: they appear in traces,
/// reports, and CI expectations, and are deliberately distinct — a
/// deadline miss is not an OVERLOAD shed and not a failure.
enum class OutcomeCode : uint8_t {
  kDone = 0,
  kDeadlineExceeded,
  kCancelled,
  kRetryExhausted,  // transient failures outlasted the retry budget
  kFailed,          // non-retryable failure
};
const char* OutcomeCodeName(OutcomeCode code);  // "DONE" / ...

/// A structured query failure: what the executor observed, classified so
/// the retry policy can tell transient from fatal without string-matching
/// status messages.
struct QueryFailure {
  FailureKind kind = FailureKind::kOther;
  std::string device;  // crashed device, when kind == kDeviceCrash
  Status status;
};

/// Bounded retry-with-backoff over an ordered placement fallback chain.
/// Attempt 0 is the original admission; retry attempt i (1-based) runs on
/// fallback_chain[min(i-1, size-1)]. Idempotence is structural: every
/// attempt re-plans and re-executes from the query plan, never from
/// partial state.
struct RetryPolicy {
  /// Which transient failure kinds are retried. Defaults reproduce the
  /// pre-lifecycle behaviour: an accelerator crash degrades to the
  /// fallback chain, everything else fails the query.
  bool retry_device_crash = true;
  bool retry_delivery_exhausted = false;
  bool retry_storage_exhausted = false;
  /// Retries after the initial attempt (0 disables retrying).
  uint32_t max_attempts = 1;
  /// Backoff before retry attempt i: base * 2^(i-1) + jitter, capped.
  /// 0 relaunches in the same simulator event (the legacy crash path).
  sim::SimTime backoff_base_ns = 0;
  sim::SimTime backoff_max_ns = 8'000'000;
  /// Seeds the deterministic per-(query, attempt) backoff jitter so
  /// simultaneous retries de-synchronize reproducibly.
  uint64_t jitter_seed = 0;
  /// Ordered placement fallback chain for retries.
  std::vector<PlacementChoice> fallback_chain = {PlacementChoice::kCpuOnly};

  bool Retryable(FailureKind kind) const;
};

/// Deterministic backoff before retry attempt `attempt` (1-based) of
/// `query_id`: exponential in the attempt with a seeded jitter of up to
/// 1/4 of the base, capped at backoff_max_ns. Pure function — the
/// table-driven determinism tests enumerate it.
sim::SimTime RetryBackoffNs(const RetryPolicy& policy, uint32_t attempt,
                            uint64_t query_id);

/// What to do about one failed attempt.
struct RetryDecision {
  bool retry = false;
  sim::SimTime backoff_ns = 0;
  PlacementChoice placement = PlacementChoice::kCpuOnly;
  /// Terminal outcome when !retry.
  OutcomeCode outcome = OutcomeCode::kFailed;
};

/// Book-keeping for one query from admission to a terminal state.
struct QueryRecord {
  uint64_t query_id = 0;
  QueryState state = QueryState::kAdmitted;
  /// Launch attempts so far (0 until the first launch).
  uint32_t attempts = 0;
  /// Absolute virtual-time deadline; 0 = none.
  sim::SimTime deadline_ns = 0;
  CancelTokenPtr token;
};

/// Owns the per-query records and the retry policy; validates every state
/// transition against the machine above. Deliberately unaware of tenants,
/// admission, and graphs — the service loop supplies those and asks this
/// class only "what state is query q in" and "should this failure retry".
class LifecycleManager {
 public:
  explicit LifecycleManager(RetryPolicy policy) : policy_(std::move(policy)) {}

  const RetryPolicy& policy() const { return policy_; }

  /// Registers an admitted query (creating its cancel token).
  QueryRecord& Admit(uint64_t query_id, sim::SimTime deadline_ns);

  /// Record access; nullptr once the query reached a terminal state (the
  /// record is dropped to bound memory) or was never admitted.
  QueryRecord* Get(uint64_t query_id);
  const QueryRecord* Get(uint64_t query_id) const;

  /// Moves the query to `next`, CHECK-failing on an illegal transition.
  /// Terminal transitions erase the record and bump the outcome counters.
  void Transition(uint64_t query_id, QueryState next);

  /// Counts a launch attempt (Admit/Retrying -> Running or Degraded).
  void OnLaunch(uint64_t query_id, bool degraded);

  /// Applies the retry policy to one failed attempt at `now`.
  RetryDecision Decide(uint64_t query_id, const QueryFailure& failure) const;

  size_t live() const { return records_.size(); }
  uint64_t retries_scheduled() const { return retries_scheduled_; }

  /// Called when a retry is scheduled (Running -> Retrying).
  void OnRetryScheduled(uint64_t query_id);

 private:
  RetryPolicy policy_;
  std::map<uint64_t, QueryRecord> records_;
  uint64_t retries_scheduled_ = 0;
};

}  // namespace dflow::lifecycle

#endif  // DFLOW_LIFECYCLE_LIFECYCLE_H_
