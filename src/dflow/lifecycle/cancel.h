#ifndef DFLOW_LIFECYCLE_CANCEL_H_
#define DFLOW_LIFECYCLE_CANCEL_H_

#include <memory>
#include <string>

#include "dflow/common/status.h"

namespace dflow::lifecycle {

/// Structured classification of why a query's dataflow graph stopped.
/// Stable vocabulary shared by the executor (which stamps the kind at the
/// failure site), the retry policy (which decides what is transient), and
/// the reports (which must not fold distinct causes into one bucket).
enum class FailureKind {
  kNone = 0,          // the graph did not fail
  kDeviceCrash,       // a processing element died mid-query
  kDeliveryExhausted, // an edge ran out of retransmission attempts
  kStorageExhausted,  // a source ran out of storage-read retries
  kDeadlineExceeded,  // cancelled because its virtual-time deadline passed
  kCancelled,         // cancelled explicitly (not deadline-driven)
  kOther,             // operator error, validation failure, ...
};
const char* FailureKindName(FailureKind kind);

/// Cooperative cancellation handle shared between a query's owner (the
/// service loop) and its DataflowGraph. Cancelling is level-triggered and
/// first-reason-wins: once set, every graph event handler that polls the
/// token converts the reason into a graph failure, which stops all further
/// emission, reports completion, and lets the owner release scheduler
/// ledger demand immediately instead of at drain.
///
/// The token is deliberately passive (no callbacks): all effects happen
/// inside simulator events, so cancellation is exactly as deterministic as
/// the event loop that observes it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. The first reason sticks; later calls are
  /// no-ops. `reason` must be a non-OK status (kCancelled or
  /// kDeadlineExceeded by convention).
  void Cancel(Status reason);

  bool cancelled() const { return !reason_.ok(); }
  const Status& reason() const { return reason_; }

 private:
  Status reason_;  // OK = not cancelled
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace dflow::lifecycle

#endif  // DFLOW_LIFECYCLE_CANCEL_H_
