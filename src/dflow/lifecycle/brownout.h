#ifndef DFLOW_LIFECYCLE_BROWNOUT_H_
#define DFLOW_LIFECYCLE_BROWNOUT_H_

#include <cstdint>
#include <cstddef>

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/sim/simulator.h"

namespace dflow::lifecycle {

/// Ordered service-degradation ladder. Levels are strictly ordered by
/// severity; the controller moves one rung at a time with dwell-time
/// hysteresis, driven only by deterministic observed signals, so the whole
/// ladder trajectory is a pure function of (config, seed).
enum class BrownoutLevel : uint8_t {
  kFull = 0,           // full service
  kForceCheap = 1,     // force the cheapest (CPU-only) placement variant
  kShedLowPriority = 2,// additionally shed low-priority arrivals
  kProbesOnly = 3,     // admit nothing except breaker probes
};
const char* BrownoutLevelName(BrownoutLevel level);  // "FULL" / ...

/// Signals sampled by the service loop on every arrival and completion.
struct BrownoutSignals {
  /// queued_total / global_queue_capacity, in [0, 1].
  double queue_fraction = 0.0;
  /// Deadline misses / terminal queries since the last level change
  /// (windowed inside the controller from the cumulative counters below).
  uint64_t deadline_misses = 0;  // cumulative
  uint64_t terminals = 0;        // cumulative terminal (done or not) queries
  /// Devices whose circuit breaker is currently open.
  size_t open_breakers = 0;
};

struct BrownoutConfig {
  /// Master switch; disabled keeps the controller pinned at kFull (and the
  /// service byte-identical to the pre-lifecycle behaviour).
  bool enabled = false;
  /// Escalate one level when ANY of: queue fraction, windowed deadline-miss
  /// rate, or open-breaker count reaches its *_up threshold.
  double queue_up = 0.75;
  double miss_up = 0.25;
  size_t breakers_up = 1;
  /// De-escalate one level when ALL signals are strictly below these.
  double queue_down = 0.25;
  double miss_down = 0.05;
  size_t breakers_down = 1;  // i.e. zero open breakers
  /// Minimum virtual time at a level before the next move (hysteresis).
  sim::SimTime dwell_ns = 2'000'000;
  /// At kShedLowPriority and above, arrivals from tenants with priority >=
  /// this are shed with code BROWNOUT (lower number = more important).
  int shed_priority_min = 2;
};

/// The ladder state machine. The service loop calls Update() at every
/// arrival and terminal completion; the returned level governs placement
/// forcing and shedding for subsequent decisions.
/// Monitor at LockRank::kBrownout: the rung, dwell clock, and counters
/// are guarded so the level can be read (level()) by a concurrent
/// placement path while the event loop drives Update().
class BrownoutController {
 public:
  explicit BrownoutController(BrownoutConfig config) : config_(config) {}

  const BrownoutConfig& config() const { return config_; }
  BrownoutLevel level() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return level_;
  }

  /// Re-evaluates the ladder against `signals` at `now`; moves at most one
  /// rung and only after dwell_ns at the current one. Returns the level in
  /// force after the update.
  BrownoutLevel Update(const BrownoutSignals& signals, sim::SimTime now)
      DFLOW_EXCLUDES(mutex_);

  /// Times the ladder moved up (escalations) / down, and the worst rung.
  uint64_t escalations() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return escalations_;
  }
  uint64_t deescalations() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return deescalations_;
  }
  BrownoutLevel peak_level() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return peak_;
  }

 private:
  double WindowedMissRateLocked(const BrownoutSignals& signals) const
      DFLOW_REQUIRES(mutex_);

  BrownoutConfig config_;
  mutable RankedMutex mutex_{LockRank::kBrownout};
  BrownoutLevel level_ DFLOW_GUARDED_BY(mutex_) = BrownoutLevel::kFull;
  BrownoutLevel peak_ DFLOW_GUARDED_BY(mutex_) = BrownoutLevel::kFull;
  sim::SimTime level_since_ns_ DFLOW_GUARDED_BY(mutex_) = 0;
  /// Counter snapshot at the last level change: the miss rate is computed
  /// over the window since then, so old incidents age out of the signal.
  uint64_t misses_at_change_ DFLOW_GUARDED_BY(mutex_) = 0;
  uint64_t terminals_at_change_ DFLOW_GUARDED_BY(mutex_) = 0;
  uint64_t escalations_ DFLOW_GUARDED_BY(mutex_) = 0;
  uint64_t deescalations_ DFLOW_GUARDED_BY(mutex_) = 0;
};

}  // namespace dflow::lifecycle

#endif  // DFLOW_LIFECYCLE_BROWNOUT_H_
