#include "dflow/lifecycle/breaker.h"

#include <algorithm>

#include "dflow/common/logging.h"

namespace dflow::lifecycle {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "CLOSED";
    case BreakerState::kOpen:
      return "OPEN";
    case BreakerState::kHalfOpen:
      return "HALF_OPEN";
  }
  return "UNKNOWN";
}

BreakerState CircuitBreaker::state(sim::SimTime now) const {
  if (stored_ == BreakerState::kOpen && now >= open_until_) {
    return BreakerState::kHalfOpen;
  }
  return stored_;
}

bool CircuitBreaker::Allows(sim::SimTime now) const {
  switch (state(now)) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      return !probe_in_flight_;
  }
  return true;
}

void CircuitBreaker::Refresh(sim::SimTime now) {
  if (stored_ == BreakerState::kOpen && now >= open_until_) {
    stored_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
    probe_in_flight_ = false;
    ++transitions_;
  }
}

void CircuitBreaker::Trip(sim::SimTime now) {
  const sim::SimTime cooldown =
      next_cooldown_ns_ == 0 ? config_->cooldown_ns : next_cooldown_ns_;
  stored_ = BreakerState::kOpen;
  open_until_ = now + cooldown;
  next_cooldown_ns_ = std::min(cooldown * 2, config_->max_cooldown_ns);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  ++transitions_;
}

void CircuitBreaker::BeginProbe(sim::SimTime now) {
  Refresh(now);
  DFLOW_CHECK(stored_ == BreakerState::kHalfOpen && !probe_in_flight_);
  probe_in_flight_ = true;
}

void CircuitBreaker::RecordSuccess(sim::SimTime now) {
  Refresh(now);
  switch (stored_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kOpen:
      // A query placed before the trip finished after it; the breaker
      // stays open (the cool-down is about *new* placements).
      break;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_->success_threshold) {
        stored_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        next_cooldown_ns_ = 0;  // a healthy device earns a fresh cool-down
        ++transitions_;
      }
      break;
  }
}

void CircuitBreaker::RecordFailure(sim::SimTime now) {
  Refresh(now);
  switch (stored_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_->failure_threshold) Trip(now);
      break;
    case BreakerState::kOpen:
      break;  // already open; nothing to escalate until the probe
    case BreakerState::kHalfOpen:
      Trip(now);  // the probe failed: re-open with a doubled cool-down
      break;
  }
}

bool BreakerRegistry::Allows(const std::string& device,
                             sim::SimTime now) const {
  RankedMutexLock lock(&mutex_);
  if (!config_.enabled) return true;
  auto it = breakers_.find(device);
  return it == breakers_.end() || it->second.Allows(now);
}

BreakerState BreakerRegistry::state(const std::string& device,
                                    sim::SimTime now) const {
  RankedMutexLock lock(&mutex_);
  auto it = breakers_.find(device);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state(now);
}

bool BreakerRegistry::BeginProbe(const std::string& device, sim::SimTime now) {
  RankedMutexLock lock(&mutex_);
  if (!config_.enabled) return false;
  auto it = breakers_.find(device);
  if (it == breakers_.end()) return false;
  if (it->second.state(now) != BreakerState::kHalfOpen ||
      !it->second.Allows(now)) {
    return false;
  }
  it->second.BeginProbe(now);
  ++probes_total_;
  return true;
}

void BreakerRegistry::RecordSuccess(const std::string& device,
                                    sim::SimTime now) {
  RankedMutexLock lock(&mutex_);
  if (!config_.enabled) return;
  auto it = breakers_.find(device);
  if (it != breakers_.end()) it->second.RecordSuccess(now);
}

void BreakerRegistry::RecordFailure(const std::string& device,
                                    sim::SimTime now) {
  RankedMutexLock lock(&mutex_);
  if (!config_.enabled) return;
  auto it = breakers_.find(device);
  if (it == breakers_.end()) {
    it = breakers_.emplace(device, CircuitBreaker(&config_)).first;
  }
  it->second.RecordFailure(now);
}

size_t BreakerRegistry::open_count(sim::SimTime now) const {
  RankedMutexLock lock(&mutex_);
  size_t open = 0;
  for (const auto& [name, breaker] : breakers_) {
    (void)name;
    if (breaker.state(now) == BreakerState::kOpen) ++open;
  }
  return open;
}

bool BreakerRegistry::HasProbeSlot(sim::SimTime now) const {
  RankedMutexLock lock(&mutex_);
  for (const auto& [name, breaker] : breakers_) {
    (void)name;
    if (breaker.state(now) == BreakerState::kHalfOpen && breaker.Allows(now)) {
      return true;
    }
  }
  return false;
}

uint64_t BreakerRegistry::transitions_total() const {
  RankedMutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& [name, breaker] : breakers_) {
    (void)name;
    total += breaker.transitions();
  }
  return total;
}

}  // namespace dflow::lifecycle
