#ifndef DFLOW_LIFECYCLE_BREAKER_H_
#define DFLOW_LIFECYCLE_BREAKER_H_

#include <cstdint>
#include <map>
#include <string>

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/sim/simulator.h"

namespace dflow::lifecycle {

/// Classic closed / open / half-open circuit breaker, per device, on
/// virtual time. Escalates the engine's binary device-health registry
/// (PR 1: a crashed accelerator is quarantined forever) into a policy that
/// stops placing work on a *flapping* device and probes it back to life:
///
///   closed     failures below threshold; everything allowed.
///   open       tripped; nothing allowed until the cool-down elapses.
///   half-open  cooled down; exactly one probe query may use the device.
///              Probe success closes the breaker, probe failure re-opens
///              it with a doubled (capped) cool-down.
///
/// All transitions are driven by virtual-time calls from the service loop,
/// so breaker behaviour is deterministic per --dflow_seed.
enum class BreakerState : uint8_t { kClosed = 0, kOpen, kHalfOpen };
const char* BreakerStateName(BreakerState state);  // "CLOSED" / ...

struct BreakerConfig {
  /// Master switch: disabled means the registry never opens a breaker and
  /// always answers Allows() = true (the PR 1 quarantine path applies).
  bool enabled = false;
  /// Consecutive failures that trip a closed breaker open.
  uint32_t failure_threshold = 2;
  /// Cool-down before an open breaker admits a probe (doubles on every
  /// re-open, capped at max_cooldown_ns).
  sim::SimTime cooldown_ns = 5'000'000;
  sim::SimTime max_cooldown_ns = 40'000'000;
  /// Probe successes needed in half-open before the breaker closes.
  uint32_t success_threshold = 1;
};

/// Breaker for one device. Owned by BreakerRegistry.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig* config) : config_(config) {}

  /// Effective state at `now` (an open breaker whose cool-down elapsed
  /// reads as half-open; the stored state is promoted lazily on the next
  /// mutating call).
  BreakerState state(sim::SimTime now) const;

  /// Whether a new placement may use this device at `now`: closed yes,
  /// open no, half-open only while no probe is outstanding.
  bool Allows(sim::SimTime now) const;

  /// Marks the one half-open probe slot taken. Caller must have checked
  /// Allows() first.
  void BeginProbe(sim::SimTime now);

  void RecordSuccess(sim::SimTime now);
  void RecordFailure(sim::SimTime now);

  /// State transitions so far (closed->open, open->half-open, ...).
  uint64_t transitions() const { return transitions_; }

 private:
  void Refresh(sim::SimTime now);  // lazy open -> half-open promotion
  void Trip(sim::SimTime now);     // -> open, escalating the cool-down

  const BreakerConfig* config_;
  BreakerState stored_ = BreakerState::kClosed;
  sim::SimTime open_until_ = 0;
  sim::SimTime next_cooldown_ns_ = 0;  // 0 = use config cooldown_ns
  uint32_t consecutive_failures_ = 0;
  uint32_t half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  uint64_t transitions_ = 0;
};

/// All breakers of one service run, keyed by device name (std::map: the
/// iteration order feeds reports and must be deterministic). Devices are
/// tracked lazily — a device with no recorded failure has no breaker and
/// is always allowed.
///
/// The registry is a monitor at LockRank::kBreakerRegistry: the breaker
/// map and probe counter are guarded, individual CircuitBreakers are only
/// ever touched under the registry lock, and no method calls out while
/// holding it. Placement filters (Scheduler::PlacementFilter closures
/// calling Allows) may thus run on a future re-placement thread while the
/// event loop records feedback.
class BreakerRegistry {
 public:
  explicit BreakerRegistry(BreakerConfig config) : config_(config) {}

  const BreakerConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Whether a new placement may use `device` at `now`.
  bool Allows(const std::string& device, sim::SimTime now) const
      DFLOW_EXCLUDES(mutex_);

  /// Effective state (kClosed for untracked devices).
  BreakerState state(const std::string& device, sim::SimTime now) const
      DFLOW_EXCLUDES(mutex_);

  /// Takes the half-open probe slot of `device` if it is half-open;
  /// returns whether a probe was actually started.
  bool BeginProbe(const std::string& device, sim::SimTime now)
      DFLOW_EXCLUDES(mutex_);

  /// Feedback from a finished query. Success only touches devices that
  /// already have a breaker (closing half-open ones, clearing failure
  /// streaks); failure creates the breaker on first sight.
  void RecordSuccess(const std::string& device, sim::SimTime now)
      DFLOW_EXCLUDES(mutex_);
  void RecordFailure(const std::string& device, sim::SimTime now)
      DFLOW_EXCLUDES(mutex_);

  /// Number of devices whose breaker is open (not yet cooled) at `now`.
  size_t open_count(sim::SimTime now) const DFLOW_EXCLUDES(mutex_);
  /// Whether any device is half-open with a free probe slot at `now`.
  bool HasProbeSlot(sim::SimTime now) const DFLOW_EXCLUDES(mutex_);

  uint64_t transitions_total() const DFLOW_EXCLUDES(mutex_);
  uint64_t probes_total() const DFLOW_EXCLUDES(mutex_) {
    RankedMutexLock lock(&mutex_);
    return probes_total_;
  }

 private:
  BreakerConfig config_;
  mutable RankedMutex mutex_{LockRank::kBreakerRegistry};
  std::map<std::string, CircuitBreaker> breakers_ DFLOW_GUARDED_BY(mutex_);
  uint64_t probes_total_ DFLOW_GUARDED_BY(mutex_) = 0;
};

}  // namespace dflow::lifecycle

#endif  // DFLOW_LIFECYCLE_BREAKER_H_
