#include "dflow/lifecycle/cancel.h"

#include <utility>

#include "dflow/common/logging.h"

namespace dflow::lifecycle {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "NONE";
    case FailureKind::kDeviceCrash:
      return "DEVICE_CRASH";
    case FailureKind::kDeliveryExhausted:
      return "DELIVERY_EXHAUSTED";
    case FailureKind::kStorageExhausted:
      return "STORAGE_EXHAUSTED";
    case FailureKind::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case FailureKind::kCancelled:
      return "CANCELLED";
    case FailureKind::kOther:
      return "OTHER";
  }
  return "UNKNOWN";
}

void CancelToken::Cancel(Status reason) {
  DFLOW_CHECK(!reason.ok());
  if (cancelled()) return;  // first reason wins
  reason_ = std::move(reason);
}

}  // namespace dflow::lifecycle
