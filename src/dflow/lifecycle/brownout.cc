#include "dflow/lifecycle/brownout.h"

#include <algorithm>

namespace dflow::lifecycle {

const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kFull:
      return "FULL";
    case BrownoutLevel::kForceCheap:
      return "FORCE_CHEAP";
    case BrownoutLevel::kShedLowPriority:
      return "SHED_LOW_PRIORITY";
    case BrownoutLevel::kProbesOnly:
      return "PROBES_ONLY";
  }
  return "UNKNOWN";
}

double BrownoutController::WindowedMissRateLocked(
    const BrownoutSignals& signals) const {
  const uint64_t misses = signals.deadline_misses - misses_at_change_;
  const uint64_t terminals = signals.terminals - terminals_at_change_;
  if (terminals == 0) return misses > 0 ? 1.0 : 0.0;
  return static_cast<double>(misses) / static_cast<double>(terminals);
}

BrownoutLevel BrownoutController::Update(const BrownoutSignals& signals,
                                         sim::SimTime now) {
  RankedMutexLock lock(&mutex_);
  if (!config_.enabled) return level_;
  if (now < level_since_ns_ + config_.dwell_ns) {
    return level_;  // dwell not yet served (the initial kFull dwell too)
  }
  const double miss_rate = WindowedMissRateLocked(signals);
  const bool pressure_up = signals.queue_fraction >= config_.queue_up ||
                           miss_rate >= config_.miss_up ||
                           signals.open_breakers >= config_.breakers_up;
  const bool pressure_down = signals.queue_fraction < config_.queue_down &&
                             miss_rate < config_.miss_down &&
                             signals.open_breakers < config_.breakers_down;
  BrownoutLevel next = level_;
  if (pressure_up && level_ != BrownoutLevel::kProbesOnly) {
    next = static_cast<BrownoutLevel>(static_cast<uint8_t>(level_) + 1);
    ++escalations_;
  } else if (pressure_down && level_ != BrownoutLevel::kFull) {
    next = static_cast<BrownoutLevel>(static_cast<uint8_t>(level_) - 1);
    ++deescalations_;
  }
  if (next != level_) {
    level_ = next;
    level_since_ns_ = now;
    misses_at_change_ = signals.deadline_misses;
    terminals_at_change_ = signals.terminals;
    peak_ = std::max(peak_, level_);
  }
  return level_;
}

}  // namespace dflow::lifecycle
