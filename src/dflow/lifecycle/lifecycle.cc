#include "dflow/lifecycle/lifecycle.h"

#include <algorithm>

#include "dflow/common/logging.h"

namespace dflow::lifecycle {

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kAdmitted:
      return "ADMITTED";
    case QueryState::kRunning:
      return "RUNNING";
    case QueryState::kRetrying:
      return "RETRYING";
    case QueryState::kDegraded:
      return "DEGRADED";
    case QueryState::kDone:
      return "DONE";
    case QueryState::kCancelled:
      return "CANCELLED";
    case QueryState::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

const char* OutcomeCodeName(OutcomeCode code) {
  switch (code) {
    case OutcomeCode::kDone:
      return "DONE";
    case OutcomeCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case OutcomeCode::kCancelled:
      return "CANCELLED";
    case OutcomeCode::kRetryExhausted:
      return "RETRY_EXHAUSTED";
    case OutcomeCode::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

bool IsTerminal(QueryState state) {
  return state == QueryState::kDone || state == QueryState::kCancelled ||
         state == QueryState::kFailed;
}

bool LegalTransition(QueryState from, QueryState to) {
  switch (from) {
    case QueryState::kAdmitted:
      // A queued query can start (possibly already degraded at admission)
      // or be cancelled before ever launching.
      return to == QueryState::kRunning || to == QueryState::kDegraded ||
             to == QueryState::kCancelled;
    case QueryState::kRunning:
    case QueryState::kDegraded:
      return to == QueryState::kDone || to == QueryState::kRetrying ||
             to == QueryState::kCancelled || to == QueryState::kFailed;
    case QueryState::kRetrying:
      // Relaunch (on the original or a fallback placement), cancellation
      // mid-backoff, or failure when the relaunch itself cannot start.
      return to == QueryState::kRunning || to == QueryState::kDegraded ||
             to == QueryState::kCancelled || to == QueryState::kFailed;
    case QueryState::kDone:
    case QueryState::kCancelled:
    case QueryState::kFailed:
      return false;  // terminal
  }
  return false;
}

bool RetryPolicy::Retryable(FailureKind kind) const {
  switch (kind) {
    case FailureKind::kDeviceCrash:
      return retry_device_crash;
    case FailureKind::kDeliveryExhausted:
      return retry_delivery_exhausted;
    case FailureKind::kStorageExhausted:
      return retry_storage_exhausted;
    case FailureKind::kNone:
    case FailureKind::kDeadlineExceeded:
    case FailureKind::kCancelled:
    case FailureKind::kOther:
      return false;
  }
  return false;
}

sim::SimTime RetryBackoffNs(const RetryPolicy& policy, uint32_t attempt,
                            uint64_t query_id) {
  DFLOW_CHECK(attempt >= 1);
  if (policy.backoff_base_ns == 0) return 0;
  const uint32_t shift = std::min<uint32_t>(attempt - 1, 32);
  sim::SimTime backoff = policy.backoff_base_ns << shift;
  if (backoff > policy.backoff_max_ns || backoff < policy.backoff_base_ns) {
    backoff = policy.backoff_max_ns;
  }
  // SplitMix64-style hash of (seed, query, attempt): the same tuple always
  // jitters identically, different queries de-synchronize.
  uint64_t z = policy.jitter_seed ^ (query_id * 0x9E3779B97F4A7C15ull) ^
               (static_cast<uint64_t>(attempt) << 32);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const sim::SimTime jitter_span = policy.backoff_base_ns / 4;
  const sim::SimTime jitter = jitter_span == 0 ? 0 : z % (jitter_span + 1);
  return std::min(backoff + jitter, policy.backoff_max_ns);
}

QueryRecord& LifecycleManager::Admit(uint64_t query_id,
                                     sim::SimTime deadline_ns) {
  auto [it, inserted] = records_.emplace(query_id, QueryRecord{});
  DFLOW_CHECK(inserted);
  QueryRecord& record = it->second;
  record.query_id = query_id;
  record.deadline_ns = deadline_ns;
  record.token = std::make_shared<CancelToken>();
  return record;
}

QueryRecord* LifecycleManager::Get(uint64_t query_id) {
  auto it = records_.find(query_id);
  return it == records_.end() ? nullptr : &it->second;
}

const QueryRecord* LifecycleManager::Get(uint64_t query_id) const {
  auto it = records_.find(query_id);
  return it == records_.end() ? nullptr : &it->second;
}

void LifecycleManager::Transition(uint64_t query_id, QueryState next) {
  auto it = records_.find(query_id);
  DFLOW_CHECK(it != records_.end());
  QueryRecord& record = it->second;
  DFLOW_CHECK(LegalTransition(record.state, next))
      << "illegal lifecycle transition for query " << query_id << ": "
      << QueryStateName(record.state) << " -> " << QueryStateName(next);
  record.state = next;
  if (IsTerminal(next)) records_.erase(it);
}

void LifecycleManager::OnLaunch(uint64_t query_id, bool degraded) {
  auto it = records_.find(query_id);
  DFLOW_CHECK(it != records_.end());
  ++it->second.attempts;
  Transition(query_id,
             degraded ? QueryState::kDegraded : QueryState::kRunning);
}

void LifecycleManager::OnRetryScheduled(uint64_t query_id) {
  ++retries_scheduled_;
  Transition(query_id, QueryState::kRetrying);
}

RetryDecision LifecycleManager::Decide(uint64_t query_id,
                                       const QueryFailure& failure) const {
  const QueryRecord* record = Get(query_id);
  DFLOW_CHECK(record != nullptr);
  RetryDecision decision;
  if (failure.kind == FailureKind::kDeadlineExceeded) {
    decision.outcome = OutcomeCode::kDeadlineExceeded;
    return decision;
  }
  if (failure.kind == FailureKind::kCancelled) {
    decision.outcome = OutcomeCode::kCancelled;
    return decision;
  }
  if (!policy_.Retryable(failure.kind)) {
    decision.outcome = OutcomeCode::kFailed;
    return decision;
  }
  // record->attempts counts launches; retry attempt n is 1-based.
  const uint32_t retry_attempt = record->attempts;  // prior launches
  if (retry_attempt > policy_.max_attempts ||
      policy_.fallback_chain.empty()) {
    decision.outcome = record->attempts > 1 ? OutcomeCode::kRetryExhausted
                                            : OutcomeCode::kFailed;
    return decision;
  }
  decision.retry = true;
  decision.backoff_ns = RetryBackoffNs(policy_, retry_attempt, query_id);
  const size_t chain_index =
      std::min<size_t>(retry_attempt - 1, policy_.fallback_chain.size() - 1);
  decision.placement = policy_.fallback_chain[chain_index];
  return decision;
}

}  // namespace dflow::lifecycle
