#ifndef DFLOW_VECTOR_DATA_CHUNK_H_
#define DFLOW_VECTOR_DATA_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/types/schema.h"
#include "dflow/vector/column_vector.h"

namespace dflow {

/// Number of tuples in a full processing batch. Everything flowing between
/// operators, over links, and through accelerators is chopped into chunks of
/// at most this many rows.
inline constexpr size_t kVectorSize = 2048;

/// A horizontal batch of rows stored column-wise: the unit of data flow.
class DataChunk {
 public:
  DataChunk() = default;
  explicit DataChunk(std::vector<ColumnVector> columns)
      : columns_(std::move(columns)) {}

  /// An empty chunk with one empty column per schema field.
  static DataChunk EmptyFromSchema(const Schema& schema);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  bool empty() const { return num_rows() == 0; }

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }
  std::vector<ColumnVector>& columns() { return columns_; }
  const std::vector<ColumnVector>& columns() const { return columns_; }

  void AddColumn(ColumnVector col) { columns_.push_back(std::move(col)); }

  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// Appends row `row` of `other` to this chunk (columns must line up).
  void AppendRowFrom(const DataChunk& other, size_t row);

  /// New chunk with only the selected rows (all columns gathered).
  DataChunk Gather(const SelectionVector& sel) const;

  /// New chunk with only the given columns, in the given order.
  DataChunk SelectColumns(const std::vector<size_t>& indices) const;

  /// Wire size: sum of column byte sizes.
  uint64_t ByteSize() const;

  /// Checks all columns have equal length; used by tests and debug paths.
  bool IsWellFormed() const;

  std::string ToString(size_t max_rows = 10) const;

 private:
  std::vector<ColumnVector> columns_;
};

/// Content checksum over every column's data and validity, independent of
/// object identity. Computed at the sender and verified at the receiver by
/// the unreliable-fabric recovery layer — the same hash everywhere, like the
/// partitioning hash (see common/hash.h).
uint64_t ChecksumChunk(const DataChunk& chunk);

/// Splits `rows` rows worth of columns into kVectorSize-sized chunks.
/// `make_chunk(start, count)` must return the chunk covering that row range.
template <typename MakeChunkFn>
std::vector<DataChunk> ChunkRows(size_t rows, MakeChunkFn make_chunk) {
  std::vector<DataChunk> out;
  for (size_t start = 0; start < rows; start += kVectorSize) {
    const size_t count = std::min(kVectorSize, rows - start);
    out.push_back(make_chunk(start, count));
  }
  return out;
}

}  // namespace dflow

#endif  // DFLOW_VECTOR_DATA_CHUNK_H_
