#ifndef DFLOW_VECTOR_KERNELS_H_
#define DFLOW_VECTOR_KERNELS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "dflow/common/status.h"
#include "dflow/types/value.h"
#include "dflow/vector/column_vector.h"

namespace dflow {

/// Vectorized compute kernels. These are the primitive operations that run
/// identically on every processing element — CPU core, smart storage
/// processor, smart NIC, near-memory accelerator. Placement decides *where*
/// a kernel runs; the kernel itself is location-agnostic (the paper's
/// "operators redesigned to work on data as it flows", §1).

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);
std::string_view ArithOpToString(ArithOp op);

/// Byte-per-row boolean mask; 1 = row passes.
using Mask = std::vector<uint8_t>;

/// mask[i] = (col[i] op constant). NULL rows produce 0.
Status CompareToConstant(const ColumnVector& col, CompareOp op,
                         const Value& constant, Mask* mask);

/// mask[i] = (a[i] op b[i]). Columns must have equal length and comparable
/// types. NULL on either side produces 0.
Status CompareColumns(const ColumnVector& a, CompareOp op,
                      const ColumnVector& b, Mask* mask);

/// mask[i] = LIKE(col[i], pattern). Column must be kString.
Status ComputeLikeMask(const ColumnVector& col, std::string_view pattern,
                       Mask* mask);

/// In-place mask combinators (sizes must match).
void AndMasks(const Mask& other, Mask* mask);
void OrMasks(const Mask& other, Mask* mask);
void NotMask(Mask* mask);

/// Indices of all set positions, in order.
SelectionVector MaskToSelection(const Mask& mask);

/// Count of set positions.
size_t MaskPopCount(const Mask& mask);

/// out[i] = a[i] op b[i] for numeric columns. Result type: kDouble if either
/// input is kDouble, else kInt64. Integer division by zero yields NULL;
/// double division by zero yields inf (IEEE).
Status Arithmetic(const ColumnVector& a, ArithOp op, const ColumnVector& b,
                  ColumnVector* out);

/// out[i] = col[i] op constant (same typing rules as Arithmetic).
Status ArithmeticConst(const ColumnVector& col, ArithOp op,
                       const Value& constant, ColumnVector* out);

/// Hashes each row of `col`. If `hashes` is empty it is filled with fresh
/// hashes; otherwise each entry is combined with the column's hash (for
/// multi-column keys). NULL hashes to a fixed sentinel.
Status HashColumn(const ColumnVector& col, std::vector<uint64_t>* hashes);

}  // namespace dflow

#endif  // DFLOW_VECTOR_KERNELS_H_
