#include "dflow/vector/column_vector.h"

#include "dflow/common/logging.h"

namespace dflow {

namespace {
// Physical storage kind for each logical type.
enum class Phys { kU8, kI32, kI64, kF64, kStr };

Phys PhysOf(DataType type) {
  switch (type) {
    case DataType::kBool:
      return Phys::kU8;
    case DataType::kInt32:
    case DataType::kDate32:
      return Phys::kI32;
    case DataType::kInt64:
      return Phys::kI64;
    case DataType::kDouble:
      return Phys::kF64;
    case DataType::kString:
      return Phys::kStr;
  }
  return Phys::kI64;
}
}  // namespace

void ColumnVector::InitStorage() {
  switch (PhysOf(type_)) {
    case Phys::kU8:
      data_ = std::vector<uint8_t>();
      break;
    case Phys::kI32:
      data_ = std::vector<int32_t>();
      break;
    case Phys::kI64:
      data_ = std::vector<int64_t>();
      break;
    case Phys::kF64:
      data_ = std::vector<double>();
      break;
    case Phys::kStr:
      data_ = std::vector<std::string>();
      break;
  }
}

ColumnVector ColumnVector::FromInt32(std::vector<int32_t> values) {
  ColumnVector col(DataType::kInt32);
  col.data_ = std::move(values);
  return col;
}

ColumnVector ColumnVector::FromInt64(std::vector<int64_t> values) {
  ColumnVector col(DataType::kInt64);
  col.data_ = std::move(values);
  return col;
}

ColumnVector ColumnVector::FromDouble(std::vector<double> values) {
  ColumnVector col(DataType::kDouble);
  col.data_ = std::move(values);
  return col;
}

ColumnVector ColumnVector::FromString(std::vector<std::string> values) {
  ColumnVector col(DataType::kString);
  col.data_ = std::move(values);
  return col;
}

ColumnVector ColumnVector::FromBool(std::vector<uint8_t> values) {
  ColumnVector col(DataType::kBool);
  col.data_ = std::move(values);
  return col;
}

ColumnVector ColumnVector::FromDate32(std::vector<int32_t> days) {
  ColumnVector col(DataType::kDate32);
  col.data_ = std::move(days);
  return col;
}

size_t ColumnVector::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void ColumnVector::EnsureValidity() {
  if (validity_.empty()) validity_.assign(size(), 1);
}

void ColumnVector::SetNull(size_t i) {
  DFLOW_CHECK_LT(i, size());
  EnsureValidity();
  validity_[i] = 0;
}

Value ColumnVector::GetValue(size_t i) const {
  DFLOW_CHECK_LT(i, size());
  if (!IsValid(i)) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bool_data()[i] != 0);
    case DataType::kInt32:
      return Value::Int32(i32()[i]);
    case DataType::kDate32:
      return Value::Date32(i32()[i]);
    case DataType::kInt64:
      return Value::Int64(i64()[i]);
    case DataType::kDouble:
      return Value::Double(f64()[i]);
    case DataType::kString:
      return Value::String(strs()[i]);
  }
  return Value();
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
      bool_data().push_back(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt32:
      i32().push_back(v.int32_value());
      break;
    case DataType::kDate32:
      i32().push_back(v.date32_value());
      break;
    case DataType::kInt64:
      i64().push_back(v.int64_value());
      break;
    case DataType::kDouble:
      f64().push_back(v.double_value());
      break;
    case DataType::kString:
      strs().push_back(v.string_value());
      break;
  }
  if (!validity_.empty()) validity_.push_back(1);
}

void ColumnVector::AppendNull() {
  EnsureValidity();
  // Append a placeholder slot in the data storage.
  std::visit([](auto& v) { v.emplace_back(); }, data_);
  validity_.push_back(0);
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t index) {
  DFLOW_CHECK(type_ == other.type_);
  DFLOW_CHECK_LT(index, other.size());
  if (!other.IsValid(index)) {
    AppendNull();
    return;
  }
  switch (PhysOf(type_)) {
    case Phys::kU8:
      bool_data().push_back(other.bool_data()[index]);
      break;
    case Phys::kI32:
      i32().push_back(other.i32()[index]);
      break;
    case Phys::kI64:
      i64().push_back(other.i64()[index]);
      break;
    case Phys::kF64:
      f64().push_back(other.f64()[index]);
      break;
    case Phys::kStr:
      strs().push_back(other.strs()[index]);
      break;
  }
  if (!validity_.empty()) validity_.push_back(1);
}

void ColumnVector::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

void ColumnVector::Clear() {
  std::visit([](auto& v) { v.clear(); }, data_);
  validity_.clear();
}

ColumnVector ColumnVector::Gather(const SelectionVector& sel) const {
  ColumnVector out(type_);
  out.Reserve(sel.size());
  const bool has_nulls = HasNulls();
  std::visit(
      [&](const auto& src) {
        auto& dst = std::get<std::decay_t<decltype(src)>>(out.data_);
        for (size_t i = 0; i < sel.size(); ++i) {
          dst.push_back(src[sel[i]]);
        }
      },
      data_);
  if (has_nulls) {
    out.validity_.resize(sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      out.validity_[i] = validity_[sel[i]];
    }
  }
  return out;
}

uint64_t ColumnVector::ByteSize() const {
  uint64_t bytes = 0;
  if (type_ == DataType::kString) {
    for (const std::string& s : strs()) {
      bytes += s.size() + 4;  // 4-byte length prefix on the wire
    }
  } else {
    bytes = static_cast<uint64_t>(size()) * FixedWidthBytes(type_);
  }
  if (HasNulls()) bytes += size();
  return bytes;
}

}  // namespace dflow
