#include "dflow/vector/kernels.h"

#include <cmath>

#include "dflow/common/hash.h"
#include "dflow/common/logging.h"
#include "dflow/common/string_util.h"

namespace dflow {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {

template <typename T>
bool ApplyCompare(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

// Compares a typed column against a typed constant, honoring nulls.
template <typename T, typename GetFn>
void CompareLoop(size_t n, const ColumnVector& col, GetFn get, CompareOp op,
                 const T& constant, Mask* mask) {
  mask->assign(n, 0);
  if (col.HasNulls()) {
    for (size_t i = 0; i < n; ++i) {
      (*mask)[i] = col.IsValid(i) && ApplyCompare(op, get(i), constant) ? 1 : 0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      (*mask)[i] = ApplyCompare(op, get(i), constant) ? 1 : 0;
    }
  }
}

}  // namespace

Status CompareToConstant(const ColumnVector& col, CompareOp op,
                         const Value& constant, Mask* mask) {
  const size_t n = col.size();
  if (constant.is_null()) {
    // SQL semantics: comparison with NULL is never true.
    mask->assign(n, 0);
    return Status::OK();
  }
  switch (col.type()) {
    case DataType::kInt32:
    case DataType::kDate32: {
      if (constant.type() == DataType::kString ||
          constant.type() == DataType::kBool) {
        return Status::InvalidArgument("cannot compare int column with " +
                                       std::string(DataTypeToString(constant.type())));
      }
      const auto& d = col.i32();
      if (constant.type() == DataType::kDouble) {
        const double c = constant.AsDouble();
        CompareLoop<double>(n, col, [&](size_t i) { return static_cast<double>(d[i]); },
                            op, c, mask);
      } else {
        const int64_t c = constant.AsInt64();
        CompareLoop<int64_t>(n, col, [&](size_t i) { return static_cast<int64_t>(d[i]); },
                             op, c, mask);
      }
      return Status::OK();
    }
    case DataType::kInt64: {
      if (constant.type() == DataType::kString ||
          constant.type() == DataType::kBool) {
        return Status::InvalidArgument("cannot compare int column with " +
                                       std::string(DataTypeToString(constant.type())));
      }
      const auto& d = col.i64();
      if (constant.type() == DataType::kDouble) {
        const double c = constant.AsDouble();
        CompareLoop<double>(n, col, [&](size_t i) { return static_cast<double>(d[i]); },
                            op, c, mask);
      } else {
        const int64_t c = constant.AsInt64();
        CompareLoop<int64_t>(n, col, [&](size_t i) { return d[i]; }, op, c, mask);
      }
      return Status::OK();
    }
    case DataType::kDouble: {
      if (!IsNumeric(constant.type()) && constant.type() != DataType::kDate32) {
        return Status::InvalidArgument("cannot compare double column with " +
                                       std::string(DataTypeToString(constant.type())));
      }
      const auto& d = col.f64();
      const double c = constant.AsDouble();
      CompareLoop<double>(n, col, [&](size_t i) { return d[i]; }, op, c, mask);
      return Status::OK();
    }
    case DataType::kString: {
      if (constant.type() != DataType::kString) {
        return Status::InvalidArgument("cannot compare string column with " +
                                       std::string(DataTypeToString(constant.type())));
      }
      const auto& d = col.strs();
      const std::string& c = constant.string_value();
      CompareLoop<std::string>(n, col, [&](size_t i) { return d[i]; }, op, c,
                               mask);
      return Status::OK();
    }
    case DataType::kBool: {
      if (constant.type() != DataType::kBool) {
        return Status::InvalidArgument("cannot compare bool column with " +
                                       std::string(DataTypeToString(constant.type())));
      }
      const auto& d = col.bool_data();
      const uint8_t c = constant.bool_value() ? 1 : 0;
      CompareLoop<uint8_t>(n, col, [&](size_t i) { return d[i]; }, op, c, mask);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status CompareColumns(const ColumnVector& a, CompareOp op,
                      const ColumnVector& b, Mask* mask) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("CompareColumns: length mismatch");
  }
  const size_t n = a.size();
  mask->assign(n, 0);
  auto valid = [&](size_t i) { return a.IsValid(i) && b.IsValid(i); };
  if (a.type() == DataType::kString || b.type() == DataType::kString) {
    if (a.type() != DataType::kString || b.type() != DataType::kString) {
      return Status::InvalidArgument("CompareColumns: string vs non-string");
    }
    for (size_t i = 0; i < n; ++i) {
      (*mask)[i] = valid(i) && ApplyCompare(op, a.strs()[i], b.strs()[i]);
    }
    return Status::OK();
  }
  if (a.type() == DataType::kBool || b.type() == DataType::kBool) {
    if (a.type() != DataType::kBool || b.type() != DataType::kBool) {
      return Status::InvalidArgument("CompareColumns: bool vs non-bool");
    }
    for (size_t i = 0; i < n; ++i) {
      (*mask)[i] =
          valid(i) && ApplyCompare(op, a.bool_data()[i], b.bool_data()[i]);
    }
    return Status::OK();
  }
  // Numeric path: promote to double if either side is double, else int64.
  auto geti = [](const ColumnVector& c, size_t i) -> int64_t {
    switch (c.type()) {
      case DataType::kInt32:
      case DataType::kDate32:
        return c.i32()[i];
      case DataType::kInt64:
        return c.i64()[i];
      default:
        return 0;
    }
  };
  if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
    auto getd = [&](const ColumnVector& c, size_t i) -> double {
      return c.type() == DataType::kDouble ? c.f64()[i]
                                           : static_cast<double>(geti(c, i));
    };
    for (size_t i = 0; i < n; ++i) {
      (*mask)[i] = valid(i) && ApplyCompare(op, getd(a, i), getd(b, i));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      (*mask)[i] = valid(i) && ApplyCompare(op, geti(a, i), geti(b, i));
    }
  }
  return Status::OK();
}

Status ComputeLikeMask(const ColumnVector& col, std::string_view pattern,
                       Mask* mask) {
  if (col.type() != DataType::kString) {
    return Status::InvalidArgument("LIKE requires a string column");
  }
  const size_t n = col.size();
  mask->assign(n, 0);
  const auto& d = col.strs();
  for (size_t i = 0; i < n; ++i) {
    (*mask)[i] = col.IsValid(i) && LikeMatch(d[i], pattern) ? 1 : 0;
  }
  return Status::OK();
}

void AndMasks(const Mask& other, Mask* mask) {
  DFLOW_CHECK_EQ(other.size(), mask->size());
  for (size_t i = 0; i < mask->size(); ++i) {
    (*mask)[i] = (*mask)[i] & other[i];
  }
}

void OrMasks(const Mask& other, Mask* mask) {
  DFLOW_CHECK_EQ(other.size(), mask->size());
  for (size_t i = 0; i < mask->size(); ++i) {
    (*mask)[i] = (*mask)[i] | other[i];
  }
}

void NotMask(Mask* mask) {
  for (size_t i = 0; i < mask->size(); ++i) {
    (*mask)[i] = (*mask)[i] ? 0 : 1;
  }
}

SelectionVector MaskToSelection(const Mask& mask) {
  SelectionVector sel;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) sel.Append(static_cast<uint32_t>(i));
  }
  return sel;
}

size_t MaskPopCount(const Mask& mask) {
  size_t count = 0;
  for (uint8_t m : mask) count += m ? 1 : 0;
  return count;
}

namespace {

template <typename T>
T ApplyArith(ArithOp op, T a, T b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    case ArithOp::kMul:
      return a * b;
    case ArithOp::kDiv:
      return a / b;
  }
  return T{};
}

// Reads a numeric column element as double or int64.
double GetNumericAsDouble(const ColumnVector& c, size_t i) {
  switch (c.type()) {
    case DataType::kInt32:
    case DataType::kDate32:
      return c.i32()[i];
    case DataType::kInt64:
      return static_cast<double>(c.i64()[i]);
    case DataType::kDouble:
      return c.f64()[i];
    default:
      return 0.0;
  }
}

int64_t GetNumericAsInt64(const ColumnVector& c, size_t i) {
  switch (c.type()) {
    case DataType::kInt32:
    case DataType::kDate32:
      return c.i32()[i];
    case DataType::kInt64:
      return c.i64()[i];
    default:
      return 0;
  }
}

}  // namespace

Status Arithmetic(const ColumnVector& a, ArithOp op, const ColumnVector& b,
                  ColumnVector* out) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Arithmetic: length mismatch");
  }
  if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
    return Status::InvalidArgument("Arithmetic requires numeric columns");
  }
  const size_t n = a.size();
  const bool any_null = a.HasNulls() || b.HasNulls();
  if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
    ColumnVector result(DataType::kDouble);
    auto& d = result.f64();
    d.resize(n);
    for (size_t i = 0; i < n; ++i) {
      d[i] = ApplyArith(op, GetNumericAsDouble(a, i), GetNumericAsDouble(b, i));
    }
    if (any_null) {
      for (size_t i = 0; i < n; ++i) {
        if (!a.IsValid(i) || !b.IsValid(i)) result.SetNull(i);
      }
    }
    *out = std::move(result);
    return Status::OK();
  }
  ColumnVector result(DataType::kInt64);
  auto& d = result.i64();
  d.resize(n);
  std::vector<size_t> div_zero;
  for (size_t i = 0; i < n; ++i) {
    const int64_t rhs = GetNumericAsInt64(b, i);
    if (op == ArithOp::kDiv && rhs == 0) {
      d[i] = 0;
      div_zero.push_back(i);
      continue;
    }
    d[i] = ApplyArith(op, GetNumericAsInt64(a, i), rhs);
  }
  for (size_t i : div_zero) result.SetNull(i);
  if (any_null) {
    for (size_t i = 0; i < n; ++i) {
      if (!a.IsValid(i) || !b.IsValid(i)) result.SetNull(i);
    }
  }
  *out = std::move(result);
  return Status::OK();
}

Status ArithmeticConst(const ColumnVector& col, ArithOp op,
                       const Value& constant, ColumnVector* out) {
  if (!IsNumeric(col.type()) || constant.is_null() ||
      !IsNumeric(constant.type())) {
    return Status::InvalidArgument(
        "ArithmeticConst requires numeric column and non-null numeric "
        "constant");
  }
  // Broadcast the constant into a column and reuse the column-column path.
  // Chunk sizes are small (<= kVectorSize) so the copy is cheap and keeps a
  // single arithmetic implementation.
  const size_t n = col.size();
  ColumnVector broadcast(constant.type() == DataType::kDouble
                             ? DataType::kDouble
                             : DataType::kInt64);
  if (constant.type() == DataType::kDouble) {
    broadcast.f64().assign(n, constant.double_value());
  } else {
    broadcast.i64().assign(n, constant.AsInt64());
  }
  return Arithmetic(col, op, broadcast, out);
}

Status HashColumn(const ColumnVector& col, std::vector<uint64_t>* hashes) {
  const size_t n = col.size();
  constexpr uint64_t kNullHash = 0x7ull;
  const bool combine = !hashes->empty();
  if (combine && hashes->size() != n) {
    return Status::InvalidArgument("HashColumn: hash vector length mismatch");
  }
  if (!combine) hashes->assign(n, 0);
  auto emit = [&](size_t i, uint64_t h) {
    (*hashes)[i] = combine ? HashCombine((*hashes)[i], h) : h;
  };
  switch (col.type()) {
    case DataType::kInt32:
    case DataType::kDate32: {
      const auto& d = col.i32();
      for (size_t i = 0; i < n; ++i) {
        emit(i, col.IsValid(i)
                    ? HashInt64(static_cast<uint64_t>(static_cast<int64_t>(d[i])))
                    : kNullHash);
      }
      break;
    }
    case DataType::kInt64: {
      const auto& d = col.i64();
      for (size_t i = 0; i < n; ++i) {
        emit(i, col.IsValid(i) ? HashInt64(static_cast<uint64_t>(d[i]))
                               : kNullHash);
      }
      break;
    }
    case DataType::kDouble: {
      const auto& d = col.f64();
      for (size_t i = 0; i < n; ++i) {
        emit(i, col.IsValid(i) ? HashDouble(d[i]) : kNullHash);
      }
      break;
    }
    case DataType::kString: {
      const auto& d = col.strs();
      for (size_t i = 0; i < n; ++i) {
        emit(i, col.IsValid(i) ? HashString(d[i]) : kNullHash);
      }
      break;
    }
    case DataType::kBool: {
      const auto& d = col.bool_data();
      for (size_t i = 0; i < n; ++i) {
        emit(i, col.IsValid(i) ? HashInt64(d[i]) : kNullHash);
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace dflow
