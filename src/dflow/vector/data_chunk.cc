#include "dflow/vector/data_chunk.h"

#include <sstream>

#include "dflow/common/logging.h"

namespace dflow {

DataChunk DataChunk::EmptyFromSchema(const Schema& schema) {
  std::vector<ColumnVector> cols;
  cols.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    cols.emplace_back(f.type);
  }
  return DataChunk(std::move(cols));
}

void DataChunk::AppendRowFrom(const DataChunk& other, size_t row) {
  DFLOW_CHECK_EQ(columns_.size(), other.columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], row);
  }
}

DataChunk DataChunk::Gather(const SelectionVector& sel) const {
  std::vector<ColumnVector> cols;
  cols.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    cols.push_back(col.Gather(sel));
  }
  return DataChunk(std::move(cols));
}

DataChunk DataChunk::SelectColumns(const std::vector<size_t>& indices) const {
  std::vector<ColumnVector> cols;
  cols.reserve(indices.size());
  for (size_t idx : indices) {
    DFLOW_CHECK_LT(idx, columns_.size());
    cols.push_back(columns_[idx]);
  }
  return DataChunk(std::move(cols));
}

uint64_t DataChunk::ByteSize() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    bytes += col.ByteSize();
  }
  return bytes;
}

bool DataChunk::IsWellFormed() const {
  for (const ColumnVector& col : columns_) {
    if (col.size() != num_rows()) return false;
  }
  return true;
}

std::string DataChunk::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "DataChunk(" << num_rows() << " rows, " << num_columns() << " cols)\n";
  const size_t limit = std::min(max_rows, num_rows());
  for (size_t r = 0; r < limit; ++r) {
    os << "  [";
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) os << ", ";
      os << GetValue(r, c).ToString();
    }
    os << "]\n";
  }
  if (limit < num_rows()) os << "  ... (" << (num_rows() - limit) << " more)\n";
  return os.str();
}

}  // namespace dflow
