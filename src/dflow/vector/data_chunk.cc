#include "dflow/vector/data_chunk.h"

#include <sstream>

#include "dflow/common/hash.h"
#include "dflow/common/logging.h"

namespace dflow {

DataChunk DataChunk::EmptyFromSchema(const Schema& schema) {
  std::vector<ColumnVector> cols;
  cols.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    cols.emplace_back(f.type);
  }
  return DataChunk(std::move(cols));
}

void DataChunk::AppendRowFrom(const DataChunk& other, size_t row) {
  DFLOW_CHECK_EQ(columns_.size(), other.columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], row);
  }
}

DataChunk DataChunk::Gather(const SelectionVector& sel) const {
  std::vector<ColumnVector> cols;
  cols.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    cols.push_back(col.Gather(sel));
  }
  return DataChunk(std::move(cols));
}

DataChunk DataChunk::SelectColumns(const std::vector<size_t>& indices) const {
  std::vector<ColumnVector> cols;
  cols.reserve(indices.size());
  for (size_t idx : indices) {
    DFLOW_CHECK_LT(idx, columns_.size());
    cols.push_back(columns_[idx]);
  }
  return DataChunk(std::move(cols));
}

uint64_t DataChunk::ByteSize() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) {
    bytes += col.ByteSize();
  }
  return bytes;
}

bool DataChunk::IsWellFormed() const {
  for (const ColumnVector& col : columns_) {
    if (col.size() != num_rows()) return false;
  }
  return true;
}

std::string DataChunk::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "DataChunk(" << num_rows() << " rows, " << num_columns() << " cols)\n";
  const size_t limit = std::min(max_rows, num_rows());
  for (size_t r = 0; r < limit; ++r) {
    os << "  [";
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) os << ", ";
      os << GetValue(r, c).ToString();
    }
    os << "]\n";
  }
  if (limit < num_rows()) os << "  ... (" << (num_rows() - limit) << " more)\n";
  return os.str();
}

uint64_t ChecksumChunk(const DataChunk& chunk) {
  uint64_t h = HashInt64(chunk.num_columns());
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    const ColumnVector& col = chunk.column(c);
    h = HashCombine(h, static_cast<uint64_t>(col.type()));
    h = HashCombine(h, col.size());
    switch (col.type()) {
      case DataType::kBool:
        h = HashCombine(
            h, HashBytes(col.bool_data().data(), col.bool_data().size()));
        break;
      case DataType::kInt32:
      case DataType::kDate32:
        h = HashCombine(h, HashBytes(col.i32().data(),
                                     col.i32().size() * sizeof(int32_t)));
        break;
      case DataType::kInt64:
        h = HashCombine(h, HashBytes(col.i64().data(),
                                     col.i64().size() * sizeof(int64_t)));
        break;
      case DataType::kDouble:
        h = HashCombine(h, HashBytes(col.f64().data(),
                                     col.f64().size() * sizeof(double)));
        break;
      case DataType::kString:
        for (const std::string& s : col.strs()) {
          h = HashCombine(h, HashString(s));
        }
        break;
    }
    for (size_t i = 0; i < col.size(); ++i) {
      if (!col.IsValid(i)) h = HashCombine(h, i);
    }
  }
  return h;
}

}  // namespace dflow
