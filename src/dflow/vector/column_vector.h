#ifndef DFLOW_VECTOR_COLUMN_VECTOR_H_
#define DFLOW_VECTOR_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dflow/types/data_type.h"
#include "dflow/types/value.h"

namespace dflow {

/// Indices of rows selected out of a chunk; the standard vectorized-filter
/// representation (DuckDB/Velox style).
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(std::vector<uint32_t> indices)
      : indices_(std::move(indices)) {}

  size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  uint32_t operator[](size_t i) const { return indices_[i]; }
  void Append(uint32_t idx) { indices_.push_back(idx); }
  void Clear() { indices_.clear(); }
  const std::vector<uint32_t>& indices() const { return indices_; }

 private:
  std::vector<uint32_t> indices_;
};

/// A typed column of values with optional null tracking.
///
/// Storage is one std::vector chosen by physical type:
///   kBool            -> uint8_t
///   kInt32, kDate32  -> int32_t
///   kInt64           -> int64_t
///   kDouble          -> double
///   kString          -> std::string
///
/// Validity is a byte-per-row mask, allocated lazily on the first null
/// (columns with no nulls pay nothing). ByteSize() reports the wire size of
/// the column — the quantity every data-movement experiment accounts in.
class ColumnVector {
 public:
  ColumnVector() : type_(DataType::kInt64) { InitStorage(); }
  explicit ColumnVector(DataType type) : type_(type) { InitStorage(); }

  ColumnVector(const ColumnVector&) = default;
  ColumnVector& operator=(const ColumnVector&) = default;
  ColumnVector(ColumnVector&&) = default;
  ColumnVector& operator=(ColumnVector&&) = default;

  /// Convenience factories for tests and generators.
  static ColumnVector FromInt32(std::vector<int32_t> values);
  static ColumnVector FromInt64(std::vector<int64_t> values);
  static ColumnVector FromDouble(std::vector<double> values);
  static ColumnVector FromString(std::vector<std::string> values);
  static ColumnVector FromBool(std::vector<uint8_t> values);
  static ColumnVector FromDate32(std::vector<int32_t> days);

  DataType type() const { return type_; }
  size_t size() const;

  /// Typed storage accessors. Calling the wrong one aborts.
  std::vector<uint8_t>& bool_data() { return std::get<std::vector<uint8_t>>(data_); }
  const std::vector<uint8_t>& bool_data() const {
    return std::get<std::vector<uint8_t>>(data_);
  }
  std::vector<int32_t>& i32() { return std::get<std::vector<int32_t>>(data_); }
  const std::vector<int32_t>& i32() const {
    return std::get<std::vector<int32_t>>(data_);
  }
  std::vector<int64_t>& i64() { return std::get<std::vector<int64_t>>(data_); }
  const std::vector<int64_t>& i64() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  std::vector<double>& f64() { return std::get<std::vector<double>>(data_); }
  const std::vector<double>& f64() const {
    return std::get<std::vector<double>>(data_);
  }
  std::vector<std::string>& strs() {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<std::string>& strs() const {
    return std::get<std::vector<std::string>>(data_);
  }

  /// Null handling. The mask is lazily allocated: HasNulls() is false until
  /// the first SetNull/AppendNull.
  bool HasNulls() const { return !validity_.empty(); }
  bool IsValid(size_t i) const { return validity_.empty() || validity_[i] != 0; }
  void SetNull(size_t i);

  /// Generic element access (slower than typed paths; used at boundaries).
  Value GetValue(size_t i) const;
  void AppendValue(const Value& v);
  void AppendNull();

  /// Appends `other[index]` to this column. Types must match.
  void AppendFrom(const ColumnVector& other, size_t index);

  void Reserve(size_t n);
  void Clear();

  /// New column containing the selected rows, in selection order.
  ColumnVector Gather(const SelectionVector& sel) const;

  /// Wire size in bytes: fixed width * rows, or string byte total plus a
  /// 4-byte length per row, plus the validity mask if present.
  uint64_t ByteSize() const;

 private:
  void InitStorage();
  void EnsureValidity();

  DataType type_;
  std::variant<std::vector<uint8_t>, std::vector<int32_t>,
               std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  std::vector<uint8_t> validity_;  // empty == all valid
};

}  // namespace dflow

#endif  // DFLOW_VECTOR_COLUMN_VECTOR_H_
