#ifndef DFLOW_TRACE_JSON_H_
#define DFLOW_TRACE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"

namespace dflow::trace {

/// Minimal JSON support for the observability exporters: a deterministic
/// writer (used for Chrome traces and report files) and a recursive-descent
/// parser (used by the round-trip tests and anyone consuming report JSON
/// from C++). No external dependency; the dialect is plain RFC 8259.

/// Escapes `s` into a double-quoted JSON string literal.
std::string JsonQuote(const std::string& s);

/// A parsed JSON value. Numbers keep their raw token so 64-bit counters
/// survive the round trip exactly (a double would lose precision past
/// 2^53 — think bytes-moved counters on long runs).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const;
  uint64_t AsUInt64() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup; null value if absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Nested lookup along a dotted path ("fault.retransmits").
  const JsonValue* FindPath(const std::string& dotted_path) const;

  static JsonValue MakeNull();
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(std::string raw_token);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  // number token or string payload
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace dflow::trace

#endif  // DFLOW_TRACE_JSON_H_
