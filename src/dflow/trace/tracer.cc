#include "dflow/trace/tracer.h"

#include <algorithm>

#include "dflow/common/logging.h"

namespace dflow::trace {

Tracer::Tracer(TraceOptions options) : options_(options) {
  DFLOW_CHECK_GT(options_.ring_capacity, 0u);
  ring_.reserve(std::min<size_t>(options_.ring_capacity, 4096));
}

void Tracer::Record(TraceEvent event) {
  event.seq = next_seq_++;
  total_recorded_ += 1;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest slot.
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % options_.ring_capacity;
}

void Tracer::Span(std::string category, std::string track, std::string name,
                  sim::SimTime start, sim::SimTime end, uint64_t value,
                  std::string detail) {
  TraceEvent e;
  e.kind = EventKind::kSpan;
  e.category = std::move(category);
  e.track = std::move(track);
  e.name = std::move(name);
  e.start = start;
  e.end = end;
  e.value = value;
  e.detail = std::move(detail);
  Record(std::move(e));
}

void Tracer::Instant(std::string category, std::string track, std::string name,
                     sim::SimTime at, uint64_t value, std::string detail) {
  TraceEvent e;
  e.kind = EventKind::kInstant;
  e.category = std::move(category);
  e.track = std::move(track);
  e.name = std::move(name);
  e.start = at;
  e.end = at;
  e.value = value;
  e.detail = std::move(detail);
  Record(std::move(e));
}

void Tracer::Counter(std::string category, std::string track, std::string name,
                     sim::SimTime at, uint64_t value) {
  TraceEvent e;
  e.kind = EventKind::kCounter;
  e.category = std::move(category);
  e.track = std::move(track);
  e.name = std::move(name);
  e.start = at;
  e.end = at;
  e.value = value;
  Record(std::move(e));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Unroll the ring: head_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.seq < b.seq;
            });
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
  total_recorded_ = 0;
}

}  // namespace dflow::trace
