#include "dflow/trace/chrome_export.h"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "dflow/trace/json.h"

namespace dflow::trace {

namespace {

/// Row ordering in the timeline view: the data path first (where bytes are
/// processed), then the wires they cross, then control/annotation rows.
int CategoryRank(const std::string& category) {
  if (category == "device") return 0;
  if (category == "stage") return 1;
  if (category == "link") return 2;
  if (category == "dma") return 3;
  if (category == "edge") return 4;
  if (category == "fault") return 5;
  if (category == "engine") return 6;
  if (category == "sched") return 7;
  return 8;
}

/// Virtual ns -> Chrome's microsecond timestamps, fixed 3 decimals so the
/// text output is byte-stable.
std::string Micros(sim::SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void WriteChromeTrace(const Tracer& tracer, std::ostream& os) {
  const std::vector<TraceEvent> events = tracer.Events();

  // Stable tid assignment: sort the distinct (category, track) rows.
  std::map<std::pair<int, std::pair<std::string, std::string>>, int> rows;
  for (const TraceEvent& e : events) {
    rows.emplace(std::make_pair(CategoryRank(e.category),
                                std::make_pair(e.category, e.track)),
                 0);
  }
  int next_tid = 1;
  for (auto& [key, tid] : rows) tid = next_tid++;
  auto tid_of = [&rows](const TraceEvent& e) {
    return rows.at(std::make_pair(CategoryRank(e.category),
                                  std::make_pair(e.category, e.track)));
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&os, &first](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };

  emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
       "\"dflow fabric (virtual time)\"}}");
  for (const auto& [key, tid] : rows) {
    const auto& [category, track] = key.second;
    std::ostringstream line;
    line << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":"
         << JsonQuote(category + ":" + track) << "}}";
    emit(line.str());
    // sort_index pins the row order to the category ranking above.
    std::ostringstream sort_line;
    sort_line << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
              << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
              << tid << "}}";
    emit(sort_line.str());
  }

  for (const TraceEvent& e : events) {
    std::ostringstream line;
    switch (e.kind) {
      case EventKind::kSpan:
        line << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid_of(e)
             << ",\"ts\":" << Micros(e.start)
             << ",\"dur\":" << Micros(e.end - e.start)
             << ",\"name\":" << JsonQuote(e.name)
             << ",\"cat\":" << JsonQuote(e.category)
             << ",\"args\":{\"bytes\":" << e.value;
        if (!e.detail.empty()) line << ",\"detail\":" << JsonQuote(e.detail);
        line << "}}";
        break;
      case EventKind::kInstant:
        line << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid_of(e)
             << ",\"ts\":" << Micros(e.start)
             << ",\"name\":" << JsonQuote(e.name)
             << ",\"cat\":" << JsonQuote(e.category)
             << ",\"args\":{\"value\":" << e.value;
        if (!e.detail.empty()) line << ",\"detail\":" << JsonQuote(e.detail);
        line << "}}";
        break;
      case EventKind::kCounter:
        line << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << tid_of(e)
             << ",\"ts\":" << Micros(e.start)
             << ",\"name\":" << JsonQuote(e.track + "/" + e.name)
             << ",\"cat\":" << JsonQuote(e.category) << ",\"args\":{"
             << JsonQuote(e.name) << ":" << e.value << "}}";
        break;
    }
    emit(line.str());
  }

  os << "\n],\"otherData\":{\"dropped_events\":" << tracer.dropped() << "}}\n";
}

std::string ChromeTraceString(const Tracer& tracer) {
  std::ostringstream os;
  WriteChromeTrace(tracer, os);
  return os.str();
}

}  // namespace dflow::trace
