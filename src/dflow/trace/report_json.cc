#include "dflow/trace/report_json.h"

#include <sstream>

#include "dflow/trace/json.h"

namespace dflow::trace {

namespace {

void AppendMap(std::ostringstream& os, const char* key,
               const std::map<std::string, uint64_t>& m) {
  os << "\"" << key << "\":{";
  bool first = true;
  for (const auto& [name, value] : m) {  // std::map: sorted, deterministic
    if (!first) os << ",";
    first = false;
    os << JsonQuote(name) << ":" << value;
  }
  os << "}";
}

uint64_t GetU64(const JsonValue& root, const std::string& path) {
  const JsonValue* v = root.FindPath(path);
  return v != nullptr && v->type() == JsonValue::Type::kNumber ? v->AsUInt64()
                                                               : 0;
}

std::string GetString(const JsonValue& root, const std::string& path) {
  const JsonValue* v = root.FindPath(path);
  return v != nullptr && v->type() == JsonValue::Type::kString ? v->AsString()
                                                               : "";
}

}  // namespace

std::string ExecutionReportToJson(const ExecutionReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"dflow.execution_report.v1\"";
  os << ",\"variant\":" << JsonQuote(report.variant);
  os << ",\"sim_ns\":" << report.sim_ns;
  os << ",\"result_rows\":" << report.result_rows;
  os << ",\"media_bytes\":" << report.media_bytes;
  os << ",\"network_bytes\":" << report.network_bytes;
  os << ",\"interconnect_bytes\":" << report.interconnect_bytes;
  os << ",\"membus_bytes\":" << report.membus_bytes;
  os << ",\"peak_queue_bytes\":" << report.peak_queue_bytes;
  os << ",";
  AppendMap(os, "link_bytes", report.link_bytes);
  os << ",";
  AppendMap(os, "device_busy_ns", report.device_busy_ns);
  os << ",\"scan\":{"
     << "\"row_groups_total\":" << report.scan.row_groups_total
     << ",\"row_groups_pruned\":" << report.scan.row_groups_pruned
     << ",\"rows_produced\":" << report.scan.rows_produced
     << ",\"encoded_bytes_read\":" << report.scan.encoded_bytes_read << "}";
  const FaultReport& f = report.fault;
  os << ",\"fault\":{"
     << "\"chunks_dropped\":" << f.chunks_dropped
     << ",\"chunks_corrupted\":" << f.chunks_corrupted
     << ",\"retransmits\":" << f.retransmits
     << ",\"delivery_timeouts\":" << f.delivery_timeouts
     << ",\"checksum_failures\":" << f.checksum_failures
     << ",\"storage_io_errors\":" << f.storage_io_errors
     << ",\"storage_retries\":" << f.storage_retries
     << ",\"device_stalls\":" << f.device_stalls
     << ",\"device_stall_ns\":" << f.device_stall_ns
     << ",\"cpu_fallback\":" << (f.cpu_fallback ? "true" : "false")
     << ",\"failed_device\":" << JsonQuote(f.failed_device) << "}";
  os << ",\"verify\":" << VerifyReportToJson(report.verify);
  os << "}";
  return os.str();
}

std::string VerifyReportToJson(const verify::VerifyReport& report) {
  std::ostringstream os;
  os << "{\"errors\":" << report.num_errors()
     << ",\"warnings\":" << report.num_warnings() << ",\"issues\":[";
  bool first = true;
  for (const verify::VerifyIssue& issue : report.issues) {
    if (!first) os << ",";
    first = false;
    os << "{\"severity\":"
       << JsonQuote(std::string(verify::SeverityToString(issue.severity)))
       << ",\"code\":" << JsonQuote(issue.code)
       << ",\"stage\":" << JsonQuote(issue.stage)
       << ",\"edge\":" << JsonQuote(issue.edge)
       << ",\"message\":" << JsonQuote(issue.message) << "}";
  }
  os << "]}";
  return os.str();
}

namespace {

Result<verify::VerifyReport> VerifyReportFromValue(const JsonValue& root) {
  if (root.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("verify json: not an object");
  }
  verify::VerifyReport report;
  const JsonValue* issues = root.Find("issues");
  if (issues == nullptr || issues->type() != JsonValue::Type::kArray) {
    return report;
  }
  for (const JsonValue& item : issues->AsArray()) {
    if (item.type() != JsonValue::Type::kObject) {
      return Status::InvalidArgument("verify json: issue is not an object");
    }
    verify::VerifyIssue issue;
    const JsonValue* sev = item.Find("severity");
    issue.severity =
        sev != nullptr && sev->type() == JsonValue::Type::kString &&
                sev->AsString() == "warning"
            ? verify::Severity::kWarning
            : verify::Severity::kError;
    auto get_string = [&item](const char* key) -> std::string {
      const JsonValue* v = item.Find(key);
      return v != nullptr && v->type() == JsonValue::Type::kString
                 ? v->AsString()
                 : "";
    };
    issue.code = get_string("code");
    issue.stage = get_string("stage");
    issue.edge = get_string("edge");
    issue.message = get_string("message");
    report.issues.push_back(std::move(issue));
  }
  return report;
}

}  // namespace

Result<verify::VerifyReport> VerifyReportFromJson(const std::string& json) {
  DFLOW_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  return VerifyReportFromValue(root);
}

Result<ExecutionReport> ExecutionReportFromJson(const std::string& json) {
  DFLOW_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (root.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("report json: not an object");
  }
  const std::string schema = GetString(root, "schema");
  if (schema != "dflow.execution_report.v1") {
    return Status::InvalidArgument("report json: unknown schema '" + schema +
                                   "'");
  }
  ExecutionReport report;
  report.variant = GetString(root, "variant");
  report.sim_ns = GetU64(root, "sim_ns");
  report.result_rows = GetU64(root, "result_rows");
  report.media_bytes = GetU64(root, "media_bytes");
  report.network_bytes = GetU64(root, "network_bytes");
  report.interconnect_bytes = GetU64(root, "interconnect_bytes");
  report.membus_bytes = GetU64(root, "membus_bytes");
  report.peak_queue_bytes = GetU64(root, "peak_queue_bytes");
  for (const char* key : {"link_bytes", "device_busy_ns"}) {
    const JsonValue* m = root.Find(key);
    if (m == nullptr || m->type() != JsonValue::Type::kObject) continue;
    auto& dest = std::string(key) == "link_bytes" ? report.link_bytes
                                                  : report.device_busy_ns;
    for (const auto& [name, value] : m->AsObject()) {
      dest[name] = value.AsUInt64();
    }
  }
  report.scan.row_groups_total = GetU64(root, "scan.row_groups_total");
  report.scan.row_groups_pruned = GetU64(root, "scan.row_groups_pruned");
  report.scan.rows_produced = GetU64(root, "scan.rows_produced");
  report.scan.encoded_bytes_read = GetU64(root, "scan.encoded_bytes_read");
  FaultReport& f = report.fault;
  f.chunks_dropped = GetU64(root, "fault.chunks_dropped");
  f.chunks_corrupted = GetU64(root, "fault.chunks_corrupted");
  f.retransmits = GetU64(root, "fault.retransmits");
  f.delivery_timeouts = GetU64(root, "fault.delivery_timeouts");
  f.checksum_failures = GetU64(root, "fault.checksum_failures");
  f.storage_io_errors = GetU64(root, "fault.storage_io_errors");
  f.storage_retries = GetU64(root, "fault.storage_retries");
  f.device_stalls = GetU64(root, "fault.device_stalls");
  f.device_stall_ns = GetU64(root, "fault.device_stall_ns");
  const JsonValue* fb = root.FindPath("fault.cpu_fallback");
  f.cpu_fallback = fb != nullptr && fb->type() == JsonValue::Type::kBool &&
                   fb->AsBool();
  f.failed_device = GetString(root, "fault.failed_device");
  if (const JsonValue* v = root.Find("verify")) {
    DFLOW_ASSIGN_OR_RETURN(report.verify, VerifyReportFromValue(*v));
  }
  return report;
}

std::string ServiceReportToJson(const serve::ServiceReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"dflow.service_report.v1\"";
  os << ",\"makespan_ns\":" << report.makespan_ns;
  os << ",\"arrivals_total\":" << report.arrivals_total;
  os << ",\"admitted_total\":" << report.admitted_total;
  os << ",\"shed_total\":" << report.shed_total;
  os << ",\"completed_total\":" << report.completed_total;
  os << ",\"failed_total\":" << report.failed_total;
  os << ",\"degraded_total\":" << report.degraded_total;
  os << ",\"peak_in_flight\":" << report.peak_in_flight;
  os << ",\"p99_ns\":" << report.p99_ns;
  os << ",\"lifecycle\":{";
  os << "\"deadline_missed_total\":" << report.deadline_missed_total;
  os << ",\"cancelled_total\":" << report.cancelled_total;
  os << ",\"retries_total\":" << report.retries_total;
  os << ",\"retry_exhausted_total\":" << report.retry_exhausted_total;
  os << ",\"shed_brownout_total\":" << report.shed_brownout_total;
  os << ",\"breaker_transitions\":" << report.breaker_transitions;
  os << ",\"breaker_probes\":" << report.breaker_probes;
  os << ",\"brownout_escalations\":" << report.brownout_escalations;
  os << ",\"brownout_peak_level\":" << report.brownout_peak_level << "}";
  os << ",\"cache\":{";
  os << "\"hits\":" << report.cache_hits;
  os << ",\"misses\":" << report.cache_misses;
  os << ",\"evictions\":" << report.cache_evictions;
  os << ",\"recompiles\":" << report.cache_recompiles;
  os << ",\"invalidations\":" << report.cache_invalidations;
  os << ",\"planning_ns_cold\":" << report.cache_planning_ns_cold;
  os << ",\"planning_ns_warm\":" << report.cache_planning_ns_warm << "}";
  os << ",\"tenants\":[";
  for (size_t t = 0; t < report.tenants.size(); ++t) {
    const serve::TenantStats& ts = report.tenants[t];
    if (t > 0) os << ",";
    os << "{\"name\":" << JsonQuote(ts.name);
    os << ",\"arrivals\":" << ts.arrivals;
    os << ",\"admitted\":" << ts.admitted;
    os << ",\"queued\":" << ts.queued;
    os << ",\"shed_queue_full\":" << ts.shed_queue_full;
    os << ",\"shed_overload\":" << ts.shed_overload;
    os << ",\"completed\":" << ts.completed;
    os << ",\"failed\":" << ts.failed;
    os << ",\"degraded\":" << ts.degraded;
    os << ",\"deadline_missed\":" << ts.deadline_missed;
    os << ",\"cancelled\":" << ts.cancelled;
    os << ",\"retries\":" << ts.retries;
    os << ",\"retry_exhausted\":" << ts.retry_exhausted;
    os << ",\"shed_brownout\":" << ts.shed_brownout;
    os << ",\"queue_depth_peak\":" << ts.queue_depth_peak;
    os << ",\"p50_ns\":" << ts.p50_ns;
    os << ",\"p95_ns\":" << ts.p95_ns;
    os << ",\"p99_ns\":" << ts.p99_ns << "}";
  }
  os << "]}";
  return os.str();
}

Result<serve::ServiceReport> ServiceReportFromJson(const std::string& json) {
  DFLOW_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (GetString(root, "schema") != "dflow.service_report.v1") {
    return Status::InvalidArgument("not a dflow.service_report.v1 document");
  }
  serve::ServiceReport report;
  report.makespan_ns = GetU64(root, "makespan_ns");
  report.arrivals_total = GetU64(root, "arrivals_total");
  report.admitted_total = GetU64(root, "admitted_total");
  report.shed_total = GetU64(root, "shed_total");
  report.completed_total = GetU64(root, "completed_total");
  report.failed_total = GetU64(root, "failed_total");
  report.degraded_total = GetU64(root, "degraded_total");
  report.peak_in_flight = GetU64(root, "peak_in_flight");
  report.p99_ns = GetU64(root, "p99_ns");
  // Additive in v1: documents written before the lifecycle manager have no
  // "lifecycle" object; every counter parses as 0.
  report.deadline_missed_total = GetU64(root, "lifecycle.deadline_missed_total");
  report.cancelled_total = GetU64(root, "lifecycle.cancelled_total");
  report.retries_total = GetU64(root, "lifecycle.retries_total");
  report.retry_exhausted_total =
      GetU64(root, "lifecycle.retry_exhausted_total");
  report.shed_brownout_total = GetU64(root, "lifecycle.shed_brownout_total");
  report.breaker_transitions = GetU64(root, "lifecycle.breaker_transitions");
  report.breaker_probes = GetU64(root, "lifecycle.breaker_probes");
  report.brownout_escalations =
      GetU64(root, "lifecycle.brownout_escalations");
  report.brownout_peak_level = GetU64(root, "lifecycle.brownout_peak_level");
  // Additive in v1, like "lifecycle": pre-program-cache documents have no
  // "cache" object; every counter parses as 0.
  report.cache_hits = GetU64(root, "cache.hits");
  report.cache_misses = GetU64(root, "cache.misses");
  report.cache_evictions = GetU64(root, "cache.evictions");
  report.cache_recompiles = GetU64(root, "cache.recompiles");
  report.cache_invalidations = GetU64(root, "cache.invalidations");
  report.cache_planning_ns_cold = GetU64(root, "cache.planning_ns_cold");
  report.cache_planning_ns_warm = GetU64(root, "cache.planning_ns_warm");
  const JsonValue* tenants = root.Find("tenants");
  if (tenants != nullptr && tenants->type() == JsonValue::Type::kArray) {
    for (const JsonValue& entry : tenants->AsArray()) {
      serve::TenantStats ts;
      ts.name = GetString(entry, "name");
      ts.arrivals = GetU64(entry, "arrivals");
      ts.admitted = GetU64(entry, "admitted");
      ts.queued = GetU64(entry, "queued");
      ts.shed_queue_full = GetU64(entry, "shed_queue_full");
      ts.shed_overload = GetU64(entry, "shed_overload");
      ts.completed = GetU64(entry, "completed");
      ts.failed = GetU64(entry, "failed");
      ts.degraded = GetU64(entry, "degraded");
      ts.deadline_missed = GetU64(entry, "deadline_missed");
      ts.cancelled = GetU64(entry, "cancelled");
      ts.retries = GetU64(entry, "retries");
      ts.retry_exhausted = GetU64(entry, "retry_exhausted");
      ts.shed_brownout = GetU64(entry, "shed_brownout");
      ts.queue_depth_peak = GetU64(entry, "queue_depth_peak");
      ts.p50_ns = GetU64(entry, "p50_ns");
      ts.p95_ns = GetU64(entry, "p95_ns");
      ts.p99_ns = GetU64(entry, "p99_ns");
      report.tenants.push_back(std::move(ts));
    }
  }
  return report;
}

}  // namespace dflow::trace
