#include "dflow/trace/summary.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "dflow/common/string_util.h"

namespace dflow::trace {

std::string UtilizationSummary(const Tracer& tracer, sim::SimTime total_ns) {
  struct Row {
    sim::SimTime busy_ns = 0;
    uint64_t bytes = 0;
    uint64_t spans = 0;
  };
  // Keyed by (category rank via name prefix) -> handled by map ordering on
  // the combined label; "device:" sorts before "link:" etc. naturally per
  // category name, which is good enough for a summary table.
  std::map<std::string, Row> rows;
  sim::SimTime last_end = 0;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.kind != EventKind::kSpan) continue;
    Row& r = rows[e.category + ":" + e.track];
    r.busy_ns += e.end - e.start;
    r.bytes += e.value;
    r.spans += 1;
    last_end = std::max(last_end, e.end);
  }
  if (total_ns == 0) total_ns = last_end;

  size_t label_width = 5;
  for (const auto& [label, row] : rows) {
    label_width = std::max(label_width, label.size());
  }

  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-*s  %12s  %6s  %12s  %8s\n",
                static_cast<int>(label_width), "track", "busy", "util",
                "bytes", "spans");
  os << buf;
  for (const auto& [label, row] : rows) {
    const double util =
        total_ns == 0
            ? 0.0
            : 100.0 * static_cast<double>(row.busy_ns) /
                  static_cast<double>(total_ns);
    std::snprintf(buf, sizeof(buf), "%-*s  %12s  %5.1f%%  %12s  %8llu\n",
                  static_cast<int>(label_width), label.c_str(),
                  FormatNanos(row.busy_ns).c_str(), util,
                  FormatBytes(row.bytes).c_str(),
                  static_cast<unsigned long long>(row.spans));
    os << buf;
  }
  if (tracer.dropped() > 0) {
    os << "(ring overflow: " << tracer.dropped()
       << " oldest events dropped; busy/bytes cover the retained window)\n";
  }
  return os.str();
}

}  // namespace dflow::trace
