#ifndef DFLOW_TRACE_SUMMARY_H_
#define DFLOW_TRACE_SUMMARY_H_

#include <string>

#include "dflow/trace/tracer.h"

namespace dflow::trace {

/// Renders a per-track utilization and bytes-moved table from the trace's
/// span events — the at-a-glance answer to "where did time and bytes go on
/// the fabric":
///
///   track                busy          util    bytes         spans
///   device:cpu0          1.203 ms      61.3%   12.00 MB      184
///   link:storage_uplink  0.881 ms      44.9%   5.10 MB       92
///
/// `total_ns` scales the utilization column (pass the run's completion
/// time; 0 means "use the last span end seen in the trace"). Only span
/// events contribute; instants and counters are annotations.
std::string UtilizationSummary(const Tracer& tracer, sim::SimTime total_ns = 0);

}  // namespace dflow::trace

#endif  // DFLOW_TRACE_SUMMARY_H_
