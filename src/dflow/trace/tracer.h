#ifndef DFLOW_TRACE_TRACER_H_
#define DFLOW_TRACE_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dflow/sim/simulator.h"

namespace dflow::trace {

/// What one trace record describes.
enum class EventKind : uint8_t {
  kSpan,     // an interval of occupancy: device work, wire time, stage work
  kInstant,  // a point event: retransmit, stall, plan choice, EOS
  kCounter,  // a sampled value: queue depth, in-flight bytes
};

/// One record of the fabric-wide event trace. Every field is derived from
/// the deterministic simulation — virtual timestamps, stable names, byte
/// counts — never wall-clock time or addresses, so a (workload, config)
/// pair produces a byte-identical trace on every run (the CI regression
/// gate and the golden tests depend on this).
struct TraceEvent {
  sim::SimTime start = 0;
  sim::SimTime end = 0;  // == start for instants and counters
  /// Emission order; the tie-breaker that keeps exporter output stable when
  /// several events share a virtual timestamp.
  uint64_t seq = 0;
  EventKind kind = EventKind::kInstant;
  /// Which layer emitted it: "device" | "link" | "dma" | "stage" | "edge" |
  /// "fault" | "engine" | "sched" | "compile" (plan compilation, operator
  /// fusion, and program-cache hit / miss / recompile outcomes).
  std::string category;
  /// The timeline row the event belongs to (device / link / stage / edge
  /// name). Exporters group events by (category, track).
  std::string track;
  /// What happened ("scan", "xfer", "retransmit", "plan_choice", ...).
  std::string name;
  /// Bytes moved for spans, counter value for counters, duration or
  /// sequence number for instants (see the emitting site).
  uint64_t value = 0;
  /// Optional human-readable annotation (variant name, rationale, ...).
  std::string detail;
};

/// Knobs for the observability layer, threaded through ExecOptions and the
/// bench binaries' --dflow_trace_* flags.
struct TraceOptions {
  bool enabled = false;
  /// Ring capacity in events; the oldest events are dropped on overflow
  /// (dropped() reports how many). Sized so a full-pipeline figure run fits
  /// comfortably.
  size_t ring_capacity = 1 << 18;
};

/// Low-overhead, ring-buffered event tracer for the simulated fabric.
///
/// The simulator is single-threaded, so recording is a bounds check and a
/// slot write — no locks. Instrumentation sites hold a `Tracer*` that is
/// null when tracing is off; the DFLOW_TRACE macro below compiles the whole
/// call away under -DDFLOW_TRACE_DISABLED, making the tracer's steady-state
/// cost one branch per instrumented operation (see DESIGN.md's overhead
/// budget).
class Tracer {
 public:
  explicit Tracer(TraceOptions options = TraceOptions());
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TraceOptions& options() const { return options_; }

  void Span(std::string category, std::string track, std::string name,
            sim::SimTime start, sim::SimTime end, uint64_t value = 0,
            std::string detail = "");
  void Instant(std::string category, std::string track, std::string name,
               sim::SimTime at, uint64_t value = 0, std::string detail = "");
  void Counter(std::string category, std::string track, std::string name,
               sim::SimTime at, uint64_t value);

  /// Events currently held, oldest first, sorted by (start, seq). The sort
  /// is stable and seq is unique, so the order is fully deterministic.
  std::vector<TraceEvent> Events() const;

  /// Events currently in the ring (<= ring_capacity).
  size_t size() const { return ring_.size(); }
  /// Events recorded since the last Clear, including dropped ones.
  uint64_t total_recorded() const { return total_recorded_; }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const { return total_recorded_ - ring_.size(); }

  /// Drops all events and resets counters (fresh run on the same tracer).
  void Clear();

 private:
  void Record(TraceEvent event);

  TraceOptions options_;
  std::vector<TraceEvent> ring_;  // circular once size() == ring_capacity
  size_t head_ = 0;               // next slot to overwrite when full
  uint64_t next_seq_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace dflow::trace

/// Instrumentation-site wrapper: DFLOW_TRACE(tracer_, Span(...)) is a null
/// check plus the call, and compiles to nothing when tracing support is
/// compiled out.
#ifndef DFLOW_TRACE_DISABLED
#define DFLOW_TRACE(tracer_expr, ...)         \
  do {                                        \
    auto* dflow_trace_t_ = (tracer_expr);     \
    if (dflow_trace_t_ != nullptr) {          \
      dflow_trace_t_->__VA_ARGS__;            \
    }                                         \
  } while (0)
#else
#define DFLOW_TRACE(tracer_expr, ...) \
  do {                                \
  } while (0)
#endif

#endif  // DFLOW_TRACE_TRACER_H_
