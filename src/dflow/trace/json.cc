#include "dflow/trace/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "dflow/common/logging.h"

namespace dflow::trace {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

bool JsonValue::AsBool() const {
  DFLOW_CHECK(type_ == Type::kBool);
  return bool_;
}

uint64_t JsonValue::AsUInt64() const {
  DFLOW_CHECK(type_ == Type::kNumber);
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

int64_t JsonValue::AsInt64() const {
  DFLOW_CHECK(type_ == Type::kNumber);
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

double JsonValue::AsDouble() const {
  DFLOW_CHECK(type_ == Type::kNumber);
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& JsonValue::AsString() const {
  DFLOW_CHECK(type_ == Type::kString);
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  DFLOW_CHECK(type_ == Type::kArray);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  DFLOW_CHECK(type_ == Type::kObject);
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted_path) const {
  const JsonValue* cur = this;
  size_t pos = 0;
  while (cur != nullptr && pos <= dotted_path.size()) {
    const size_t dot = dotted_path.find('.', pos);
    const std::string key = dotted_path.substr(
        pos, dot == std::string::npos ? std::string::npos : dot - pos);
    cur = cur->Find(key);
    if (dot == std::string::npos) return cur;
    pos = dot + 1;
  }
  return cur;
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(std::string raw_token) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::move(raw_token);
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    DFLOW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(std::string("json: expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool Consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      DFLOW_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::MakeString(std::move(s));
    }
    if (Consume("null")) return JsonValue::MakeNull();
    if (Consume("true")) return JsonValue::MakeBool(true);
    if (Consume("false")) return JsonValue::MakeBool(false);
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    DFLOW_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("json: truncated \\u escape");
          }
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The exporters only emit \u00XX control escapes; decode the
          // Latin-1 range and pass anything wider through as '?'.
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Status::InvalidArgument("json: bad escape character");
      }
    }
    DFLOW_RETURN_NOT_OK(Expect('"'));
    return out;
  }

  Result<JsonValue> ParseNumber() {
    const size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == begin) {
      return Status::InvalidArgument("json: invalid value at offset " +
                                     std::to_string(begin));
    }
    return JsonValue::MakeNumber(text_.substr(begin, pos_ - begin));
  }

  Result<JsonValue> ParseArray() {
    DFLOW_RETURN_NOT_OK(Expect('['));
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      DFLOW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      items.push_back(std::move(v));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    DFLOW_RETURN_NOT_OK(Expect(']'));
    return JsonValue::MakeArray(std::move(items));
  }

  Result<JsonValue> ParseObject() {
    DFLOW_RETURN_NOT_OK(Expect('{'));
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      DFLOW_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      DFLOW_RETURN_NOT_OK(Expect(':'));
      DFLOW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      members.emplace(std::move(key), std::move(v));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    DFLOW_RETURN_NOT_OK(Expect('}'));
    return JsonValue::MakeObject(std::move(members));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace dflow::trace
