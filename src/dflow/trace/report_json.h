#ifndef DFLOW_TRACE_REPORT_JSON_H_
#define DFLOW_TRACE_REPORT_JSON_H_

#include <string>

#include "dflow/common/result.h"
#include "dflow/engine/report.h"
#include "dflow/serve/service_report.h"

namespace dflow::trace {

/// Machine-readable form of one execution's measurements, for the figure
/// benchmarks' --dflow_report_json artifacts and the CI regression gate.
/// Deterministic: keys in fixed order, integer counters only, no wall-clock
/// or address values. Schema tag: "dflow.execution_report.v1".
std::string ExecutionReportToJson(const ExecutionReport& report);

/// Inverse of ExecutionReportToJson (round-trip exact for all counters).
Result<ExecutionReport> ExecutionReportFromJson(const std::string& json);

/// The verifier's findings as a JSON object (the "verify" member of the
/// execution report): {"errors":N,"warnings":N,"issues":[{severity,code,
/// stage,edge,message},...]}. Deterministic: issues keep verifier order.
std::string VerifyReportToJson(const verify::VerifyReport& report);

/// Inverse of VerifyReportToJson (round-trip exact).
Result<verify::VerifyReport> VerifyReportFromJson(const std::string& json);

/// One service run's per-tenant and global SLO counters, for the "service"
/// member of a bench-report entry. Deterministic: integer counters only,
/// tenants in configuration order. Schema tag: "dflow.service_report.v1".
std::string ServiceReportToJson(const serve::ServiceReport& report);

/// Inverse of ServiceReportToJson (round-trip exact for all counters).
Result<serve::ServiceReport> ServiceReportFromJson(const std::string& json);

}  // namespace dflow::trace

#endif  // DFLOW_TRACE_REPORT_JSON_H_
