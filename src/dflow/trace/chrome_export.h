#ifndef DFLOW_TRACE_CHROME_EXPORT_H_
#define DFLOW_TRACE_CHROME_EXPORT_H_

#include <iosfwd>
#include <string>

#include "dflow/trace/tracer.h"

namespace dflow::trace {

/// Serializes the tracer's events as Chrome Trace Event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev. One process; one timeline
/// row (tid) per (category, track) pair, ordered devices -> stages ->
/// links -> dma -> edges -> fault/engine/sched, so the data path reads
/// top-to-bottom the way Figure 6 draws it.
///
/// The output is deterministic: rows are sorted by name, events by
/// (virtual time, emission seq), and timestamps are virtual nanoseconds
/// printed as fixed-point microseconds — no wall clock, no pointers.
void WriteChromeTrace(const Tracer& tracer, std::ostream& os);

/// Same, as a string (tests, golden comparisons).
std::string ChromeTraceString(const Tracer& tracer);

}  // namespace dflow::trace

#endif  // DFLOW_TRACE_CHROME_EXPORT_H_
