#include "dflow/exec/project.h"

#include <algorithm>

namespace dflow {

Result<OperatorPtr> ProjectOperator::Make(std::vector<ExprPtr> exprs,
                                          std::vector<std::string> names,
                                          const Schema& input_schema) {
  if (exprs.empty() || exprs.size() != names.size()) {
    return Status::InvalidArgument(
        "project requires matching expression and name lists");
  }
  std::vector<Field> fields;
  fields.reserve(exprs.size());
  uint32_t out_width = 0;
  uint32_t in_width = 0;
  for (const Field& f : input_schema.fields()) {
    in_width += IsFixedWidth(f.type) ? FixedWidthBytes(f.type) : 16;
  }
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (exprs[i] == nullptr || !exprs[i]->is_resolved()) {
      return Status::InvalidArgument("project expression " +
                                     std::to_string(i) + " is unresolved");
    }
    DFLOW_ASSIGN_OR_RETURN(DataType type, exprs[i]->OutputType(input_schema));
    fields.push_back(Field{names[i], type});
    out_width += IsFixedWidth(type) ? FixedWidthBytes(type) : 16;
  }
  const double hint =
      in_width == 0 ? 1.0
                    : std::min(1.0, static_cast<double>(out_width) /
                                        static_cast<double>(in_width));
  return OperatorPtr(new ProjectOperator(
      std::move(exprs), Schema(std::move(fields)), input_schema, hint));
}

OperatorTraits ProjectOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kProject;
  t.streaming = true;
  t.stateless = true;
  t.reduction_hint = reduction_hint_;
  return t;
}

Status ProjectOperator::Push(const DataChunk& input,
                             std::vector<DataChunk>* out) {
  RecordIn(input);
  std::vector<ColumnVector> cols;
  cols.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    DFLOW_ASSIGN_OR_RETURN(ColumnVector col, e->Evaluate(input));
    cols.push_back(std::move(col));
  }
  out->emplace_back(std::move(cols));
  RecordOut(out->back());
  return Status::OK();
}

}  // namespace dflow
