#ifndef DFLOW_EXEC_MISC_OPS_H_
#define DFLOW_EXEC_MISC_OPS_H_

#include <string>
#include <vector>

#include "dflow/encode/encoding.h"
#include "dflow/exec/operator.h"

namespace dflow {

/// COUNT(*) with 8 bytes of state: the paper's "a query returning only a
/// COUNT can be executed directly on the NIC that simply counts the data as
/// it arrives and discards it" (§4.4). Emits a single-row {count: INT64}
/// chunk at Finish.
class CountOperator : public Operator {
 public:
  CountOperator();

  std::string name() const override { return "count"; }
  const Schema& output_schema() const override { return schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;
  Status Finish(std::vector<DataChunk>* out) override;

 private:
  Schema schema_;
  int64_t count_ = 0;
};

/// Passes through the first `limit` rows, dropping everything after.
class LimitOperator : public Operator {
 public:
  LimitOperator(Schema schema, uint64_t limit);

  std::string name() const override { return "limit"; }
  const Schema& output_schema() const override { return schema_; }
  const Schema* input_schema() const override { return &schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;

 private:
  Schema schema_;
  uint64_t limit_;
  uint64_t seen_ = 0;
};

/// Blocking sort by one column (asc/desc). Gathers everything, emits sorted
/// chunks at Finish. Never placeable on an accelerator (unbounded state).
class SortOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(Schema schema, const std::string& sort_col,
                                  bool descending = false,
                                  uint64_t limit = 0 /* 0 = no limit */);

  std::string name() const override { return "sort"; }
  const Schema& output_schema() const override { return schema_; }
  const Schema* input_schema() const override { return &schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;
  Status Finish(std::vector<DataChunk>* out) override;

 private:
  SortOperator(Schema schema, size_t sort_col, bool descending, uint64_t limit)
      : schema_(std::move(schema)),
        sort_col_(sort_col),
        descending_(descending),
        limit_(limit),
        buffer_(DataChunk::EmptyFromSchema(schema_)) {}

  Schema schema_;
  size_t sort_col_;
  bool descending_;
  uint64_t limit_;
  DataChunk buffer_;
};

/// Marks the stream as decoded: identity on data, but downstream edges are
/// charged the full in-memory size. Placed right after a scan whose bytes
/// arrive in at-rest (compressed) form.
class DecodeOperator : public Operator {
 public:
  explicit DecodeOperator(Schema schema) : schema_(std::move(schema)) {}

  std::string name() const override { return "decode"; }
  const Schema& output_schema() const override { return schema_; }
  const Schema* input_schema() const override { return &schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;

 private:
  Schema schema_;
};

/// Re-compresses the stream for the wire: identity on data, but downstream
/// edges are charged the size the chunk would encode to (computed with the
/// real encoders, per column). The storage processor uses this before the
/// uplink when the optimizer decides compressed shipping wins.
class EncodeOperator : public Operator {
 public:
  explicit EncodeOperator(Schema schema) : schema_(std::move(schema)) {}

  std::string name() const override { return "encode"; }
  const Schema& output_schema() const override { return schema_; }
  const Schema* input_schema() const override { return &schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;
  uint64_t OutputWireBytes(const DataChunk& output) const override;

 private:
  Schema schema_;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_MISC_OPS_H_
