#include "dflow/exec/dataflow.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "dflow/common/logging.h"
#include "dflow/exec/invariants.h"

namespace dflow {

namespace {

/// What the receiver-side checksum of a corrupted chunk looks like: the
/// payload hash XORed with a fixed mask, so verification fails
/// deterministically without mutating the (shared) chunk data.
constexpr uint64_t kCorruptionMask = 0xBAD0C0DE5EEDULL;

sim::SimTime BackoffNs(sim::SimTime base, uint32_t attempt, sim::SimTime cap) {
  sim::SimTime v = base;
  for (uint32_t i = 0; i < attempt && v < cap; ++i) v *= 2;
  return std::min(v, cap);
}

}  // namespace

struct DataflowGraph::Edge {
  explicit Edge(uint32_t credits) : gate(credits) {}

  /// A chunk sent over an unreliable path, kept by the sender until its
  /// delivery is confirmed (consumed off this map by DeliverPending).
  struct PendingSend {
    DataChunk chunk;
    uint64_t wire = 0;
    uint32_t attempt = 0;   // transmissions so far
    uint64_t checksum = 0;  // sender-side ChecksumChunk
  };

  Node* from = nullptr;
  Node* to = nullptr;
  std::string label;  // "from->to", the edge's trace track
  std::vector<sim::Link*> path;
  std::unique_ptr<sim::DmaEngine> dma;  // present iff path is non-empty
  sim::CreditGate gate;
  std::deque<std::pair<DataChunk, uint64_t>> send_queue;  // chunk, wire bytes
  uint64_t next_seq = 0;
  std::map<uint64_t, PendingSend> pending;
  /// Verified chunks waiting for earlier sequence numbers (retransmission
  /// reorders arrivals; handoff to the receiver stays in send order so a
  /// faulty run computes bit-identical results).
  uint64_t next_deliver_seq = 0;
  std::map<uint64_t, std::pair<DataChunk, uint64_t>> reorder;
  bool eos_pending = false;
  bool eos_sent = false;
  /// Declared feedback edge (see Connect): verify-only, rejected by Run().
  bool feedback = false;
  /// Edge is currently blocked on credits (one trace instant per episode).
  bool credit_blocked = false;
  sim::SimTime path_latency = 0;
  sim::SimTime last_arrive = 0;
  uint64_t inflight_bytes = 0;
  uint64_t peak_inflight_bytes = 0;
  uint64_t bytes_sent = 0;

  /// Tuple-conservation ledger for the runtime invariant oracle (see
  /// exec/invariants.h). Maintained and checked only when the oracle is
  /// compiled in; at every event boundary
  ///   inv_enqueued == inv_launched + |send_queue|
  ///   inv_launched == inv_consumed + inv_transit + |pending| + |reorder|
  /// i.e. produced == consumed + in flight + dropped-awaiting-retransmit.
  uint64_t inv_enqueued = 0;  // chunks pushed into send_queue
  uint64_t inv_launched = 0;  // chunks that acquired a credit and left
  uint64_t inv_consumed = 0;  // chunks handed to the receiver (or sink)
  uint64_t inv_transit = 0;   // reliable-path deliveries scheduled, not run
  uint64_t inv_released = 0;  // credits returned to the gate
};

struct DataflowGraph::Node {
  enum class Type { kSource, kStage, kPartition, kBroadcast, kSink };

  Type type = Type::kStage;
  std::string name;
  sim::Device* device = nullptr;
  sim::CostClass source_cc = sim::CostClass::kScan;
  OperatorPtr op;
  std::optional<HashPartitioner> partitioner;
  double cost_factor = 1.0;
  std::vector<ScanBatch> batches;
  /// Declared schema of the source's chunks (see the AddSource overload);
  /// DataChunks are schema-less, so this is the verifier's only handle on
  /// what a source emits.
  std::optional<Schema> source_schema;
  size_t next_batch = 0;
  uint32_t storage_retries = 0;  // consecutive failed reads of the next batch
  /// Absolute virtual time before which a source stays idle (admission
  /// offset; see SetSourceStartTime).
  sim::SimTime start_at = 0;
  std::deque<std::tuple<DataChunk, uint64_t, Edge*>> inbox;
  size_t open_inputs = 0;
  std::vector<Edge*> outs;
  std::vector<Edge*> ins;
  bool device_busy = false;
  bool finished = false;
  std::vector<DataChunk> sink_chunks;
  sim::SimTime finish_time = 0;
};

DataflowGraph::DataflowGraph(sim::Simulator* sim) : sim_(sim) {
  DFLOW_CHECK(sim != nullptr);
}

DataflowGraph::~DataflowGraph() = default;

DataflowGraph::NodeId DataflowGraph::AddSource(std::string name,
                                               sim::Device* device,
                                               sim::CostClass cc,
                                               std::vector<ScanBatch> batches) {
  auto n = std::make_unique<Node>();
  n->type = Node::Type::kSource;
  n->name = std::move(name);
  n->device = device;
  n->source_cc = cc;
  n->batches = std::move(batches);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

DataflowGraph::NodeId DataflowGraph::AddSource(std::string name,
                                               sim::Device* device,
                                               sim::CostClass cc,
                                               std::vector<ScanBatch> batches,
                                               Schema schema) {
  const NodeId id = AddSource(std::move(name), device, cc, std::move(batches));
  nodes_[id]->source_schema = std::move(schema);
  return id;
}

DataflowGraph::NodeId DataflowGraph::AddStage(std::string name, OperatorPtr op,
                                              sim::Device* device,
                                              double cost_factor) {
  auto n = std::make_unique<Node>();
  n->type = Node::Type::kStage;
  n->name = std::move(name);
  n->device = device;
  n->op = std::move(op);
  n->cost_factor = cost_factor;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

DataflowGraph::NodeId DataflowGraph::AddPartitionStage(
    std::string name, HashPartitioner partitioner, sim::Device* device) {
  auto n = std::make_unique<Node>();
  n->type = Node::Type::kPartition;
  n->name = std::move(name);
  n->device = device;
  n->partitioner = partitioner;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

DataflowGraph::NodeId DataflowGraph::AddBroadcastStage(
    std::string name, sim::Device* device) {
  auto n = std::make_unique<Node>();
  n->type = Node::Type::kBroadcast;
  n->name = std::move(name);
  n->device = device;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

DataflowGraph::NodeId DataflowGraph::AddSink(std::string name) {
  auto n = std::make_unique<Node>();
  n->type = Node::Type::kSink;
  n->name = std::move(name);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

Status DataflowGraph::Connect(NodeId from, NodeId to,
                              std::vector<sim::Link*> path, uint32_t credits,
                              bool feedback) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("Connect: node id out of range");
  }
  if (credits == 0) {
    return Status::InvalidArgument("Connect: credits must be positive");
  }
  auto e = std::make_unique<Edge>(credits);
  e->feedback = feedback;
  e->from = GetNode(from);
  e->to = GetNode(to);
  e->label = e->from->name + "->" + e->to->name;
  e->path = std::move(path);
  for (sim::Link* l : e->path) {
    if (l == nullptr) return Status::InvalidArgument("Connect: null link");
    e->path_latency += l->latency_ns();
  }
  if (!e->path.empty()) {
    e->dma = std::make_unique<sim::DmaEngine>(e->label, e->path[0]);
    e->dma->SetTracer(tracer_);
  }
  e->from->outs.push_back(e.get());
  e->to->ins.push_back(e.get());
  edges_.push_back(std::move(e));
  return Status::OK();
}

DataflowGraph::Edge* DataflowGraph::FindEdge(NodeId from, NodeId to) const {
  for (const auto& e : edges_) {
    if (e->from == nodes_[from].get() && e->to == nodes_[to].get()) {
      return e.get();
    }
  }
  return nullptr;
}

void DataflowGraph::SetTracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& e : edges_) {
    if (e->dma != nullptr) e->dma->SetTracer(tracer);
  }
}

Status DataflowGraph::SetEdgeRateLimit(NodeId from, NodeId to, double gbps) {
  Edge* e = FindEdge(from, to);
  if (e == nullptr) return Status::NotFound("no such edge");
  if (e->dma == nullptr) {
    return Status::InvalidArgument("edge has no link (colocated)");
  }
  e->dma->SetRateLimitGbps(gbps);
  return Status::OK();
}

void DataflowGraph::Fail(Status status, lifecycle::FailureKind kind) {
  if (status_.ok()) {
    status_ = std::move(status);
    failure_kind_ = kind;
  }
  MaybeComplete();
}

void DataflowGraph::Cancel(Status reason) {
  DFLOW_CHECK(!reason.ok());
  if (!started_ || completion_reported_ || !status_.ok()) return;
  const lifecycle::FailureKind kind =
      reason.IsDeadlineExceeded() ? lifecycle::FailureKind::kDeadlineExceeded
                                  : lifecycle::FailureKind::kCancelled;
  DFLOW_TRACE(tracer_, Instant("lifecycle", "graph", "cancel", sim_->now(),
                               /*value=*/0, reason.ToString()));
  Fail(std::move(reason), kind);
}

bool DataflowGraph::CancelRequested() {
  if (cancel_token_ == nullptr || !cancel_token_->cancelled()) return false;
  if (status_.ok()) Cancel(cancel_token_->reason());
  return true;
}

bool DataflowGraph::SendQueuesEmpty(const Node* n) const {
  for (const Edge* e : n->outs) {
    if (!e->send_queue.empty()) return false;
  }
  return true;
}

bool DataflowGraph::DeviceCrashed(Node* n) {
  if (fault_ == nullptr || n->device == nullptr) return false;
  if (!fault_->IsCrashed(n->device->name())) return false;
  if (status_.ok()) {
    failed_device_ = n->device->name();
    Fail(Status::IOError("device '" + n->device->name() +
                         "' crashed mid-query"),
         lifecycle::FailureKind::kDeviceCrash);
  }
  return true;
}

void DataflowGraph::CheckEdgeInvariants(Edge* e) {
#ifndef DFLOW_INVARIANTS_DISABLED
  if (!status_.ok()) return;
  DFLOW_INVARIANT(
      e->inv_enqueued == e->inv_launched + e->send_queue.size(),
      "edge " + e->label + ": enqueued=" + std::to_string(e->inv_enqueued) +
          " launched=" + std::to_string(e->inv_launched) +
          " queued=" + std::to_string(e->send_queue.size()));
  DFLOW_INVARIANT(
      e->inv_launched == e->inv_consumed + e->inv_transit +
                             e->pending.size() + e->reorder.size(),
      "edge " + e->label + ": launched=" + std::to_string(e->inv_launched) +
          " consumed=" + std::to_string(e->inv_consumed) +
          " transit=" + std::to_string(e->inv_transit) +
          " pending=" + std::to_string(e->pending.size()) +
          " reorder=" + std::to_string(e->reorder.size()));
  DFLOW_INVARIANT(e->inv_launched >= e->inv_released,
                  "edge " + e->label + ": more credits released (" +
                      std::to_string(e->inv_released) + ") than acquired (" +
                      std::to_string(e->inv_launched) + ")");
  const uint64_t held = e->inv_launched - e->inv_released;
  DFLOW_INVARIANT(held <= e->gate.capacity(),
                  "edge " + e->label + ": " + std::to_string(held) +
                      " credits held exceeds capacity " +
                      std::to_string(e->gate.capacity()));
  DFLOW_INVARIANT(e->gate.available() + held == e->gate.capacity(),
                  "edge " + e->label + ": gate ledger out of sync (available=" +
                      std::to_string(e->gate.available()) +
                      " held=" + std::to_string(held) + " capacity=" +
                      std::to_string(e->gate.capacity()) + ")");
#else
  (void)e;
#endif
}

void DataflowGraph::CheckEventTime() {
#ifndef DFLOW_INVARIANTS_DISABLED
  DFLOW_INVARIANT(sim_->now() >= inv_last_event_ns_,
                  "virtual time ran backwards: now=" +
                      std::to_string(sim_->now()) + " after " +
                      std::to_string(inv_last_event_ns_));
  inv_last_event_ns_ = sim_->now();
#endif
}

void DataflowGraph::Pump(Node* n) {
  if (!status_.ok() || CancelRequested()) return;
  CheckEventTime();
  if (n->type == Node::Type::kSink) return;
  if (n->finished || n->device_busy) return;
  if (DeviceCrashed(n)) return;
  if (!SendQueuesEmpty(n)) return;

  if (n->type == Node::Type::kSource) {
    if (n->next_batch < n->batches.size()) {
      if (fault_ != nullptr &&
          fault_->NextStorageRequestFails(n->device->name())) {
        recovery_stats_.storage_io_errors += 1;
        if (n->storage_retries >= policy_.max_storage_retries) {
          Fail(Status::IOError("storage read for '" + n->name +
                               "' failed after " +
                               std::to_string(n->storage_retries) +
                               " retries"),
               lifecycle::FailureKind::kStorageExhausted);
          return;
        }
        n->storage_retries += 1;
        recovery_stats_.storage_retries += 1;
        DFLOW_TRACE(tracer_, Instant("fault", n->name, "storage_retry",
                                     sim_->now(),
                                     /*value=*/n->storage_retries));
        // The failed round trip still occupies the device; try again after
        // a capped exponential backoff.
        n->device_busy = true;
        const auto work =
            n->device->Process(sim_->now(), 0, n->source_cc, n->cost_factor);
        const sim::SimTime backoff =
            BackoffNs(policy_.storage_retry_backoff_ns, n->storage_retries - 1,
                      policy_.max_backoff_ns);
        sim_->ScheduleAt(work.end + backoff, [this, n] {
          n->device_busy = false;
          Pump(n);
        });
        return;
      }
      n->storage_retries = 0;
      const size_t idx = n->next_batch++;
      n->device_busy = true;
      const auto work = n->device->Process(
          sim_->now(), n->batches[idx].device_bytes, n->source_cc,
          n->cost_factor);
      DFLOW_TRACE(tracer_, Span("stage", n->name, "read_batch", work.start,
                                work.end,
                                /*value=*/n->batches[idx].device_bytes));
      sim_->ScheduleAt(work.end, [this, n, idx] {
        n->device_busy = false;
        RouteScanBatch(n, idx);
        PumpEdges(n);
        Pump(n);
      });
    } else {
      MarkNodeDone(n);
    }
    return;
  }

  if (!n->inbox.empty()) {
    StartWork(n);
    return;
  }

  if (n->open_inputs == 0) {
    // All inputs finished and the inbox is drained: run Finish.
    std::vector<DataChunk> outputs;
    if (n->type == Node::Type::kStage) {
      Status st = n->op->Finish(&outputs);
      if (!st.ok()) {
        Fail(std::move(st));
        return;
      }
    }
    uint64_t bytes = 0;
    for (const DataChunk& c : outputs) bytes += c.ByteSize();
    const sim::CostClass cc =
        n->type == Node::Type::kStage ? n->op->traits().cost_class
        : n->type == Node::Type::kBroadcast ? sim::CostClass::kMemcpy
                                            : sim::CostClass::kPartition;
    n->device_busy = true;
    const auto work = n->device->Process(sim_->now(), bytes, cc,
                                         n->cost_factor);
    DFLOW_TRACE(tracer_, Span("stage", n->name, "finish", work.start, work.end,
                              /*value=*/bytes));
    sim_->ScheduleAt(work.end, [this, n, outputs = std::move(outputs)]() mutable {
      n->device_busy = false;
      RouteOutputs(n, std::move(outputs));
      MarkNodeDone(n);
      PumpEdges(n);
    });
  }
}

void DataflowGraph::StartWork(Node* n) {
  auto [chunk, wire, origin] = std::move(n->inbox.front());
  n->inbox.pop_front();
  PopCredit(origin, wire);

  std::vector<DataChunk> outputs;
  sim::CostClass cc;
  double work_scale = 1.0;
  if (n->type == Node::Type::kStage) {
    cc = n->op->traits().cost_class;
    Status st = n->op->Push(chunk, &outputs);
    if (!st.ok()) {
      Fail(std::move(st));
      return;
    }
  } else if (n->type == Node::Type::kBroadcast) {
    cc = sim::CostClass::kMemcpy;
    // One replica per outgoing edge; the device copies each of them.
    for (size_t i = 0; i < n->outs.size(); ++i) outputs.push_back(chunk);
    work_scale = static_cast<double>(n->outs.size());
  } else {
    cc = sim::CostClass::kPartition;
    Status st = n->partitioner->Split(chunk, &outputs);
    if (!st.ok()) {
      Fail(std::move(st));
      return;
    }
  }
  n->device_busy = true;
  const auto work = n->device->Process(
      sim_->now(), static_cast<uint64_t>(wire * work_scale), cc,
      n->cost_factor);
  DFLOW_TRACE(tracer_, Span("stage", n->name, "process", work.start, work.end,
                            /*value=*/wire));
  sim_->ScheduleAt(work.end, [this, n, outputs = std::move(outputs)]() mutable {
    n->device_busy = false;
    RouteOutputs(n, std::move(outputs));
    PumpEdges(n);
    Pump(n);
  });
}

void DataflowGraph::RouteOutputs(Node* n, std::vector<DataChunk> outputs) {
  if (n->type == Node::Type::kPartition ||
      n->type == Node::Type::kBroadcast) {
    if (outputs.empty()) return;  // Finish: no state to flush
    if (outputs.size() != n->outs.size()) {
      Fail(Status::Internal("partition fan-out does not match edge count"));
      return;
    }
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (outputs[i].num_rows() == 0) continue;
      const uint64_t wire = outputs[i].ByteSize();
      n->outs[i]->send_queue.emplace_back(std::move(outputs[i]), wire);
      DFLOW_INVARIANTS_ONLY(n->outs[i]->inv_enqueued += 1;)
    }
    return;
  }
  if (n->outs.empty()) return;  // terminal stage (e.g. join build sink)
  for (DataChunk& c : outputs) {
    if (c.num_rows() == 0) continue;
    const uint64_t wire =
        n->type == Node::Type::kStage ? n->op->OutputWireBytes(c) : c.ByteSize();
    n->outs[0]->send_queue.emplace_back(std::move(c), wire);
    DFLOW_INVARIANTS_ONLY(n->outs[0]->inv_enqueued += 1;)
  }
}

void DataflowGraph::RouteScanBatch(Node* n, size_t batch_index) {
  if (n->outs.empty()) return;
  ScanBatch& batch = n->batches[batch_index];
  for (ScanChunk& sc : batch.chunks) {
    if (sc.chunk.num_rows() == 0) continue;
    n->outs[0]->send_queue.emplace_back(std::move(sc.chunk), sc.wire_bytes);
    DFLOW_INVARIANTS_ONLY(n->outs[0]->inv_enqueued += 1;)
  }
  batch.chunks.clear();
}

void DataflowGraph::PumpEdges(Node* n) {
  for (Edge* e : n->outs) PumpEdge(e);
}

void DataflowGraph::PumpEdge(Edge* e) {
  if (!status_.ok() || CancelRequested()) return;
  while (!e->send_queue.empty() && e->gate.HasCredit()) {
    e->gate.Acquire();
    auto [chunk, wire] = std::move(e->send_queue.front());
    e->send_queue.pop_front();
    DFLOW_INVARIANTS_ONLY(e->inv_launched += 1;)
    e->inflight_bytes += wire;
    e->peak_inflight_bytes = std::max(e->peak_inflight_bytes,
                                      e->inflight_bytes);
    e->bytes_sent += wire;
    e->credit_blocked = false;
    DFLOW_TRACE(tracer_, Counter("edge", e->label, "inflight_bytes",
                                 sim_->now(), e->inflight_bytes));
    if (fault_ != nullptr && !e->path.empty()) {
      // Unreliable path: keep the chunk until delivery is confirmed.
      const uint64_t seq = e->next_seq++;
      Edge::PendingSend p;
      p.checksum = ChecksumChunk(chunk);
      p.chunk = std::move(chunk);
      p.wire = wire;
      e->pending.emplace(seq, std::move(p));
      Transmit(e, seq);
      continue;
    }
    sim::SimTime arrive = sim_->now();
    if (!e->path.empty()) {
      const auto first = e->dma->Transfer(arrive, wire);
      arrive = first.arrive;
      for (size_t i = 1; i < e->path.size(); ++i) {
        arrive = e->path[i]->Reserve(arrive, wire).arrive;
      }
    }
    e->last_arrive = std::max(e->last_arrive, arrive);
    DFLOW_INVARIANTS_ONLY(e->inv_transit += 1;)
    sim_->ScheduleAt(arrive,
                     [this, e, chunk = std::move(chunk), wire]() mutable {
                       DFLOW_INVARIANTS_ONLY(e->inv_transit -= 1;)
                       Deliver(e, std::move(chunk), wire);
                     });
  }
  if (!e->send_queue.empty() && !e->gate.HasCredit() && !e->credit_blocked) {
    // One instant per stall episode; the flag clears when a send gets
    // through again.
    e->credit_blocked = true;
    DFLOW_TRACE(tracer_, Instant("edge", e->label, "credit_stall", sim_->now(),
                                 /*value=*/e->send_queue.size()));
  }
  if (e->send_queue.empty() && e->pending.empty() && e->reorder.empty() &&
      e->eos_pending && !e->eos_sent) {
    e->eos_sent = true;
    const sim::SimTime t =
        std::max(e->last_arrive, sim_->now() + e->path_latency);
    sim_->ScheduleAt(t, [this, e] { HandleEos(e); });
  }
  CheckEdgeInvariants(e);
}

void DataflowGraph::Transmit(Edge* e, uint64_t seq) {
  if (!status_.ok()) return;
  auto it = e->pending.find(seq);
  DFLOW_CHECK(it != e->pending.end());
  Edge::PendingSend& p = it->second;
  p.attempt += 1;

  bool dropped = false;
  bool corrupted = false;
  const auto first = e->dma->Transfer(sim_->now(), p.wire);
  sim::SimTime arrive = first.arrive;
  dropped = first.outcome == sim::TransferOutcome::kDropped;
  corrupted = first.outcome == sim::TransferOutcome::kCorrupted;
  for (size_t i = 1; i < e->path.size() && !dropped; ++i) {
    const auto hop = e->path[i]->Reserve(arrive, p.wire);
    arrive = hop.arrive;
    if (hop.outcome == sim::TransferOutcome::kDropped) dropped = true;
    if (hop.outcome == sim::TransferOutcome::kCorrupted) corrupted = true;
  }
  e->last_arrive = std::max(e->last_arrive, arrive);
  if (!dropped) {
    sim_->ScheduleAt(arrive, [this, e, seq, corrupted] {
      DeliverPending(e, seq, corrupted);
    });
  }
  // Watchdog: if the chunk is still pending past its (backed-off) deadline,
  // it was lost or discarded — retransmit.
  const uint32_t attempt = p.attempt;
  const sim::SimTime deadline =
      arrive + BackoffNs(policy_.delivery_timeout_ns, attempt - 1,
                         policy_.max_backoff_ns);
  sim_->ScheduleAt(deadline,
                   [this, e, seq, attempt] { CheckDelivery(e, seq, attempt); });
}

void DataflowGraph::DeliverPending(Edge* e, uint64_t seq, bool corrupted) {
  if (!status_.ok()) return;
  auto it = e->pending.find(seq);
  if (it == e->pending.end()) return;  // late duplicate; already consumed
  Edge::PendingSend& p = it->second;
  uint64_t v = ChecksumChunk(p.chunk);
  if (corrupted) v ^= kCorruptionMask;
  if (v != p.checksum) {
    // Receiver discards the damaged chunk; the sender's watchdog will
    // retransmit from its pending copy.
    recovery_stats_.checksum_failures += 1;
    DFLOW_TRACE(tracer_, Instant("fault", e->label, "checksum_fail",
                                 sim_->now(), /*value=*/seq));
    return;
  }
  e->reorder.emplace(seq, std::make_pair(std::move(p.chunk), p.wire));
  e->pending.erase(it);
  // Hand off every verified chunk that is next in send order. Credits stay
  // held while a chunk sits in the reorder buffer, so flow control still
  // bounds sender-side memory plus at most the credit window per edge.
  while (!e->reorder.empty() &&
         e->reorder.begin()->first == e->next_deliver_seq) {
    auto [chunk, wire] = std::move(e->reorder.begin()->second);
    e->reorder.erase(e->reorder.begin());
    e->next_deliver_seq += 1;
    Deliver(e, std::move(chunk), wire);
  }
  // The pending set may have drained: a held-back EOS may now be due.
  PumpEdge(e);
}

void DataflowGraph::CheckDelivery(Edge* e, uint64_t seq, uint32_t attempt) {
  if (!status_.ok()) return;
  auto it = e->pending.find(seq);
  if (it == e->pending.end()) return;         // delivered in time
  if (it->second.attempt != attempt) return;  // superseded watchdog
  recovery_stats_.delivery_timeouts += 1;
  DFLOW_TRACE(tracer_, Instant("fault", e->label, "delivery_timeout",
                               sim_->now(), /*value=*/seq));
  if (it->second.attempt >= policy_.max_delivery_attempts) {
    Fail(Status::IOError(
             "edge " + e->from->name + "->" + e->to->name + " gave up after " +
             std::to_string(it->second.attempt) + " delivery attempts"),
         lifecycle::FailureKind::kDeliveryExhausted);
    return;
  }
  recovery_stats_.retransmits += 1;
  DFLOW_TRACE(tracer_, Instant("fault", e->label, "retransmit", sim_->now(),
                               /*value=*/seq));
  // Retransmit without re-acquiring credit: the credit from the original
  // send is still held and is released when the chunk is finally consumed.
  Transmit(e, seq);
}

void DataflowGraph::Deliver(Edge* e, DataChunk chunk, uint64_t wire_bytes) {
  if (!status_.ok() || CancelRequested()) return;
  CheckEventTime();
  DFLOW_INVARIANTS_ONLY(e->inv_consumed += 1;)
  CheckEdgeInvariants(e);
  Node* to = e->to;
  if (to->type == Node::Type::kSink) {
    to->sink_chunks.push_back(std::move(chunk));
    PopCredit(e, wire_bytes);  // the sink consumes immediately
    return;
  }
  to->inbox.emplace_back(std::move(chunk), wire_bytes, e);
  Pump(to);
}

void DataflowGraph::PopCredit(Edge* e, uint64_t wire_bytes) {
  DFLOW_CHECK_GE(e->inflight_bytes, wire_bytes);
  e->inflight_bytes -= wire_bytes;
  DFLOW_TRACE(tracer_, Counter("edge", e->label, "inflight_bytes", sim_->now(),
                               e->inflight_bytes));
  // The credit message travels the reverse path.
  sim_->Schedule(e->path_latency, [this, e] {
    e->gate.Release();
    DFLOW_INVARIANTS_ONLY(e->inv_released += 1;)
    PumpEdge(e);
    Pump(e->from);
  });
}

void DataflowGraph::HandleEos(Edge* e) {
  if (!status_.ok()) return;
  CheckEventTime();
  DFLOW_INVARIANT(e->send_queue.empty() && e->pending.empty() &&
                      e->reorder.empty() && e->inv_transit == 0 &&
                      e->inv_enqueued == e->inv_consumed,
                  "edge " + e->label +
                      " reached EOS with unconserved tuples: enqueued=" +
                      std::to_string(e->inv_enqueued) +
                      " consumed=" + std::to_string(e->inv_consumed) +
                      " transit=" + std::to_string(e->inv_transit));
  DFLOW_TRACE(tracer_, Instant("edge", e->label, "eos", sim_->now()));
  Node* to = e->to;
  DFLOW_CHECK_GT(to->open_inputs, 0u);
  to->open_inputs -= 1;
  if (to->type == Node::Type::kSink) {
    if (to->open_inputs == 0) {
      to->finished = true;
      to->finish_time = sim_->now();
      if (unfinished_sinks_ > 0) unfinished_sinks_ -= 1;
      MaybeComplete();
    }
    return;
  }
  Pump(to);
}

void DataflowGraph::MarkNodeDone(Node* n) {
  if (n->finished) return;
  n->finished = true;
  n->finish_time = sim_->now();
  for (Edge* e : n->outs) e->eos_pending = true;
  PumpEdges(n);
}

Status DataflowGraph::Validate() const {
  // Structural validation.
  for (const auto& e : edges_) {
    if (e->feedback) {
      return Status::InvalidArgument(
          "edge " + e->label +
          " is declared feedback; the executor's EOS protocol cannot "
          "terminate loops, so feedback graphs are verify-only");
    }
  }
  for (const auto& n : nodes_) {
    switch (n->type) {
      case Node::Type::kSource:
        if (n->outs.size() != 1) {
          return Status::InvalidArgument("source '" + n->name +
                                         "' must have exactly one output");
        }
        if (n->device == nullptr) {
          return Status::InvalidArgument("source '" + n->name +
                                         "' has no device");
        }
        break;
      case Node::Type::kStage:
        if (n->op == nullptr || n->device == nullptr) {
          return Status::InvalidArgument("stage '" + n->name +
                                         "' missing operator or device");
        }
        if (n->outs.size() > 1) {
          return Status::InvalidArgument(
              "stage '" + n->name +
              "' has multiple outputs (use a partition stage)");
        }
        if (n->ins.empty()) {
          return Status::InvalidArgument("stage '" + n->name +
                                         "' has no inputs");
        }
        if (!n->device->Supports(n->op->traits().cost_class)) {
          return Status::InvalidArgument(
              "device '" + n->device->name() + "' does not support " +
              std::string(sim::CostClassToString(n->op->traits().cost_class)) +
              " (stage '" + n->name + "')");
        }
        break;
      case Node::Type::kBroadcast:
        if (n->outs.empty()) {
          return Status::InvalidArgument("broadcast stage '" + n->name +
                                         "' has no outputs");
        }
        if (n->ins.empty()) {
          return Status::InvalidArgument("broadcast stage '" + n->name +
                                         "' has no inputs");
        }
        break;
      case Node::Type::kPartition:
        if (n->outs.size() != n->partitioner->num_partitions()) {
          return Status::InvalidArgument(
              "partition stage '" + n->name + "' expects " +
              std::to_string(n->partitioner->num_partitions()) + " outputs");
        }
        if (n->ins.empty()) {
          return Status::InvalidArgument("partition stage '" + n->name +
                                         "' has no inputs");
        }
        break;
      case Node::Type::kSink:
        if (n->ins.empty()) {
          return Status::InvalidArgument("sink '" + n->name +
                                         "' has no inputs");
        }
        break;
    }
  }
  return Status::OK();
}

Status DataflowGraph::Start() {
  unfinished_sinks_ = 0;
  for (auto& n : nodes_) {
    n->open_inputs = n->ins.size();
    if (n->type == Node::Type::kSink) unfinished_sinks_ += 1;
  }
  for (auto& n : nodes_) {
    if (n->type == Node::Type::kSource) {
      Node* raw = n.get();
      sim_->ScheduleAt(std::max(sim_->now(), raw->start_at),
                       [this, raw] { Pump(raw); });
    }
  }
  return Status::OK();
}

Status DataflowGraph::Launch() {
  if (started_) return Status::InvalidArgument("graph already launched");
  started_ = true;
  DFLOW_RETURN_NOT_OK(Validate());
  return Start();
}

Status DataflowGraph::SetSourceStartTime(NodeId source, sim::SimTime at) {
  if (source >= nodes_.size() ||
      nodes_[source]->type != Node::Type::kSource) {
    return Status::InvalidArgument("SetSourceStartTime: not a source");
  }
  nodes_[source]->start_at = at;
  return Status::OK();
}

void DataflowGraph::SetCompletionCallback(
    std::function<void(const Status&)> callback) {
  completion_callback_ = std::move(callback);
}

bool DataflowGraph::finished() const {
  if (!started_) return false;
  for (const auto& n : nodes_) {
    if (!n->finished) return false;
  }
  return true;
}

void DataflowGraph::MaybeComplete() {
  if (completion_reported_ || completion_callback_ == nullptr) return;
  if (!status_.ok()) {
    completion_reported_ = true;
    completion_callback_(status_);
    return;
  }
  if (unfinished_sinks_ > 0 || !finished()) return;
  completion_reported_ = true;
  completion_callback_(Status::OK());
}

Status DataflowGraph::Run(uint64_t max_events) {
  if (started_) return Status::InvalidArgument("graph already ran");
  started_ = true;
  DFLOW_RETURN_NOT_OK(Validate());
  DFLOW_RETURN_NOT_OK(Start());
  const bool drained = sim_->RunWithLimit(max_events);
  if (!drained) {
    return Status::Internal("dataflow graph exceeded event budget");
  }
  DFLOW_RETURN_NOT_OK(status_);
  for (const auto& n : nodes_) {
    if (!n->finished) {
      return Status::Internal("dataflow graph stalled at node '" + n->name +
                              "'");
    }
  }
#ifndef DFLOW_INVARIANTS_DISABLED
  // Quiesced conservation: with the event queue drained, every chunk must
  // have been consumed and every credit returned.
  for (const auto& e : edges_) {
    DFLOW_INVARIANT(e->inv_enqueued == e->inv_consumed &&
                        e->inv_transit == 0 && e->send_queue.empty() &&
                        e->pending.empty() && e->reorder.empty(),
                    "edge " + e->label +
                        " finished with unconserved tuples: enqueued=" +
                        std::to_string(e->inv_enqueued) +
                        " consumed=" + std::to_string(e->inv_consumed));
    DFLOW_INVARIANT(e->gate.available() == e->gate.capacity(),
                    "edge " + e->label + " finished holding credits: " +
                        std::to_string(e->gate.available()) + "/" +
                        std::to_string(e->gate.capacity()) + " available");
  }
#endif
  return Status::OK();
}

const std::vector<DataChunk>& DataflowGraph::sink_chunks(NodeId sink) const {
  return nodes_[sink]->sink_chunks;
}

sim::SimTime DataflowGraph::sink_finish_time(NodeId sink) const {
  return nodes_[sink]->finish_time;
}

Operator* DataflowGraph::stage_operator(NodeId id) {
  return nodes_[id]->op.get();
}

uint64_t DataflowGraph::TotalPeakQueueBytes() const {
  uint64_t total = 0;
  for (const auto& e : edges_) {
    total += e->peak_inflight_bytes;
  }
  return total;
}

uint64_t DataflowGraph::EdgePeakQueueBytes(NodeId from, NodeId to) const {
  Edge* e = FindEdge(from, to);
  return e == nullptr ? 0 : e->peak_inflight_bytes;
}

verify::GraphSpec DataflowGraph::Describe() const {
  verify::GraphSpec spec;
  spec.nodes.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = *nodes_[i];
    verify::NodeSpec ns;
    ns.id = i;
    ns.name = n.name;
    if (n.device != nullptr) ns.device = n.device->name();
    switch (n.type) {
      case Node::Type::kSource:
        ns.kind = verify::NodeKind::kSource;
        ns.has_cost_class = true;
        ns.cost_class = n.source_cc;
        if (n.source_schema.has_value()) {
          ns.has_output_schema = true;
          ns.output_schema = *n.source_schema;
        }
        for (const ScanBatch& b : n.batches) {
          ns.max_batch_chunks = std::max(ns.max_batch_chunks, b.chunks.size());
        }
        break;
      case Node::Type::kStage:
        ns.kind = verify::NodeKind::kStage;
        if (n.op != nullptr) {
          ns.has_traits = true;
          ns.traits = n.op->traits();
          ns.has_cost_class = true;
          ns.cost_class = ns.traits.cost_class;
          ns.has_output_schema = true;
          ns.output_schema = n.op->output_schema();
          if (const Schema* in = n.op->input_schema()) {
            ns.has_input_schema = true;
            ns.input_schema = *in;
          }
        }
        break;
      case Node::Type::kPartition:
        ns.kind = verify::NodeKind::kPartition;
        ns.has_cost_class = true;
        ns.cost_class = sim::CostClass::kPartition;
        ns.partition_fanout = n.partitioner->num_partitions();
        break;
      case Node::Type::kBroadcast:
        ns.kind = verify::NodeKind::kBroadcast;
        ns.has_cost_class = true;
        ns.cost_class = sim::CostClass::kMemcpy;
        break;
      case Node::Type::kSink:
        ns.kind = verify::NodeKind::kSink;
        break;
    }
    spec.nodes.push_back(std::move(ns));
  }

  // Map Node* back to indices for the edge endpoints.
  auto index_of = [this](const Node* n) -> size_t {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].get() == n) return i;
    }
    return nodes_.size();  // unreachable for edges built via Connect
  };
  spec.edges.reserve(edges_.size());
  for (const auto& e : edges_) {
    verify::EdgeSpec es;
    es.from = index_of(e->from);
    es.to = index_of(e->to);
    es.label = e->label;
    es.credits = e->gate.capacity();
    es.feedback = e->feedback;
    es.hops = e->path.size();
    spec.edges.push_back(std::move(es));
  }
  return spec;
}

}  // namespace dflow
