#ifndef DFLOW_EXEC_INVARIANTS_H_
#define DFLOW_EXEC_INVARIANTS_H_

#include <cstdint>
#include <string>

/// Runtime invariant oracle for the dataflow executor (the dynamic
/// counterpart of the static plan verifier). DFLOW_INVARIANT mirrors
/// DFLOW_TRACE's compile-away contract: -DDFLOW_INVARIANTS_DISABLED (CMake
/// option DFLOW_DISABLE_INVARIANTS) removes every check, every ledger
/// update wrapped in DFLOW_INVARIANTS_ONLY, and the InvariantFailed symbol
/// itself, so the release-notrace CI leg can prove the oracle costs nothing
/// when off.
///
/// The executor asserts, per edge and per event:
///  - tuple conservation: chunks enqueued == launched + still queued, and
///    chunks launched == consumed + in transit + awaiting retransmission
///    (pending) + reordering,
///  - credit safety: credits held stay within [0, capacity] and agree with
///    the gate's own ledger,
///  - virtual-time monotonicity: event timestamps never run backwards,
///  - completion: a finished edge has conserved every tuple and returned
///    every credit.

namespace dflow::invariants {

/// Total invariant conditions evaluated by this process (always defined;
/// stays 0 when the checker is compiled out). Lets tests assert the oracle
/// actually ran.
uint64_t checks_run();

#ifndef DFLOW_INVARIANTS_DISABLED
void BumpCheck();
[[noreturn]] void InvariantFailed(const char* file, int line,
                                  const char* condition,
                                  const std::string& detail);
#endif

}  // namespace dflow::invariants

#ifndef DFLOW_INVARIANTS_DISABLED
/// Asserts a runtime invariant. `detail` is evaluated only on failure.
#define DFLOW_INVARIANT(cond, detail)                                     \
  do {                                                                    \
    ::dflow::invariants::BumpCheck();                                     \
    if (!(cond)) {                                                        \
      ::dflow::invariants::InvariantFailed(__FILE__, __LINE__, #cond,     \
                                           (detail));                     \
    }                                                                     \
  } while (0)
/// Emits `stmt` only when the invariant checker is compiled in (ledger
/// updates that exist solely to feed DFLOW_INVARIANT checks).
#define DFLOW_INVARIANTS_ONLY(stmt) stmt
#else
#define DFLOW_INVARIANT(cond, detail) \
  do {                                \
  } while (0)
#define DFLOW_INVARIANTS_ONLY(stmt)
#endif

#endif  // DFLOW_EXEC_INVARIANTS_H_
