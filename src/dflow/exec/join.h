#ifndef DFLOW_EXEC_JOIN_H_
#define DFLOW_EXEC_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dflow/exec/operator.h"

namespace dflow {

/// Shared in-memory hash table for an equi-join: built once (by a
/// JoinBuildOperator or directly), probed by one or more
/// HashJoinProbeOperator instances — possibly on different nodes, which is
/// how the distributed partitioned join of Figure 4 shares code with the
/// single-node join.
class JoinHashTable {
 public:
  JoinHashTable(Schema build_schema, size_t key_col);

  const Schema& build_schema() const { return build_schema_; }
  size_t key_col() const { return key_col_; }
  size_t num_rows() const { return rows_.num_rows(); }

  /// Appends all rows of `chunk` (must match build_schema).
  Status Insert(const DataChunk& chunk);

  /// For each probe row whose key equals a build key, appends the pair
  /// (probe row index, build row index) — the standard join match list.
  Status Probe(const ColumnVector& probe_keys,
               std::vector<std::pair<uint32_t, uint32_t>>* matches) const;

  /// All build rows, columnar (for probe-side payload materialization).
  const DataChunk& rows() const { return rows_; }

  /// Approximate resident bytes (rows + hash directory).
  uint64_t MemoryBytes() const;

 private:
  Schema build_schema_;
  size_t key_col_;
  DataChunk rows_;  // all build rows, columnar
  // determinism-ok: hash-bucket index only; match lists come out in probe-row
  // order, never in table iteration order.
  std::unordered_map<uint64_t, std::vector<uint32_t>> table_;
};

/// Pipeline sink that builds a JoinHashTable: blocking, unbounded state —
/// placement will always put this on a CPU.
class JoinBuildOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(std::shared_ptr<JoinHashTable> table);

  std::string name() const override { return "join_build"; }
  const Schema& output_schema() const override { return empty_schema_; }
  const Schema* input_schema() const override {
    return &table_->build_schema();
  }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;

 private:
  explicit JoinBuildOperator(std::shared_ptr<JoinHashTable> table)
      : table_(std::move(table)) {}

  std::shared_ptr<JoinHashTable> table_;
  Schema empty_schema_;
};

/// Streaming probe side of a hash equi-join. Output schema = probe columns
/// followed by build columns (build fields renamed with a "b_" prefix when
/// they would clash).
class HashJoinProbeOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(std::shared_ptr<const JoinHashTable> table,
                                  Schema probe_schema, size_t probe_key_col);

  std::string name() const override { return "hash_join_probe"; }
  const Schema& output_schema() const override { return output_schema_; }
  const Schema* input_schema() const override { return &probe_schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;

 private:
  HashJoinProbeOperator(std::shared_ptr<const JoinHashTable> table,
                        Schema probe_schema, size_t probe_key_col,
                        Schema output_schema)
      : table_(std::move(table)),
        probe_schema_(std::move(probe_schema)),
        probe_key_col_(probe_key_col),
        output_schema_(std::move(output_schema)) {}

  std::shared_ptr<const JoinHashTable> table_;
  Schema probe_schema_;
  size_t probe_key_col_;
  Schema output_schema_;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_JOIN_H_
