#ifndef DFLOW_EXEC_AGGREGATE_H_
#define DFLOW_EXEC_AGGREGATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "dflow/exec/operator.h"

namespace dflow {

/// Aggregate functions supported by the hash aggregate. AVG is lowered by
/// the planner into SUM + COUNT plus a final division, so every function
/// here merges trivially across partial stages (sum of sums, min of mins,
/// ...), which is what makes the paper's staged pre-aggregation pipeline
/// (storage -> sending NIC -> receiving NIC -> CPU, §4.4) composable.
enum class AggFunc { kCount, kSum, kMin, kMax };

std::string_view AggFuncToString(AggFunc func);

/// One aggregate column: func over input column `input` (ignored for
/// COUNT(*), pass empty), emitted as `output_name`.
struct AggSpec {
  AggFunc func;
  std::string input;        // empty = COUNT(*)
  std::string output_name;
};

/// Where this aggregate sits in a multi-stage aggregation chain.
///  kComplete  raw rows in -> final values out (single-stage)
///  kPartial   raw rows in -> partial states out; may flush early when the
///             bounded table fills (accelerator mode)
///  kFinal     partial states in -> final values out
enum class AggMode { kComplete, kPartial, kFinal };

/// Vectorized hash group-by.
///
/// In kPartial mode with `max_groups > 0` the operator enforces the bounded
/// state budget accelerators require: when the table would exceed
/// max_groups, the current partials are emitted downstream and the table is
/// cleared. The result is still exact once a downstream kFinal stage merges
/// — only the *reduction factor* degrades, which is precisely the trade-off
/// §3.3 describes ("pre-aggregation ... probably only to parts of the
/// data").
class HashAggregateOperator : public Operator {
 public:
  /// `group_by` are input column names; `specs` the aggregates. For kFinal
  /// mode, `input_schema` must be the partial-stage output schema (group
  /// cols followed by agg cols, as produced by a kPartial instance).
  static Result<OperatorPtr> Make(const Schema& input_schema,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<AggSpec>& specs,
                                  AggMode mode, size_t max_groups = 0);

  std::string name() const override;
  const Schema& output_schema() const override { return output_schema_; }
  const Schema* input_schema() const override { return &input_schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;
  Status Finish(std::vector<DataChunk>* out) override;

  /// Number of early partial flushes forced by the bounded table.
  uint64_t partial_flushes() const { return partial_flushes_; }
  size_t num_groups() const { return groups_.size(); }

 private:
  struct Accumulator {
    int64_t count = 0;
    double sum_d = 0.0;
    int64_t sum_i = 0;
    Value min;
    Value max;
    bool seen = false;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<Accumulator> accs;
  };

  HashAggregateOperator() = default;

  Status UpdateGroups(const DataChunk& input, std::vector<DataChunk>* out);
  size_t FindOrCreateGroup(const DataChunk& input, size_t row, uint64_t hash);
  Status EmitAll(std::vector<DataChunk>* out);
  Status EvictOldestHalf(std::vector<DataChunk>* out);
  void AppendAggValue(const Accumulator& acc, size_t spec_idx,
                      ColumnVector* col) const;

  AggMode mode_ = AggMode::kComplete;
  size_t max_groups_ = 0;
  std::vector<size_t> group_cols_;            // indices into input
  std::vector<AggSpec> specs_;
  std::vector<int64_t> agg_cols_;             // input index, -1 = COUNT(*)
  std::vector<DataType> agg_output_types_;
  Schema output_schema_;
  Schema input_schema_;

  // determinism-ok: hash-bucket index only; groups_ keeps insertion order
  // and is the sole source of output ordering.
  std::unordered_map<uint64_t, std::vector<size_t>> table_;
  std::vector<Group> groups_;
  uint64_t partial_flushes_ = 0;
};

/// Rewrites partial-stage specs into the merge specs a kFinal stage needs:
/// COUNT becomes SUM over the partial count column; SUM/MIN/MAX keep their
/// function but read the partial column. Inputs are positional: the partial
/// schema lays out group columns first, then one column per spec.
std::vector<AggSpec> MakeMergeSpecs(const std::vector<AggSpec>& specs);

}  // namespace dflow

#endif  // DFLOW_EXEC_AGGREGATE_H_
