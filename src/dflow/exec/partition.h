#ifndef DFLOW_EXEC_PARTITION_H_
#define DFLOW_EXEC_PARTITION_H_

#include <vector>

#include "dflow/common/result.h"
#include "dflow/vector/data_chunk.h"

namespace dflow {

/// Hash-partitions chunks into a fixed number of output streams: the
/// exchange operator. Runs identically on a CPU or on a smart NIC; the
/// latter is the "NICs can partition data on the fly ... without
/// involvement of the CPU" capability of §4.4 / Figure 4.
///
/// Rows route to partition HashInt-like(key) % num_partitions with the same
/// hash function everywhere, so a NIC-side partitioner and CPU-side join
/// tables always agree.
class HashPartitioner {
 public:
  HashPartitioner(size_t key_col, uint32_t num_partitions);

  size_t key_col() const { return key_col_; }
  uint32_t num_partitions() const { return num_partitions_; }

  /// Splits `input` into `num_partitions` chunks (some possibly empty).
  /// `outs` is resized to num_partitions.
  Status Split(const DataChunk& input, std::vector<DataChunk>* outs) const;

 private:
  size_t key_col_;
  uint32_t num_partitions_;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_PARTITION_H_
