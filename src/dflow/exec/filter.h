#ifndef DFLOW_EXEC_FILTER_H_
#define DFLOW_EXEC_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/exec/operator.h"
#include "dflow/plan/expr.h"

namespace dflow {

/// Streaming, stateless selection: emits the rows of each input chunk that
/// satisfy a resolved boolean predicate. The canonical storage/NIC pushdown
/// operator (Figure 2).
class FilterOperator : public Operator {
 public:
  /// `predicate` must be resolved against `input_schema` and boolean-typed.
  static Result<OperatorPtr> Make(ExprPtr predicate, Schema input_schema,
                                  double selectivity_hint = 0.5);

  std::string name() const override;
  const Schema& output_schema() const override { return schema_; }
  /// Selection is schema-preserving: input layout == output layout.
  const Schema* input_schema() const override { return &schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;

 private:
  FilterOperator(ExprPtr predicate, Schema schema, double selectivity_hint)
      : predicate_(std::move(predicate)),
        schema_(std::move(schema)),
        selectivity_hint_(selectivity_hint) {}

  ExprPtr predicate_;
  Schema schema_;
  double selectivity_hint_;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_FILTER_H_
