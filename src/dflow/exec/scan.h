#ifndef DFLOW_EXEC_SCAN_H_
#define DFLOW_EXEC_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/plan/expr.h"
#include "dflow/storage/table.h"

namespace dflow {

/// A chunk as it leaves storage: the data plus the number of bytes it
/// occupies *on the wire* at this point of the pipeline. Straight off the
/// media that is its at-rest (encoded) share of the row group; after a
/// decode stage it becomes the in-memory size; after an encode stage it
/// shrinks again.
struct ScanChunk {
  DataChunk chunk;
  uint64_t wire_bytes = 0;
};

/// One row group's worth of scan output. The media device is charged once
/// per batch (one object-store request + the encoded bytes), and the
/// batch's chunks then enter the pipeline together.
struct ScanBatch {
  std::vector<ScanChunk> chunks;
  uint64_t device_bytes = 0;
};

/// Columnar scan over a table with projection pushdown (only requested
/// columns are read) and zone-map row-group pruning (conjuncts of the form
/// `col <op> constant` skip row groups that cannot match).
class TableScanSource {
 public:
  /// `columns`: names to read, in order (empty = all). `prune_predicate`
  /// may be null; only its column-vs-constant conjuncts are used for
  /// pruning (it is NOT applied row-wise — add a FilterOperator for that).
  static Result<TableScanSource> Make(std::shared_ptr<const Table> table,
                                      const std::vector<std::string>& columns,
                                      ExprPtr prune_predicate = nullptr);

  const Schema& output_schema() const { return schema_; }

  struct ScanStats {
    size_t row_groups_total = 0;
    size_t row_groups_pruned = 0;
    uint64_t rows_produced = 0;
    uint64_t encoded_bytes_read = 0;
  };

  /// Decodes the surviving row groups into batches. Host-side work; the
  /// simulator charges the time to whatever device hosts the scan.
  Result<std::vector<ScanBatch>> Produce(ScanStats* stats = nullptr) const;

 private:
  TableScanSource() = default;

  std::shared_ptr<const Table> table_;
  std::vector<size_t> column_indices_;
  Schema schema_;
  // (column index in table, op, constant) conjuncts for zone pruning.
  struct PruneConjunct {
    size_t column;
    CompareOp op;
    Value constant;
  };
  std::vector<PruneConjunct> prune_conjuncts_;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_SCAN_H_
