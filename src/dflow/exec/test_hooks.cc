#include "dflow/exec/test_hooks.h"

namespace dflow::test_hooks {

bool g_filter_drop_first_row = false;

}  // namespace dflow::test_hooks
