#ifndef DFLOW_EXEC_LOCAL_EXECUTOR_H_
#define DFLOW_EXEC_LOCAL_EXECUTOR_H_

#include <vector>

#include "dflow/common/result.h"
#include "dflow/exec/operator.h"

namespace dflow {

/// Runs a linear operator chain over a set of chunks directly on the host,
/// with no fabric, no timing, no placement — the reference executor used by
/// unit tests and by correctness cross-checks (the simulated plans must
/// produce exactly the same rows this produces).
Result<std::vector<DataChunk>> RunLocalPipeline(
    const std::vector<DataChunk>& inputs, const std::vector<Operator*>& ops);

/// Convenience: total row count across chunks.
uint64_t TotalRows(const std::vector<DataChunk>& chunks);

/// Convenience: total byte size across chunks.
uint64_t TotalBytes(const std::vector<DataChunk>& chunks);

/// Flattens chunks into one chunk (empty input yields an empty chunk with
/// no columns).
DataChunk ConcatChunks(const std::vector<DataChunk>& chunks);

}  // namespace dflow

#endif  // DFLOW_EXEC_LOCAL_EXECUTOR_H_
