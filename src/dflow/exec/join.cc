#include "dflow/exec/join.h"

#include "dflow/common/logging.h"
#include "dflow/vector/kernels.h"

namespace dflow {

JoinHashTable::JoinHashTable(Schema build_schema, size_t key_col)
    : build_schema_(std::move(build_schema)),
      key_col_(key_col),
      rows_(DataChunk::EmptyFromSchema(build_schema_)) {
  DFLOW_CHECK_LT(key_col_, build_schema_.num_fields());
}

Status JoinHashTable::Insert(const DataChunk& chunk) {
  if (chunk.num_columns() != build_schema_.num_fields()) {
    return Status::InvalidArgument("join build chunk arity mismatch");
  }
  std::vector<uint64_t> hashes;
  DFLOW_RETURN_NOT_OK(HashColumn(chunk.column(key_col_), &hashes));
  const uint32_t base = static_cast<uint32_t>(rows_.num_rows());
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    rows_.AppendRowFrom(chunk, r);
    if (chunk.column(key_col_).IsValid(r)) {  // NULL keys never join
      table_[hashes[r]].push_back(base + static_cast<uint32_t>(r));
    }
  }
  return Status::OK();
}

Status JoinHashTable::Probe(
    const ColumnVector& probe_keys,
    std::vector<std::pair<uint32_t, uint32_t>>* matches) const {
  std::vector<uint64_t> hashes;
  DFLOW_RETURN_NOT_OK(HashColumn(probe_keys, &hashes));
  const ColumnVector& build_keys = rows_.column(key_col_);
  for (size_t r = 0; r < probe_keys.size(); ++r) {
    if (!probe_keys.IsValid(r)) continue;
    auto it = table_.find(hashes[r]);
    if (it == table_.end()) continue;
    const Value probe_value = probe_keys.GetValue(r);
    for (uint32_t build_row : it->second) {
      if (build_keys.GetValue(build_row).Compare(probe_value) == 0) {
        matches->emplace_back(static_cast<uint32_t>(r), build_row);
      }
    }
  }
  return Status::OK();
}

uint64_t JoinHashTable::MemoryBytes() const {
  uint64_t bytes = rows_.ByteSize();
  bytes += table_.size() * 48;  // bucket overhead estimate
  bytes += rows_.num_rows() * sizeof(uint32_t);
  return bytes;
}

Result<OperatorPtr> JoinBuildOperator::Make(
    std::shared_ptr<JoinHashTable> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("join build requires a table");
  }
  return OperatorPtr(new JoinBuildOperator(std::move(table)));
}

OperatorTraits JoinBuildOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kJoinBuild;
  t.streaming = false;
  t.stateless = false;
  t.bounded_state = false;
  t.reduction_hint = 0.0;  // sink: nothing flows on
  return t;
}

Status JoinBuildOperator::Push(const DataChunk& input,
                               std::vector<DataChunk>* out) {
  (void)out;
  RecordIn(input);
  return table_->Insert(input);
}

Result<OperatorPtr> HashJoinProbeOperator::Make(
    std::shared_ptr<const JoinHashTable> table, Schema probe_schema,
    size_t probe_key_col) {
  if (table == nullptr) {
    return Status::InvalidArgument("join probe requires a table");
  }
  if (probe_key_col >= probe_schema.num_fields()) {
    return Status::InvalidArgument("probe key column out of range");
  }
  std::vector<Field> fields = probe_schema.fields();
  for (const Field& f : table->build_schema().fields()) {
    Field out = f;
    if (probe_schema.HasField(out.name)) out.name = "b_" + out.name;
    fields.push_back(std::move(out));
  }
  return OperatorPtr(new HashJoinProbeOperator(std::move(table),
                                               std::move(probe_schema),
                                               probe_key_col,
                                               Schema(std::move(fields))));
}

OperatorTraits HashJoinProbeOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kJoinProbe;
  t.streaming = true;
  t.stateless = false;  // references the build table
  t.reduction_hint = 1.0;
  return t;
}

Status HashJoinProbeOperator::Push(const DataChunk& input,
                                   std::vector<DataChunk>* out) {
  RecordIn(input);
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  DFLOW_RETURN_NOT_OK(table_->Probe(input.column(probe_key_col_), &matches));
  if (matches.empty()) return Status::OK();

  // Emit in kVectorSize slices to keep chunk sizes bounded even for
  // high-multiplicity keys.
  for (size_t start = 0; start < matches.size(); start += kVectorSize) {
    const size_t count = std::min(kVectorSize, matches.size() - start);
    DataChunk chunk = DataChunk::EmptyFromSchema(output_schema_);
    for (size_t i = 0; i < count; ++i) {
      const auto& [probe_row, build_row] = matches[start + i];
      for (size_t c = 0; c < input.num_columns(); ++c) {
        chunk.column(c).AppendFrom(input.column(c), probe_row);
      }
      for (size_t c = 0; c < table_->build_schema().num_fields(); ++c) {
        chunk.column(input.num_columns() + c)
            .AppendFrom(table_->rows().column(c), build_row);
      }
    }
    RecordOut(chunk);
    out->push_back(std::move(chunk));
  }
  return Status::OK();
}

}  // namespace dflow
