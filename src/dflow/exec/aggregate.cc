#include "dflow/exec/aggregate.h"

#include "dflow/common/hash.h"
#include "dflow/common/logging.h"
#include "dflow/vector/kernels.h"

namespace dflow {

std::string_view AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

std::vector<AggSpec> MakeMergeSpecs(const std::vector<AggSpec>& specs) {
  std::vector<AggSpec> merged;
  merged.reserve(specs.size());
  for (const AggSpec& s : specs) {
    AggSpec m = s;
    m.input = s.output_name;  // read the partial column by its emitted name
    // COUNT keeps its function: a kFinal-mode COUNT *sums* the partial
    // counts (see UpdateGroups) but still finalizes the empty input to 0,
    // which SUM would not (SUM of nothing is NULL).
    merged.push_back(std::move(m));
  }
  return merged;
}

Result<OperatorPtr> HashAggregateOperator::Make(
    const Schema& input_schema, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& specs, AggMode mode, size_t max_groups) {
  if (specs.empty()) {
    return Status::InvalidArgument("aggregate requires at least one function");
  }
  if (mode != AggMode::kPartial && max_groups != 0) {
    return Status::InvalidArgument(
        "bounded group tables only apply to kPartial mode");
  }
  auto op = std::unique_ptr<HashAggregateOperator>(new HashAggregateOperator());
  op->mode_ = mode;
  op->max_groups_ = max_groups;
  op->specs_ = specs;

  std::vector<Field> out_fields;
  for (const std::string& g : group_by) {
    DFLOW_ASSIGN_OR_RETURN(size_t idx, input_schema.FieldIndex(g));
    op->group_cols_.push_back(idx);
    out_fields.push_back(input_schema.field(idx));
  }
  for (const AggSpec& s : specs) {
    int64_t input_idx = -1;
    DataType out_type = DataType::kInt64;
    if (s.func == AggFunc::kCount && s.input.empty()) {
      out_type = DataType::kInt64;
    } else {
      if (s.input.empty()) {
        return Status::InvalidArgument(
            std::string(AggFuncToString(s.func)) + " requires an input column");
      }
      DFLOW_ASSIGN_OR_RETURN(size_t idx, input_schema.FieldIndex(s.input));
      input_idx = static_cast<int64_t>(idx);
      const DataType in_type = input_schema.field(idx).type;
      switch (s.func) {
        case AggFunc::kCount:
          out_type = DataType::kInt64;
          break;
        case AggFunc::kSum:
          if (!IsNumeric(in_type)) {
            return Status::InvalidArgument("SUM requires a numeric column");
          }
          out_type =
              in_type == DataType::kDouble ? DataType::kDouble : DataType::kInt64;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          out_type = in_type;
          break;
      }
    }
    op->agg_cols_.push_back(input_idx);
    op->agg_output_types_.push_back(out_type);
    out_fields.push_back(Field{s.output_name, out_type});
  }
  op->output_schema_ = Schema(std::move(out_fields));
  op->input_schema_ = input_schema;
  return OperatorPtr(op.release());
}

std::string HashAggregateOperator::name() const {
  std::string n = "hash_agg[";
  switch (mode_) {
    case AggMode::kComplete:
      n += "complete";
      break;
    case AggMode::kPartial:
      n += "partial";
      break;
    case AggMode::kFinal:
      n += "final";
      break;
  }
  if (max_groups_ > 0) n += ", bounded=" + std::to_string(max_groups_);
  return n + "]";
}

OperatorTraits HashAggregateOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kAggregate;
  t.streaming = mode_ == AggMode::kPartial && max_groups_ > 0;
  t.stateless = false;
  t.bounded_state = max_groups_ > 0;
  t.reduction_hint = 0.1;
  return t;
}

size_t HashAggregateOperator::FindOrCreateGroup(const DataChunk& input,
                                                size_t row, uint64_t hash) {
  std::vector<size_t>& bucket = table_[hash];
  for (size_t gid : bucket) {
    bool match = true;
    for (size_t k = 0; k < group_cols_.size(); ++k) {
      if (groups_[gid].keys[k].Compare(input.GetValue(row, group_cols_[k])) !=
          0) {
        match = false;
        break;
      }
    }
    if (match) return gid;
  }
  Group g;
  g.keys.reserve(group_cols_.size());
  for (size_t col : group_cols_) {
    g.keys.push_back(input.GetValue(row, col));
  }
  g.accs.resize(specs_.size());
  groups_.push_back(std::move(g));
  bucket.push_back(groups_.size() - 1);
  return groups_.size() - 1;
}

Status HashAggregateOperator::Push(const DataChunk& input,
                                   std::vector<DataChunk>* out) {
  RecordIn(input);
  return UpdateGroups(input, out);
}

Status HashAggregateOperator::UpdateGroups(const DataChunk& input,
                                           std::vector<DataChunk>* out) {
  const size_t n = input.num_rows();
  std::vector<uint64_t> hashes;
  if (group_cols_.empty()) {
    hashes.assign(n, 0);
  } else {
    for (size_t col : group_cols_) {
      DFLOW_RETURN_NOT_OK(HashColumn(input.column(col), &hashes));
    }
  }
  for (size_t row = 0; row < n; ++row) {
    // Bounded partial tables evict the OLDEST HALF of their groups before
    // admitting a group that would exceed the budget. Evicting only part of
    // the table (rather than flushing everything) keeps recently-hot groups
    // resident, which is what makes bounded pre-aggregation effective under
    // skew — the accelerator equivalent of an LRU-ish cache.
    if (max_groups_ > 0 && groups_.size() >= max_groups_) {
      const std::vector<size_t>& bucket = table_[hashes[row]];
      bool exists = false;
      for (size_t gid : bucket) {
        bool match = true;
        for (size_t k = 0; k < group_cols_.size(); ++k) {
          if (groups_[gid].keys[k].Compare(
                  input.GetValue(row, group_cols_[k])) != 0) {
            match = false;
            break;
          }
        }
        if (match) {
          exists = true;
          break;
        }
      }
      if (!exists) {
        DFLOW_RETURN_NOT_OK(EvictOldestHalf(out));
        ++partial_flushes_;
      }
    }
    const size_t gid = FindOrCreateGroup(input, row, hashes[row]);
    Group& g = groups_[gid];
    for (size_t s = 0; s < specs_.size(); ++s) {
      Accumulator& acc = g.accs[s];
      const int64_t col_idx = agg_cols_[s];
      if (specs_[s].func == AggFunc::kCount && col_idx < 0) {
        acc.count += 1;
        acc.seen = true;
        continue;
      }
      const ColumnVector& col = input.column(static_cast<size_t>(col_idx));
      if (!col.IsValid(row)) continue;  // SQL: aggregates skip NULLs
      acc.seen = true;
      switch (specs_[s].func) {
        case AggFunc::kCount:
          // Final stage: the input column holds partial counts to sum up.
          // Earlier stages: count the (non-NULL) rows themselves.
          if (mode_ == AggMode::kFinal) {
            acc.count += col.GetValue(row).AsInt64();
          } else {
            acc.count += 1;
          }
          break;
        case AggFunc::kSum:
          if (col.type() == DataType::kDouble) {
            acc.sum_d += col.f64()[row];
          } else {
            acc.sum_i += col.GetValue(row).AsInt64();
          }
          break;
        case AggFunc::kMin: {
          Value v = col.GetValue(row);
          if (acc.count == 0 || v.Compare(acc.min) < 0) acc.min = v;
          acc.count += 1;
          break;
        }
        case AggFunc::kMax: {
          Value v = col.GetValue(row);
          if (acc.count == 0 || v.Compare(acc.max) > 0) acc.max = v;
          acc.count += 1;
          break;
        }
      }
    }
  }
  return Status::OK();
}

void HashAggregateOperator::AppendAggValue(const Accumulator& acc,
                                           size_t spec_idx,
                                           ColumnVector* col) const {
  const AggFunc func = specs_[spec_idx].func;
  const DataType out_type = agg_output_types_[spec_idx];
  switch (func) {
    case AggFunc::kCount:
      col->AppendValue(Value::Int64(acc.count));
      return;
    case AggFunc::kSum:
      if (!acc.seen) {
        col->AppendNull();
      } else if (out_type == DataType::kDouble) {
        col->AppendValue(Value::Double(acc.sum_d));
      } else {
        col->AppendValue(Value::Int64(acc.sum_i));
      }
      return;
    case AggFunc::kMin:
      if (!acc.seen) {
        col->AppendNull();
      } else {
        col->AppendValue(acc.min);
      }
      return;
    case AggFunc::kMax:
      if (!acc.seen) {
        col->AppendNull();
      } else {
        col->AppendValue(acc.max);
      }
      return;
  }
}

Status HashAggregateOperator::EvictOldestHalf(std::vector<DataChunk>* out) {
  const size_t evict = std::max<size_t>(1, groups_.size() / 2);
  // Emit the first (oldest) `evict` groups.
  for (size_t start = 0; start < evict; start += kVectorSize) {
    const size_t count = std::min(kVectorSize, evict - start);
    DataChunk chunk = DataChunk::EmptyFromSchema(output_schema_);
    for (size_t i = 0; i < count; ++i) {
      const Group& g = groups_[start + i];
      for (size_t k = 0; k < group_cols_.size(); ++k) {
        chunk.column(k).AppendValue(g.keys[k]);
      }
      for (size_t s = 0; s < specs_.size(); ++s) {
        AppendAggValue(g.accs[s], s, &chunk.column(group_cols_.size() + s));
      }
    }
    RecordOut(chunk);
    out->push_back(std::move(chunk));
  }
  // Keep the newest groups; rebuild the hash directory over them.
  groups_.erase(groups_.begin(), groups_.begin() + evict);
  table_.clear();
  for (size_t gid = 0; gid < groups_.size(); ++gid) {
    uint64_t h = 0;
    bool first = true;
    for (const Value& key : groups_[gid].keys) {
      ColumnVector tmp(key.type());
      tmp.AppendValue(key);
      std::vector<uint64_t> hv;
      if (first) {
        DFLOW_RETURN_NOT_OK(HashColumn(tmp, &hv));
        h = hv[0];
        first = false;
      } else {
        hv.assign(1, h);
        DFLOW_RETURN_NOT_OK(HashColumn(tmp, &hv));
        h = hv[0];
      }
    }
    if (groups_[gid].keys.empty()) h = 0;
    table_[h].push_back(gid);
  }
  return Status::OK();
}

Status HashAggregateOperator::EmitAll(std::vector<DataChunk>* out) {
  if (groups_.empty()) return Status::OK();
  for (size_t start = 0; start < groups_.size(); start += kVectorSize) {
    const size_t count = std::min(kVectorSize, groups_.size() - start);
    DataChunk chunk = DataChunk::EmptyFromSchema(output_schema_);
    for (size_t i = 0; i < count; ++i) {
      const Group& g = groups_[start + i];
      for (size_t k = 0; k < group_cols_.size(); ++k) {
        chunk.column(k).AppendValue(g.keys[k]);
      }
      for (size_t s = 0; s < specs_.size(); ++s) {
        AppendAggValue(g.accs[s], s,
                       &chunk.column(group_cols_.size() + s));
      }
    }
    RecordOut(chunk);
    out->push_back(std::move(chunk));
  }
  table_.clear();
  groups_.clear();
  return Status::OK();
}

Status HashAggregateOperator::Finish(std::vector<DataChunk>* out) {
  // Scalar aggregates (no GROUP BY) emit one row even over empty input —
  // COUNT(*) of nothing is 0 — but only at the complete/final stage.
  if (groups_.empty() && group_cols_.empty() && mode_ != AggMode::kPartial) {
    Group g;
    g.accs.resize(specs_.size());
    groups_.push_back(std::move(g));
  }
  return EmitAll(out);
}

}  // namespace dflow
