#ifndef DFLOW_EXEC_TEST_HOOKS_H_
#define DFLOW_EXEC_TEST_HOOKS_H_

namespace dflow::test_hooks {

/// Deliberate, flag-guarded operator bug for the differential oracle's
/// shrinker demo (tools/fuzz_plans --inject_bug, tests/fuzz_test.cc): when
/// set, FilterOperator silently drops the first selected row of every chunk
/// — the classic off-by-one a mask-compaction rewrite could introduce. Only
/// the fuzzing harness flips this; nothing in production paths reads it
/// besides the single guarded branch in filter.cc.
extern bool g_filter_drop_first_row;

}  // namespace dflow::test_hooks

#endif  // DFLOW_EXEC_TEST_HOOKS_H_
