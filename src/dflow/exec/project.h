#ifndef DFLOW_EXEC_PROJECT_H_
#define DFLOW_EXEC_PROJECT_H_

#include <string>
#include <vector>

#include "dflow/exec/operator.h"
#include "dflow/plan/expr.h"

namespace dflow {

/// Streaming, stateless projection: evaluates one resolved expression per
/// output column. Pure column selection (all expressions are column refs)
/// is the storage-pushdown projection of Figure 2; computed expressions
/// (discount math etc.) are the general case.
class ProjectOperator : public Operator {
 public:
  /// `exprs[i]` produces output column `names[i]`. All must be resolved
  /// against `input_schema`.
  static Result<OperatorPtr> Make(std::vector<ExprPtr> exprs,
                                  std::vector<std::string> names,
                                  const Schema& input_schema);

  std::string name() const override { return "project"; }
  const Schema& output_schema() const override { return schema_; }
  const Schema* input_schema() const override { return &input_schema_; }
  OperatorTraits traits() const override;
  Status Push(const DataChunk& input, std::vector<DataChunk>* out) override;

 private:
  ProjectOperator(std::vector<ExprPtr> exprs, Schema schema,
                  Schema input_schema, double reduction_hint)
      : exprs_(std::move(exprs)),
        schema_(std::move(schema)),
        input_schema_(std::move(input_schema)),
        reduction_hint_(reduction_hint) {}

  std::vector<ExprPtr> exprs_;
  Schema schema_;
  Schema input_schema_;
  double reduction_hint_;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_PROJECT_H_
