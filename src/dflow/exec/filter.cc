#include "dflow/exec/filter.h"

#include "dflow/exec/test_hooks.h"

namespace dflow {

Result<OperatorPtr> FilterOperator::Make(ExprPtr predicate,
                                         Schema input_schema,
                                         double selectivity_hint) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("filter requires a predicate");
  }
  if (!predicate->is_resolved()) {
    return Status::InvalidArgument("filter predicate is unresolved: " +
                                   predicate->ToString());
  }
  if (!predicate->IsPredicate()) {
    return Status::InvalidArgument("filter expression is not boolean: " +
                                   predicate->ToString());
  }
  return OperatorPtr(new FilterOperator(std::move(predicate),
                                        std::move(input_schema),
                                        selectivity_hint));
}

std::string FilterOperator::name() const {
  return "filter[" + predicate_->ToString() + "]";
}

OperatorTraits FilterOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kFilter;
  t.streaming = true;
  t.stateless = true;
  t.reduction_hint = selectivity_hint_;
  return t;
}

Status FilterOperator::Push(const DataChunk& input,
                            std::vector<DataChunk>* out) {
  RecordIn(input);
  Mask mask;
  DFLOW_RETURN_NOT_OK(predicate_->EvaluatePredicate(input, &mask));
  SelectionVector sel = MaskToSelection(mask);
  if (test_hooks::g_filter_drop_first_row && !sel.empty()) {
    std::vector<uint32_t> rest(sel.indices().begin() + 1,
                               sel.indices().end());
    sel = SelectionVector(std::move(rest));
  }
  if (sel.empty()) return Status::OK();
  if (sel.size() == input.num_rows()) {
    out->push_back(input);
    RecordOut(out->back());
    return Status::OK();
  }
  out->push_back(input.Gather(sel));
  RecordOut(out->back());
  return Status::OK();
}

}  // namespace dflow
