#include "dflow/exec/misc_ops.h"

#include <algorithm>
#include <numeric>

#include "dflow/common/logging.h"

namespace dflow {

CountOperator::CountOperator()
    : schema_(Schema({{"count", DataType::kInt64}})) {}

OperatorTraits CountOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kCount;
  t.streaming = true;
  t.stateless = false;
  t.bounded_state = true;  // 8 bytes
  t.reduction_hint = 0.0;  // discards everything until Finish
  return t;
}

Status CountOperator::Push(const DataChunk& input,
                           std::vector<DataChunk>* out) {
  (void)out;
  RecordIn(input);
  count_ += static_cast<int64_t>(input.num_rows());
  return Status::OK();
}

Status CountOperator::Finish(std::vector<DataChunk>* out) {
  DataChunk chunk;
  chunk.AddColumn(ColumnVector::FromInt64({count_}));
  RecordOut(chunk);
  out->push_back(std::move(chunk));
  return Status::OK();
}

LimitOperator::LimitOperator(Schema schema, uint64_t limit)
    : schema_(std::move(schema)), limit_(limit) {}

OperatorTraits LimitOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kMemcpy;
  t.streaming = true;
  t.stateless = false;
  t.bounded_state = true;  // a single counter
  t.reduction_hint = 0.5;
  return t;
}

Status LimitOperator::Push(const DataChunk& input,
                           std::vector<DataChunk>* out) {
  RecordIn(input);
  if (seen_ >= limit_) return Status::OK();
  const uint64_t take =
      std::min<uint64_t>(input.num_rows(), limit_ - seen_);
  seen_ += take;
  if (take == input.num_rows()) {
    out->push_back(input);
  } else {
    SelectionVector sel;
    for (uint64_t i = 0; i < take; ++i) sel.Append(static_cast<uint32_t>(i));
    out->push_back(input.Gather(sel));
  }
  RecordOut(out->back());
  return Status::OK();
}

Result<OperatorPtr> SortOperator::Make(Schema schema,
                                       const std::string& sort_col,
                                       bool descending, uint64_t limit) {
  DFLOW_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(sort_col));
  return OperatorPtr(new SortOperator(std::move(schema), idx, descending,
                                      limit));
}

OperatorTraits SortOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kSort;
  t.streaming = false;
  t.stateless = false;
  t.bounded_state = false;
  t.reduction_hint = limit_ > 0 ? 0.1 : 1.0;
  return t;
}

Status SortOperator::Push(const DataChunk& input,
                          std::vector<DataChunk>* out) {
  (void)out;
  RecordIn(input);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    buffer_.AppendRowFrom(input, r);
  }
  return Status::OK();
}

Status SortOperator::Finish(std::vector<DataChunk>* out) {
  std::vector<uint32_t> order(buffer_.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const ColumnVector& key = buffer_.column(sort_col_);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     const int cmp = key.GetValue(a).Compare(key.GetValue(b));
                     return descending_ ? cmp > 0 : cmp < 0;
                   });
  uint64_t n = order.size();
  if (limit_ > 0) n = std::min<uint64_t>(n, limit_);
  for (uint64_t start = 0; start < n; start += kVectorSize) {
    const uint64_t count = std::min<uint64_t>(kVectorSize, n - start);
    SelectionVector sel(std::vector<uint32_t>(
        order.begin() + start, order.begin() + start + count));
    out->push_back(buffer_.Gather(sel));
    RecordOut(out->back());
  }
  return Status::OK();
}

OperatorTraits DecodeOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kDecode;
  t.streaming = true;
  t.stateless = true;
  t.reduction_hint = 1.0;  // wire grows, data identical
  return t;
}

Status DecodeOperator::Push(const DataChunk& input,
                            std::vector<DataChunk>* out) {
  RecordIn(input);
  out->push_back(input);
  RecordOut(out->back());
  return Status::OK();
}

OperatorTraits EncodeOperator::traits() const {
  OperatorTraits t;
  t.cost_class = sim::CostClass::kEncode;
  t.streaming = true;
  t.stateless = true;
  t.reduction_hint = 0.6;
  return t;
}

Status EncodeOperator::Push(const DataChunk& input,
                            std::vector<DataChunk>* out) {
  RecordIn(input);
  out->push_back(input);
  RecordOut(out->back());
  return Status::OK();
}

uint64_t EncodeOperator::OutputWireBytes(const DataChunk& output) const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : output.columns()) {
    const Encoding enc = ChooseEncoding(col);
    Result<EncodedColumn> encoded = EncodeColumn(col, enc);
    bytes += encoded.ok() ? encoded.ValueOrDie().ByteSize() : col.ByteSize();
  }
  return bytes;
}

}  // namespace dflow
