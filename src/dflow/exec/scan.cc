#include "dflow/exec/scan.h"

#include "dflow/common/logging.h"

namespace dflow {

namespace {

// Walks an AND tree collecting column-vs-constant comparisons. Any other
// node shape contributes nothing (conservative).
void CollectPruneConjuncts(
    const ExprPtr& expr, const Schema& schema,
    std::vector<std::tuple<size_t, CompareOp, Value>>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kAnd) {
    for (const ExprPtr& c : expr->children()) {
      CollectPruneConjuncts(c, schema, out);
    }
    return;
  }
  if (expr->IsColumnConstantCompare()) {
    const ExprPtr& col = expr->children()[0];
    const ExprPtr& lit = expr->children()[1];
    // Resolve by NAME against the full table schema: the predicate may have
    // been resolved against a pruned scan schema, whose indices do not line
    // up with the table's zone maps. Nameless positional references are
    // only safe when they already target the table schema.
    size_t idx;
    if (!col->column_name().empty()) {
      auto r = schema.FieldIndex(col->column_name());
      if (!r.ok()) return;
      idx = r.ValueOrDie();
    } else if (col->is_resolved()) {
      idx = col->column_index();
    } else {
      return;
    }
    out->emplace_back(idx, expr->compare_op(), lit->value());
  }
}

}  // namespace

Result<TableScanSource> TableScanSource::Make(
    std::shared_ptr<const Table> table, const std::vector<std::string>& columns,
    ExprPtr prune_predicate) {
  if (table == nullptr) {
    return Status::InvalidArgument("scan requires a table");
  }
  TableScanSource src;
  src.table_ = table;
  if (columns.empty()) {
    for (size_t i = 0; i < table->schema().num_fields(); ++i) {
      src.column_indices_.push_back(i);
    }
  } else {
    for (const std::string& name : columns) {
      DFLOW_ASSIGN_OR_RETURN(size_t idx, table->schema().FieldIndex(name));
      src.column_indices_.push_back(idx);
    }
  }
  src.schema_ = table->schema().Select(src.column_indices_);
  std::vector<std::tuple<size_t, CompareOp, Value>> conjuncts;
  CollectPruneConjuncts(prune_predicate, table->schema(), &conjuncts);
  for (auto& [col, op, value] : conjuncts) {
    src.prune_conjuncts_.push_back(PruneConjunct{col, op, std::move(value)});
  }
  return src;
}

Result<std::vector<ScanBatch>> TableScanSource::Produce(
    ScanStats* stats) const {
  ScanStats local;
  local.row_groups_total = table_->num_row_groups();
  std::vector<ScanBatch> batches;
  for (size_t rg_idx = 0; rg_idx < table_->num_row_groups(); ++rg_idx) {
    const RowGroup& rg = table_->row_group(rg_idx);
    bool may_match = true;
    for (const PruneConjunct& pc : prune_conjuncts_) {
      if (!rg.zone_map(pc.column).MayMatch(pc.op, pc.constant)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      local.row_groups_pruned++;
      continue;
    }
    const uint64_t encoded_bytes = rg.EncodedBytes(column_indices_);
    local.encoded_bytes_read += encoded_bytes;
    DFLOW_ASSIGN_OR_RETURN(std::vector<DataChunk> chunks,
                           rg.DecodeChunks(column_indices_));
    ScanBatch batch;
    batch.device_bytes = encoded_bytes;
    const uint64_t rg_rows = rg.num_rows();
    for (DataChunk& chunk : chunks) {
      local.rows_produced += chunk.num_rows();
      // Pro-rate the row group's encoded size across its chunks.
      const uint64_t wire =
          rg_rows == 0 ? 0
                       : encoded_bytes * chunk.num_rows() / rg_rows;
      batch.chunks.push_back(ScanChunk{std::move(chunk), wire});
    }
    batches.push_back(std::move(batch));
  }
  if (stats != nullptr) *stats = local;
  return batches;
}

}  // namespace dflow
