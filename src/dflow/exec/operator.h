#ifndef DFLOW_EXEC_OPERATOR_H_
#define DFLOW_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/sim/cost_class.h"
#include "dflow/types/schema.h"
#include "dflow/vector/data_chunk.h"

namespace dflow {

/// Placement-relevant properties of an operator. The paper's constraint that
/// storage/NIC processing "has to be done in a streaming fashion ... and
/// probably has to be mostly stateless" (§3.3) is enforced through these
/// flags: a device only hosts an operator whose traits it can honor.
struct OperatorTraits {
  /// What kind of work the device is charged for per input chunk.
  sim::CostClass cost_class = sim::CostClass::kFilter;
  /// Emits output as input arrives (no end-of-stream barrier needed for
  /// correctness of earlier output).
  bool streaming = true;
  /// Holds no state across chunks.
  bool stateless = true;
  /// Holds state, but bounded by a fixed budget (e.g. partial aggregation
  /// with a fixed-size table that spills partials downstream).
  bool bounded_state = false;
  /// Estimated output bytes / input bytes (1.0 = pass-through); used by the
  /// movement-cost model before execution.
  double reduction_hint = 1.0;
};

struct OperatorStats {
  uint64_t chunks_in = 0;
  uint64_t rows_in = 0;
  uint64_t bytes_in = 0;
  uint64_t chunks_out = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_out = 0;
};

/// A push-based streaming operator: the unit of work that placement assigns
/// to a processing element. The same operator implementation runs unchanged
/// on the CPU, a smart NIC, a storage processor, or a near-memory unit —
/// only the device it is charged to differs.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;
  virtual const Schema& output_schema() const = 0;
  virtual OperatorTraits traits() const = 0;

  /// Schema this operator requires on its input, or nullptr when it accepts
  /// any chunk layout (e.g. COUNT(*)). Used by the static plan verifier to
  /// type-check each edge; execution never consults it.
  virtual const Schema* input_schema() const { return nullptr; }

  /// Consumes one input chunk; appends zero or more output chunks.
  virtual Status Push(const DataChunk& input, std::vector<DataChunk>* out) = 0;

  /// Called once after the last Push; flushes any remaining state.
  virtual Status Finish(std::vector<DataChunk>* out) {
    (void)out;
    return Status::OK();
  }

  /// Wire size the graph charges when shipping `output` downstream.
  /// Default: the decoded in-memory size. Encode-type operators override
  /// this to report their compressed size.
  virtual uint64_t OutputWireBytes(const DataChunk& output) const {
    return output.ByteSize();
  }

  const OperatorStats& stats() const { return stats_; }

 protected:
  /// Helper for subclasses: updates stats around a Push call.
  void RecordIn(const DataChunk& input) {
    stats_.chunks_in += 1;
    stats_.rows_in += input.num_rows();
    stats_.bytes_in += input.ByteSize();
  }
  void RecordOut(const DataChunk& output) {
    stats_.chunks_out += 1;
    stats_.rows_out += output.num_rows();
    stats_.bytes_out += output.ByteSize();
  }

  OperatorStats stats_;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace dflow

#endif  // DFLOW_EXEC_OPERATOR_H_
