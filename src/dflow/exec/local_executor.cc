#include "dflow/exec/local_executor.h"

namespace dflow {

Result<std::vector<DataChunk>> RunLocalPipeline(
    const std::vector<DataChunk>& inputs, const std::vector<Operator*>& ops) {
  std::vector<DataChunk> current = inputs;
  for (Operator* op : ops) {
    if (op == nullptr) return Status::InvalidArgument("null operator");
    std::vector<DataChunk> next;
    for (const DataChunk& chunk : current) {
      DFLOW_RETURN_NOT_OK(op->Push(chunk, &next));
    }
    DFLOW_RETURN_NOT_OK(op->Finish(&next));
    current = std::move(next);
  }
  return current;
}

uint64_t TotalRows(const std::vector<DataChunk>& chunks) {
  uint64_t rows = 0;
  for (const DataChunk& c : chunks) rows += c.num_rows();
  return rows;
}

uint64_t TotalBytes(const std::vector<DataChunk>& chunks) {
  uint64_t bytes = 0;
  for (const DataChunk& c : chunks) bytes += c.ByteSize();
  return bytes;
}

DataChunk ConcatChunks(const std::vector<DataChunk>& chunks) {
  if (chunks.empty()) return DataChunk();
  DataChunk out;
  for (size_t c = 0; c < chunks[0].num_columns(); ++c) {
    out.AddColumn(ColumnVector(chunks[0].column(c).type()));
  }
  for (const DataChunk& chunk : chunks) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      out.AppendRowFrom(chunk, r);
    }
  }
  return out;
}

}  // namespace dflow
