#include "dflow/exec/invariants.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dflow::invariants {

namespace {
// Relaxed atomic: a monotone statistic read by tests, bumped concurrently
// by the real-parallel executor's worker threads.
std::atomic<uint64_t> g_checks_run{0};
}  // namespace

uint64_t checks_run() { return g_checks_run.load(std::memory_order_relaxed); }

#ifndef DFLOW_INVARIANTS_DISABLED

void BumpCheck() { g_checks_run.fetch_add(1, std::memory_order_relaxed); }

void InvariantFailed(const char* file, int line, const char* condition,
                     const std::string& detail) {
  std::fprintf(stderr, "DFLOW_INVARIANT failed at %s:%d: %s\n  %s\n", file,
               line, condition, detail.c_str());
  std::fflush(stderr);
  std::abort();
}

#endif  // DFLOW_INVARIANTS_DISABLED

}  // namespace dflow::invariants
