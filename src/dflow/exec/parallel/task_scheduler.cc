#include "dflow/exec/parallel/task_scheduler.h"

#include <algorithm>
#include <utility>

#include "dflow/common/logging.h"

namespace dflow::parallel {

WorkStealingScheduler::WorkStealingScheduler(const Options& options)
    : workers_(std::max(1u, options.workers)) {
  deques_.resize(workers_);
  steal_rng_.reserve(workers_);
  for (uint32_t i = 0; i < workers_; ++i) {
    steal_rng_.emplace_back(options.steal_seed + i);
  }
  threads_.reserve(workers_);
  for (uint32_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingScheduler::~WorkStealingScheduler() { Shutdown(); }

void WorkStealingScheduler::Submit(Task task) {
  {
    RankedMutexLock lock(&mutex_);
    const uint32_t target = next_worker_;
    next_worker_ = (next_worker_ + 1) % workers_;
    DFLOW_CHECK(!shutdown_);
    outstanding_ += 1;
    deques_[target].push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void WorkStealingScheduler::SubmitTo(uint32_t worker, Task task) {
  {
    RankedMutexLock lock(&mutex_);
    DFLOW_CHECK(!shutdown_);
    DFLOW_CHECK(worker < workers_);
    outstanding_ += 1;
    deques_[worker].push_back(std::move(task));
  }
  work_cv_.NotifyAll();
}

bool WorkStealingScheduler::PopTaskLocked(uint32_t id, Task* task) {
  if (!deques_[id].empty()) {
    *task = std::move(deques_[id].back());
    deques_[id].pop_back();
    return true;
  }
  if (workers_ == 1) return false;
  // Steal from the front (oldest task) of a pseudo-random victim, scanning
  // the rest in ring order so a single loaded worker is always found.
  const uint32_t start = static_cast<uint32_t>(steal_rng_[id]() % workers_);
  for (uint32_t probe = 0; probe < workers_; ++probe) {
    const uint32_t victim = (start + probe) % workers_;
    if (victim == id || deques_[victim].empty()) continue;
    *task = std::move(deques_[victim].front());
    deques_[victim].pop_front();
    stats_.steals += 1;
    return true;
  }
  return false;
}

void WorkStealingScheduler::WorkerLoop(uint32_t id) {
  mutex_.lock();
  while (true) {
    Task task;
    if (PopTaskLocked(id, &task)) {
      mutex_.unlock();
      bool threw = false;
      std::exception_ptr error;
      try {
        task(id);
      } catch (...) {
        threw = true;
        error = std::current_exception();
      }
      mutex_.lock();
      if (threw && !first_error_) first_error_ = error;
      stats_.tasks_run += 1;
      outstanding_ -= 1;
      if (outstanding_ == 0) done_cv_.NotifyAll();
      continue;
    }
    if (shutdown_) break;
    work_cv_.Wait(&mutex_);
  }
  mutex_.unlock();
}

Status WorkStealingScheduler::Wait() {
  std::exception_ptr error;
  {
    RankedMutexLock lock(&mutex_);
    while (outstanding_ != 0) done_cv_.Wait(&mutex_);
    if (!first_error_) return Status::OK();
    error = std::exchange(first_error_, nullptr);
  }
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

void WorkStealingScheduler::Shutdown() {
  {
    RankedMutexLock lock(&mutex_);
    // Drain: workers keep pulling queued tasks until nothing is left, so a
    // shutdown never strands submitted work.
    while (outstanding_ != 0) done_cv_.Wait(&mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

WorkStealingScheduler::Stats WorkStealingScheduler::stats() const {
  RankedMutexLock lock(&mutex_);
  return stats_;
}

}  // namespace dflow::parallel
