#ifndef DFLOW_EXEC_PARALLEL_MPMC_QUEUE_H_
#define DFLOW_EXEC_PARALLEL_MPMC_QUEUE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/exec/invariants.h"

namespace dflow::parallel {

/// Outcome of a blocking queue operation.
enum class QueueOp {
  kOk,
  /// The queue was closed: Push rejected the item; Pop found the queue
  /// closed *and* fully drained.
  kClosed,
};

/// A bounded multi-producer/multi-consumer FIFO: the real-thread analogue
/// of the simulator's credit-gated edges. The capacity plays the role the
/// per-edge credit count plays in the discrete-event executor — at most
/// `capacity` chunks are in flight between a producer stage and its
/// consumer, and a full queue blocks the producer exactly like an
/// exhausted credit ledger parks a simulated sender.
///
/// Close semantics: Close() wakes every blocked producer and consumer.
/// After Close, Push returns kClosed and drops the item; Pop keeps
/// returning kOk until the queue is drained, then returns kClosed — so a
/// consumer sees every item produced before the close.
///
/// A capacity of zero is a construction error (an edge with zero credits
/// can never move a chunk): the queue is born closed and `valid()` is
/// false, making the misconfiguration observable without a death test.
/// The static verifier refuses such edges up front (VY_DEADLOCK_ZERO_
/// CAPACITY, DESIGN.md §9) before a graph ever reaches this constructor.
///
/// Items keep strict FIFO order *per producer*: a single producer's items
/// are popped in push order (the internal deque is FIFO and all operations
/// are serialized on one mutex). Items from different producers interleave
/// arbitrarily — downstream code must impose order (see
/// parallel_executor.cc's sequence tags) when it matters.
///
/// Concurrency safety: every mutable member is DFLOW_GUARDED_BY(mutex_)
/// and the mutex carries LockRank::kMpmcQueue — a leaf rank, so holding a
/// queue lock while taking any other ranked lock is a checked violation.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : capacity_(capacity), mutex_(LockRank::kMpmcQueue) {
    if (capacity_ == 0) closed_ = true;
  }
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// False iff constructed with capacity 0 (permanently closed).
  bool valid() const { return capacity_ > 0; }

  /// Blocks while the queue is full; returns kClosed (dropping `item`) if
  /// the queue is or becomes closed while waiting.
  QueueOp Push(T item) {
    RankedMutexLock lock(&mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mutex_);
    if (closed_) return QueueOp::kClosed;
    items_.push_back(std::move(item));
    DFLOW_INVARIANTS_ONLY(pushed_ += 1);
    CheckLedgerLocked();
    not_empty_.NotifyOne();
    return QueueOp::kOk;
  }

  /// Non-blocking Push; false when full or closed.
  bool TryPush(T item) {
    RankedMutexLock lock(&mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    DFLOW_INVARIANTS_ONLY(pushed_ += 1);
    CheckLedgerLocked();
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while the queue is empty and open; returns kClosed only once
  /// the queue is closed *and* every pushed item has been popped.
  QueueOp Pop(T* out) {
    RankedMutexLock lock(&mutex_);
    while (!closed_ && items_.empty()) not_empty_.Wait(&mutex_);
    if (items_.empty()) return QueueOp::kClosed;
    *out = std::move(items_.front());
    items_.pop_front();
    DFLOW_INVARIANTS_ONLY(popped_ += 1);
    CheckLedgerLocked();
    not_full_.NotifyOne();
    return QueueOp::kOk;
  }

  /// Non-blocking Pop; false when nothing is immediately available.
  bool TryPop(T* out) {
    RankedMutexLock lock(&mutex_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    DFLOW_INVARIANTS_ONLY(popped_ += 1);
    CheckLedgerLocked();
    not_full_.NotifyOne();
    return true;
  }

  /// Closes the queue and wakes everyone. Idempotent. Pending items stay
  /// drainable.
  void Close() {
    {
      RankedMutexLock lock(&mutex_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const {
    RankedMutexLock lock(&mutex_);
    return closed_;
  }

  size_t size() const {
    RankedMutexLock lock(&mutex_);
    return items_.size();
  }

  /// Tuple-conservation ledger (0 when the invariant oracle is compiled
  /// out): every pushed item is either popped or still queued.
  uint64_t pushed() const {
    RankedMutexLock lock(&mutex_);
    uint64_t v = 0;
    DFLOW_INVARIANTS_ONLY(v = pushed_);
    return v;
  }
  uint64_t popped() const {
    RankedMutexLock lock(&mutex_);
    uint64_t v = 0;
    DFLOW_INVARIANTS_ONLY(v = popped_);
    return v;
  }

 private:
  /// The queue-side half of the executor's tuple-conservation invariant:
  /// pushed == popped + queued, and occupancy never exceeds capacity (the
  /// credit bound).
  void CheckLedgerLocked() DFLOW_REQUIRES(mutex_) {
    DFLOW_INVARIANT(items_.size() <= capacity_,
                    "queue occupancy " + std::to_string(items_.size()) +
                        " exceeds capacity " + std::to_string(capacity_));
    DFLOW_INVARIANTS_ONLY(DFLOW_INVARIANT(
        pushed_ == popped_ + items_.size(),
        "tuple conservation violated: pushed " + std::to_string(pushed_) +
            " != popped " + std::to_string(popped_) + " + queued " +
            std::to_string(items_.size())));
  }

  const size_t capacity_;
  mutable RankedMutex mutex_;
  RankedCondVar not_full_;
  RankedCondVar not_empty_;
  std::deque<T> items_ DFLOW_GUARDED_BY(mutex_);
  bool closed_ DFLOW_GUARDED_BY(mutex_) = false;
#ifndef DFLOW_INVARIANTS_DISABLED
  uint64_t pushed_ DFLOW_GUARDED_BY(mutex_) = 0;
  uint64_t popped_ DFLOW_GUARDED_BY(mutex_) = 0;
#endif
};

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_MPMC_QUEUE_H_
