#include "dflow/exec/parallel/parallel_join.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <utility>

#include "dflow/exec/filter.h"
#include "dflow/exec/join.h"
#include "dflow/exec/parallel/morsel.h"
#include "dflow/exec/parallel/task_scheduler.h"
#include "dflow/exec/partition.h"

namespace dflow::parallel {

Result<ParallelJoinResult> RunParallelHashJoin(
    const ParallelJoinInputs& inputs, const ParallelExecOptions& options,
    ParallelExecStats* stats) {
  if (inputs.partitions == 0) {
    return Status::InvalidArgument("join needs >= 1 partition");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("join needs >= 1 worker");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const uint32_t p = inputs.partitions;

  std::vector<std::shared_ptr<JoinHashTable>> tables;
  tables.reserve(p);
  for (uint32_t i = 0; i < p; ++i) {
    tables.push_back(
        std::make_shared<JoinHashTable>(inputs.build_schema, inputs.build_key));
  }
  // One lock per partition: workers insert into distinct partitions
  // concurrently; same-partition inserts serialize. Insert order inside a
  // partition varies with scheduling, but a hash table's *contents* — and
  // so its probe match counts — do not.
  std::vector<std::mutex> partition_mutex(p);

  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  Status first_error;  // guarded by error_mutex
  auto record_error = [&](const Status& s) {
    if (s.ok()) return;
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.ok()) first_error = s;
    failed.store(true, std::memory_order_relaxed);
  };

  WorkStealingScheduler::Options sched_options;
  sched_options.workers = options.workers;
  sched_options.steal_seed = options.steal_seed;

  const HashPartitioner build_part(inputs.build_key, p);
  const HashPartitioner probe_part(inputs.probe_key, p);

  uint64_t tasks = 0;
  uint64_t steals = 0;
  uint64_t morsel_count = 0;
  uint64_t probe_rows = 0;

  // ------------------------------------------------------- build phase
  {
    const std::vector<Morsel> morsels =
        SplitIntoMorsels(inputs.build_chunks, options.morsel_rows);
    morsel_count += morsels.size();
    WorkStealingScheduler scheduler(sched_options);
    for (size_t i = 0; i < morsels.size(); ++i) {
      const Morsel& morsel = morsels[i];
      scheduler.SubmitTo(
          static_cast<uint32_t>(i % options.workers),
          [&, morsel](uint32_t) {
            if (failed.load(std::memory_order_relaxed)) return;
            const DataChunk chunk = morsel.Materialize();
            std::vector<DataChunk> parts;
            Status s = build_part.Split(chunk, &parts);
            if (!s.ok()) {
              record_error(s);
              return;
            }
            for (uint32_t part = 0; part < p; ++part) {
              if (parts[part].empty()) continue;
              std::lock_guard<std::mutex> lock(partition_mutex[part]);
              s = tables[part]->Insert(parts[part]);
              if (!s.ok()) {
                record_error(s);
                return;
              }
            }
          });
    }
    record_error(scheduler.Wait());
    const WorkStealingScheduler::Stats ss = scheduler.stats();
    tasks += ss.tasks_run;
    steals += ss.steals;
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex);
    DFLOW_RETURN_NOT_OK(first_error);
  }

  // ------------------------------------------------------- probe phase
  std::vector<int64_t> partition_counts(p, 0);  // guarded by count_mutex
  std::mutex count_mutex;
  {
    const std::vector<Morsel> morsels =
        SplitIntoMorsels(inputs.probe_chunks, options.morsel_rows);
    morsel_count += morsels.size();
    for (const Morsel& m : morsels) probe_rows += m.num_rows();
    WorkStealingScheduler scheduler(sched_options);
    for (size_t i = 0; i < morsels.size(); ++i) {
      const Morsel& morsel = morsels[i];
      scheduler.SubmitTo(
          static_cast<uint32_t>(i % options.workers),
          [&, morsel](uint32_t) {
            if (failed.load(std::memory_order_relaxed)) return;
            DataChunk chunk = morsel.Materialize();
            if (inputs.probe_filter != nullptr) {
              auto filter = FilterOperator::Make(inputs.probe_filter,
                                                 inputs.probe_schema);
              if (!filter.ok()) {
                record_error(filter.status());
                return;
              }
              std::vector<DataChunk> kept;
              const Status s = filter.ValueOrDie()->Push(chunk, &kept);
              if (!s.ok()) {
                record_error(s);
                return;
              }
              if (kept.empty()) return;
              chunk = std::move(kept[0]);
              for (size_t k = 1; k < kept.size(); ++k) {
                for (size_t r = 0; r < kept[k].num_rows(); ++r) {
                  chunk.AppendRowFrom(kept[k], r);
                }
              }
            }
            if (chunk.empty()) return;
            std::vector<DataChunk> parts;
            Status s = probe_part.Split(chunk, &parts);
            if (!s.ok()) {
              record_error(s);
              return;
            }
            std::vector<int64_t> local(p, 0);
            for (uint32_t part = 0; part < p; ++part) {
              if (parts[part].empty()) continue;
              std::vector<std::pair<uint32_t, uint32_t>> matches;
              s = tables[part]->Probe(parts[part].column(inputs.probe_key),
                                      &matches);
              if (!s.ok()) {
                record_error(s);
                return;
              }
              local[part] += static_cast<int64_t>(matches.size());
            }
            std::lock_guard<std::mutex> lock(count_mutex);
            for (uint32_t part = 0; part < p; ++part) {
              partition_counts[part] += local[part];
            }
          });
    }
    record_error(scheduler.Wait());
    const WorkStealingScheduler::Stats ss = scheduler.stats();
    tasks += ss.tasks_run;
    steals += ss.steals;
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex);
    DFLOW_RETURN_NOT_OK(first_error);
  }

  ParallelJoinResult result;
  result.partition_counts = std::move(partition_counts);
  for (int64_t c : result.partition_counts) result.total_rows += c;
  result.probe_rows_in = probe_rows;
  if (stats != nullptr) {
    stats->morsels = morsel_count;
    stats->rows_in = probe_rows;
    stats->tasks_run = tasks;
    stats->steals = steals;
    stats->wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
  }
  return result;
}

}  // namespace dflow::parallel
