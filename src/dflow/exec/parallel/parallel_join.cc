#include "dflow/exec/parallel/parallel_join.h"

#include <chrono>
#include <deque>
#include <memory>
#include <utility>

#include "dflow/common/lock_rank.h"
#include "dflow/common/thread_annotations.h"
#include "dflow/exec/filter.h"
#include "dflow/exec/join.h"
#include "dflow/exec/parallel/error_slot.h"
#include "dflow/exec/parallel/morsel.h"
#include "dflow/exec/parallel/task_scheduler.h"
#include "dflow/exec/partition.h"

namespace dflow::parallel {

namespace {

/// One join partition during the BUILD phase: workers route build rows to
/// shards and insert under the shard lock — distinct partitions insert
/// concurrently, same-partition inserts serialize. Insert order inside a
/// partition varies with scheduling, but a hash table's *contents* — and
/// so its probe match counts — do not. After the build barrier
/// (scheduler.Wait()) the tables are immutable and the PROBE phase reads
/// them lock-free through the plain `tables` vector: the barrier, not the
/// mutex, publishes them (phase-based hand-off, DESIGN.md §9).
struct BuildShard {
  RankedMutex mu{LockRank::kJoinPartition};
  JoinHashTable* table DFLOW_PT_GUARDED_BY(mu) = nullptr;

  Status Insert(const DataChunk& rows) DFLOW_EXCLUDES(mu) {
    RankedMutexLock lock(&mu);
    return table->Insert(rows);
  }
};

/// Probe-side match counters, merged per task under one leaf lock.
class MatchCounters {
 public:
  explicit MatchCounters(uint32_t partitions)
      : counts_(partitions, 0) {}

  void Merge(const std::vector<int64_t>& local) DFLOW_EXCLUDES(mu_) {
    RankedMutexLock lock(&mu_);
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += local[i];
  }

  std::vector<int64_t> Take() DFLOW_EXCLUDES(mu_) {
    RankedMutexLock lock(&mu_);
    return std::move(counts_);
  }

 private:
  RankedMutex mu_{LockRank::kJoinPartition};
  std::vector<int64_t> counts_ DFLOW_GUARDED_BY(mu_);
};

}  // namespace

Result<ParallelJoinResult> RunParallelHashJoin(
    const ParallelJoinInputs& inputs, const ParallelExecOptions& options,
    ParallelExecStats* stats) {
  if (inputs.partitions == 0) {
    return Status::InvalidArgument("join needs >= 1 partition");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("join needs >= 1 worker");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const uint32_t p = inputs.partitions;

  std::vector<std::shared_ptr<JoinHashTable>> tables;
  tables.reserve(p);
  for (uint32_t i = 0; i < p; ++i) {
    tables.push_back(
        std::make_shared<JoinHashTable>(inputs.build_schema, inputs.build_key));
  }
  // std::deque: BuildShard holds a RankedMutex and cannot move.
  std::deque<BuildShard> shards(p);
  for (uint32_t i = 0; i < p; ++i) shards[i].table = tables[i].get();

  ErrorSlot errors;

  WorkStealingScheduler::Options sched_options;
  sched_options.workers = options.workers;
  sched_options.steal_seed = options.steal_seed;

  const HashPartitioner build_part(inputs.build_key, p);
  const HashPartitioner probe_part(inputs.probe_key, p);

  uint64_t tasks = 0;
  uint64_t steals = 0;
  uint64_t morsel_count = 0;
  uint64_t probe_rows = 0;

  // ------------------------------------------------------- build phase
  {
    const std::vector<Morsel> morsels =
        SplitIntoMorsels(inputs.build_chunks, options.morsel_rows);
    morsel_count += morsels.size();
    WorkStealingScheduler scheduler(sched_options);
    for (size_t i = 0; i < morsels.size(); ++i) {
      const Morsel& morsel = morsels[i];
      scheduler.SubmitTo(
          static_cast<uint32_t>(i % options.workers),
          [&, morsel](uint32_t) {
            if (errors.failed()) return;
            const DataChunk chunk = morsel.Materialize();
            std::vector<DataChunk> parts;
            Status s = build_part.Split(chunk, &parts);
            if (!s.ok()) {
              errors.Record(s);
              return;
            }
            for (uint32_t part = 0; part < p; ++part) {
              if (parts[part].empty()) continue;
              s = shards[part].Insert(parts[part]);
              if (!s.ok()) {
                errors.Record(s);
                return;
              }
            }
          });
    }
    errors.Record(scheduler.Wait());
    const WorkStealingScheduler::Stats ss = scheduler.stats();
    tasks += ss.tasks_run;
    steals += ss.steals;
  }
  DFLOW_RETURN_NOT_OK(errors.first());

  // ------------------------------------------------------- probe phase
  MatchCounters counters(p);
  {
    const std::vector<Morsel> morsels =
        SplitIntoMorsels(inputs.probe_chunks, options.morsel_rows);
    morsel_count += morsels.size();
    for (const Morsel& m : morsels) probe_rows += m.num_rows();
    WorkStealingScheduler scheduler(sched_options);
    for (size_t i = 0; i < morsels.size(); ++i) {
      const Morsel& morsel = morsels[i];
      scheduler.SubmitTo(
          static_cast<uint32_t>(i % options.workers),
          [&, morsel](uint32_t) {
            if (errors.failed()) return;
            DataChunk chunk = morsel.Materialize();
            if (inputs.probe_filter != nullptr) {
              auto filter = FilterOperator::Make(inputs.probe_filter,
                                                 inputs.probe_schema);
              if (!filter.ok()) {
                errors.Record(filter.status());
                return;
              }
              std::vector<DataChunk> kept;
              const Status s = filter.ValueOrDie()->Push(chunk, &kept);
              if (!s.ok()) {
                errors.Record(s);
                return;
              }
              if (kept.empty()) return;
              chunk = std::move(kept[0]);
              for (size_t k = 1; k < kept.size(); ++k) {
                for (size_t r = 0; r < kept[k].num_rows(); ++r) {
                  chunk.AppendRowFrom(kept[k], r);
                }
              }
            }
            if (chunk.empty()) return;
            std::vector<DataChunk> parts;
            Status s = probe_part.Split(chunk, &parts);
            if (!s.ok()) {
              errors.Record(s);
              return;
            }
            std::vector<int64_t> local(p, 0);
            for (uint32_t part = 0; part < p; ++part) {
              if (parts[part].empty()) continue;
              std::vector<std::pair<uint32_t, uint32_t>> matches;
              // Lock-free read: the build barrier published the tables and
              // nothing mutates them during the probe phase.
              s = tables[part]->Probe(parts[part].column(inputs.probe_key),
                                      &matches);
              if (!s.ok()) {
                errors.Record(s);
                return;
              }
              local[part] += static_cast<int64_t>(matches.size());
            }
            counters.Merge(local);
          });
    }
    errors.Record(scheduler.Wait());
    const WorkStealingScheduler::Stats ss = scheduler.stats();
    tasks += ss.tasks_run;
    steals += ss.steals;
  }
  DFLOW_RETURN_NOT_OK(errors.first());

  ParallelJoinResult result;
  result.partition_counts = counters.Take();
  for (int64_t c : result.partition_counts) result.total_rows += c;
  result.probe_rows_in = probe_rows;
  if (stats != nullptr) {
    stats->morsels = morsel_count;
    stats->rows_in = probe_rows;
    stats->tasks_run = tasks;
    stats->steals = steals;
    stats->wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
  }
  return result;
}

}  // namespace dflow::parallel
