#ifndef DFLOW_EXEC_PARALLEL_PARALLEL_JOIN_H_
#define DFLOW_EXEC_PARALLEL_PARALLEL_JOIN_H_

#include <cstdint>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/exec/parallel/parallel_executor.h"
#include "dflow/plan/expr.h"
#include "dflow/vector/data_chunk.h"

namespace dflow::parallel {

/// A partitioned hash equi-join run with real threads: build-side morsels
/// are hash-partitioned into P independent hash tables (per-partition
/// locking, so workers build concurrently), then probe-side morsels are
/// partitioned the same way and probed in parallel. Partition routing uses
/// the engine-wide hash (common/hash.h), so partition contents — and hence
/// the per-partition match counts — are a pure function of the data,
/// independent of worker count and steal schedule.
struct ParallelJoinInputs {
  std::vector<DataChunk> build_chunks;
  std::vector<DataChunk> probe_chunks;
  Schema build_schema;
  Schema probe_schema;
  size_t build_key = 0;
  size_t probe_key = 0;
  uint32_t partitions = 1;
  /// Optional row filter on the probe side, resolved against probe_schema.
  ExprPtr probe_filter;
};

struct ParallelJoinResult {
  /// Matched-row count per partition (deterministic; sums to total_rows).
  std::vector<int64_t> partition_counts;
  int64_t total_rows = 0;
  uint64_t probe_rows_in = 0;
};

Result<ParallelJoinResult> RunParallelHashJoin(
    const ParallelJoinInputs& inputs, const ParallelExecOptions& options,
    ParallelExecStats* stats = nullptr);

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_PARALLEL_JOIN_H_
