#ifndef DFLOW_EXEC_PARALLEL_TASK_SCHEDULER_H_
#define DFLOW_EXEC_PARALLEL_TASK_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <random>
#include <thread>
#include <vector>

#include "dflow/common/lock_rank.h"
#include "dflow/common/result.h"
#include "dflow/common/thread_annotations.h"

namespace dflow::parallel {

/// A fixed-pool work-stealing task scheduler: the morsel-driven executor's
/// engine room. Each worker owns a deque; it pops its own work LIFO (hot
/// caches, depth-first through task chains) and steals FIFO from a
/// pseudo-randomly chosen victim when its own deque runs dry (oldest tasks
/// first — the classic Chase–Lev discipline, here under a coarse lock).
///
/// Locking is deliberately coarse-grained: one mutex guards every deque
/// and counter. Tasks are morsel-granularity (~1k rows of columnar work),
/// so the lock is touched once per thousands of rows processed and never
/// shows up in profiles at the 1–8 worker scale this engine targets; in
/// exchange the scheduler is simple enough to eyeball for races and is
/// TSan-clean by construction. Every guarded member is annotated
/// DFLOW_GUARDED_BY(mutex_) and the mutex carries LockRank::kStealDeque,
/// so -Wthread-safety and the runtime rank checker both police it.
///
/// Exception propagation: the first exception a task throws is captured
/// and re-surfaced as an Internal status from Wait(); later tasks still
/// run (results are discarded by the caller on error). Tasks may submit
/// further tasks.
class WorkStealingScheduler {
 public:
  /// A task; `worker` is the executing worker's id (0-based), so tasks can
  /// address worker-local state (e.g. per-worker operator chains) without
  /// thread-local lookups.
  using Task = std::function<void(uint32_t worker)>;

  struct Options {
    uint32_t workers = 4;
    /// Seed for the per-worker victim-selection RNGs. Steal order affects
    /// scheduling only, never results; the seed exists so stress tests can
    /// vary interleavings reproducibly.
    uint64_t steal_seed = 0x9e3779b97f4a7c15ULL;
  };

  struct Stats {
    uint64_t tasks_run = 0;
    uint64_t steals = 0;  // tasks taken from another worker's deque
  };

  explicit WorkStealingScheduler(const Options& options);
  ~WorkStealingScheduler();  // implies Shutdown()
  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  uint32_t num_workers() const { return workers_; }

  /// Enqueues onto workers round-robin (initial placement; stealing
  /// rebalances from there).
  void Submit(Task task) DFLOW_EXCLUDES(mutex_);

  /// Enqueues onto a specific worker's deque (it may still be stolen).
  void SubmitTo(uint32_t worker, Task task) DFLOW_EXCLUDES(mutex_);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished. Returns the first captured task exception as an
  /// Internal status — and clears it, so the scheduler is reusable.
  Status Wait() DFLOW_EXCLUDES(mutex_);

  /// Runs every already-queued task to completion, then stops and joins
  /// all workers. Idempotent; called by the destructor. After Shutdown,
  /// Submit is illegal.
  void Shutdown() DFLOW_EXCLUDES(mutex_);

  Stats stats() const DFLOW_EXCLUDES(mutex_);

 private:
  void WorkerLoop(uint32_t id) DFLOW_EXCLUDES(mutex_);
  /// Pops a task for worker `id` (own deque back, else steal a victim's
  /// front). Returns false when no work exists.
  bool PopTaskLocked(uint32_t id, Task* task) DFLOW_REQUIRES(mutex_);

  const uint32_t workers_;
  mutable RankedMutex mutex_{LockRank::kStealDeque};
  RankedCondVar work_cv_;  // new work or shutdown
  RankedCondVar done_cv_;  // outstanding_ hit zero
  std::vector<std::deque<Task>> deques_ DFLOW_GUARDED_BY(mutex_);
  /// Per-worker victim-selection RNGs, under mutex_ like the deques.
  std::vector<std::mt19937_64> steal_rng_ DFLOW_GUARDED_BY(mutex_);
  /// Joined only by Shutdown after every worker observed shutdown_; not
  /// guarded (the ctor and Shutdown are single-threaded by contract).
  std::vector<std::thread> threads_;
  uint64_t outstanding_ DFLOW_GUARDED_BY(mutex_) = 0;
  uint32_t next_worker_ DFLOW_GUARDED_BY(mutex_) = 0;  // round-robin cursor
  bool shutdown_ DFLOW_GUARDED_BY(mutex_) = false;
  Stats stats_ DFLOW_GUARDED_BY(mutex_);
  std::exception_ptr first_error_ DFLOW_GUARDED_BY(mutex_);
};

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_TASK_SCHEDULER_H_
