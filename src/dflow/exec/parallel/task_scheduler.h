#ifndef DFLOW_EXEC_PARALLEL_TASK_SCHEDULER_H_
#define DFLOW_EXEC_PARALLEL_TASK_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "dflow/common/result.h"

namespace dflow::parallel {

/// A fixed-pool work-stealing task scheduler: the morsel-driven executor's
/// engine room. Each worker owns a deque; it pops its own work LIFO (hot
/// caches, depth-first through task chains) and steals FIFO from a
/// pseudo-randomly chosen victim when its own deque runs dry (oldest tasks
/// first — the classic Chase–Lev discipline, here under a coarse lock).
///
/// Locking is deliberately coarse-grained: one mutex guards every deque
/// and counter. Tasks are morsel-granularity (~1k rows of columnar work),
/// so the lock is touched once per thousands of rows processed and never
/// shows up in profiles at the 1–8 worker scale this engine targets; in
/// exchange the scheduler is simple enough to eyeball for races and is
/// TSan-clean by construction.
///
/// Exception propagation: the first exception a task throws is captured
/// and re-surfaced as an Internal status from Wait(); later tasks still
/// run (results are discarded by the caller on error). Tasks may submit
/// further tasks.
class WorkStealingScheduler {
 public:
  /// A task; `worker` is the executing worker's id (0-based), so tasks can
  /// address worker-local state (e.g. per-worker operator chains) without
  /// thread-local lookups.
  using Task = std::function<void(uint32_t worker)>;

  struct Options {
    uint32_t workers = 4;
    /// Seed for the per-worker victim-selection RNGs. Steal order affects
    /// scheduling only, never results; the seed exists so stress tests can
    /// vary interleavings reproducibly.
    uint64_t steal_seed = 0x9e3779b97f4a7c15ULL;
  };

  struct Stats {
    uint64_t tasks_run = 0;
    uint64_t steals = 0;  // tasks taken from another worker's deque
  };

  explicit WorkStealingScheduler(const Options& options);
  ~WorkStealingScheduler();  // implies Shutdown()
  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  uint32_t num_workers() const { return workers_; }

  /// Enqueues onto workers round-robin (initial placement; stealing
  /// rebalances from there).
  void Submit(Task task);

  /// Enqueues onto a specific worker's deque (it may still be stolen).
  void SubmitTo(uint32_t worker, Task task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished. Returns the first captured task exception as an
  /// Internal status — and clears it, so the scheduler is reusable.
  Status Wait();

  /// Runs every already-queued task to completion, then stops and joins
  /// all workers. Idempotent; called by the destructor. After Shutdown,
  /// Submit is illegal.
  void Shutdown();

  Stats stats() const;

 private:
  void WorkerLoop(uint32_t id);
  /// Pops a task for worker `id` (own deque back, else steal a victim's
  /// front). Caller holds mutex_. Returns false when no work exists.
  bool PopTaskLocked(uint32_t id, Task* task);

  const uint32_t workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // new work or shutdown
  std::condition_variable done_cv_;  // outstanding_ hit zero
  std::vector<std::deque<Task>> deques_;
  std::vector<std::mt19937_64> steal_rng_;  // per worker, under mutex_
  std::vector<std::thread> threads_;
  uint64_t outstanding_ = 0;  // submitted, not yet completed
  uint32_t next_worker_ = 0;  // round-robin Submit cursor
  bool shutdown_ = false;
  Stats stats_;
  std::exception_ptr first_error_;
};

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_TASK_SCHEDULER_H_
