#include "dflow/exec/parallel/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <utility>

#include "dflow/exec/parallel/error_slot.h"
#include "dflow/exec/parallel/mpmc_queue.h"
#include "dflow/exec/parallel/task_scheduler.h"
#include "dflow/types/value.h"
#include "dflow/vector/column_vector.h"

namespace dflow::parallel {

namespace {

/// Worker output in flight to the merge: the chunks one morsel (or one
/// worker's Finish) produced, tagged with its position in the canonical
/// order.
struct ResultItem {
  uint64_t sequence = 0;
  std::vector<DataChunk> chunks;
};

/// Pushes `chunk` through ops[from..] and appends the tail-stage output.
Status PushThroughChain(std::vector<OperatorPtr>* ops, size_t from,
                        const DataChunk& chunk, std::vector<DataChunk>* out) {
  std::vector<DataChunk> current;
  current.push_back(chunk);
  for (size_t i = from; i < ops->size(); ++i) {
    std::vector<DataChunk> next;
    for (const DataChunk& c : current) {
      DFLOW_RETURN_NOT_OK((*ops)[i]->Push(c, &next));
    }
    current = std::move(next);
  }
  for (DataChunk& c : current) out->push_back(std::move(c));
  return Status::OK();
}

/// Finishes each op in order, flowing its flush output through the rest of
/// the chain (a stage's Finish runs only after it has seen every upstream
/// chunk, including upstream Finish output).
Status FinishChain(std::vector<OperatorPtr>* ops,
                   std::vector<DataChunk>* out) {
  for (size_t i = 0; i < ops->size(); ++i) {
    std::vector<DataChunk> flushed;
    DFLOW_RETURN_NOT_OK((*ops)[i]->Finish(&flushed));
    for (const DataChunk& c : flushed) {
      DFLOW_RETURN_NOT_OK(PushThroughChain(ops, i + 1, c, out));
    }
  }
  return Status::OK();
}

/// Runs chunks through an optional single-threaded chain (push + finish).
Result<std::vector<DataChunk>> RunSerialChain(
    const ChainFactory& factory, std::vector<DataChunk> chunks) {
  if (!factory) return chunks;
  DFLOW_ASSIGN_OR_RETURN(std::vector<OperatorPtr> ops, factory());
  if (ops.empty()) return chunks;
  std::vector<DataChunk> out;
  for (const DataChunk& c : chunks) {
    DFLOW_RETURN_NOT_OK(PushThroughChain(&ops, 0, c, &out));
  }
  DFLOW_RETURN_NOT_OK(FinishChain(&ops, &out));
  return out;
}

/// Concatenates row-compatible chunks and re-emits them sorted by every
/// column left-to-right (Value::Compare: nulls equal, null < non-null).
/// The total order this induces is a function of the row *set* alone, so
/// the emitted stream is identical across runs, worker counts, and steal
/// schedules.
std::vector<DataChunk> CanonicalOrder(const std::vector<DataChunk>& chunks) {
  size_t total_rows = 0;
  for (const DataChunk& c : chunks) total_rows += c.num_rows();
  if (total_rows == 0) return chunks;

  DataChunk all;
  bool first = true;
  for (const DataChunk& c : chunks) {
    if (c.num_rows() == 0 && c.num_columns() == 0) continue;
    if (first) {
      all = c;
      first = false;
      continue;
    }
    for (size_t r = 0; r < c.num_rows(); ++r) all.AppendRowFrom(c, r);
  }

  std::vector<uint32_t> order(all.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&all](uint32_t a, uint32_t b) {
                     for (size_t col = 0; col < all.num_columns(); ++col) {
                       const int cmp =
                           all.GetValue(a, col).Compare(all.GetValue(b, col));
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });

  std::vector<DataChunk> out;
  for (size_t begin = 0; begin < order.size(); begin += kVectorSize) {
    const size_t end = std::min(order.size(), begin + kVectorSize);
    std::vector<uint32_t> slice(order.begin() + begin, order.begin() + end);
    out.push_back(all.Gather(SelectionVector(std::move(slice))));
  }
  return out;
}

}  // namespace

Result<std::vector<DataChunk>> RunMorselPipeline(
    const std::vector<DataChunk>& inputs, const ParallelPipelineSpec& spec,
    const ParallelExecOptions& options, ParallelExecStats* stats) {
  if (!spec.make_worker_chain) {
    return Status::InvalidArgument("parallel pipeline needs a worker chain");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("parallel pipeline needs >= 1 worker");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument(
        "result queue needs >= 1 credit of capacity");
  }
  const auto wall_start = std::chrono::steady_clock::now();

  const std::vector<Morsel> morsels =
      SplitIntoMorsels(inputs, options.morsel_rows);
  const uint32_t workers = options.workers;

  // One private operator chain per worker: stateful stages (partial
  // aggregation, counting) accumulate worker-locally and flush at Finish.
  std::vector<std::vector<OperatorPtr>> chains;
  chains.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    DFLOW_ASSIGN_OR_RETURN(std::vector<OperatorPtr> chain,
                           spec.make_worker_chain());
    chains.push_back(std::move(chain));
  }

  MpmcQueue<ResultItem> queue(options.queue_capacity);
  ErrorSlot errors;

  WorkStealingScheduler::Options sched_options;
  sched_options.workers = workers;
  sched_options.steal_seed = options.steal_seed;
  std::vector<DataChunk> collected;
  uint64_t rows_in = 0;
  uint64_t queue_items = 0;
  WorkStealingScheduler::Stats sched_stats;
  {
    WorkStealingScheduler scheduler(sched_options);

    // One task per morsel, dealt round-robin; stealing rebalances skew.
    for (size_t i = 0; i < morsels.size(); ++i) {
      const Morsel& morsel = morsels[i];
      rows_in += morsel.num_rows();
      scheduler.SubmitTo(
          static_cast<uint32_t>(i % workers), [&, morsel](uint32_t worker) {
            if (errors.failed()) return;
            const DataChunk chunk = morsel.Materialize();
            std::vector<DataChunk> outs;
            const Status s =
                PushThroughChain(&chains[worker], 0, chunk, &outs);
            if (!s.ok()) {
              errors.Record(s);
              return;
            }
            if (outs.empty()) return;
            // Blocks when the merge side is `queue_capacity` chunks
            // behind — the same backpressure the simulator applies via
            // edge credits.
            queue.Push(ResultItem{morsel.sequence, std::move(outs)});
          });
    }

    // The closer drains the scheduler, flushes each worker chain in worker
    // order (sequence-tagged after every morsel), and closes the queue so
    // the collector below terminates.
    const uint64_t finish_base = morsels.size();
    std::thread closer([&] {
      errors.Record(scheduler.Wait());
      if (!errors.failed()) {
        for (uint32_t w = 0; w < workers; ++w) {
          std::vector<DataChunk> flushed;
          const Status s = FinishChain(&chains[w], &flushed);
          if (!s.ok()) {
            errors.Record(s);
            break;
          }
          if (flushed.empty()) continue;
          queue.Push(ResultItem{finish_base + w, std::move(flushed)});
        }
      }
      queue.Close();
    });

    // Collect (this thread is the merge-side consumer), then restore the
    // canonical order: results sorted by originating sequence.
    std::vector<ResultItem> items;
    ResultItem item;
    while (queue.Pop(&item) == QueueOp::kOk) {
      ++queue_items;
      items.push_back(std::move(item));
    }
    closer.join();
    sched_stats = scheduler.stats();

    std::sort(items.begin(), items.end(),
              [](const ResultItem& a, const ResultItem& b) {
                return a.sequence < b.sequence;
              });
    for (ResultItem& it : items) {
      for (DataChunk& c : it.chunks) collected.push_back(std::move(c));
    }
  }  // joins the worker pool

  DFLOW_RETURN_NOT_OK(errors.first());

  DFLOW_ASSIGN_OR_RETURN(
      std::vector<DataChunk> merged,
      RunSerialChain(spec.make_merge_chain, std::move(collected)));
  if (spec.canonical_order) merged = CanonicalOrder(merged);
  DFLOW_ASSIGN_OR_RETURN(
      std::vector<DataChunk> final_chunks,
      RunSerialChain(spec.make_output_chain, std::move(merged)));

  if (stats != nullptr) {
    stats->morsels = morsels.size();
    stats->rows_in = rows_in;
    stats->tasks_run = sched_stats.tasks_run;
    stats->steals = sched_stats.steals;
    stats->queue_items = queue_items;
    stats->wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
  }
  return final_chunks;
}

}  // namespace dflow::parallel
