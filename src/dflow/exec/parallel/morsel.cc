#include "dflow/exec/parallel/morsel.h"

#include <algorithm>

#include "dflow/vector/column_vector.h"

namespace dflow::parallel {

DataChunk Morsel::Materialize() const {
  if (chunk == nullptr) return DataChunk();
  if (row_begin == 0 && row_end == chunk->num_rows()) return *chunk;
  std::vector<uint32_t> indices;
  indices.reserve(num_rows());
  for (uint32_t r = row_begin; r < row_end; ++r) indices.push_back(r);
  return chunk->Gather(SelectionVector(std::move(indices)));
}

std::vector<Morsel> SplitIntoMorsels(const std::vector<DataChunk>& chunks,
                                     size_t morsel_rows) {
  if (morsel_rows == 0) morsel_rows = kDefaultMorselRows;
  std::vector<Morsel> morsels;
  uint64_t sequence = 0;
  for (const DataChunk& chunk : chunks) {
    const size_t rows = chunk.num_rows();
    if (rows == 0) continue;
    for (size_t begin = 0; begin < rows; begin += morsel_rows) {
      Morsel m;
      m.chunk = &chunk;
      m.row_begin = static_cast<uint32_t>(begin);
      m.row_end = static_cast<uint32_t>(std::min(rows, begin + morsel_rows));
      m.sequence = sequence++;
      morsels.push_back(m);
    }
  }
  return morsels;
}

}  // namespace dflow::parallel
