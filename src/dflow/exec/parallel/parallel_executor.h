#ifndef DFLOW_EXEC_PARALLEL_PARALLEL_EXECUTOR_H_
#define DFLOW_EXEC_PARALLEL_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dflow/common/result.h"
#include "dflow/exec/operator.h"
#include "dflow/exec/parallel/morsel.h"

namespace dflow::parallel {

struct ParallelExecOptions {
  /// Worker threads (>= 1). 1 gives the serial shape of the same code
  /// path — useful as the scaling baseline and for debugging.
  uint32_t workers = 4;
  /// Rows per morsel (0 = kDefaultMorselRows).
  size_t morsel_rows = kDefaultMorselRows;
  /// Capacity of the worker→merge result queue: the real-thread
  /// incarnation of ExecOptions::credits (chunks in flight per edge).
  size_t queue_capacity = 8;
  /// Seed for the scheduler's randomized victim selection.
  uint64_t steal_seed = 0x9e3779b97f4a7c15ULL;
};

struct ParallelExecStats {
  uint64_t morsels = 0;
  uint64_t rows_in = 0;
  uint64_t tasks_run = 0;
  uint64_t steals = 0;
  uint64_t queue_items = 0;
  /// Wall-clock time of the parallel region (split → merge complete),
  /// measured on a steady clock. The one place outside bench code where
  /// real time is allowed: it reports performance and never influences
  /// results.
  uint64_t wall_ns = 0;
};

/// Builds one linear operator chain. Worker-chain factories are invoked
/// once per worker (each worker owns private operator state); merge and
/// output factories once.
using ChainFactory = std::function<Result<std::vector<OperatorPtr>>()>;

/// A morsel-parallel pipeline in three layers:
///
///   morsels → [worker chain]×W → ordered union → [merge chain]
///           → (canonical order) → [output chain]
///
/// Worker chains run concurrently over morsels (streaming stages plus
/// worker-local partial state such as pre-aggregation or counting). Their
/// outputs carry the originating morsel's sequence number and are sorted
/// on it before the single-threaded merge chain runs, so the merge sees a
/// deterministic stream no matter how work was stolen. Stateful worker
/// output produced at Finish (e.g. partial aggregates) is tagged after all
/// morsels, in worker order — deterministic in *position* but not in
/// content (which morsels a worker processed depends on stealing), which
/// is why a query without a total order asks for `canonical_order`: after
/// the merge chain the rows are sorted canonically (column by column,
/// nulls first), making the final output independent of interleaving.
/// The output chain (ORDER BY / LIMIT) then runs over that deterministic
/// stream.
struct ParallelPipelineSpec {
  ChainFactory make_worker_chain;           // required; may return {}
  ChainFactory make_merge_chain;            // optional (null = pass-through)
  /// Sort the merged rows canonically before the output chain. Set
  /// whenever the query lacks an ORDER BY.
  bool canonical_order = false;
  ChainFactory make_output_chain;           // optional (ORDER BY, LIMIT)
};

/// Runs `inputs` through the pipeline with real threads. Returns the final
/// chunk stream; deterministic for a fixed (inputs, spec) regardless of
/// worker count or interleaving whenever the spec follows the contract
/// above. `inputs` must stay alive for the duration of the call.
Result<std::vector<DataChunk>> RunMorselPipeline(
    const std::vector<DataChunk>& inputs, const ParallelPipelineSpec& spec,
    const ParallelExecOptions& options, ParallelExecStats* stats = nullptr);

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_PARALLEL_EXECUTOR_H_
