#ifndef DFLOW_EXEC_PARALLEL_MORSEL_H_
#define DFLOW_EXEC_PARALLEL_MORSEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dflow/vector/data_chunk.h"

namespace dflow::parallel {

/// Default rows per morsel. Half a vector batch: small enough that a
/// skewed filter can't serialize a pipeline behind one giant task, large
/// enough that per-task overhead (deque push, queue handoff) stays in the
/// noise against ~1k rows of real columnar work.
inline constexpr size_t kDefaultMorselRows = 1024;

/// The unit of parallel work: a row range of one input chunk. Morsels are
/// created once, up front, from the scan's chunk list; workers claim them
/// as tasks (morsel-driven parallelism). `sequence` is the morsel's global
/// position in scan order — downstream merging sorts on it so the final
/// output never depends on which worker ran which morsel.
struct Morsel {
  const DataChunk* chunk = nullptr;
  uint32_t row_begin = 0;
  uint32_t row_end = 0;  // exclusive
  uint64_t sequence = 0;

  size_t num_rows() const { return row_end - row_begin; }

  /// The morsel's rows as a standalone chunk (whole-chunk morsels return a
  /// copy of the chunk; partial morsels gather the row range).
  DataChunk Materialize() const;
};

/// Chops `chunks` into row-range morsels of at most `morsel_rows` rows
/// each, numbered in scan order. The chunk pointers alias `chunks`, which
/// must outlive the morsels. morsel_rows == 0 falls back to the default.
std::vector<Morsel> SplitIntoMorsels(const std::vector<DataChunk>& chunks,
                                     size_t morsel_rows);

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_MORSEL_H_
