#ifndef DFLOW_EXEC_PARALLEL_ERROR_SLOT_H_
#define DFLOW_EXEC_PARALLEL_ERROR_SLOT_H_

#include <atomic>

#include "dflow/common/lock_rank.h"
#include "dflow/common/status.h"
#include "dflow/common/thread_annotations.h"

namespace dflow::parallel {

/// First-error capture shared by the parallel drivers: many workers may
/// fail, the first Status wins, and a relaxed flag lets the hot path skip
/// work after any failure without taking the lock. The mutex is the
/// leaf-most rank (kErrorSlot): recording an error is legal while holding
/// any other ranked lock (e.g. a join partition lock), and the slot itself
/// never calls out while locked.
class ErrorSlot {
 public:
  ErrorSlot() = default;
  ErrorSlot(const ErrorSlot&) = delete;
  ErrorSlot& operator=(const ErrorSlot&) = delete;

  /// Records `s` if it is the first non-OK status; OK statuses are ignored.
  void Record(const Status& s) {
    if (s.ok()) return;
    RankedMutexLock lock(&mutex_);
    if (first_.ok()) first_ = s;
    failed_.store(true, std::memory_order_relaxed);
  }

  /// Cheap cooperative-cancellation probe for worker hot paths.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// The first recorded error, or OK. Call after the workers quiesced.
  Status first() const {
    RankedMutexLock lock(&mutex_);
    return first_;
  }

 private:
  mutable RankedMutex mutex_{LockRank::kErrorSlot};
  Status first_ DFLOW_GUARDED_BY(mutex_);
  std::atomic<bool> failed_{false};
};

}  // namespace dflow::parallel

#endif  // DFLOW_EXEC_PARALLEL_ERROR_SLOT_H_
