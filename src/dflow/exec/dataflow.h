#ifndef DFLOW_EXEC_DATAFLOW_H_
#define DFLOW_EXEC_DATAFLOW_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dflow/exec/operator.h"
#include "dflow/exec/partition.h"
#include "dflow/exec/scan.h"
#include "dflow/lifecycle/cancel.h"
#include "dflow/sim/credit.h"
#include "dflow/sim/dma.h"
#include "dflow/sim/device.h"
#include "dflow/sim/fault.h"
#include "dflow/sim/simulator.h"
#include "dflow/trace/tracer.h"
#include "dflow/verify/graph_spec.h"

namespace dflow {

/// How the recovery layer reacts to an unreliable fabric. All times are
/// virtual, so recovery behaviour is exactly reproducible.
struct RecoveryPolicy {
  /// Grace period after a chunk's nominal arrival before the sender
  /// declares it lost and retransmits (first attempt; doubles per retry).
  sim::SimTime delivery_timeout_ns = 500'000;
  /// Cap on the backed-off delivery timeout.
  sim::SimTime max_backoff_ns = 8'000'000;
  /// Transmissions per chunk before the edge gives up (kIOError).
  uint32_t max_delivery_attempts = 10;
  /// Retries of a failed storage read before the source gives up.
  uint32_t max_storage_retries = 4;
  /// Backoff before a storage read retry (doubles per retry, capped at
  /// max_backoff_ns).
  sim::SimTime storage_retry_backoff_ns = 200'000;
};

/// The executable form of a query plan laid out over the fabric: a DAG of
/// stages, each pinned to a processing element, connected by credit-
/// controlled edges whose transfers ride DMA engines over links (§7.1).
///
/// Protocol per stage, entirely event-driven and deterministic:
///  - a stage takes a chunk from its inbox only when its device is free and
///    all previous outputs have been dispatched (local backpressure),
///  - taking a chunk returns a credit to the sender over the reverse path
///    (with the path's latency),
///  - a sender without credits buffers and stalls, which in turn stops it
///    from consuming its own inputs: backpressure propagates hop by hop,
///  - when every input has delivered end-of-stream and the inbox is empty,
///    the stage runs Finish(), flushes its outputs, and forwards EOS.
///
/// Data operations actually execute (results are real); time is charged to
/// the virtual clock via the device/link models.
class DataflowGraph {
 public:
  using NodeId = size_t;

  explicit DataflowGraph(sim::Simulator* sim);
  DataflowGraph(const DataflowGraph&) = delete;
  DataflowGraph& operator=(const DataflowGraph&) = delete;
  ~DataflowGraph();

  /// A source producing pre-scanned batches; `device` is charged `cc` work
  /// for each batch's device_bytes (e.g. the storage media doing a row-group
  /// read).
  NodeId AddSource(std::string name, sim::Device* device, sim::CostClass cc,
                   std::vector<ScanBatch> batches);

  /// Same, with the schema of the emitted chunks declared. DataChunks carry
  /// no schema of their own, so only a declared source schema lets the
  /// static verifier type-check the first edge. Prefer this overload.
  NodeId AddSource(std::string name, sim::Device* device, sim::CostClass cc,
                   std::vector<ScanBatch> batches, Schema schema);

  /// A processing stage hosting `op` on `device`.
  NodeId AddStage(std::string name, OperatorPtr op, sim::Device* device,
                  double cost_factor = 1.0);

  /// A fan-out stage: splits each input chunk by hash and routes partition i
  /// to the i-th edge connected from this node (Connect order matters).
  NodeId AddPartitionStage(std::string name, HashPartitioner partitioner,
                           sim::Device* device);

  /// A replicating fan-out: every input chunk is copied to every outgoing
  /// edge — the broadcast collective a smart NIC can run for replicated
  /// joins and coordination (§4.4: "perform collective communication
  /// (scatter-gather, broadcast)"). The device is charged kMemcpy work once
  /// per input chunk per target.
  NodeId AddBroadcastStage(std::string name, sim::Device* device);

  /// A terminal collector. Chunks accumulate in arrival order;
  /// sink_finish_time() is when the last EOS arrived.
  NodeId AddSink(std::string name);

  /// Connects two nodes. `path` is the ordered list of links a chunk
  /// crosses (empty = colocated, instantaneous). `credits` bounds the
  /// number of chunks in flight on this edge. An edge declared `feedback`
  /// closes an intentional loop: the verifier exempts it from the illegal-
  /// cycle check (but still analyzes its credit window for deadlock).
  /// Run() rejects graphs with feedback edges — the executor's EOS
  /// protocol cannot terminate a loop, so such graphs are verify-only
  /// until an iterative runtime lands.
  Status Connect(NodeId from, NodeId to, std::vector<sim::Link*> path,
                 uint32_t credits = 8, bool feedback = false);

  /// Sets a rate limit (Gbps) on the DMA engine of the edge from->to.
  Status SetEdgeRateLimit(NodeId from, NodeId to, double gbps);

  /// Arms the recovery layer against `injector`'s faults: chunks sent over
  /// link paths carry checksums and are retransmitted on delivery timeout
  /// with capped exponential backoff; source storage reads that fail with
  /// an injected kIOError are retried with backoff; stages whose device the
  /// injector crashed fail the run with kIOError, and failed_device() names
  /// the casualty so the engine can degrade to a CPU-only plan.
  ///
  /// Must be armed whenever the graph's links have this injector attached —
  /// otherwise dropped chunks are simply lost. Colocated edges (empty link
  /// path) are function calls, not fabric transfers; they are always
  /// reliable. Retransmitted chunks can arrive after later chunks; the
  /// receiver reorders verified chunks back into send order before handing
  /// them to the operator, so a recovered run computes bit-identical
  /// results to a fault-free one.
  void SetFaultInjector(sim::FaultInjector* injector) { fault_ = injector; }
  void SetRecoveryPolicy(const RecoveryPolicy& policy) { policy_ = policy; }

  /// Attaches an event tracer: stages emit per-chunk process/finish spans,
  /// edges emit in-flight-byte counters, credit-stall instants, and
  /// recovery events (retransmit/timeout/checksum) on their own tracks, and
  /// the edges' DMA engines emit injection spans. nullptr detaches.
  /// Tracing never changes scheduling or results.
  void SetTracer(trace::Tracer* tracer);

  struct RecoveryStats {
    uint64_t retransmits = 0;
    uint64_t delivery_timeouts = 0;
    uint64_t checksum_failures = 0;
    uint64_t storage_io_errors = 0;
    uint64_t storage_retries = 0;
  };
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Name of the crashed device that failed the run ("" if the run
  /// succeeded or failed for another reason).
  const std::string& failed_device() const { return failed_device_; }

  /// Structured classification of why the graph stopped (kNone while
  /// running or after success). Stamped at the failure site, so callers
  /// never have to string-match status messages.
  lifecycle::FailureKind failure_kind() const { return failure_kind_; }

  /// Attaches a cooperative cancellation token. Event handlers poll it:
  /// once cancelled, the next event converts the token's reason into a
  /// graph failure (stages and edges stop emitting, the completion
  /// callback fires with the reason, credits quiesce). The owner may also
  /// call Cancel() directly for same-event teardown.
  void SetCancelToken(lifecycle::CancelTokenPtr token) {
    cancel_token_ = std::move(token);
  }

  /// Cancels a launched, unfinished graph: the first non-OK reason
  /// (kCancelled or kDeadlineExceeded by convention) becomes the graph's
  /// status and the completion callback fires immediately, letting the
  /// owner release scheduler ledger demand now instead of at drain. A
  /// no-op on graphs that already completed or failed.
  void Cancel(Status reason);

  /// Runs the whole graph to completion on the simulator. Fails if any
  /// operator errored or the event budget was exceeded.
  Status Run(uint64_t max_events = 200'000'000);

  // --------------------------------------------------------- service mode
  // A serving layer admits queries while the fabric simulation is live:
  // many independent DataflowGraphs share one Simulator (and its devices
  // and links), each launched when its query is admitted. Launch validates
  // and schedules this graph's sources but does NOT drain the simulator —
  // the caller owns the event loop and typically interleaves arrival
  // events with fabric events on the same virtual clock.

  /// Validates the graph and schedules every source to start producing
  /// (at its start time, see SetSourceStartTime; default: now). Unlike
  /// Run, returns immediately — the graph executes as the caller (or an
  /// enclosing service loop) drains the shared simulator. A graph may be
  /// launched only once and must not also call Run.
  Status Launch();

  /// Delays a source's first batch to the given absolute virtual time
  /// (clamped to "now" at launch). This is how the engine realises
  /// per-query admission offsets: a query admitted at t starts moving
  /// data at t, not at 0.
  Status SetSourceStartTime(NodeId source, sim::SimTime at);

  /// Called exactly once, when every sink has finished (success) or the
  /// graph failed (operator error, crashed device, delivery give-up). The
  /// callback runs inside the simulator event loop, so it may admit and
  /// Launch further graphs but must not drain the simulator itself.
  void SetCompletionCallback(std::function<void(const Status&)> callback);

  /// Execution status so far (OK while running or after success).
  const Status& status() const { return status_; }
  /// True once every node has finished (EOS fully propagated).
  bool finished() const;

  // --------------------------------------------------------------- results
  const std::vector<DataChunk>& sink_chunks(NodeId sink) const;
  sim::SimTime sink_finish_time(NodeId sink) const;
  /// The operator hosted at a stage (stats inspection). Null for non-stages.
  Operator* stage_operator(NodeId id);

  /// Peak bytes simultaneously in flight or queued, per edge and summed —
  /// the engine's "working memory" under credit flow control (§7.4).
  uint64_t TotalPeakQueueBytes() const;
  uint64_t EdgePeakQueueBytes(NodeId from, NodeId to) const;

  /// Plain-data snapshot of the graph's structure for the static verifier:
  /// node kinds/devices/traits, copied schemas, edge credit windows and hop
  /// counts. Valid independently of the graph's lifetime; building it has
  /// no effect on execution.
  verify::GraphSpec Describe() const;

 private:
  struct Edge;
  struct Node;

  Node* GetNode(NodeId id) { return nodes_[id].get(); }
  Edge* FindEdge(NodeId from, NodeId to) const;
  void Pump(Node* n);
  void CheckEdgeInvariants(Edge* e);
  void CheckEventTime();
  void StartWork(Node* n);
  void RouteOutputs(Node* n, std::vector<DataChunk> outputs);
  void RouteScanBatch(Node* n, size_t batch_index);
  void PumpEdges(Node* n);
  void PumpEdge(Edge* e);
  void Transmit(Edge* e, uint64_t seq);
  void DeliverPending(Edge* e, uint64_t seq, bool corrupted);
  void CheckDelivery(Edge* e, uint64_t seq, uint32_t attempt);
  void Deliver(Edge* e, DataChunk chunk, uint64_t wire_bytes);
  void PopCredit(Edge* e, uint64_t wire_bytes);
  void HandleEos(Edge* e);
  void MarkNodeDone(Node* n);
  bool SendQueuesEmpty(const Node* n) const;
  bool DeviceCrashed(Node* n);
  void Fail(Status status,
            lifecycle::FailureKind kind = lifecycle::FailureKind::kOther);
  /// Polls the cancel token; converts a pending cancellation into a graph
  /// failure and returns true when the graph is (now) cancelled.
  bool CancelRequested();
  Status Validate() const;
  Status Start();
  void MaybeComplete();

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Edge>> edges_;
  sim::FaultInjector* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  RecoveryPolicy policy_;
  RecoveryStats recovery_stats_;
  std::string failed_device_;
  lifecycle::FailureKind failure_kind_ = lifecycle::FailureKind::kNone;
  lifecycle::CancelTokenPtr cancel_token_;
  Status status_;
  bool started_ = false;
  std::function<void(const Status&)> completion_callback_;
  bool completion_reported_ = false;
  size_t unfinished_sinks_ = 0;
  /// Latest event timestamp seen by this graph's handlers; the invariant
  /// oracle (exec/invariants.h) asserts virtual time never runs backwards.
  /// Maintained only when the oracle is compiled in.
  sim::SimTime inv_last_event_ns_ = 0;
};

}  // namespace dflow

#endif  // DFLOW_EXEC_DATAFLOW_H_
