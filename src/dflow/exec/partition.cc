#include "dflow/exec/partition.h"

#include "dflow/common/logging.h"
#include "dflow/vector/kernels.h"

namespace dflow {

HashPartitioner::HashPartitioner(size_t key_col, uint32_t num_partitions)
    : key_col_(key_col), num_partitions_(num_partitions) {
  DFLOW_CHECK_GT(num_partitions, 0u);
}

Status HashPartitioner::Split(const DataChunk& input,
                              std::vector<DataChunk>* outs) const {
  if (key_col_ >= input.num_columns()) {
    return Status::InvalidArgument("partition key column out of range");
  }
  std::vector<uint64_t> hashes;
  DFLOW_RETURN_NOT_OK(HashColumn(input.column(key_col_), &hashes));
  std::vector<SelectionVector> sels(num_partitions_);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    sels[hashes[r] % num_partitions_].Append(static_cast<uint32_t>(r));
  }
  outs->clear();
  outs->reserve(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    outs->push_back(input.Gather(sels[p]));
  }
  return Status::OK();
}

}  // namespace dflow
